"""Segmented, checksummed write-ahead log on object storage.

One ``ingest()`` batch becomes one immutable segment object at
``<root>/wal/<seq>.seg`` — object PUTs are atomic, so there is no
partial-append window to reason about. Each segment carries a CRC32
over its JSON payload; replay rejects corrupt frames with
:class:`~repro.errors.WalCorruption`.

Values are stored in a *canonical* JSON representation (bytes as hex,
vectors as float32-exact lists) and :meth:`WriteAheadLog.append`
returns the canonically *decoded* columns. The memtable inserts those —
on the live path and on replay — so the Parquet file a drain flushes is
byte-identical no matter how many crashes interleaved.

The log runs through the ordinary :class:`~repro.storage.ObjectStore`
interface, which is the point: ``FaultRule`` / ``crash_after`` and the
chaos crash matrix apply to ingest for free.
"""

from __future__ import annotations

import json
import zlib

import numpy as np

from repro.errors import IngestError, WalCorruption
from repro.formats.schema import ColumnType, Schema
from repro.storage.object_store import ObjectStore

WAL_DIR = "wal"
SEQ_DIGITS = 20
_MAGIC = b"WAL1"


def encode_columns(schema: Schema, columns: dict[str, list]) -> dict:
    """Canonical JSON form of a batch (bytes -> hex, vectors -> lists)."""
    out: dict[str, list] = {}
    n = None
    for f in schema.fields:
        try:
            values = columns[f.name]
        except KeyError:
            raise IngestError(f"batch is missing column {f.name!r}") from None
        if n is None:
            n = len(values)
        elif len(values) != n:
            raise IngestError(
                f"ragged batch: column {f.name!r} has {len(values)} rows, "
                f"expected {n}"
            )
        if f.type is ColumnType.BINARY:
            out[f.name] = [bytes(v).hex() for v in values]
        elif f.type is ColumnType.VECTOR:
            out[f.name] = [
                np.asarray(v, dtype=np.float32).tolist() for v in values
            ]
        elif f.type is ColumnType.STRING:
            out[f.name] = [str(v) for v in values]
        elif f.type is ColumnType.INT64:
            out[f.name] = [int(v) for v in values]
        else:  # FLOAT64
            out[f.name] = [float(v) for v in values]
    if n is None:
        raise IngestError("schema has no columns")
    return out


def decode_columns(schema: Schema, payload: dict) -> dict[str, list]:
    """Inverse of :func:`encode_columns`; float32 round-trips exactly."""
    out: dict[str, list] = {}
    for f in schema.fields:
        values = payload[f.name]
        if f.type is ColumnType.BINARY:
            out[f.name] = [bytes.fromhex(v) for v in values]
        elif f.type is ColumnType.VECTOR:
            out[f.name] = [np.array(v, dtype=np.float32) for v in values]
        else:
            out[f.name] = list(values)
    return out


class WriteAheadLog:
    """One ingest directory's segment log plus its seal markers."""

    def __init__(self, store: ObjectStore, root: str, schema: Schema) -> None:
        self.store = store
        self.root = root.rstrip("/")
        self.schema = schema

    # -- keys ----------------------------------------------------------
    @property
    def prefix(self) -> str:
        return f"{self.root}/{WAL_DIR}/"

    def segment_key(self, seq: int) -> str:
        return f"{self.prefix}{seq:0{SEQ_DIGITS}d}.seg"

    def seal_key(self, seq: int) -> str:
        return f"{self.prefix}{seq:0{SEQ_DIGITS}d}.seal"

    # -- write path ----------------------------------------------------
    def append(self, seq: int, columns: dict[str, list]) -> dict[str, list]:
        """Durably PUT one segment; returns the canonical decoded batch.

        The returned columns — not the caller's originals — are what the
        memtable must index, so live inserts and replayed inserts are
        bit-for-bit the same.
        """
        return self.append_encoded(seq, encode_columns(self.schema, columns))

    def append_encoded(self, seq: int, payload: dict) -> dict[str, list]:
        """PUT one segment whose payload is already canonical.

        Split from :meth:`append` so callers can validate a batch
        (:func:`encode_columns` raises on missing/ragged columns) and
        reject it *before* anything durable happens — a refused batch
        must not leave a segment object behind.
        """
        body = json.dumps(
            {"seq": seq, "columns": payload}, indent=None, sort_keys=True
        ).encode("utf-8")
        frame = _MAGIC + zlib.crc32(body).to_bytes(4, "big") + body
        self.store.put(self.segment_key(seq), frame)
        return decode_columns(self.schema, payload)

    def seal(self, seq: int) -> None:
        """PUT the seal marker: the drainer owns this segment now."""
        self.store.put(self.seal_key(seq), b"sealed")

    def truncate(self, seq: int) -> None:
        """Delete one drained segment (and its seal marker, free)."""
        self.store.delete(self.segment_key(seq))
        self.store.delete(self.seal_key(seq))

    # -- read path -----------------------------------------------------
    def read(self, seq: int) -> dict[str, list]:
        """Replay one segment into canonical columns."""
        frame = self.store.get(self.segment_key(seq))
        if len(frame) < 8 or frame[:4] != _MAGIC:
            raise WalCorruption(
                f"segment {self.segment_key(seq)!r} has a bad header"
            )
        want = int.from_bytes(frame[4:8], "big")
        body = frame[8:]
        if zlib.crc32(body) != want:
            raise WalCorruption(
                f"segment {self.segment_key(seq)!r} failed its CRC32 check"
            )
        obj = json.loads(body.decode("utf-8"))
        if obj.get("seq") != seq:
            raise WalCorruption(
                f"segment {self.segment_key(seq)!r} claims seq {obj.get('seq')!r}"
            )
        return decode_columns(self.schema, obj["columns"])

    def segments(self) -> list[int]:
        """Sequence numbers of all durable segments, ascending."""
        out = []
        for info in self.store.list(self.prefix):
            name = info.key.rsplit("/", 1)[1]
            if name.endswith(".seg"):
                out.append(int(name.split(".")[0]))
        return out

    def sealed(self) -> set[int]:
        """Sequence numbers with a durable seal marker."""
        out = set()
        for info in self.store.list(self.prefix):
            name = info.key.rsplit("/", 1)[1]
            if name.endswith(".seal"):
                out.add(int(name.split(".")[0]))
        return out

    def ingested_at(self, seq: int) -> float:
        """Store-clock time the segment became durable (its PUT mtime);
        the drain's freshness-lag sample is measured from here."""
        return self.store.head(self.segment_key(seq)).mtime

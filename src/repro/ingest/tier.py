"""The fresh tier: WAL-backed memtables merged into every search.

:class:`IngestTier` is the write-read decoupling seam. ``ingest()``
acks a batch once its WAL segment PUT is durable, then indexes it in an
in-memory :class:`~repro.ingest.memtable.Memtable` — so the row is
searchable immediately, before any ``index`` run. ``search_fresh()``
serves the *fresh view of a lake snapshot*: segment ``seq`` is fresh
for snapshot ``S`` iff ``seq > S.app_versions["ingest/<root>"]``, the
high-water mark the drainer commits atomically with each flushed file.
That rule — not any in-memory state — is what makes the handoff
exactly-once: a segment is either beyond the mark (served fresh) or at
or below it (served from the lake), never both, never neither.
"""

from __future__ import annotations

import threading

from repro.core.client import SearchMatch
from repro.core.queries import Query
from repro.errors import IngestError
from repro.ingest.memtable import Memtable
from repro.ingest.wal import WriteAheadLog, encode_columns
from repro.lake.snapshot import Snapshot
from repro.lake.table import LakeTable
from repro.obs.metrics import get_registry
from repro.obs.timeseries import get_hub
from repro.storage.object_store import ObjectStore

_INGESTED = get_registry().counter(
    "ingest_rows_total", "Rows acked by the ingest tier."
)
_FRESH_SEARCHES = get_registry().counter(
    "ingest_fresh_searches_total", "Fresh-tier probes served."
)


class IngestTier:
    """One ingest directory's WAL + memtables in front of a lake."""

    def __init__(self, store: ObjectStore, root: str, lake: LakeTable) -> None:
        self.store = store
        self.root = root.rstrip("/")
        self.lake = lake
        self.wal = WriteAheadLog(store, self.root, lake.schema)
        self.app_id = f"ingest/{self.root}"
        self._memtables: dict[int, Memtable] = {}
        self._next_seq = 0
        self._pins: dict[int, int] = {}  # lease id -> pinned floor
        self._next_pin = 0
        self._lock = threading.Lock()
        self.recover()

    # -- recovery ------------------------------------------------------
    def floor(self, snapshot: Snapshot | None = None) -> int:
        """Highest WAL seq already committed to the lake (-1 if none)."""
        snap = snapshot or self.lake.snapshot()
        return snap.app_versions.get(self.app_id, -1)

    def recover(self) -> int:
        """Rebuild memtables by replaying undrained WAL segments.

        Replay inserts the same canonical columns ``ingest()`` inserted
        live, so the rebuilt tier — and anything later flushed from it —
        is byte-identical to the uncrashed history. Returns the number
        of segments replayed. Segments at or below the lake's committed
        floor are left for the drainer to truncate.
        """
        floor = self.floor()
        segments = self.wal.segments()
        replayed: dict[int, Memtable] = {}
        for seq in segments:
            if seq <= floor:
                continue
            table = Memtable(seq, self.wal.segment_key(seq), self.lake.schema)
            table.insert(self.wal.read(seq))
            replayed[seq] = table
        with self._lock:
            self._memtables = replayed
            self._next_seq = max(segments, default=floor) + 1
            self._next_seq = max(self._next_seq, floor + 1)
        return len(replayed)

    # -- write path ----------------------------------------------------
    def ingest(self, columns: dict[str, list]) -> int:
        """Durably log one batch, index it in memory, and ack.

        Returns the batch's WAL sequence number. The ack contract: once
        this returns, ``search()`` on any client sharing this tier
        finds the rows — before any ``index``/``compact`` run.
        """
        # Validate before any durable effect: a rejected batch (missing
        # or ragged columns, zero rows) must not consume a seq or leave
        # a segment object behind for recovery/drain to replay.
        payload = encode_columns(self.lake.schema, columns)
        if not payload[self.lake.schema.fields[0].name]:
            raise IngestError("empty ingest batch")
        with self._lock:
            # The WAL PUT happens under the lock: segment durability is
            # then monotonic in seq, so a drain can never observe seq N
            # durable while an *acked-later* seq < N is still in
            # flight. Without this, committing floor = N would strand
            # the lower segment below the floor — excluded from the
            # fresh view, never flushed, deleted by the next drain's
            # leftover truncation — silently losing an acked batch.
            seq = self._next_seq
            self._next_seq += 1
            canonical = self.wal.append_encoded(seq, payload)
            table = Memtable(seq, self.wal.segment_key(seq), self.lake.schema)
            rows = table.insert(canonical)
            self._memtables[seq] = table
        _INGESTED.inc(rows)
        at_s = self.store.clock.now()
        get_hub().series("ingest.rows").observe(float(rows), at_s=at_s)
        get_hub().series("ingest.batches").observe(1.0, at_s=at_s)
        return seq

    # -- read path -----------------------------------------------------
    def search_fresh(
        self,
        column: str,
        query: Query,
        *,
        k: int,
        snapshot: Snapshot | None = None,
    ) -> list[SearchMatch]:
        """Verified fresh-tier matches for the given lake snapshot.

        Exact queries return at most ``k`` matches (ascending seq);
        scoring queries return *every* fresh row scored — the caller
        merges them with the lazy candidates and applies the global
        top-k cut.
        """
        floor = self.floor(snapshot)
        with self._lock:
            tables = [
                table
                for seq, table in sorted(self._memtables.items())
                if seq > floor
            ]
        _FRESH_SEARCHES.inc()
        matches: list[SearchMatch] = []
        for table in tables:
            matches.extend(table.search(column, query))
            if not query.scoring and len(matches) >= k:
                break
        return matches if query.scoring else matches[:k]

    # -- introspection / maintenance hooks -----------------------------
    def pending_seqs(self, snapshot: Snapshot | None = None) -> list[int]:
        """Undrained segment seqs for a snapshot, ascending."""
        floor = self.floor(snapshot)
        return [seq for seq in self.wal.segments() if seq > floor]

    def pending_rows(self, snapshot: Snapshot | None = None) -> int:
        """Rows currently served from memtables (undrained)."""
        floor = self.floor(snapshot)
        with self._lock:
            return sum(
                t.num_rows for seq, t in self._memtables.items() if seq > floor
            )

    def evict(self, up_to_seq: int) -> None:
        """Drop memtables at or below ``up_to_seq`` (drained to lake)."""
        with self._lock:
            for seq in [s for s in self._memtables if s <= up_to_seq]:
                del self._memtables[seq]

    # -- retention leases ----------------------------------------------
    def pin(self, snapshot: Snapshot | None = None) -> int:
        """Lease the fresh view of ``snapshot``; returns the lease id.

        A reader that serves lazy data from an older snapshot (the
        sharded :class:`~repro.shard.router.QueryRouter`, whose shards
        were materialized from one) pins that snapshot so drains keep
        the memtables and WAL segments above its floor alive — rows the
        drainer commits *after* the pin stay servable fresh, instead of
        falling between the reader's stale shards and the advanced
        floor. Leases are process-local, like the memtables they
        protect; release with :meth:`unpin`.
        """
        floor = self.floor(snapshot)
        with self._lock:
            lease = self._next_pin
            self._next_pin += 1
            self._pins[lease] = floor
        return lease

    def unpin(self, lease: int) -> None:
        """Release a retention lease (idempotent)."""
        with self._lock:
            self._pins.pop(lease, None)

    def retained_floor(self) -> int | None:
        """Lowest pinned floor, or None when nothing is pinned.

        The drainer must not truncate WAL segments or evict memtables
        above this seq, however far the committed floor advances.
        """
        with self._lock:
            return min(self._pins.values(), default=None)

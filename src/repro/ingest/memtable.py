"""In-memory search structures over one WAL segment's rows.

Per-workload structures mirror the lazy tier's index types at memtable
scale: a bounded-depth suffix trie for substring search, an inverted
map for exact/UUID lookups, and a flat float32 buffer for brute-force
vector scoring. Every candidate is verified against the query predicate
(``matches`` / ``distance``) before it is returned, so the structures
only ever prune — they can't produce false positives.
"""

from __future__ import annotations

import numpy as np

from repro.core.client import SearchMatch
from repro.core.queries import Query, SubstringQuery, UuidQuery
from repro.formats.schema import ColumnType, Schema

#: Suffix-trie depth: longer needles fall back to verified candidates.
TRIE_DEPTH = 8


class _SuffixTrie:
    """Bounded-depth suffix trie; nodes hold row-id sets.

    A row sits at every node on the path of every suffix (truncated to
    :data:`TRIE_DEPTH`), so the rows at the node reached by walking
    ``needle[:TRIE_DEPTH]`` are exactly the rows whose value contains
    that prefix of the needle — a superset of the true matches that the
    caller then verifies with ``needle in value``.
    """

    def __init__(self) -> None:
        self._root: dict = {}

    def insert(self, row: int, value: str) -> None:
        for start in range(len(value)):
            node = self._root
            for ch in value[start : start + TRIE_DEPTH]:
                node = node.setdefault(ch, {})
                node.setdefault(None, set()).add(row)

    def candidates(self, needle: str) -> set[int]:
        if not needle:
            return set()
        node = self._root
        for ch in needle[:TRIE_DEPTH]:
            if ch not in node:
                return set()
            node = node[ch]
        return node.get(None, set())


class Memtable:
    """Searchable image of one WAL segment (one ingest batch)."""

    def __init__(self, seq: int, wal_key: str, schema: Schema) -> None:
        self.seq = seq
        self.wal_key = wal_key
        self.schema = schema
        self.columns: dict[str, list] = {name: [] for name in schema.names}
        self.num_rows = 0
        self._tries: dict[str, _SuffixTrie] = {}
        self._inverted: dict[str, dict[bytes, list[int]]] = {}
        self._vectors: dict[str, np.ndarray | None] = {}
        for f in schema.fields:
            if f.type is ColumnType.STRING:
                self._tries[f.name] = _SuffixTrie()
            elif f.type is ColumnType.BINARY:
                self._inverted[f.name] = {}
            elif f.type is ColumnType.VECTOR:
                self._vectors[f.name] = None

    def insert(self, columns: dict[str, list]) -> int:
        """Index one canonical batch; returns rows inserted."""
        n = len(next(iter(columns.values()), []))
        base = self.num_rows
        for f in self.schema.fields:
            values = columns[f.name]
            self.columns[f.name].extend(values)
            if f.type is ColumnType.STRING:
                trie = self._tries[f.name]
                for i, value in enumerate(values):
                    trie.insert(base + i, value)
            elif f.type is ColumnType.BINARY:
                inv = self._inverted[f.name]
                for i, value in enumerate(values):
                    inv.setdefault(bytes(value), []).append(base + i)
            elif f.type is ColumnType.VECTOR:
                block = np.asarray(values, dtype=np.float32)
                prior = self._vectors[f.name]
                self._vectors[f.name] = (
                    block if prior is None else np.vstack([prior, block])
                )
        self.num_rows += n
        return n

    # -- search --------------------------------------------------------
    def search(self, column: str, query: Query) -> list[SearchMatch]:
        """All verified matches in this memtable (unbounded; the tier
        applies ``k``). Scoring queries return every row scored."""
        values = self.columns[column]
        if query.scoring:
            scores = self._scores(column, query)
            return [
                SearchMatch(
                    file=self.wal_key,
                    row=row,
                    value=values[row],
                    score=scores[row],
                )
                for row in range(self.num_rows)
            ]
        rows = self._candidate_rows(column, query)
        return [
            SearchMatch(file=self.wal_key, row=row, value=values[row])
            for row in rows
            if query.matches(values[row])
        ]

    def _scores(self, column: str, query: Query) -> list[float]:
        buffer = self._vectors.get(column)
        if buffer is not None:
            # Flat brute-force pass over the float32 buffer, scored with
            # the query's own distance so fresh and lazy tiers agree to
            # the last bit (merge order must not depend on the tier).
            return [query.distance(buffer[row]) for row in range(len(buffer))]
        return [query.distance(v) for v in self.columns[column]]

    def _candidate_rows(self, column: str, query: Query) -> list[int]:
        if isinstance(query, UuidQuery) and column in self._inverted:
            return list(self._inverted[column].get(bytes(query.key), []))
        if isinstance(query, SubstringQuery) and column in self._tries:
            return sorted(self._tries[column].candidates(query.needle))
        return list(range(self.num_rows))

"""Real-time ingest tier: WAL + memtables in front of the lazy lake.

The paper's maintenance protocol is deliberately lazy — appended rows
are invisible to every index until the next ``index`` run. This package
adds the write-read decoupled fresh tier that closes that gap: a
crash-safe segmented write-ahead log (:mod:`repro.ingest.wal`) feeds
in-memory per-workload search structures (:mod:`repro.ingest.memtable`)
so acked rows are searchable immediately, and a background drainer
(:mod:`repro.ingest.drain`) moves sealed segments into committed lake
files — and optionally index parts via the maintenance pipeline — with
an exactly-once handoff built on the lake's ``SetTransaction`` marker.
"""

from repro.ingest.drain import DrainReport, IngestDrainer
from repro.ingest.memtable import Memtable
from repro.ingest.tier import IngestTier
from repro.ingest.wal import WriteAheadLog

__all__ = [
    "DrainReport",
    "IngestDrainer",
    "IngestTier",
    "Memtable",
    "WriteAheadLog",
]

"""Modeled freshness scenario for the real-time ingest tier.

One seeded run interleaves writers and readers against a simulated
clock: batches land in the WAL, probes immediately search for rows
from the newest batch (the ack contract: acked means searchable), a
background-style drain fires every few batches, and after the final
drain the same keys are probed again through the lazy tier. Latencies
are *modeled* from request traces and the freshness lag is measured by
the drainer itself (commit time minus segment PUT time on the shared
sim clock), so the same parameters always produce the same numbers —
which is what lets the benchmark regression gate pin them.

Shared by ``benchmarks/bench_ingest.py`` (which persists
``BENCH_ingest.json`` for the regression gate) and the
``repro ingest-bench`` CLI subcommand (which prints the numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.client import RottnestClient
from repro.core.queries import UuidQuery
from repro.formats.schema import ColumnType, Field as SchemaField, Schema
from repro.ingest.drain import IngestDrainer
from repro.ingest.tier import IngestTier
from repro.lake.table import LakeTable, TableConfig
from repro.maintain.pipeline import MaintenancePipeline
from repro.obs.timeseries import TelemetryHub, use_hub
from repro.shard.bench import percentile
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock
from repro.workloads.uuids import UuidWorkload

SCHEMA = Schema.of(SchemaField("uuid", ColumnType.BINARY))
LAKE_ROOT = "lake/ingest-bench"
INGEST_ROOT = "ingest/bench"
INDEX_DIR = "idx/ingest-bench"


@dataclass
class IngestBenchResult:
    """Freshness and latency numbers for one interleaved write+read run."""

    batches: int
    rows: int
    drain_every: int
    interval_s: float
    max_lag_s: float
    ingested_rows: int = 0
    drained_rows: int = 0
    drains: int = 0
    fresh_probes: int = 0
    fresh_hits: int = 0
    lazy_probes: int = 0
    lazy_hits: int = 0
    fresh_p50_ms: float = 0.0
    fresh_p99_ms: float = 0.0
    lazy_p50_ms: float = 0.0
    lazy_p99_ms: float = 0.0
    lag_p50_s: float = 0.0
    lag_p99_s: float = 0.0
    lag_count: int = 0
    hub: TelemetryHub | None = field(default=None, repr=False)

    # -- derived -------------------------------------------------------
    @property
    def fresh_recall(self) -> float:
        """Fraction of fresh probes that found their just-acked row."""
        return self.fresh_hits / self.fresh_probes if self.fresh_probes else 0.0

    @property
    def lazy_recall(self) -> float:
        """Fraction of post-drain probes that found their row in the lake."""
        return self.lazy_hits / self.lazy_probes if self.lazy_probes else 0.0

    @property
    def ok(self) -> bool:
        """The acceptance shape: every acked row searchable immediately,
        nothing lost across the handoff, and the measured freshness lag
        within the configured budget."""
        return (
            self.fresh_recall == 1.0
            and self.lazy_recall == 1.0
            and self.drained_rows == self.ingested_rows
            and self.lag_count > 0
            and self.lag_p99_s <= self.max_lag_s
        )

    def describe(self) -> str:
        """Human-readable summary for the CLI."""
        lines = [
            f"ingest-bench: {self.batches} batches x {self.rows} rows, "
            f"drain every {self.drain_every} "
            f"(one batch per {self.interval_s:g}s modeled)",
            f"  ingested {self.ingested_rows} rows; drained "
            f"{self.drained_rows} across {self.drains} drain(s)",
            f"  fresh probes: {self.fresh_hits}/{self.fresh_probes} hit "
            f"(recall {self.fresh_recall:.2f})  "
            f"p50 {self.fresh_p50_ms:.1f} ms  p99 {self.fresh_p99_ms:.1f} ms",
            f"  lazy probes:  {self.lazy_hits}/{self.lazy_probes} hit "
            f"(recall {self.lazy_recall:.2f})  "
            f"p50 {self.lazy_p50_ms:.1f} ms  p99 {self.lazy_p99_ms:.1f} ms",
            f"  freshness lag ({self.lag_count} segment(s)): "
            f"p50 {self.lag_p50_s:.1f} s  p99 {self.lag_p99_s:.1f} s  "
            f"(budget {self.max_lag_s:g} s)",
            f"  gate: {'ok' if self.ok else 'MISSED'}",
        ]
        return "\n".join(lines)


def run_ingest_bench(
    *,
    batches: int = 12,
    rows: int = 24,
    drain_every: int = 4,
    interval_s: float = 5.0,
    probes_per_batch: int = 4,
    warm_files: int = 4,
    max_lag_s: float = 45.0,
    seed: int = 11,
) -> IngestBenchResult:
    """Interleave ingest batches, fresh probes, and periodic drains.

    The lake is pre-seeded with ``warm_files`` indexed files so the
    lazy tier is realistic (probes plan an index, not an empty table).
    Each batch is immediately probed for ``probes_per_batch`` of its
    own keys — the freshness invariant measured as recall — and after
    the final drain the same keys are probed again via the lake.
    """
    result = IngestBenchResult(
        batches=batches,
        rows=rows,
        drain_every=max(1, drain_every),
        interval_s=interval_s,
        max_lag_s=max_lag_s,
    )
    clock = SimClock(start=1_000_000.0)
    store = InMemoryObjectStore(clock=clock)
    lake = LakeTable.create(
        store,
        LAKE_ROOT,
        SCHEMA,
        TableConfig(row_group_rows=64, page_target_bytes=4096),
    )
    gen = UuidWorkload(seed=seed)
    for _ in range(warm_files):
        lake.append({"uuid": gen.batch(rows)})
    client = RottnestClient(store, INDEX_DIR, lake)
    if warm_files:
        client.index("uuid", "uuid_trie")
    tier = IngestTier(store, INGEST_ROOT, lake)
    client.fresh_tier = tier

    hub = TelemetryHub()
    result.hub = hub
    probe_keys: list[bytes] = []
    fresh_ms: list[float] = []
    with use_hub(hub):
        with MaintenancePipeline(client, workers=2) as pipeline:
            drainer = IngestDrainer(
                tier, pipeline=pipeline, index_specs=[("uuid", "uuid_trie", {})]
            )
            for batch_no in range(batches):
                batch = gen.batch(rows)
                tier.ingest({"uuid": batch})
                result.ingested_rows += rows
                clock.advance(interval_s)
                for key in batch[: max(0, probes_per_batch)]:
                    res = client.search("uuid", UuidQuery(key), k=4)
                    result.fresh_probes += 1
                    result.fresh_hits += int(
                        any(bytes(m.value) == key for m in res.matches)
                    )
                    fresh_ms.append(res.stats.estimated_latency() * 1000)
                probe_keys.extend(batch[: max(0, probes_per_batch)])
                if (batch_no + 1) % result.drain_every == 0:
                    report = drainer.drain()
                    result.drains += 1
                    result.drained_rows += report.rows
            report = drainer.drain()  # final flush of any ragged tail
            if not report.empty:
                result.drains += 1
                result.drained_rows += report.rows

        lazy_ms: list[float] = []
        for key in probe_keys:
            res = client.search("uuid", UuidQuery(key), k=4)
            result.lazy_probes += 1
            result.lazy_hits += int(
                any(bytes(m.value) == key for m in res.matches)
            )
            lazy_ms.append(res.stats.estimated_latency() * 1000)

    result.fresh_p50_ms = percentile(fresh_ms, 0.5)
    result.fresh_p99_ms = percentile(fresh_ms, 0.99)
    result.lazy_p50_ms = percentile(lazy_ms, 0.5)
    result.lazy_p99_ms = percentile(lazy_ms, 0.99)
    lag = hub.quantiles("ingest.freshness_lag_s").merged()
    result.lag_count = lag.count
    if lag.count:
        result.lag_p50_s = lag.quantile(0.5)
        result.lag_p99_s = lag.quantile(0.99)
    return result

"""Background drainer: sealed memtables -> committed lake files.

The handoff ordering (each step idempotent, so a crash at any PUT or
DELETE boundary is recoverable by just running ``drain()`` again):

1. truncate leftovers — segments at or below the committed floor are
   already in the lake; delete their WAL objects (no-op if gone),
2. seal every pending segment (marker PUT: the drainer owns it now),
3. flush — replay the pending segments in seq order and write one
   Parquet file at a *deterministic* content-addressed key, so a
   re-drain after a crash overwrites the same key with the same bytes,
4. commit ``[AddFile, SetTransaction(app_id, last_seq)]`` in a single
   lake log entry — the atomic point: before it the rows are fresh,
   after it they are lazy; never both, never neither,
5. optionally build indices over the new file through the shared
   :class:`~repro.maintain.MaintenancePipeline` (this step also runs
   when there is nothing new to flush, so a drain interrupted between
   commit and index converges on re-run),
6. truncate the drained segments and evict their memtables — both
   capped by any retention lease (:meth:`IngestTier.pin`): a pinned
   reader snapshot keeps the fresh copies above its floor alive.

Freshness lag — commit time minus each segment's WAL PUT mtime, both
on the store clock — lands in the ``ingest.freshness_lag_s`` sketch at
step 4.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.ingest.tier import IngestTier
from repro.ingest.wal import encode_columns
from repro.lake.table import DATA_DIR
from repro.obs.metrics import get_registry
from repro.obs.timeseries import get_hub
from repro.obs.trace import get_tracer

_DRAINS = get_registry().counter(
    "ingest_drains_total", "Drain runs that flushed at least one segment."
)
_DRAINED_ROWS = get_registry().counter(
    "ingest_drained_rows_total", "Rows moved from the fresh tier to the lake."
)


@dataclass
class DrainReport:
    """What one drain run moved, committed, and measured."""

    segments: list[int] = field(default_factory=list)
    rows: int = 0
    data_files: list[str] = field(default_factory=list)
    lake_version: int | None = None
    index_records: list = field(default_factory=list)
    freshness_lag_s: dict[int, float] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return not self.segments


class IngestDrainer:
    """Drains one :class:`IngestTier` into its lake (single writer).

    ``index_specs`` — optional ``(column, index_type, params)`` triples
    built through ``pipeline`` after each commit, so drained rows land
    indexed, under the pipeline's shared ``IOBudget``.
    """

    def __init__(
        self,
        tier: IngestTier,
        *,
        pipeline=None,
        index_specs: tuple = (),
    ) -> None:
        if index_specs and pipeline is None:
            raise ValueError("index_specs requires a MaintenancePipeline")
        self.tier = tier
        self.pipeline = pipeline
        self.index_specs = tuple(index_specs)

    def drain(self) -> DrainReport:
        """Run the full handoff; safe to call after any crash."""
        with get_tracer().span("ingest.drain", app_id=self.tier.app_id):
            return self._drain()

    def _drain(self) -> DrainReport:
        tier, lake, wal = self.tier, self.tier.lake, self.tier.wal
        snap = lake.snapshot()
        floor = tier.floor(snap)
        segments = wal.segments()
        # Retention leases (pinned reader snapshots, e.g. a router over
        # shards materialized from an older snapshot) cap how far
        # truncation and eviction may go: draining still flushes and
        # commits — the floor advances for everyone — but the fresh
        # copies of segments above the lowest pinned floor stay alive
        # so pinned readers keep serving them.
        retained = tier.retained_floor()
        drop_bound = floor if retained is None else min(floor, retained)
        # Step 1: a crash after commit but before truncation leaves
        # committed segments behind; they are lazy now, so drop them.
        # The union with seal markers catches the narrower wreck of a
        # crash *between* a segment's two truncation DELETEs, which
        # leaves a seal with no segment.
        for seq in sorted(set(segments) | wal.sealed()):
            if seq <= drop_bound:
                wal.truncate(seq)
        pending = [seq for seq in segments if seq > floor]
        report = DrainReport()
        if pending:
            report = self._flush(pending)
        else:
            # A crash may have landed between a committed flush and its
            # due lake checkpoint. The retried drain has nothing left to
            # flush — the commit's SetTransaction already raised the
            # floor — so converge the checkpoint here; every crash
            # history must end on the same bytes. No-op when not due.
            lake._maybe_checkpoint(lake.log.latest_version())
        report.index_records = self._index_stage()
        drained_to = floor if not pending else pending[-1]
        evict_to = drained_to if retained is None else min(drained_to, retained)
        for seq in pending:
            if seq <= evict_to:
                wal.truncate(seq)
        tier.evict(evict_to)
        return report

    def _flush(self, pending: list[int]) -> DrainReport:
        tier, lake, wal = self.tier, self.tier.lake, self.tier.wal
        for seq in pending:
            wal.seal(seq)
        ingested_at = {seq: wal.ingested_at(seq) for seq in pending}
        batches = [wal.read(seq) for seq in pending]
        columns: dict[str, list] = {name: [] for name in lake.schema.names}
        for batch in batches:
            for name in lake.schema.names:
                columns[name].extend(batch[name])
        data_key = self._data_key(pending, columns)
        add = lake.write_data_at(data_key, columns)
        version = lake.commit_transactional(
            [add], app_id=tier.app_id, app_version=pending[-1]
        )
        at_s = tier.store.clock.now()
        hub = get_hub()
        lags = {}
        for seq in pending:
            lags[seq] = max(0.0, at_s - ingested_at[seq])
            hub.quantiles("ingest.freshness_lag_s").observe(
                lags[seq], at_s=at_s
            )
        hub.series("ingest.drains").observe(1.0, at_s=at_s)
        hub.series("ingest.drained_rows").observe(float(add.num_rows), at_s=at_s)
        _DRAINS.inc()
        _DRAINED_ROWS.inc(add.num_rows)
        return DrainReport(
            segments=list(pending),
            rows=add.num_rows,
            data_files=[data_key],
            lake_version=version,
            freshness_lag_s=lags,
        )

    def _index_stage(self) -> list:
        records = []
        for column, index_type, params in self.index_specs:
            report = self.pipeline.index(column, index_type, params=params)
            records.extend(report.records)
        return records

    def _data_key(self, pending: list[int], columns: dict[str, list]) -> str:
        """Content-addressed deterministic key for the flushed file."""
        canonical = json.dumps(
            {
                "segments": pending,
                "columns": encode_columns(self.tier.lake.schema, columns),
            },
            indent=None,
            sort_keys=True,
        ).encode("utf-8")
        digest = hashlib.sha1(canonical).hexdigest()[:10]
        root = self.tier.lake.root
        return (
            f"{root}/{DATA_DIR}/"
            f"ingest-{pending[0]:020d}-{pending[-1]:020d}-{digest}.parquet"
        )

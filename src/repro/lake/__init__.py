"""Delta-Lake-like transactional data lake on object storage."""

from repro.lake.actions import (
    Action,
    AddFile,
    RemoveFile,
    SetDeletionVector,
    SetSchema,
)
from repro.lake.deletion import DeletionVector
from repro.lake.log import TransactionLog
from repro.lake.snapshot import FileEntry, Snapshot, replay
from repro.lake.table import LakeTable, TableConfig

__all__ = [
    "Action",
    "AddFile",
    "RemoveFile",
    "SetDeletionVector",
    "SetSchema",
    "DeletionVector",
    "TransactionLog",
    "FileEntry",
    "Snapshot",
    "replay",
    "LakeTable",
    "TableConfig",
]

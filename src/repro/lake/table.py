"""High-level data lake table: appends, deletes, compaction, time travel.

This is the Delta-Lake-like substrate Rottnest bolts onto. All the
operations the paper's protocol must survive are here:

* ``append`` — new Parquet files (the common case),
* ``delete_where`` — row deletes via deletion vectors,
* ``compact`` — small files merged into large ones (invalidating any
  physical locations indices recorded for the old files),
* ``rewrite_sorted`` — Z-order-style clustering rewrite,
* ``vacuum`` — physical garbage collection of unreferenced files,
* time travel via ``snapshot(version=...)``.

Rottnest itself never calls the mutating operations; it only reads
manifest lists, Parquet bytes and deletion vectors.
"""

from __future__ import annotations

import hashlib
import itertools
import os
from dataclasses import dataclass

from repro.errors import CommitConflict, LakeError
from repro.formats.pages import DEFAULT_PAGE_TARGET_BYTES
from repro.formats.parquet import DEFAULT_ROW_GROUP_ROWS, write_parquet
from repro.formats.reader import ParquetFile
from repro.formats.schema import Schema
from repro.lake.actions import (
    Action,
    AddFile,
    RemoveFile,
    SetDeletionVector,
    SetSchema,
    SetTransaction,
)
from repro.lake.deletion import DeletionVector
from repro.lake.log import TransactionLog
from repro.lake.snapshot import Snapshot, replay
from repro.storage.object_store import ObjectStore

DATA_DIR = "data"
DELETES_DIR = "deletes"


@dataclass(frozen=True)
class TableConfig:
    """Physical layout knobs for files this table writes."""

    codec: str = "zlib"
    row_group_rows: int = DEFAULT_ROW_GROUP_ROWS
    page_target_bytes: int = DEFAULT_PAGE_TARGET_BYTES
    checkpoint_interval: int = 10
    """A log checkpoint is written after every this many commits, so
    snapshot reconstruction reads one checkpoint + a short tail instead
    of the whole log (Delta Lake's checkpointing)."""


class LakeTable:
    """One transactional table rooted at ``root`` in an object store."""

    def __init__(
        self, store: ObjectStore, root: str, config: TableConfig | None = None
    ) -> None:
        self.store = store
        self.root = root.rstrip("/")
        self.config = config or TableConfig()
        self.log = TransactionLog(store, self.root)
        self._name_counter = itertools.count()

    # -- lifecycle -----------------------------------------------------
    @classmethod
    def create(
        cls,
        store: ObjectStore,
        root: str,
        schema: Schema,
        config: TableConfig | None = None,
    ) -> "LakeTable":
        table = cls(store, root, config)
        if table.log.latest_version() != -1:
            raise LakeError(f"table already exists at {root!r}")
        table.log.try_commit(0, [SetSchema(schema=schema)])
        return table

    @classmethod
    def open(
        cls, store: ObjectStore, root: str, config: TableConfig | None = None
    ) -> "LakeTable":
        table = cls(store, root, config)
        if table.log.latest_version() == -1:
            raise LakeError(f"no table at {root!r}")
        return table

    # -- snapshots ------------------------------------------------------
    def latest_version(self) -> int:
        return self.log.latest_version()

    def snapshot(self, version: int | None = None) -> Snapshot:
        # One umbrella LIST (log tip + checkpoint inventory together)
        # keeps the cold plan round at a single unparallelisable LIST
        # for the lake instead of three.
        latest, checkpoints = self.log.versions()
        if version is None:
            version = latest
        base_version = max((c for c in checkpoints if c <= version), default=-1)
        if base_version >= 0:
            base = self.log.read_checkpoint(base_version)
            tail = self.log.read_range(base_version + 1, version, latest=latest)
            return replay(version, tail, base=base)
        return replay(version, self.log.read_all(up_to=version, latest=latest))

    def _maybe_checkpoint(self, version: int) -> None:
        if (version + 1) % self.config.checkpoint_interval != 0:
            return
        # Reconstruct exactly `version` (not latest: a concurrent writer
        # may already have moved on) and persist it.
        base_version = self.log.latest_checkpoint_version(version)
        if base_version == version:
            return
        if base_version >= 0:
            base = self.log.read_checkpoint(base_version)
            snap = replay(
                version, self.log.read_range(base_version + 1, version), base=base
            )
        else:
            snap = replay(version, self.log.read_all(up_to=version))
        self.log.write_checkpoint(snap)

    @property
    def schema(self) -> Schema:
        return self.snapshot(0).schema

    def files_since(self, version: int) -> set[str]:
        """Union of data-file paths over snapshots ``version..latest``.

        This is the "supported snapshots" input to Rottnest's vacuum
        planner (paper §IV-C).
        """
        latest = self.log.latest_version()
        version = max(0, version)
        paths: set[str] = set()
        for v in range(version, latest + 1):
            paths.update(self.snapshot(v).file_paths)
        return paths

    # -- writes ---------------------------------------------------------
    def _new_data_key(self, content: bytes, partition: str | None) -> str:
        digest = hashlib.sha1(content).hexdigest()[:10]
        nonce = os.urandom(3).hex()
        seq = next(self._name_counter)
        subdir = f"{DATA_DIR}/p={partition}" if partition else DATA_DIR
        return f"{self.root}/{subdir}/part-{seq:05d}-{digest}-{nonce}.parquet"

    def _write_data_file(
        self, columns: dict[str, list], partition: str | None = None
    ) -> AddFile:
        result = write_parquet(
            self.schema,
            columns,
            codec=self.config.codec,
            row_group_rows=self.config.row_group_rows,
            page_target_bytes=self.config.page_target_bytes,
        )
        key = self._new_data_key(result.data, partition)
        self.store.put(key, result.data)
        return AddFile(path=key, num_rows=result.num_rows, size=len(result.data))

    def append(self, columns: dict[str, list], partition: str | None = None) -> int:
        """Append rows as one new Parquet file; returns the new version.

        ``partition`` (Hive-style, e.g. ``"2026-07"``) clusters the file
        under ``data/p=<partition>/``. Rottnest search can then restrict
        itself to one partition — the paper's §VI mechanism for queries
        with structured filters, whose "normalized" cost scales with the
        fraction of partitions touched.
        """
        if partition is not None and ("/" in partition or "=" in partition):
            raise LakeError(f"invalid partition value {partition!r}")
        add = self._write_data_file(columns, partition)
        version = self.log.commit([add])
        self._maybe_checkpoint(version)
        return version

    def write_data_at(self, key: str, columns: dict[str, list]) -> AddFile:
        """Write ``columns`` as one Parquet file at a caller-chosen key.

        Unlike :meth:`append`'s salted names, the key is fully under the
        caller's control, so a crashed-and-retried writer that derives
        the key deterministically from its input re-creates the same
        object with the same bytes (idempotent PUT). Returns the
        :class:`AddFile` action; nothing is committed.
        """
        if not key.startswith(f"{self.root}/{DATA_DIR}/"):
            raise LakeError(
                f"data key {key!r} must live under {self.root}/{DATA_DIR}/"
            )
        result = write_parquet(
            self.schema,
            columns,
            codec=self.config.codec,
            row_group_rows=self.config.row_group_rows,
            page_target_bytes=self.config.page_target_bytes,
        )
        self.store.put(key, result.data)
        return AddFile(path=key, num_rows=result.num_rows, size=len(result.data))

    def commit_transactional(
        self, actions: list[Action], *, app_id: str, app_version: int
    ) -> int | None:
        """Atomically commit ``actions`` together with a
        :class:`SetTransaction` high-water mark for ``app_id``.

        If the snapshot already records ``app_version`` (or newer) for
        ``app_id``, the commit is skipped and ``None`` is returned —
        this makes a crashed-and-retried drain step exactly-once: the
        data actions and the marker land in one log entry or not at
        all. Assumes one writer per ``app_id`` (the ingest drainer).
        """
        if self.snapshot().app_versions.get(app_id, -1) >= app_version:
            # Already committed (crashed-and-retried caller). A crash
            # may have landed between that commit and its due
            # checkpoint; writing it now keeps every crash history
            # converging on the same bytes. No-op when not due.
            self._maybe_checkpoint(self.log.latest_version())
            return None
        version = self.log.commit(
            [*actions, SetTransaction(app_id=app_id, version=app_version)]
        )
        self._maybe_checkpoint(version)
        return version

    @staticmethod
    def partition_of(path: str) -> str | None:
        """The partition value encoded in a data-file path, if any."""
        for segment in path.split("/"):
            if segment.startswith("p="):
                return segment[2:]
        return None

    def delete_where(self, column: str, predicate) -> int:
        """Logically delete rows where ``predicate(value)`` is true.

        Writes/extends deletion vectors; the Parquet files stay intact.
        Returns the number of newly deleted rows.
        """
        deleted = 0
        actions: list[Action] = []
        snap = self.snapshot()
        for entry in snap.files:
            reader = ParquetFile(self.store, entry.path)
            existing = self.deletion_vector(snap, entry.path)
            hits = [
                row
                for row, value in reader.scan_column(column)
                if row not in existing and predicate(value)
            ]
            if not hits:
                continue
            merged = existing.union(DeletionVector(hits))
            data = merged.serialize()
            digest = hashlib.sha1(data).hexdigest()[:10]
            dv_key = f"{self.root}/{DELETES_DIR}/dv-{digest}-{os.urandom(3).hex()}.bin"
            self.store.put(dv_key, data)
            actions.append(SetDeletionVector(data_path=entry.path, dv_path=dv_key))
            deleted += len(hits)
        if actions:
            self._commit_against(snap.version, actions)
        return deleted

    def compact(self, min_file_rows: int, target_rows: int) -> list[str]:
        """Merge small files (< ``min_file_rows``) into files of up to
        ``target_rows`` rows, dropping logically deleted rows.

        Returns the paths of the new files (empty if nothing to do).
        This is the lake-side compaction that *invalidates* physical
        locations recorded by Rottnest index files.
        """
        if target_rows < min_file_rows:
            raise LakeError("target_rows must be >= min_file_rows")
        snap = self.snapshot()
        small = [f for f in snap.files if f.num_rows < min_file_rows]
        if len(small) < 2:
            return []
        # Files only merge within their partition.
        by_partition: dict[str | None, list] = {}
        for f in small:
            by_partition.setdefault(self.partition_of(f.path), []).append(f)
        bins: list[tuple[str | None, list]] = []
        for partition, files in by_partition.items():
            current: list = []
            rows_in_bin = 0
            for f in files:
                if current and rows_in_bin + f.num_rows > target_rows:
                    bins.append((partition, current))
                    current = []
                    rows_in_bin = 0
                current.append(f)
                rows_in_bin += f.num_rows
            if current:
                bins.append((partition, current))
        actions: list[Action] = []
        new_paths: list[str] = []
        for partition, group in bins:
            if len(group) < 2:
                continue
            columns = self._read_group(snap, group)
            if not len(next(iter(columns.values()), [])):
                # Everything in the group was deleted; just drop files.
                actions.extend(RemoveFile(path=f.path) for f in group)
                continue
            add = self._write_data_file(columns, partition)
            new_paths.append(add.path)
            actions.append(add)
            actions.extend(RemoveFile(path=f.path) for f in group)
        if actions:
            self._commit_against(snap.version, actions)
        return new_paths

    def rewrite_sorted(self, column: str) -> list[str]:
        """Rewrite the table clustered by ``column`` (the repo's
        stand-in for Z-order), one new file per partition. All current
        files are replaced."""
        snap = self.snapshot()
        if not snap.files:
            return []
        by_partition: dict[str | None, list] = {}
        for f in snap.files:
            by_partition.setdefault(self.partition_of(f.path), []).append(f)
        actions: list[Action] = []
        new_paths: list[str] = []
        for partition, group in by_partition.items():
            columns = self._read_group(snap, group)
            order = sorted(
                range(len(columns[column])), key=lambda i: columns[column][i]
            )
            reordered = {
                name: _take(values, order) for name, values in columns.items()
            }
            add = self._write_data_file(reordered, partition)
            new_paths.append(add.path)
            actions.append(add)
            actions.extend(RemoveFile(path=f.path) for f in group)
        self._commit_against(snap.version, actions)
        return new_paths

    def vacuum(self, retain_versions: int = 1) -> list[str]:
        """Physically delete data/dv files not referenced by the last
        ``retain_versions`` snapshots. Returns deleted keys."""
        if retain_versions < 1:
            raise LakeError("must retain at least the latest snapshot")
        latest = self.log.latest_version()
        first_kept = max(0, latest - retain_versions + 1)
        keep_data: set[str] = set()
        keep_dv: set[str] = set()
        for v in range(first_kept, latest + 1):
            snap = self.snapshot(v)
            keep_data.update(snap.file_paths)
            keep_dv.update(snap.deletion_vectors.values())
        removed = []
        for info in self.store.list(f"{self.root}/{DATA_DIR}/"):
            if info.key not in keep_data:
                self.store.delete(info.key)
                removed.append(info.key)
        for info in self.store.list(f"{self.root}/{DELETES_DIR}/"):
            if info.key not in keep_dv:
                self.store.delete(info.key)
                removed.append(info.key)
        return removed

    # -- reads ------------------------------------------------------
    def deletion_vector(self, snap: Snapshot, path: str) -> DeletionVector:
        dv_key = snap.deletion_vectors.get(path)
        if dv_key is None:
            return DeletionVector()
        return DeletionVector.deserialize(self.store.get(dv_key))

    def scan(self, column: str, snapshot: Snapshot | None = None):
        """Yield ``(path, row_index, value)`` for live rows of a column."""
        snap = snapshot or self.snapshot()
        for entry in snap.files:
            dv = self.deletion_vector(snap, entry.path)
            reader = ParquetFile(self.store, entry.path)
            for row, value in reader.scan_column(column):
                if row not in dv:
                    yield entry.path, row, value

    def to_pylist(self, column: str, snapshot: Snapshot | None = None) -> list:
        """All live values of a column (small tables / tests)."""
        return [value for _, _, value in self.scan(column, snapshot)]

    # -- internals ----------------------------------------------------
    def _read_group(self, snap: Snapshot, group: list) -> dict[str, list]:
        """Concatenate the live rows of several files, column by column."""
        out: dict[str, list] = {name: [] for name in self.schema.names}
        for entry in group:
            dv = self.deletion_vector(snap, entry.path)
            reader = ParquetFile(self.store, entry.path)
            per_col = {}
            for name in self.schema.names:
                column_values = []
                for rg_index in range(len(reader.metadata.row_groups)):
                    column_values.extend(reader.read_column_chunk(rg_index, name))
                per_col[name] = column_values
            alive = [r for r in range(entry.num_rows) if r not in dv]
            for name in self.schema.names:
                out[name].extend(_take(per_col[name], alive))
        return out

    def _commit_against(self, planned_version: int, actions: list[Action]) -> int:
        """Commit actions planned against ``planned_version``.

        If another writer committed in between, fail with
        :class:`CommitConflict` so the caller can re-plan — the planned
        Remove/SetDV actions may reference files that no longer exist.
        Plain appends never conflict logically, so they use
        ``log.commit`` instead.
        """
        version = planned_version + 1
        try:
            self.log.try_commit(version, actions)
        except CommitConflict:
            raise
        self._maybe_checkpoint(version)
        return version


def _take(values, indices: list[int]):
    """Select positions from a list or numpy array, preserving type."""
    import numpy as np

    if isinstance(values, np.ndarray):
        return values[indices]
    return [values[i] for i in indices]

"""Snapshots: point-in-time views reconstructed from the log.

A snapshot is exactly what Rottnest's plan steps consume — the *manifest
list* of live Parquet files plus any attached deletion vectors (paper
§IV-B step 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LakeError
from repro.formats.schema import Schema
from repro.lake.actions import (
    Action,
    AddFile,
    RemoveFile,
    SetDeletionVector,
    SetSchema,
    SetTransaction,
)


@dataclass(frozen=True)
class FileEntry:
    path: str
    num_rows: int
    size: int


@dataclass(frozen=True)
class Snapshot:
    """Immutable view: live files, their deletion vectors, the schema."""

    version: int
    schema: Schema
    files: tuple[FileEntry, ...]
    deletion_vectors: dict[str, str]  # data path -> dv object key
    app_versions: dict[str, int] = field(default_factory=dict)
    """Per-application transaction high-water marks (``SetTransaction``
    folded with max semantics). The ingest tier reads its own entry to
    decide which WAL segments are already represented in the lake."""

    def to_json(self) -> dict:
        """Checkpoint serialization (see TransactionLog checkpoints)."""
        return {
            "version": self.version,
            "fields": [
                {"name": f.name, "type": f.type.name, "vector_dim": f.vector_dim}
                for f in self.schema.fields
            ],
            "files": [
                {"path": f.path, "num_rows": f.num_rows, "size": f.size}
                for f in self.files
            ],
            "deletion_vectors": dict(self.deletion_vectors),
            "app_versions": dict(self.app_versions),
        }

    @classmethod
    def from_json(cls, obj: dict) -> "Snapshot":
        from repro.formats.schema import ColumnType, Field

        fields = tuple(
            Field(
                name=f["name"],
                type=ColumnType[f["type"]],
                vector_dim=f["vector_dim"],
            )
            for f in obj["fields"]
        )
        return cls(
            version=obj["version"],
            schema=Schema(fields=fields),
            files=tuple(
                FileEntry(path=f["path"], num_rows=f["num_rows"], size=f["size"])
                for f in obj["files"]
            ),
            deletion_vectors=dict(obj["deletion_vectors"]),
            # Pre-ingest checkpoints have no app_versions entry.
            app_versions=dict(obj.get("app_versions", {})),
        )

    @property
    def file_paths(self) -> list[str]:
        return [f.path for f in self.files]

    @property
    def num_rows(self) -> int:
        """Physical rows (before deletion-vector filtering)."""
        return sum(f.num_rows for f in self.files)

    @property
    def total_bytes(self) -> int:
        return sum(f.size for f in self.files)

    def entry(self, path: str) -> FileEntry:
        for f in self.files:
            if f.path == path:
                return f
        raise LakeError(f"file {path!r} not in snapshot v{self.version}")

    def contains(self, path: str) -> bool:
        return any(f.path == path for f in self.files)


def replay(
    version: int,
    log_versions: list[list[Action]],
    base: Snapshot | None = None,
) -> Snapshot:
    """Fold log actions into a snapshot at ``version``.

    Without ``base``, ``log_versions`` holds the actions of versions
    ``0..version``. With ``base`` (a checkpointed snapshot), it holds
    only the tail ``base.version+1..version``.
    """
    schema: Schema | None = None
    files: dict[str, FileEntry] = {}
    dvs: dict[str, str] = {}
    app_versions: dict[str, int] = {}
    if base is not None:
        schema = base.schema
        files = {f.path: f for f in base.files}
        dvs = dict(base.deletion_vectors)
        app_versions = dict(base.app_versions)
    for actions in log_versions:
        for action in actions:
            if isinstance(action, SetSchema):
                if schema is not None:
                    raise LakeError("schema set twice in log")
                schema = action.schema
            elif isinstance(action, AddFile):
                if action.path in files:
                    raise LakeError(f"file {action.path!r} added twice")
                files[action.path] = FileEntry(
                    path=action.path, num_rows=action.num_rows, size=action.size
                )
            elif isinstance(action, RemoveFile):
                if action.path not in files:
                    raise LakeError(f"removing unknown file {action.path!r}")
                del files[action.path]
                dvs.pop(action.path, None)
            elif isinstance(action, SetTransaction):
                current = app_versions.get(action.app_id, action.version)
                app_versions[action.app_id] = max(current, action.version)
            elif isinstance(action, SetDeletionVector):
                if action.data_path not in files:
                    raise LakeError(
                        f"deletion vector for unknown file {action.data_path!r}"
                    )
                if action.dv_path:
                    dvs[action.data_path] = action.dv_path
                else:
                    dvs.pop(action.data_path, None)
            else:  # pragma: no cover - union is closed
                raise LakeError(f"unknown action {action!r}")
    if schema is None:
        raise LakeError("log has no schema (table never created?)")
    ordered = tuple(files[p] for p in sorted(files))
    return Snapshot(
        version=version,
        schema=schema,
        files=ordered,
        deletion_vectors=dict(dvs),
        app_versions=app_versions,
    )

"""Transaction-log actions for the data lake.

Mirrors Delta Lake's action model: each committed log version is a JSON
document holding a list of actions. The actions here are the subset that
matters to Rottnest's protocol — files being added and removed (by
appends, compactions, updates) and deletion vectors being attached.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import LakeError
from repro.formats.schema import ColumnType, Field, Schema


@dataclass(frozen=True)
class SetSchema:
    """First-commit action establishing the table schema."""

    schema: Schema

    def to_json(self) -> dict:
        return {
            "action": "set_schema",
            "fields": [
                {"name": f.name, "type": f.type.name, "vector_dim": f.vector_dim}
                for f in self.schema.fields
            ],
        }


@dataclass(frozen=True)
class AddFile:
    """A new Parquet data file became part of the table."""

    path: str
    num_rows: int
    size: int

    def to_json(self) -> dict:
        return {
            "action": "add_file",
            "path": self.path,
            "num_rows": self.num_rows,
            "size": self.size,
        }


@dataclass(frozen=True)
class RemoveFile:
    """A data file left the table (compaction, delete, overwrite)."""

    path: str

    def to_json(self) -> dict:
        return {"action": "remove_file", "path": self.path}


@dataclass(frozen=True)
class SetDeletionVector:
    """Attach (or replace) the deletion vector of a data file.

    ``dv_path`` may be empty to clear the vector (after a rewrite).
    """

    data_path: str
    dv_path: str

    def to_json(self) -> dict:
        return {
            "action": "set_deletion_vector",
            "data_path": self.data_path,
            "dv_path": self.dv_path,
        }


@dataclass(frozen=True)
class SetTransaction:
    """Record an application's high-water mark in the same commit as its
    data actions (Delta Lake's ``txn`` action).

    The ingest drainer commits ``[AddFile, SetTransaction]`` atomically:
    the snapshot then answers "which WAL segments are already in the
    lake?" exactly, so a crash between the lake commit and the WAL
    truncation can neither drop nor double-count rows.
    """

    app_id: str
    version: int

    def to_json(self) -> dict:
        return {
            "action": "set_transaction",
            "app_id": self.app_id,
            "version": self.version,
        }


Action = SetSchema | AddFile | RemoveFile | SetDeletionVector | SetTransaction


def actions_to_bytes(actions: list[Action]) -> bytes:
    return json.dumps([a.to_json() for a in actions], indent=None).encode("utf-8")


def actions_from_bytes(data: bytes) -> list[Action]:
    try:
        raw = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise LakeError(f"corrupt log entry: {exc}") from exc
    actions: list[Action] = []
    for obj in raw:
        kind = obj.get("action")
        if kind == "set_schema":
            fields = tuple(
                Field(
                    name=f["name"],
                    type=ColumnType[f["type"]],
                    vector_dim=f["vector_dim"],
                )
                for f in obj["fields"]
            )
            actions.append(SetSchema(schema=Schema(fields=fields)))
        elif kind == "add_file":
            actions.append(
                AddFile(path=obj["path"], num_rows=obj["num_rows"], size=obj["size"])
            )
        elif kind == "remove_file":
            actions.append(RemoveFile(path=obj["path"]))
        elif kind == "set_deletion_vector":
            actions.append(
                SetDeletionVector(data_path=obj["data_path"], dv_path=obj["dv_path"])
            )
        elif kind == "set_transaction":
            actions.append(
                SetTransaction(app_id=obj["app_id"], version=obj["version"])
            )
        else:
            raise LakeError(f"unknown log action {kind!r}")
    return actions

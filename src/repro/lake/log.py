"""Optimistic-concurrency transaction log on object storage.

Commits are conditional PUTs of ``<root>/_log/<version>.json``: the
writer that creates the next version number wins; losers get
:class:`~repro.errors.CommitConflict` and must re-read and retry. This
needs only the strong read-after-write consistency + if-none-match
primitives of modern object stores — no atomic rename (paper §IV).
"""

from __future__ import annotations

from repro.errors import CommitConflict, PreconditionFailed, SnapshotNotFound
from repro.lake.actions import Action, actions_from_bytes, actions_to_bytes
from repro.storage.object_store import ObjectStore

LOG_DIR = "_log"
CHECKPOINT_DIR = "_checkpoints"
VERSION_DIGITS = 20


def log_key(root: str, version: int) -> str:
    return f"{root}/{LOG_DIR}/{version:0{VERSION_DIGITS}d}.json"


def checkpoint_key(root: str, version: int) -> str:
    return f"{root}/{CHECKPOINT_DIR}/{version:0{VERSION_DIGITS}d}.json"


class TransactionLog:
    """Reads and commits versions of one table's log."""

    def __init__(self, store: ObjectStore, root: str) -> None:
        self.store = store
        self.root = root.rstrip("/")

    def latest_version(self) -> int:
        """Highest committed version, or -1 for an empty log."""
        entries = self.store.list(f"{self.root}/{LOG_DIR}/")
        if not entries:
            return -1
        # Keys sort lexicographically == numerically (zero padded).
        last = entries[-1].key.rsplit("/", 1)[1]
        return int(last.split(".")[0])

    def versions(self) -> tuple[int, list[int]]:
        """Latest log version plus all checkpoint versions, in one LIST.

        The hot plan path needs both the log tip and the newest usable
        checkpoint; listing ``<root>/_`` once covers ``_log/`` and
        ``_checkpoints/`` together (data files live under ``data/`` and
        deletion vectors under ``deletes/``, so the underscore prefix is
        metadata-only). LISTs are the expensive, unparallelisable part
        of a cold query's plan round (~100 ms each under the latency
        model), so one umbrella LIST instead of two-plus is the single
        biggest lever on the latency floor. Returns ``(latest,
        sorted checkpoint versions)``; ``latest`` is -1 for an empty
        log. Keys under other ``_``-prefixed dirs are ignored.
        """
        log_prefix = f"{self.root}/{LOG_DIR}/"
        checkpoint_prefix = f"{self.root}/{CHECKPOINT_DIR}/"
        latest = -1
        checkpoints: list[int] = []
        for info in self.store.list(f"{self.root}/_"):
            if info.key.startswith(log_prefix):
                name = info.key.rsplit("/", 1)[1]
                latest = max(latest, int(name.split(".")[0]))
            elif info.key.startswith(checkpoint_prefix):
                name = info.key.rsplit("/", 1)[1]
                checkpoints.append(int(name.split(".")[0]))
        return latest, checkpoints

    def read_version(self, version: int) -> list[Action]:
        try:
            data = self.store.get(log_key(self.root, version))
        except Exception as exc:  # ObjectNotFound
            raise SnapshotNotFound(
                f"version {version} of {self.root!r} does not exist"
            ) from exc
        return actions_from_bytes(data)

    def read_all(
        self, up_to: int | None = None, *, latest: int | None = None
    ) -> list[list[Action]]:
        """Actions of every version 0..up_to (inclusive).

        ``latest`` lets a caller that already listed the log (via
        :meth:`versions`) skip the bounds-check re-LIST.
        """
        if latest is None:
            latest = self.latest_version()
        if up_to is None:
            up_to = latest
        if up_to > latest or up_to < -1:
            raise SnapshotNotFound(
                f"version {up_to} of {self.root!r} does not exist (latest {latest})"
            )
        return [self.read_version(v) for v in range(up_to + 1)]

    def read_range(
        self, first: int, last: int, *, latest: int | None = None
    ) -> list[list[Action]]:
        """Actions of versions ``first..last`` (inclusive tail reads
        after a checkpoint). ``latest`` skips the bounds-check LIST for
        callers that already know the log tip."""
        if latest is None:
            latest = self.latest_version()
        if last > latest:
            raise SnapshotNotFound(
                f"version {last} of {self.root!r} does not exist (latest {latest})"
            )
        return [self.read_version(v) for v in range(first, last + 1)]

    # -- checkpoints ---------------------------------------------------
    def latest_checkpoint_version(self, up_to: int) -> int:
        """Newest checkpoint at or before ``up_to``, or -1."""
        entries = self.store.list(f"{self.root}/{CHECKPOINT_DIR}/")
        best = -1
        for info in entries:
            version = int(info.key.rsplit("/", 1)[1].split(".")[0])
            if version <= up_to:
                best = max(best, version)
        return best

    def read_checkpoint(self, version: int):
        import json

        from repro.lake.snapshot import Snapshot

        data = self.store.get(checkpoint_key(self.root, version))
        return Snapshot.from_json(json.loads(data.decode("utf-8")))

    def write_checkpoint(self, snapshot) -> bool:
        """Persist a snapshot as a checkpoint (idempotent; a racing
        writer's identical checkpoint wins harmlessly)."""
        import json

        try:
            self.store.put(
                checkpoint_key(self.root, snapshot.version),
                json.dumps(snapshot.to_json()).encode("utf-8"),
                if_none_match=True,
            )
            return True
        except PreconditionFailed:
            return False

    def try_commit(self, version: int, actions: list[Action]) -> None:
        """Commit ``actions`` as exactly ``version`` or raise
        :class:`CommitConflict` if that version was taken."""
        try:
            self.store.put(
                log_key(self.root, version),
                actions_to_bytes(actions),
                if_none_match=True,
            )
        except PreconditionFailed as exc:
            raise CommitConflict(
                f"version {version} of {self.root!r} already committed"
            ) from exc

    def commit(self, actions: list[Action], max_retries: int = 20) -> int:
        """Commit at the next free version, retrying past conflicts.

        Suitable for *blind* appends whose actions do not depend on the
        table state (e.g. AddFile of a brand-new file). State-dependent
        commits must re-plan on conflict and call :meth:`try_commit`.
        """
        for _ in range(max_retries):
            version = self.latest_version() + 1
            try:
                self.try_commit(version, actions)
                return version
            except CommitConflict:
                continue
        raise CommitConflict(
            f"gave up after {max_retries} commit attempts on {self.root!r}"
        )

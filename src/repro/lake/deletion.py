"""Deletion vectors: per-file bitmaps of logically deleted rows.

Data lakes implement row-level deletes without rewriting Parquet files
by writing a sidecar "deletion vector" recording which row indices are
gone (paper §IV-A, the ``dv.bin`` file of Figs. 3-4). Readers — and
Rottnest's in-situ probing — must filter results through them.

Serialized as a sorted delta-varint list, which is compact for both the
sparse and clustered deletion patterns the tests exercise.
"""

from __future__ import annotations

from repro.util.binio import BinaryReader, BinaryWriter

MAGIC = b"RDV1"


class DeletionVector:
    """An immutable set of deleted row indices within one data file."""

    def __init__(self, rows=()) -> None:
        self._rows = frozenset(int(r) for r in rows)
        if any(r < 0 for r in self._rows):
            raise ValueError("deletion vector rows must be non-negative")

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row: int) -> bool:
        return row in self._rows

    def __eq__(self, other) -> bool:
        return isinstance(other, DeletionVector) and self._rows == other._rows

    def __hash__(self) -> int:
        return hash(self._rows)

    @property
    def rows(self) -> frozenset[int]:
        return self._rows

    def union(self, other: "DeletionVector") -> "DeletionVector":
        return DeletionVector(self._rows | other._rows)

    def filter_alive(self, row_indices) -> list[int]:
        """Drop deleted rows from an iterable of row indices."""
        return [r for r in row_indices if r not in self._rows]

    def serialize(self) -> bytes:
        writer = BinaryWriter()
        writer.write_bytes(MAGIC)
        ordered = sorted(self._rows)
        writer.write_uvarint(len(ordered))
        prev = 0
        for row in ordered:
            writer.write_uvarint(row - prev)
            prev = row
        return writer.getvalue()

    @classmethod
    def deserialize(cls, data: bytes) -> "DeletionVector":
        reader = BinaryReader(data)
        magic = reader.read_bytes(4)
        if magic != MAGIC:
            from repro.errors import FormatError

            raise FormatError(f"not a deletion vector (magic {magic!r})")
        count = reader.read_uvarint()
        rows = []
        cursor = 0
        for _ in range(count):
            cursor += reader.read_uvarint()
            rows.append(cursor)
        return cls(rows)

"""Rottnest metadata table (transactional index-record store)."""

from repro.meta.metadata_table import IndexRecord, MetadataTable

__all__ = ["IndexRecord", "MetadataTable"]

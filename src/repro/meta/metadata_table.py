"""Rottnest metadata table.

Tracks which index files exist and which Parquet files each one covers
(paper Fig. 3). The paper implements it as a Delta Lake table; the only
property the protocol needs is *transactional* inserts and deletes, so
here it is a compact record log committed with conditional PUTs — the
same primitive the lake's transaction log uses. Any transactional store
(Postgres, DynamoDB, a Delta table) could be slotted in.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import CommitConflict, LakeError, PreconditionFailed
from repro.storage.object_store import ObjectStore

META_LOG_DIR = "_meta"
CHECKPOINT_DIR = "_meta_checkpoints"
VERSION_DIGITS = 20
#: A checkpoint is written after every this many commits, like Delta
#: Lake's log checkpoints: readers then replay only the tail.
DEFAULT_CHECKPOINT_INTERVAL = 10


@dataclass(frozen=True)
class IndexRecord:
    """One committed index file."""

    index_key: str  # object key of the index file
    index_type: str  # registered type name ("uuid_trie", "fm", "ivf_pq")
    column: str
    covered_files: tuple[str, ...]  # Parquet paths this file indexes
    num_rows: int
    size: int  # index file size in bytes (compaction planning input)
    created_at: float  # store-clock seconds at commit time

    def to_json(self) -> dict:
        return {
            "index_key": self.index_key,
            "index_type": self.index_type,
            "column": self.column,
            "covered_files": list(self.covered_files),
            "num_rows": self.num_rows,
            "size": self.size,
            "created_at": self.created_at,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "IndexRecord":
        return cls(
            index_key=obj["index_key"],
            index_type=obj["index_type"],
            column=obj["column"],
            covered_files=tuple(obj["covered_files"]),
            num_rows=obj["num_rows"],
            size=obj["size"],
            created_at=obj["created_at"],
        )


class MetadataTable:
    """Transactional insert/delete log of :class:`IndexRecord` rows.

    Committers write a full-state *checkpoint* after every
    ``checkpoint_interval`` commits; ``records()`` then reads one
    checkpoint plus the log tail instead of replaying from version 0 —
    the same trick Delta Lake uses to keep log reads O(tail).
    """

    def __init__(
        self,
        store: ObjectStore,
        index_dir: str,
        *,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    ) -> None:
        self.store = store
        self.index_dir = index_dir.rstrip("/")
        self._prefix = f"{self.index_dir}/{META_LOG_DIR}/"
        self._checkpoint_prefix = f"{self.index_dir}/{CHECKPOINT_DIR}/"
        self.checkpoint_interval = max(1, checkpoint_interval)

    def _key(self, version: int) -> str:
        return f"{self._prefix}{version:0{VERSION_DIGITS}d}.json"

    def _checkpoint_key(self, version: int) -> str:
        return f"{self._checkpoint_prefix}{version:0{VERSION_DIGITS}d}.json"

    def latest_version(self) -> int:
        entries = self.store.list(self._prefix)
        if not entries:
            return -1
        return int(entries[-1].key.rsplit("/", 1)[1].split(".")[0])

    def latest_checkpoint_version(self) -> int:
        """Version of the newest checkpoint, or -1 if none exists."""
        entries = self.store.list(self._checkpoint_prefix)
        if not entries:
            return -1
        return int(entries[-1].key.rsplit("/", 1)[1].split(".")[0])

    def versions(self) -> tuple[int, int]:
        """``(latest log version, latest checkpoint version)`` with one
        LIST.

        ``_meta/`` and ``_meta_checkpoints/`` share the umbrella prefix
        ``<index_dir>/_meta`` (index files live under other names), so
        the read path pays one ~100 ms unparallelisable LIST instead of
        two. Either value is -1 when that log is empty.
        """
        latest = checkpoint = -1
        for info in self.store.list(f"{self.index_dir}/{META_LOG_DIR}"):
            if info.key.startswith(self._prefix):
                name = info.key.rsplit("/", 1)[1]
                latest = max(latest, int(name.split(".")[0]))
            elif info.key.startswith(self._checkpoint_prefix):
                name = info.key.rsplit("/", 1)[1]
                checkpoint = max(checkpoint, int(name.split(".")[0]))
        return latest, checkpoint

    def _read_entry(self, version: int) -> dict:
        data = self.store.get(self._key(version))
        try:
            return json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise LakeError(f"corrupt metadata log v{version}: {exc}") from exc

    def _read_checkpoint(self, version: int) -> dict[str, IndexRecord]:
        data = self.store.get(self._checkpoint_key(version))
        try:
            objs = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise LakeError(
                f"corrupt metadata checkpoint v{version}: {exc}"
            ) from exc
        live: dict[str, IndexRecord] = {}
        for obj in objs:
            record = IndexRecord.from_json(obj)
            live[record.index_key] = record
        return live

    def records(self) -> list[IndexRecord]:
        """Current live records (inserts minus deletes), oldest first."""
        latest, start = self.versions()
        live: dict[str, IndexRecord] = (
            self._read_checkpoint(start) if start >= 0 else {}
        )
        for version in range(start + 1, latest + 1):
            entry = self._read_entry(version)
            for obj in entry.get("insert", []):
                record = IndexRecord.from_json(obj)
                if record.index_key in live:
                    raise LakeError(
                        f"index {record.index_key!r} inserted twice"
                    )
                live[record.index_key] = record
            for key in entry.get("delete", []):
                if key not in live:
                    raise LakeError(f"deleting unknown index {key!r}")
                del live[key]
        return list(live.values())

    def _maybe_checkpoint(self, version: int) -> None:
        """Write a checkpoint of the state *through* ``version``.

        Best-effort: a racing checkpoint at the same version loses the
        conditional PUT harmlessly (both would hold identical content).
        """
        if (version + 1) % self.checkpoint_interval != 0:
            return
        # State strictly as of `version`: replay the log from scratch so
        # a concurrent writer's newer commits cannot leak into this
        # checkpoint (readers replay the tail from version+1).
        live: dict[str, IndexRecord] = {}
        for v in range(version + 1):
            entry = self._read_entry(v)
            for obj in entry.get("insert", []):
                record = IndexRecord.from_json(obj)
                live[record.index_key] = record
            for key in entry.get("delete", []):
                live.pop(key, None)
        state = json.dumps([r.to_json() for r in live.values()]).encode()
        try:
            self.store.put(self._checkpoint_key(version), state,
                           if_none_match=True)
        except PreconditionFailed:
            pass

    def indexed_files(self, column: str, index_type: str | None = None) -> set[str]:
        """Parquet paths covered by live indices on ``column``.

        With ``index_type``, only that type counts: a column can carry
        several index types (say, a trie and a bloom filter), each with
        its own coverage.
        """
        covered: set[str] = set()
        for record in self.records():
            if record.column != column:
                continue
            if index_type is not None and record.index_type != index_type:
                continue
            covered.update(record.covered_files)
        return covered

    def _commit(self, entry: dict, max_retries: int = 20) -> int:
        for _ in range(max_retries):
            version = self.latest_version() + 1
            try:
                self.store.put(
                    self._key(version),
                    json.dumps(entry).encode("utf-8"),
                    if_none_match=True,
                )
                self._maybe_checkpoint(version)
                return version
            except PreconditionFailed:
                continue
        raise CommitConflict("gave up committing to metadata table")

    def insert(self, records: list[IndexRecord]) -> int:
        """Transactionally insert records; returns the commit version."""
        if not records:
            raise LakeError("nothing to insert")
        return self._commit({"insert": [r.to_json() for r in records]})

    def delete(self, index_keys: list[str]) -> int:
        """Transactionally delete records by index file key."""
        if not index_keys:
            raise LakeError("nothing to delete")
        live = {r.index_key for r in self.records()}
        missing = [k for k in index_keys if k not in live]
        if missing:
            raise LakeError(f"cannot delete unknown indices: {missing}")
        return self._commit({"delete": list(index_keys)})

    def replace(self, insert: list[IndexRecord], delete: list[str]) -> int:
        """Atomic insert+delete in one commit (used by compaction when a
        caller wants old records gone immediately rather than at vacuum
        time)."""
        entry: dict = {}
        if insert:
            entry["insert"] = [r.to_json() for r in insert]
        if delete:
            entry["delete"] = list(delete)
        if not entry:
            raise LakeError("empty replace")
        return self._commit(entry)

"""Tail-sampling flight recorder: durably retain the traces that matter.

Everything else in ``repro.obs`` aggregates — sketches, burn rates,
cost ledgers. After a p99 breach the operator's question is the
opposite of an aggregate: *"show me the trace of a query that was
slow."* The flight recorder answers it with tail sampling: every
finished query's span tree flows past, but only the interesting ones
are retained —

* **errored/degraded queries** (the serve layer fell back to
  brute-force, or the router marked a shard failed),
* **SLO-window breaches** (the burn-rate evaluator says the error
  budget is burning when the query lands), and
* **tail latencies** — queries at or above a live
  :class:`~repro.obs.timeseries.QuantileSketch` quantile threshold
  (p99 by default), measured over everything the recorder has seen.

Retention is bounded twice over: at most ``capacity`` traces and at
most ``budget_bytes`` of serialized trace bytes are resident, oldest
evicted first (a hypothesis property pins that no arrival/latency
sequence can exceed either budget). Each retained
:class:`FlightTrace` is self-contained: the serialized span rows, the
pre-computed critical path, and the pre-computed cost bill — computed
at retention time, because the live ``RequestTrace`` objects bills are
derived from do not survive serialization.

Durability goes through the same :class:`~repro.storage.object_store.
ObjectStore` machinery as every other artifact in this repo: traces
are content-addressed (``{root}/_flights/{trace_id}.json`` where the
id is a truncated SHA-256 of the canonical payload), writes are
idempotent (an existing key is never re-put, so a crashed
:meth:`FlightRecorder.persist` re-run converges and then idles), and
the PUT boundary is a registered crash point (``obs:put-flight``)
exercised by the chaos matrix in ``tests/test_obs_chaos.py``.

Hedged retries (``repro.shard.router``) tag their spans with
``hedge=True``; the recorder skips any query whose span tree sits
under a hedge span, so a hedge winner and its loser are never
double-counted as two independent slow queries — the retry is
attributed to its originating trace instead.
"""

from __future__ import annotations

import hashlib
import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs.attribution import QueryBill
from repro.obs.critical_path import critical_path
from repro.obs.export import span_to_dict, span_tree_from_dicts
from repro.obs.timeseries import QuantileSketch, TelemetryHub
from repro.obs.trace import Span

if TYPE_CHECKING:  # circular-import-free type hints only
    from repro.obs.slo import SLO
    from repro.storage.object_store import ObjectStore

#: Key directory for retained flight traces (under the obs root).
FLIGHT_DIR = "_flights"

#: Version tag inside every persisted flight trace.
FLIGHT_SCHEMA = "repro.obs.flight/v1"

#: Default resident ring budgets.
DEFAULT_FLIGHT_CAPACITY = 64
DEFAULT_FLIGHT_BUDGET_BYTES = 1 << 20

#: Default live tail-retention quantile and its warmup.
DEFAULT_TAIL_QUANTILE = 0.99
DEFAULT_MIN_SAMPLES = 20


def flight_key(root: str, trace_id: str) -> str:
    """Object-store key of one retained trace."""
    return f"{root}/{FLIGHT_DIR}/{trace_id}.json"


def _bill_to_dict(bill: QueryBill) -> dict:
    """A :class:`QueryBill` as JSON-safe scalars (bills don't round-trip
    through spans, so the flight stores the computed numbers)."""
    return {
        "query": bill.query,
        "instance_type": bill.instance_type,
        "instance_hourly_usd": bill.instance_hourly_usd,
        "est_latency_s": bill.est_latency_s,
        "requests": bill.requests,
        "bytes_read": bill.bytes_read,
        "bytes_written": bill.bytes_written,
        "request_cost_usd": bill.total_request_cost_usd(),
        "compute_cost_usd": bill.compute_cost_usd,
        "phases": [
            {
                "phase": p.phase,
                "spans": p.spans,
                "requests": p.requests,
                "gets": p.gets,
                "puts": p.puts,
                "lists": p.lists,
                "bytes_read": p.bytes_read,
                "bytes_written": p.bytes_written,
                "est_latency_s": p.est_latency_s,
                "request_cost_usd": p.request_cost_usd,
                "compute_cost_usd": p.compute_cost_usd,
            }
            for p in bill.phases
        ],
    }


@dataclass
class FlightTrace:
    """One retained ("black-boxed") query trace, fully self-contained."""

    trace_id: str
    reason: str  # "error" | "slo-breach" | "tail"
    latency_s: float
    at_s: float
    query: str
    slow_phase: str
    spans: list[dict] = field(default_factory=list)
    critical_path: list[dict] = field(default_factory=list)
    bill: dict | None = None
    nbytes: int = 0

    def root(self) -> Span:
        """The span tree, rebuilt for rendering/critical-path walks."""
        return span_tree_from_dicts(self.spans)

    def to_dict(self) -> dict:
        return {
            "schema": FLIGHT_SCHEMA,
            "trace_id": self.trace_id,
            "reason": self.reason,
            "latency_s": self.latency_s,
            "at_s": self.at_s,
            "query": self.query,
            "slow_phase": self.slow_phase,
            "spans": self.spans,
            "critical_path": self.critical_path,
            "bill": self.bill,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FlightTrace":
        if data.get("schema") != FLIGHT_SCHEMA:
            raise ValueError(
                f"bad schema tag {data.get('schema')!r}; want {FLIGHT_SCHEMA!r}"
            )
        trace = cls(
            trace_id=str(data["trace_id"]),
            reason=str(data["reason"]),
            latency_s=float(data["latency_s"]),
            at_s=float(data["at_s"]),
            query=str(data.get("query", "")),
            slow_phase=str(data.get("slow_phase", "")),
            spans=list(data.get("spans", [])),
            critical_path=list(data.get("critical_path", [])),
            bill=data.get("bill"),
        )
        trace.nbytes = len(trace.serialize())
        return trace

    def serialize(self) -> bytes:
        """Canonical JSON bytes — what :meth:`FlightRecorder.persist`
        puts and what the content hash covers."""
        return (
            json.dumps(self.to_dict(), sort_keys=True) + "\n"
        ).encode("utf-8")

    def describe(self) -> str:
        """One summary line for ``repro top``."""
        cost = ""
        if self.bill is not None:
            total = float(self.bill["request_cost_usd"]) + float(
                self.bill["compute_cost_usd"]
            )
            cost = f"  ${total:.3e}"
        return (
            f"{self.trace_id}  {self.latency_s * 1000:9.2f} ms  "
            f"{self.reason:<10}  {self.slow_phase or '-':<12} "
            f"{self.query}{cost}"
        )


class FlightRecorder:
    """Bounded tail-sampling ring of retained query traces.

    Hook it in with :func:`use_flight_recorder`; the serve layer feeds
    every leader query's finished root span through :meth:`record`.
    Thread-safe (the serve path is concurrent).
    """

    def __init__(
        self,
        store: "ObjectStore | None" = None,
        *,
        root: str = "obs",
        capacity: int = DEFAULT_FLIGHT_CAPACITY,
        budget_bytes: int = DEFAULT_FLIGHT_BUDGET_BYTES,
        tail_quantile: float = DEFAULT_TAIL_QUANTILE,
        min_samples: int = DEFAULT_MIN_SAMPLES,
        slo: "SLO | None" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if budget_bytes < 1:
            raise ValueError(f"budget_bytes must be >= 1, got {budget_bytes}")
        if not 0.0 < tail_quantile <= 1.0:
            raise ValueError(
                f"tail_quantile must be in (0, 1], got {tail_quantile}"
            )
        self.store = store
        self.root = root
        self.capacity = int(capacity)
        self.budget_bytes = int(budget_bytes)
        self.tail_quantile = float(tail_quantile)
        self.min_samples = int(min_samples)
        self.slo = slo
        self._sketch = QuantileSketch()
        self._retained: list[FlightTrace] = []
        self._resident_bytes = 0
        self._persisted: set[str] = set()
        self._lock = threading.Lock()
        # Counters for `repro top` and tests.
        self.observed = 0
        self.retained_total = 0
        self.evicted = 0
        self.oversized_dropped = 0
        self.hedges_skipped = 0

    # -- live threshold ------------------------------------------------
    def threshold_s(self) -> float | None:
        """The live tail-retention latency threshold (None in warmup)."""
        if self._sketch.count < self.min_samples:
            return None
        return self._sketch.quantile(self.tail_quantile)

    @staticmethod
    def _under_hedge(span: Span) -> bool:
        """Whether ``span`` sits under a hedged-retry ancestor."""
        node: Span | None = span
        while node is not None:
            if bool(node.attributes.get("hedge", False)):
                return True
            node = node.parent
        return False

    # -- ingest --------------------------------------------------------
    def record(
        self,
        root_span: Span | None,
        *,
        latency_s: float,
        at_s: float,
        error: bool = False,
        bill: QueryBill | None = None,
        hub: TelemetryHub | None = None,
    ) -> FlightTrace | None:
        """Consider one finished query for retention.

        Returns the retained :class:`FlightTrace` (its ``trace_id`` is
        the exemplar the caller should attach to sketches/histograms)
        or ``None`` when the query is not interesting enough to keep.
        """
        if root_span is None or latency_s < 0:
            return None
        if self._under_hedge(root_span):
            # A hedged retry of a query already being recorded: do not
            # double-count winner and loser as two slow queries.
            with self._lock:
                self.hedges_skipped += 1
            return None
        # Classify against the sketch *before* absorbing this sample,
        # so the threshold reflects the population prior to arrival.
        threshold = self.threshold_s()
        reason: str | None = None
        if error:
            reason = "error"
        elif self.slo is not None and hub is not None:
            if not self.slo.evaluate(hub).ok:
                reason = "slo-breach"
        if (
            reason is None
            and threshold is not None
            and latency_s >= threshold
        ):
            reason = "tail"
        self._sketch.observe(max(latency_s, 0.0))
        with self._lock:
            self.observed += 1
        if reason is None:
            return None
        flight = self._build(root_span, latency_s, at_s, reason, bill)
        with self._lock:
            if flight.nbytes > self.budget_bytes:
                # One trace alone would blow the byte budget: drop it
                # rather than violate the bound the property test pins.
                self.oversized_dropped += 1
                return None
            self._retained.append(flight)
            self._resident_bytes += flight.nbytes
            while (
                len(self._retained) > self.capacity
                or self._resident_bytes > self.budget_bytes
            ):
                evicted = self._retained.pop(0)
                self._resident_bytes -= evicted.nbytes
                self.evicted += 1
            self.retained_total += 1
        root_span.set("trace_id", flight.trace_id)
        return flight

    def _build(
        self,
        root_span: Span,
        latency_s: float,
        at_s: float,
        reason: str,
        bill: QueryBill | None,
    ) -> FlightTrace:
        spans = [span_to_dict(s) for s in root_span.walk()]
        steps = [
            {
                "name": s.name,
                "phase": s.phase,
                "duration_s": s.duration_s,
                "self_s": s.self_s,
                "requests": s.requests,
            }
            for s in critical_path(root_span)
        ]
        bill_dict = _bill_to_dict(bill) if bill is not None else None
        slow_phase = ""
        if bill_dict is not None and bill_dict["phases"]:
            slow_phase = max(
                bill_dict["phases"], key=lambda p: p["est_latency_s"]
            )["phase"]
        elif steps:
            tagged = [s for s in steps if s["phase"]]
            if tagged:
                slow_phase = max(tagged, key=lambda s: s["self_s"])["phase"]
        flight = FlightTrace(
            trace_id="",
            reason=reason,
            latency_s=float(latency_s),
            at_s=float(at_s),
            query=str(root_span.attributes.get("query", root_span.name)),
            slow_phase=str(slow_phase),
            spans=spans,
            critical_path=steps,
            bill=bill_dict,
        )
        # Content-address the trace: the id is derived from the payload
        # with the id field blank, so identical traces share a key and
        # persistence is naturally idempotent.
        flight.trace_id = hashlib.sha256(flight.serialize()).hexdigest()[:16]
        flight.nbytes = len(flight.serialize())
        return flight

    # -- read ----------------------------------------------------------
    def traces(self) -> list[FlightTrace]:
        """Retained traces, oldest first."""
        with self._lock:
            return list(self._retained)

    def get(self, trace_id: str) -> FlightTrace | None:
        """Retained trace by id (unique prefixes accepted)."""
        with self._lock:
            matches = [
                t for t in self._retained if t.trace_id.startswith(trace_id)
            ]
        return matches[0] if len(matches) == 1 else None

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return self._resident_bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._retained)

    # -- durability ----------------------------------------------------
    def persist(self, store: "ObjectStore | None" = None) -> int:
        """Durably PUT every retained trace not yet written.

        Content-addressed and existence-checked, so re-running after a
        crash converges byte-identically and a clean re-run makes zero
        mutations (the chaos-matrix idempotence contract). Returns the
        number of traces written. The PUT is the registered
        ``obs:put-flight`` crash point.
        """
        target = store if store is not None else self.store
        if target is None:
            raise ValueError("flight recorder has no object store to persist to")
        written = 0
        for flight in self.traces():
            key = flight_key(self.root, flight.trace_id)
            if flight.trace_id in self._persisted or target.exists(key):
                self._persisted.add(flight.trace_id)
                continue
            target.put(key, flight.serialize())
            self._persisted.add(flight.trace_id)
            written += 1
        return written


# ---------------------------------------------------------------------
# durable reads
# ---------------------------------------------------------------------
def list_flights(store: "ObjectStore", root: str = "obs") -> list[str]:
    """Trace ids of every durably retained flight, sorted."""
    prefix = f"{root}/{FLIGHT_DIR}/"
    ids = []
    for info in store.list(prefix):
        name = info.key[len(prefix):]
        if name.endswith(".json"):
            ids.append(name[: -len(".json")])
    return sorted(ids)


def load_flight(
    store: "ObjectStore", trace_id: str, root: str = "obs"
) -> FlightTrace:
    """One durably retained flight by id (unique prefixes accepted)."""
    from repro.errors import ReproError

    matches = [t for t in list_flights(store, root) if t.startswith(trace_id)]
    if not matches:
        raise ReproError(f"no retained flight trace matches {trace_id!r}")
    if len(matches) > 1:
        raise ReproError(
            f"ambiguous flight trace id {trace_id!r}: matches {matches}"
        )
    data = store.get(flight_key(root, matches[0]))
    return FlightTrace.from_dict(json.loads(data.decode("utf-8")))


def load_flights(store: "ObjectStore", root: str = "obs") -> list[FlightTrace]:
    """Every durably retained flight, slowest first."""
    flights = [
        load_flight(store, trace_id, root)
        for trace_id in list_flights(store, root)
    ]
    flights.sort(key=lambda f: (-f.latency_s, f.trace_id))
    return flights


# ---------------------------------------------------------------------
# process-wide default recorder (None = flight recording off)
# ---------------------------------------------------------------------
_global_recorder: FlightRecorder | None = None
_global_lock = threading.Lock()


def get_flight_recorder() -> FlightRecorder | None:
    """The process-wide flight recorder, or ``None`` when disabled."""
    return _global_recorder


def set_flight_recorder(
    recorder: FlightRecorder | None,
) -> FlightRecorder | None:
    """Replace the default recorder; returns the previous one."""
    global _global_recorder
    with _global_lock:
        previous, _global_recorder = _global_recorder, recorder
    return previous


@contextmanager
def use_flight_recorder(recorder: FlightRecorder | None):
    """Scope: make ``recorder`` the default for the duration."""
    previous = set_flight_recorder(recorder)
    try:
        yield recorder
    finally:
        set_flight_recorder(previous)

"""Self-contained HTML dashboard for a running (or replayed) deployment.

One :class:`~repro.obs.timeseries.TelemetryHub` in, one dependency-free
HTML file out — inline CSS and SVG only, no scripts, no external
assets — so the report can be written from a benchmark run or a live
server and opened anywhere. Sections:

* headline stat tiles (queries, windowed p50/p99, availability,
  measured cost per query);
* windowed latency percentiles and query-rate timelines;
* the tail-attribution table from :func:`~repro.obs.critical_path
  .tail_attribution` — which phase owns p99 vs p50;
* when the hub holds ``router.*`` series, a scatter-gather router panel
  (routed queries, hedge counts, per-shard latency/failure table);
* SLO status (each objective with its two-horizon burn rates);
* when a flight-recorder ring is passed in, a **retained traces** panel
  whose rows anchor the p99 stat tile's exemplar link — the dashboard's
  p99 is one click away from the span tree that produced it;
* when a crack heat map is passed in, the top-N hottest files/cells
  with their decay age;
* when prior snapshot payloads are passed in (``history``), a
  cross-run trend panel — p99 and cost-per-query per snapshot — giving
  the TCO story a time-travel axis;
* the centerpiece: the deployment's **measured position and
  trajectory on the TCO phase diagram**. The cost ledger's observed
  serve/maintain/index dollars are folded into an
  :class:`~repro.tco.model.ApproachCost` (measured cost-per-query,
  measured monthly burn, measured index spend) and plotted over the
  winner regions of :func:`~repro.tco.phase.compute_phase_diagram`
  against the brute-force and copy-data frontiers priced at the
  deployment's own data size — paper §VI's diagram, with this
  deployment as a point moving across it.

Colors follow the repo's validated dashboard palette: three
all-pairs-safe categorical slots (blue/orange/aqua) for series and
phase-diagram regions, reserved status colors paired with icon + label
for SLO verdicts, and dark-mode values selected per-surface rather than
auto-inverted.
"""

from __future__ import annotations

import html
import math
import re
from dataclasses import dataclass

from repro.obs.critical_path import TailReport, tail_attribution
from repro.obs.slo import SLO, SLOReport, default_slo
from repro.obs.timeseries import TelemetryHub
from repro.storage.costs import CostModel
from repro.tco.model import ApproachCost
from repro.tco.phase import PhaseDiagram, compute_phase_diagram
from repro.tco.throughput import SECONDS_PER_MONTH

#: Phase-diagram grid resolution (cells per axis) for the SVG map.
MAP_RESOLUTION = 48


# ---------------------------------------------------------------------
# measured TCO position
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class MeasuredDeployment:
    """The cost ledger folded into phase-diagram coordinates."""

    approach: ApproachCost  # measured coefficients, name="measured"
    months: float  # observed operating duration
    queries: float  # observed total queries
    trajectory: tuple[tuple[float, float], ...]  # (months, queries) path

    @property
    def tco_usd(self) -> float:
        return self.approach.tco(self.months, self.queries)


def measured_deployment(
    hub: TelemetryHub, *, costs: CostModel | None = None
) -> MeasuredDeployment | None:
    """Fold the hub's cost ledger into a measured :class:`ApproachCost`.

    ``cost_per_query`` is observed serve dollars over observed queries;
    ``cost_per_month`` is S3 storage of the recorded data+index bytes
    plus observed maintenance dollars amortized over the observed
    duration; ``index_cost`` is the ledger's one-time index-build
    bucket. Returns ``None`` until at least one query has been billed.
    """
    ledger = hub.ledger
    if ledger.serve_queries == 0:
        return None
    costs = costs or CostModel()
    elapsed_s = max(ledger.elapsed_s, hub.window_s)
    months = elapsed_s / SECONDS_PER_MONTH
    storage_monthly = (
        costs.storage_monthly(ledger.data_bytes + ledger.index_bytes)
        if ledger.data_bytes
        else 0.0
    )
    maintain_monthly = ledger.maintain_usd / months if months > 0 else 0.0
    approach = ApproachCost(
        name="measured",
        cost_per_month=storage_monthly + maintain_monthly,
        cost_per_query=ledger.cost_per_query_usd,
        index_cost=ledger.index_build_usd,
    )

    trajectory: list[tuple[float, float]] = []
    points = hub.series("serve.queries").points()
    if points and ledger.first_at_s is not None:
        cumulative = 0
        for point in points:
            cumulative += point.count
            window_end_s = (point.index + 1) * hub.window_s
            m = max(window_end_s - ledger.first_at_s, hub.window_s)
            trajectory.append((m / SECONDS_PER_MONTH, float(cumulative)))
    return MeasuredDeployment(
        approach=approach,
        months=months,
        queries=float(ledger.serve_queries),
        trajectory=tuple(trajectory),
    )


def comparison_approaches(
    hub: TelemetryHub, *, costs: CostModel | None = None
) -> list[ApproachCost]:
    """Copy-data and brute-force frontiers priced at the deployment's
    own observed data size (§VI coefficients, this lake's bytes)."""
    from repro.engines.bruteforce import BruteForceModel
    from repro.engines.dedicated import OPENSEARCH_MODEL

    costs = costs or CostModel()
    data_bytes = max(hub.ledger.data_bytes, 1)
    brute_model = BruteForceModel()
    workers = 8
    copy = ApproachCost(
        name="copy-data",
        cost_per_month=OPENSEARCH_MODEL.monthly_cost(data_bytes, costs),
        min_latency_s=OPENSEARCH_MODEL.query_latency_s,
    )
    brute = ApproachCost(
        name="brute-force",
        cost_per_month=costs.storage_monthly(data_bytes),
        cost_per_query=brute_model.cost_per_query(data_bytes, workers, costs),
        min_latency_s=brute_model.latency(data_bytes, workers),
    )
    return [copy, brute]


def measured_phase_diagram(
    measured: MeasuredDeployment,
    rivals: list[ApproachCost],
    *,
    resolution: int = MAP_RESOLUTION,
) -> PhaseDiagram:
    """Winner grid over ranges that include the measured position."""
    months_lo = min(0.03, max(measured.months / 3.0, 1e-9))
    months_hi = 120.0
    queries_lo = 1.0
    queries_hi = max(1e9, measured.queries * 10.0)
    return compute_phase_diagram(
        [*rivals, measured.approach],
        months_range=(months_lo, months_hi),
        queries_range=(queries_lo, queries_hi),
        resolution=resolution,
    )


# ---------------------------------------------------------------------
# SVG helpers (stdlib string assembly only)
# ---------------------------------------------------------------------
def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


def _scale(v: float, lo: float, hi: float, out_lo: float, out_hi: float) -> float:
    if hi <= lo:
        return out_lo
    return out_lo + (v - lo) / (hi - lo) * (out_hi - out_lo)


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000:.1f} ms"


def _log_ticks(lo: float, hi: float) -> list[float]:
    start = math.ceil(math.log10(lo))
    stop = math.floor(math.log10(hi))
    return [10.0**e for e in range(start, stop + 1)]


def _pow_label(value: float) -> str:
    exponent = round(math.log10(value))
    if -3 <= exponent <= 3:
        return f"{value:g}"
    return f"1e{exponent}"


def _line_chart(
    series: list[tuple[str, str, list[tuple[float, float]]]],
    *,
    y_label: str,
    x_label: str,
    width: int = 640,
    height: int = 220,
) -> str:
    """Multi-series line chart; points carry ``<title>`` tooltips."""
    pad_l, pad_r, pad_t, pad_b = 58, 14, 12, 34
    xs = [x for _, _, pts in series for x, _ in pts]
    ys = [y for _, _, pts in series for _, y in pts]
    if not xs:
        return "<p class='muted'>no data yet</p>"
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = 0.0, max(ys) * 1.15 or 1.0
    plot_r, plot_b = width - pad_r, height - pad_b

    parts = [
        f"<svg viewBox='0 0 {width} {height}' role='img' "
        f"aria-label='{_esc(y_label)} over {_esc(x_label)}'>"
    ]
    for i in range(5):
        gy = _scale(i / 4, 0, 1, plot_b, pad_t)
        value = _scale(i / 4, 0, 1, y_lo, y_hi)
        parts.append(
            f"<line x1='{pad_l}' y1='{gy:.1f}' x2='{plot_r}' y2='{gy:.1f}' "
            f"class='grid'/>"
            f"<text x='{pad_l - 6}' y='{gy + 4:.1f}' class='tick' "
            f"text-anchor='end'>{value:.0f}</text>"
        )
    parts.append(
        f"<line x1='{pad_l}' y1='{plot_b}' x2='{plot_r}' y2='{plot_b}' "
        f"class='axis'/>"
        f"<text x='{(pad_l + plot_r) / 2:.0f}' y='{height - 8}' "
        f"class='tick' text-anchor='middle'>{_esc(x_label)}</text>"
        f"<text x='14' y='{(pad_t + plot_b) / 2:.0f}' class='tick' "
        f"text-anchor='middle' "
        f"transform='rotate(-90 14 {(pad_t + plot_b) / 2:.0f})'>"
        f"{_esc(y_label)}</text>"
    )
    for label, color_var, pts in series:
        if not pts:
            continue
        coords = [
            (
                _scale(x, x_lo, x_hi, pad_l, plot_r) if x_hi > x_lo
                else (pad_l + plot_r) / 2,
                _scale(y, y_lo, y_hi, plot_b, pad_t),
            )
            for x, y in pts
        ]
        path = " ".join(f"{px:.1f},{py:.1f}" for px, py in coords)
        parts.append(
            f"<polyline points='{path}' fill='none' "
            f"stroke='var({color_var})' stroke-width='2' "
            f"stroke-linejoin='round'/>"
        )
        for (px, py), (x, y) in zip(coords, pts):
            parts.append(
                f"<circle cx='{px:.1f}' cy='{py:.1f}' r='4' "
                f"fill='var({color_var})' stroke='var(--surface-1)' "
                f"stroke-width='2'>"
                f"<title>{_esc(label)} @ {x:.1f} min: {y:.1f}</title>"
                f"</circle>"
            )
    parts.append("</svg>")
    return "".join(parts)


def _legend(entries: list[tuple[str, str]]) -> str:
    chips = "".join(
        f"<span class='legend-item'><span class='chip' "
        f"style='background:var({color_var})'></span>{_esc(label)}</span>"
        for label, color_var in entries
    )
    return f"<div class='legend'>{chips}</div>"


def _phase_map_svg(
    diagram: PhaseDiagram,
    measured: MeasuredDeployment,
    *,
    width: int = 640,
    height: int = 420,
) -> str:
    """Winner-region map with the measured trajectory overlaid."""
    pad_l, pad_r, pad_t, pad_b = 64, 14, 12, 40
    plot_r, plot_b = width - pad_r, height - pad_b
    months = diagram.months
    queries = diagram.queries
    m_lo, m_hi = math.log10(months[0]), math.log10(months[-1])
    q_lo, q_hi = math.log10(queries[0]), math.log10(queries[-1])
    color_by_name = {
        "copy-data": "--series-1",
        "brute-force": "--series-2",
        "measured": "--series-3",
    }

    def px(month_log: float) -> float:
        return _scale(month_log, m_lo, m_hi, pad_l, plot_r)

    def py(query_log: float) -> float:
        return _scale(query_log, q_lo, q_hi, plot_b, pad_t)

    parts = [
        f"<svg viewBox='0 0 {width} {height}' role='img' "
        f"aria-label='TCO phase diagram with measured position'>"
    ]
    nm, nq = len(months), len(queries)
    cell_w = (plot_r - pad_l) / nm
    cell_h = (plot_b - pad_t) / nq
    for qi in range(nq):
        for mi in range(nm):
            approach = diagram.approaches[int(diagram.winner[qi, mi])]
            color = color_by_name.get(approach.name, "--series-3")
            x = pad_l + mi * cell_w
            y = plot_b - (qi + 1) * cell_h
            parts.append(
                f"<rect x='{x:.1f}' y='{y:.1f}' width='{cell_w + 0.5:.1f}' "
                f"height='{cell_h + 0.5:.1f}' fill='var({color})' "
                f"fill-opacity='0.5'/>"
            )
    for tick in _log_ticks(months[0], months[-1]):
        tx = px(math.log10(tick))
        parts.append(
            f"<line x1='{tx:.1f}' y1='{plot_b}' x2='{tx:.1f}' "
            f"y2='{plot_b + 4}' class='axis'/>"
            f"<text x='{tx:.1f}' y='{plot_b + 16}' class='tick' "
            f"text-anchor='middle'>{_esc(_pow_label(tick))}</text>"
        )
    for tick in _log_ticks(queries[0], queries[-1]):
        ty = py(math.log10(tick))
        parts.append(
            f"<text x='{pad_l - 6}' y='{ty + 4:.1f}' class='tick' "
            f"text-anchor='end'>{_esc(_pow_label(tick))}</text>"
        )
    parts.append(
        f"<rect x='{pad_l}' y='{pad_t}' width='{plot_r - pad_l:.1f}' "
        f"height='{plot_b - pad_t:.1f}' fill='none' class='axis'/>"
        f"<text x='{(pad_l + plot_r) / 2:.0f}' y='{height - 6}' "
        f"class='tick' text-anchor='middle'>operating months (log)</text>"
        f"<text x='16' y='{(pad_t + plot_b) / 2:.0f}' class='tick' "
        f"text-anchor='middle' "
        f"transform='rotate(-90 16 {(pad_t + plot_b) / 2:.0f})'>"
        f"total queries (log)</text>"
    )
    if len(measured.trajectory) > 1:
        coords = [
            (px(math.log10(max(m, months[0]))), py(math.log10(max(q, queries[0]))))
            for m, q in measured.trajectory
        ]
        path = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
        parts.append(
            f"<polyline points='{path}' fill='none' "
            f"stroke='var(--text-primary)' stroke-width='2' "
            f"stroke-dasharray='4 3'/>"
        )
    mx = px(math.log10(max(measured.months, months[0])))
    my = py(math.log10(max(measured.queries, queries[0])))
    parts.append(
        f"<g stroke='var(--text-primary)' stroke-width='2.5'>"
        f"<line x1='{mx - 6:.1f}' y1='{my - 6:.1f}' "
        f"x2='{mx + 6:.1f}' y2='{my + 6:.1f}'/>"
        f"<line x1='{mx - 6:.1f}' y1='{my + 6:.1f}' "
        f"x2='{mx + 6:.1f}' y2='{my - 6:.1f}'/>"
        f"<title>measured: {measured.months:.2e} months, "
        f"{measured.queries:.0f} queries, "
        f"${measured.tco_usd:.3e} total</title></g>"
        f"<text x='{mx + 10:.1f}' y='{my - 8:.1f}' class='map-label'>"
        f"you are here</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


# ---------------------------------------------------------------------
# HTML assembly
# ---------------------------------------------------------------------
_CSS = """
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --status-good: #0ca30c; --status-critical: #d03b3b;
  --border: rgba(11,11,11,0.10);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--text-primary);
  margin: 0; padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --grid: #2c2c2a; --baseline: #383835;
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --border: rgba(255,255,255,0.10);
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19; --page: #0d0d0d;
  --text-primary: #ffffff; --text-secondary: #c3c2b7;
  --grid: #2c2c2a; --baseline: #383835;
  --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
  --border: rgba(255,255,255,0.10);
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 15px; margin: 0 0 10px; }
.viz-root .sub { color: var(--text-secondary); margin: 0 0 20px; font-size: 13px; }
.viz-root section {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 18px; margin-bottom: 16px;
}
.viz-root .tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.viz-root .tile { min-width: 132px; }
.viz-root .tile .value { font-size: 22px; font-weight: 600; }
.viz-root .tile .label { color: var(--text-secondary); font-size: 12px; }
.viz-root svg { display: block; width: 100%; height: auto;
  background: var(--surface-1); }
.viz-root svg .grid { stroke: var(--grid); stroke-width: 1; }
.viz-root svg .axis { stroke: var(--baseline); stroke-width: 1; fill: none; }
.viz-root svg .tick { fill: var(--muted); font-size: 11px;
  font-family: inherit; }
.viz-root svg .map-label { fill: var(--text-primary); font-size: 12px;
  font-weight: 600; font-family: inherit; }
.viz-root .legend { display: flex; gap: 16px; margin: 8px 0 0;
  font-size: 12px; color: var(--text-secondary); }
.viz-root .legend-item { display: inline-flex; align-items: center; gap: 6px; }
.viz-root .chip { width: 10px; height: 10px; border-radius: 2px;
  display: inline-block; }
.viz-root table { border-collapse: collapse; width: 100%; font-size: 13px; }
.viz-root th { text-align: left; color: var(--text-secondary);
  font-weight: 600; border-bottom: 1px solid var(--baseline);
  padding: 6px 10px 6px 0; }
.viz-root td { border-bottom: 1px solid var(--grid);
  padding: 6px 10px 6px 0; font-variant-numeric: tabular-nums; }
.viz-root .slo-row { display: flex; align-items: baseline; gap: 10px;
  padding: 6px 0; font-size: 13px; }
.viz-root .slo-ok { color: var(--status-good); font-weight: 600; }
.viz-root .slo-bad { color: var(--status-critical); font-weight: 600; }
.viz-root .muted { color: var(--muted); font-size: 13px; }
.viz-root a.exemplar { color: var(--series-1); text-decoration: underline
  dotted; }
.viz-root tr:target td { background: var(--grid); }
.viz-root details summary { cursor: pointer; color: var(--text-secondary);
  font-size: 12px; margin-top: 8px; }
"""


def _stat_tiles(hub: TelemetryHub, flight_ids: frozenset[str]) -> str:
    ledger = hub.ledger
    merged = hub.quantiles("serve.latency_s").merged()
    queries = hub.series("serve.queries").count()
    degraded = hub.series("serve.degraded").count()
    availability = 1.0 - degraded / queries if queries else 1.0
    p99_value = _fmt_ms(merged.quantile(0.99)) if merged.count else "—"
    # The exemplar link: when the sketch's worst observation carries a
    # trace id that the flight recorder retained, the p99 tile links
    # straight to that trace's row in the retained-traces panel.
    p99_html = _esc(p99_value)
    if merged.exemplar is not None and merged.exemplar[1] in flight_ids:
        p99_html = (
            f"<a class='exemplar' href='#flight-{_esc(merged.exemplar[1])}' "
            f"title='open retained trace {_esc(merged.exemplar[1])}'>"
            f"{p99_html}</a>"
        )
    tiles = [
        ("queries served", _esc(f"{queries}")),
        (
            "p50 latency",
            _esc(_fmt_ms(merged.quantile(0.5)) if merged.count else "—"),
        ),
        ("p99 latency", p99_html),
        ("availability", _esc(f"{availability:.3%}")),
        (
            "cost / query",
            _esc(
                f"${ledger.cost_per_query_usd:.3e}"
                if ledger.serve_queries
                else "—"
            ),
        ),
        ("maintenance $", _esc(f"${ledger.maintain_usd:.3e}")),
        ("index build $", _esc(f"${ledger.index_build_usd:.3e}")),
    ]
    body = "".join(
        f"<div class='tile'><div class='value'>{value}</div>"
        f"<div class='label'>{_esc(label)}</div></div>"
        for label, value in tiles
    )
    return f"<section><div class='tiles'>{body}</div></section>"


def _latency_section(hub: TelemetryHub) -> str:
    wq = hub.quantiles("serve.latency_s")
    windows = wq.windows()
    if not windows:
        return (
            "<section><h2>Windowed latency percentiles</h2>"
            "<p class='muted'>no latency observations yet</p></section>"
        )
    first = windows[0][0]
    minutes = [(i - first) * wq.window_s / 60.0 for i, _ in windows]
    p50 = [
        (m, sketch.quantile(0.5) * 1000)
        for m, (_, sketch) in zip(minutes, windows)
    ]
    p99 = [
        (m, sketch.quantile(0.99) * 1000)
        for m, (_, sketch) in zip(minutes, windows)
    ]
    chart = _line_chart(
        [("p50", "--series-1", p50), ("p99", "--series-2", p99)],
        y_label="latency (ms)",
        x_label="minutes since start",
    )
    rows = "".join(
        f"<tr><td>{m:.1f}</td><td>{v50:.1f}</td><td>{v99:.1f}</td></tr>"
        for (m, v50), (_, v99) in zip(p50, p99)
    )
    table = (
        "<details><summary>data table</summary><table>"
        "<tr><th>minute</th><th>p50 ms</th><th>p99 ms</th></tr>"
        f"{rows}</table></details>"
    )
    return (
        "<section><h2>Windowed latency percentiles</h2>"
        f"{chart}"
        f"{_legend([('p50', '--series-1'), ('p99', '--series-2')])}"
        f"{table}</section>"
    )


def _rate_section(hub: TelemetryHub) -> str:
    series = hub.series("serve.queries")
    points = series.points()
    if not points:
        return (
            "<section><h2>Query rate</h2>"
            "<p class='muted'>no queries yet</p></section>"
        )
    first = points[0].index
    pts = [
        ((p.index - first) * series.window_s / 60.0, float(p.count))
        for p in points
    ]
    chart = _line_chart(
        [("queries/window", "--series-1", pts)],
        y_label=f"queries per {series.window_s:.0f}s window",
        x_label="minutes since start",
    )
    return f"<section><h2>Query rate</h2>{chart}</section>"


def _tail_section(report: TailReport) -> str:
    if not report.rows:
        return (
            "<section><h2>Tail attribution</h2>"
            "<p class='muted'>no phase-tagged query samples yet</p></section>"
        )
    rows = []
    for row in report.rows:
        amp = row.amplification
        amp_txt = f"{amp:.1f}×" if amp != float("inf") else "∞"
        rows.append(
            f"<tr><td>{_esc(row.phase)}</td>"
            f"<td>{row.mid_mean_s * 1000:.2f}</td>"
            f"<td>{row.mid_share:.1%}</td>"
            f"<td>{row.tail_mean_s * 1000:.2f}</td>"
            f"<td>{row.tail_share:.1%}</td>"
            f"<td>{amp_txt}</td></tr>"
        )
    return (
        "<section><h2>Tail attribution</h2>"
        f"<p class='sub'>{_esc(report.headline())}</p>"
        "<table><tr><th>phase</th><th>p50-cohort mean ms</th>"
        "<th>p50 share</th><th>tail-cohort mean ms</th>"
        "<th>tail share</th><th>amplification</th></tr>"
        f"{''.join(rows)}</table>"
        f"<p class='muted'>median cohort n={report.mid_count}, tail cohort "
        f"n={report.tail_count} (&ge; p{report.tail_q * 100:g} = "
        f"{report.tail_threshold_s * 1000:.1f} ms) of "
        f"{report.sample_count} samples</p></section>"
    )


def _router_section(hub: TelemetryHub) -> str:
    """Scatter-gather router panel: fleet tiles + per-shard table.

    Rendered only when the hub holds ``router.*`` series (a sharded
    deployment reported here); single-server hubs skip the section
    entirely rather than show an empty box.
    """
    shard_ids = sorted(
        int(match.group(1))
        for name in hub.quantile_names()
        if (match := re.fullmatch(r"router\.shard(\d+)\.latency_s", name))
    )
    routed = hub.series("router.queries").count()
    if not shard_ids and not routed:
        return ""
    merged = hub.quantiles("router.latency_s").merged()
    tiles = [
        ("routed queries", f"{routed}"),
        (
            "router p99",
            _fmt_ms(merged.quantile(0.99)) if merged.count else "—",
        ),
        ("hedges", f"{hub.series('router.hedges').count()}"),
        ("hedge wins", f"{hub.series('router.hedge_wins').count()}"),
        (
            "routed cost $",
            f"${hub.series('router.cost_usd').total():.3e}",
        ),
    ]
    tile_html = "".join(
        f"<div class='tile'><div class='value'>{_esc(value)}</div>"
        f"<div class='label'>{_esc(label)}</div></div>"
        for label, value in tiles
    )
    rows = []
    for shard_id in shard_ids:
        sketch = hub.quantiles(f"router.shard{shard_id}.latency_s").merged()
        queries = hub.series(f"router.shard{shard_id}.queries").count()
        failed = hub.series(f"router.shard{shard_id}.failed").count()
        rows.append(
            f"<tr><td>shard {shard_id}</td>"
            f"<td>{queries}</td><td>{failed}</td>"
            f"<td>{sketch.quantile(0.5) * 1000:.1f}</td>"
            f"<td>{sketch.quantile(0.99) * 1000:.1f}</td></tr>"
        )
    table = (
        "<table><tr><th>shard</th><th>queries</th><th>failed</th>"
        "<th>p50 ms</th><th>p99 ms</th></tr>"
        f"{''.join(rows)}</table>"
        if rows
        else "<p class='muted'>no per-shard latency sketches yet</p>"
    )
    return (
        "<section><h2>Scatter-gather router</h2>"
        f"<div class='tiles'>{tile_html}</div>"
        f"{table}</section>"
    )


def _ingest_section(hub: TelemetryHub) -> str:
    """Real-time ingest panel: freshness lag sketch + drain counters.

    Rendered only when the hub holds ``ingest.*`` telemetry (a drainer
    or a fresh-tier server reported here); lake-only deployments skip
    the section entirely rather than show an empty box.
    """
    lag = hub.quantiles("ingest.freshness_lag_s")
    merged = lag.merged()
    drains = hub.series("ingest.drains").count()
    fresh_matches = hub.series("ingest.fresh_matches").total()
    if not merged.count and not drains and not fresh_matches:
        return ""
    tiles = [
        ("drains", f"{drains}"),
        ("rows drained", f"{hub.series('ingest.drained_rows').total():.0f}"),
        ("fresh matches served", f"{fresh_matches:.0f}"),
        (
            "freshness lag p50",
            f"{merged.quantile(0.5):.1f} s" if merged.count else "—",
        ),
        (
            "freshness lag p99",
            f"{merged.quantile(0.99):.1f} s" if merged.count else "—",
        ),
    ]
    tile_html = "".join(
        f"<div class='tile'><div class='value'>{_esc(value)}</div>"
        f"<div class='label'>{_esc(label)}</div></div>"
        for label, value in tiles
    )
    windows = lag.windows()
    if windows:
        first = windows[0][0]
        minutes = [(i - first) * lag.window_s / 60.0 for i, _ in windows]
        p50 = [
            (m, sketch.quantile(0.5))
            for m, (_, sketch) in zip(minutes, windows)
        ]
        p99 = [
            (m, sketch.quantile(0.99))
            for m, (_, sketch) in zip(minutes, windows)
        ]
        chart = _line_chart(
            [("p50", "--series-1", p50), ("p99", "--series-2", p99)],
            y_label="freshness lag (s)",
            x_label="minutes since start",
        ) + _legend([("p50", "--series-1"), ("p99", "--series-2")])
    else:
        chart = "<p class='muted'>no drained segments yet</p>"
    return (
        "<section><h2>Real-time ingest freshness</h2>"
        f"<div class='tiles'>{tile_html}</div>"
        f"{chart}"
        "<p class='muted'>lag = lake commit time &minus; WAL segment PUT "
        "time, observed by the drainer per drained segment</p></section>"
    )


def _flight_section(flights) -> str:
    """Retained traces panel — the flight recorder's ring, slowest
    first. Each row carries an ``id='flight-<trace_id>'`` anchor so
    exemplar links (the p99 stat tile, sketch tooltips) land on it.
    Rendered only when a recorder/flight list was passed in.
    """
    flights = list(flights or ())
    if not flights:
        return ""
    flights.sort(key=lambda f: (-f.latency_s, f.trace_id))
    rows = []
    for flight in flights:
        cost = "—"
        if flight.bill is not None:
            total = float(flight.bill["request_cost_usd"]) + float(
                flight.bill["compute_cost_usd"]
            )
            cost = f"${total:.3e}"
        rows.append(
            f"<tr id='flight-{_esc(flight.trace_id)}'>"
            f"<td><code>{_esc(flight.trace_id)}</code></td>"
            f"<td>{_esc(flight.reason)}</td>"
            f"<td>{flight.latency_s * 1000:.2f}</td>"
            f"<td>{_esc(flight.slow_phase or '—')}</td>"
            f"<td>{_esc(flight.query or '—')}</td>"
            f"<td>{_esc(cost)}</td></tr>"
        )
    return (
        "<section><h2>Retained traces (flight recorder)</h2>"
        "<p class='sub'>tail-sampled complete span trees — errors, SLO "
        "breaches, and latencies above the live tail threshold; render "
        "one with <code>repro traces &lt;id&gt;</code></p>"
        "<table><tr><th>trace</th><th>reason</th><th>latency ms</th>"
        "<th>slow phase</th><th>query</th><th>cost</th></tr>"
        f"{''.join(rows)}</table></section>"
    )


def _heat_section(heat, *, limit: int = 12) -> str:
    """Crack heat-map panel: the top-``limit`` hottest files/cells.

    Decay age is measured against the map's freshest observation, so
    the panel is self-contained (no clock needed) and deterministic.
    Rendered only when a heat map was passed in and is non-empty.
    """
    if heat is None or not len(heat):
        return ""
    data = heat.to_dict()
    stamps = {
        (scope, column, kind): float(stamp)
        for scope, column, kind, _value, stamp in data["cells"]
    }
    newest = max(stamps.values())
    rows = []
    for key, hotness in heat.hottest(at_s=newest, limit=limit):
        age_s = newest - stamps[(key.scope, key.column, key.kind)]
        rows.append(
            f"<tr><td><code>{_esc(key.scope)}</code></td>"
            f"<td>{_esc(key.column)}</td><td>{_esc(key.kind)}</td>"
            f"<td>{hotness:.3f}</td><td>{age_s:.0f}</td></tr>"
        )
    return (
        "<section><h2>Crack heat map</h2>"
        f"<p class='sub'>top {len(rows)} of {len(heat)} heat cells by "
        "decayed hotness — what the cracking controller will act on "
        "next (age relative to the freshest observation)</p>"
        "<table><tr><th>scope</th><th>column</th><th>kind</th>"
        "<th>heat</th><th>age s</th></tr>"
        f"{''.join(rows)}</table></section>"
    )


def _trend_section(history) -> str:
    """Cross-run trends from durable snapshot payloads.

    ``history`` is a chronology of snapshot payloads (one per commit,
    e.g. ``SnapshotStore.snapshots()``): each becomes one point of p99
    latency and cost-per-query, turning the dashboard's headline
    numbers into a trajectory across processes and runs.
    """
    history = list(history or ())
    if not history:
        return ""
    points = []
    for payload in sorted(
        history, key=lambda p: (p.get("at_s", 0.0), p.get("sources", []))
    ):
        if not payload.get("hub"):
            continue
        hub = TelemetryHub.from_snapshot(payload["hub"])
        merged = hub.quantiles("serve.latency_s").merged()
        p99_ms = merged.quantile(0.99) * 1000 if merged.count else None
        cpq = (
            hub.ledger.cost_per_query_usd
            if hub.ledger.serve_queries
            else None
        )
        points.append(
            (
                payload.get("at_s", 0.0),
                ", ".join(payload.get("sources", [])) or "—",
                hub.series("serve.queries").count(),
                p99_ms,
                cpq,
            )
        )
    if not points:
        return ""
    p99_pts = [
        (float(i), p99) for i, (_, _, _, p99, _) in enumerate(points)
        if p99 is not None
    ]
    chart = (
        _line_chart(
            [("p99 (ms)", "--series-2", p99_pts)],
            y_label="p99 latency (ms)",
            x_label="snapshot (chronological)",
        )
        if p99_pts
        else ""
    )
    rows = "".join(
        f"<tr><td>{i}</td><td>{_esc(src)}</td><td>{at_s:.0f}</td>"
        f"<td>{queries}</td>"
        f"<td>{f'{p99:.1f}' if p99 is not None else '—'}</td>"
        f"<td>{f'${cpq:.3e}' if cpq is not None else '—'}</td></tr>"
        for i, (at_s, src, queries, p99, cpq) in enumerate(points)
    )
    return (
        "<section><h2>Cross-run trends (snapshot store)</h2>"
        "<p class='sub'>each point is one durable telemetry snapshot — "
        "this run plotted against prior runs and processes</p>"
        f"{chart}"
        "<table><tr><th>#</th><th>sources</th><th>at s</th>"
        "<th>queries</th><th>p99 ms</th><th>cost/query</th></tr>"
        f"{rows}</table></section>"
    )


def _slo_section(report: SLOReport) -> str:
    rows = []
    for status in report.statuses:
        # Icon + label, never color alone.
        badge = (
            "<span class='slo-ok'>&#10003; OK</span>"
            if status.ok
            else "<span class='slo-bad'>&#10007; BREACH</span>"
        )
        rows.append(
            f"<div class='slo-row'>{badge}"
            f"<span>{_esc(status.name)}</span>"
            f"<span class='muted'>{_esc(status.detail)} — burn long "
            f"{status.burn.long_burn:.2f} / short "
            f"{status.burn.short_burn:.2f}</span></div>"
        )
    overall = (
        "<span class='slo-ok'>&#10003; all objectives met</span>"
        if report.ok
        else "<span class='slo-bad'>&#10007; SLO breached</span>"
    )
    return (
        "<section><h2>SLO status</h2>"
        f"{''.join(rows)}<div class='slo-row'>{overall}</div></section>"
    )


def _tco_section(hub: TelemetryHub, costs: CostModel | None) -> str:
    measured = measured_deployment(hub, costs=costs)
    if measured is None:
        return (
            "<section><h2>Measured TCO position</h2>"
            "<p class='muted'>no billed queries yet — the phase diagram "
            "needs at least one attributed query</p></section>"
        )
    rivals = comparison_approaches(hub, costs=costs)
    diagram = measured_phase_diagram(measured, rivals)
    winner = diagram.winner_at(measured.months, measured.queries)
    svg = _phase_map_svg(diagram, measured)
    a = measured.approach
    return (
        "<section><h2>Measured TCO position</h2>"
        f"<p class='sub'>measured coefficients: cost/query "
        f"${a.cost_per_query:.3e}, monthly ${a.cost_per_month:.3e}, "
        f"index build ${a.index_cost:.3e} — cheapest approach at the "
        f"measured position: <strong>{_esc(winner.name)}</strong></p>"
        f"{svg}"
        f"{_legend([('copy-data', '--series-1'), ('brute-force', '--series-2'), ('measured (this deployment)', '--series-3')])}"
        "<p class='muted'>winner regions over (operating months × total "
        "queries); &#10005; marks this deployment's observed position, "
        "the dashed path its trajectory</p></section>"
    )


def render_dashboard(
    hub: TelemetryHub,
    *,
    slo: SLO | None = None,
    costs: CostModel | None = None,
    source: str = "",
    title: str = "Rottnest deployment dashboard",
    flights=None,
    heat=None,
    history=None,
) -> str:
    """The full self-contained HTML document for one hub.

    ``flights`` (an iterable of :class:`~repro.obs.flight.FlightTrace`
    or a :class:`~repro.obs.flight.FlightRecorder`), ``heat`` (a
    :class:`~repro.crack.heat.HeatMap`) and ``history`` (snapshot
    payloads, e.g. ``SnapshotStore.snapshots()``) are optional; their
    sections render only when data is present.
    """
    slo = slo or default_slo()
    slo_report = slo.evaluate(hub)
    tail_report = tail_attribution(hub.tail.samples())
    source_line = f" — source: {_esc(source)}" if source else ""
    if flights is not None and hasattr(flights, "traces"):
        flights = flights.traces()
    flight_list = list(flights or ())
    flight_ids = frozenset(f.trace_id for f in flight_list)
    sections = "".join(
        [
            _stat_tiles(hub, flight_ids),
            _slo_section(slo_report),
            _latency_section(hub),
            _flight_section(flight_list),
            _router_section(hub),
            _ingest_section(hub),
            _rate_section(hub),
            _tail_section(tail_report),
            _heat_section(heat),
            _trend_section(history),
            _tco_section(hub, costs),
        ]
    )
    return (
        "<!DOCTYPE html>\n"
        "<html lang='en'><head><meta charset='utf-8'>\n"
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style></head>\n"
        "<body class='viz-root'>\n"
        f"<h1>{_esc(title)}</h1>\n"
        f"<p class='sub'>windowed telemetry, {hub.window_s:.0f}s windows"
        f"{source_line}</p>\n"
        f"{sections}\n"
        "</body></html>\n"
    )


def write_dashboard(
    path: str,
    hub: TelemetryHub,
    *,
    slo: SLO | None = None,
    costs: CostModel | None = None,
    source: str = "",
    title: str = "Rottnest deployment dashboard",
    flights=None,
    heat=None,
    history=None,
) -> str:
    """Render and write the dashboard; returns ``path``."""
    document = render_dashboard(
        hub,
        slo=slo,
        costs=costs,
        source=source,
        title=title,
        flights=flights,
        heat=heat,
        history=history,
    )
    with open(path, "w") as f:
        f.write(document)
    return path

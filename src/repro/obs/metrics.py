"""Process-wide metrics registry: counters, gauges, histograms.

Every layer of the stack reports into one :class:`MetricsRegistry` —
object stores count requests and bytes by op, the retry wrapper counts
retries, the serving cache counts hits/misses/evictions, the search
server observes per-query modeled latency, and the maintenance daemon
counts actions. A labeled instrument is a family of independent series
(``store_requests_total{op="GET"}`` vs ``{op="PUT"}``), mirroring the
Prometheus data model so :meth:`MetricsRegistry.render` output is
immediately scrapable-looking text.

Instruments are deliberately tiny — one lock and one dict per
instrument — because they sit on the object-store hot path; the
serving benchmark's acceptance bound (warm-path throughput within 5%
of pre-observability numbers) is the regression test for that.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

#: Label values as an ordered tuple; () for unlabeled instruments.
_LabelKey = tuple[str, ...]

DEFAULT_LATENCY_BUCKETS_S = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0,
)


class _Instrument:
    """Shared machinery: label handling and per-series storage."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: tuple[str, ...]) -> None:
        self.name = name
        self.help = help
        self.label_names = label_names
        self._lock = threading.Lock()
        self._series: dict[_LabelKey, object] = {}

    def _key(self, labels: dict[str, str]) -> _LabelKey:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[n]) for n in self.label_names)

    def series(self) -> dict[_LabelKey, object]:
        """Snapshot of every series' current value."""
        with self._lock:
            return dict(self._series)


class Counter(_Instrument):
    """Monotonically increasing count, optionally labeled."""

    kind = "counter"

    def inc(self, amount: int | float = 1, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counter increments must be >= 0")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: str) -> int | float:
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0)

    def total(self) -> int | float:
        """Sum across every labeled series."""
        with self._lock:
            return sum(self._series.values())


class Gauge(_Instrument):
    """A value that can go up and down (bytes cached, queries in flight)."""

    kind = "gauge"

    def set(self, value: int | float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = value

    def add(self, amount: int | float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: str) -> int | float:
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0)


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count", "exemplars")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # last bucket = +Inf
        self.sum = 0.0
        self.count = 0
        # bucket index -> (value, trace_id): the largest exemplar-tagged
        # observation that landed in that bucket.
        self.exemplars: dict[int, tuple[float, str]] = {}


class Histogram(_Instrument):
    """Distribution over fixed buckets (cumulative on render)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> None:
        super().__init__(name, help, label_names)
        if list(buckets) != sorted(buckets) or not buckets:
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.buckets = tuple(float(b) for b in buckets)

    def observe(
        self, value: float, trace_id: str | None = None, **labels: str
    ) -> None:
        """Record ``value``; ``trace_id`` attaches a bucket exemplar
        (OpenMetrics-style) linking the bucket to a retained trace."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = _HistogramSeries(len(self.buckets))
                self._series[key] = series
            bucket = bisect_left(self.buckets, value)
            series.counts[bucket] += 1
            series.sum += value
            series.count += 1
            if trace_id is not None:
                candidate = (float(value), str(trace_id))
                if series.exemplars.get(bucket, (-1.0, "")) < candidate:
                    series.exemplars[bucket] = candidate

    def _bound_label(self, bucket: int) -> str:
        if bucket >= len(self.buckets):
            return "+Inf"
        return f"{self.buckets[bucket]:g}"

    def snapshot(self, **labels: str) -> dict:
        """``{"count", "sum", "buckets": {le: cumulative_count}}`` plus
        an ``"exemplars"`` map when any bucket carries one."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return {"count": 0, "sum": 0.0, "buckets": {}}
            cumulative = 0
            out: dict[str, int] = {}
            for bound, count in zip(self.buckets, series.counts):
                cumulative += count
                out[f"{bound:g}"] = cumulative
            out["+Inf"] = cumulative + series.counts[-1]
            snap = {"count": series.count, "sum": series.sum, "buckets": out}
            if series.exemplars:
                snap["exemplars"] = {
                    self._bound_label(bucket): {
                        "value": value,
                        "trace_id": trace_id,
                    }
                    for bucket, (value, trace_id) in sorted(
                        series.exemplars.items()
                    )
                }
            return snap


class MetricsRegistry:
    """Named instruments; get-or-create so callers never race on setup."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, help: str, label_names, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.label_names != tuple(
                    label_names
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.label_names}"
                    )
                return existing
            instrument = cls(name, help, tuple(label_names), **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", label_names: tuple[str, ...] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, label_names)

    def gauge(
        self, name: str, help: str = "", label_names: tuple[str, ...] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, label_names)

    def histogram(
        self,
        name: str,
        help: str = "",
        label_names: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, label_names, buckets=buckets
        )

    def get(self, name: str) -> _Instrument | None:
        with self._lock:
            return self._instruments.get(name)

    # -- export --------------------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """JSON-friendly dump: ``{name: {kind, help, series: {...}}}``.

        Series keys are ``label=value`` comma-joined strings ("" for the
        unlabeled series); histogram series expand to their snapshot.
        """
        with self._lock:
            instruments = list(self._instruments.values())
        out: dict[str, dict] = {}
        for instrument in instruments:
            series: dict[str, object] = {}
            if isinstance(instrument, Histogram):
                for key in list(instrument.series()):
                    labels = dict(zip(instrument.label_names, key))
                    series[_fmt_labels(instrument.label_names, key)] = (
                        instrument.snapshot(**labels)
                    )
            else:
                for key, value in instrument.series().items():
                    series[_fmt_labels(instrument.label_names, key)] = value
            out[instrument.name] = {
                "kind": instrument.kind,
                "help": instrument.help,
                "series": series,
            }
        return out

    def render(self) -> str:
        """Prometheus-exposition-style text of every instrument.

        Conformant with the text exposition format's escaping rules:
        HELP text escapes backslash and newline; label values (already
        escaped by :func:`_fmt_labels`) additionally escape the double
        quote.
        """
        lines: list[str] = []
        for name, data in sorted(self.snapshot().items()):
            if data["help"]:
                lines.append(f"# HELP {name} {_escape_help(data['help'])}")
            lines.append(f"# TYPE {name} {data['kind']}")
            for key, value in sorted(data["series"].items()):
                suffix = f"{{{key}}}" if key else ""
                if isinstance(value, dict):  # histogram
                    exemplars = value.get("exemplars", {})
                    for bound, count in value["buckets"].items():
                        sep = "," if key else ""
                        line = (
                            f'{name}_bucket{{{key}{sep}le="{bound}"}} {count}'
                        )
                        exemplar = exemplars.get(bound)
                        if exemplar is not None:
                            # OpenMetrics exemplar syntax: the bucket's
                            # count, then `# {labels} value`.
                            line += (
                                f' # {{trace_id="{exemplar["trace_id"]}"}}'
                                f' {exemplar["value"]:g}'
                            )
                        lines.append(line)
                    lines.append(f"{name}_sum{suffix} {value['sum']:g}")
                    lines.append(f"{name}_count{suffix} {value['count']}")
                else:
                    lines.append(f"{name}{suffix} {value:g}")
        return "\n".join(lines)


def _escape_help(text: str) -> str:
    """HELP-line escaping per the Prometheus text exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    """Label-value escaping per the Prometheus text exposition format."""
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _fmt_labels(names: tuple[str, ...], values: _LabelKey) -> str:
    return ",".join(
        f'{n}="{_escape_label_value(v)}"' for n, v in zip(names, values)
    )


_global_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every subsystem reports into."""
    return _global_registry

"""Exporters: JSONL span dumps, timelines, BENCH_*.json, telemetry.

Four consumers, four formats:

* **machines** get :func:`spans_to_jsonl` — one flattened span per line
  (``span_id``/``parent_id`` restore the tree), attributes made
  JSON-safe and attached request traces summarized;
* **humans** get :func:`render_timeline` — an indented flame-style view
  with duration bars and per-span request/byte counts;
* **the perf trajectory** gets the ``BENCH_*.json`` schema
  (:data:`BENCH_SCHEMA`): a stable envelope every benchmark writes via
  :func:`update_bench_json`, so successive PRs produce machine-diffable
  before/after numbers instead of free-form text;
* **offline SLO/dashboard evaluation** gets the
  ``TELEMETRY_<name>.json`` schema (:data:`TELEMETRY_SCHEMA`): one
  :class:`~repro.obs.timeseries.TelemetryHub` snapshot — every windowed
  series, per-window quantile sketch, tail sample, and the cost ledger —
  written by a benchmark or serving process via
  :func:`write_telemetry_json` and rehydrated by ``repro slo-check`` /
  ``repro dashboard`` via :func:`load_telemetry_json`.
"""

from __future__ import annotations

import json
import os
from typing import Iterable

from repro.obs.timeseries import TelemetryHub
from repro.obs.trace import Span

#: Version tag inside every BENCH_*.json payload; bump on breaking change.
BENCH_SCHEMA = "repro.bench/v1"

#: Version tag inside every telemetry snapshot; bump on breaking change.
TELEMETRY_SCHEMA = "repro.telemetry/v1"


# ---------------------------------------------------------------------
# span dumps
# ---------------------------------------------------------------------
def _json_safe(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, bytes):
        return value.hex()
    return repr(value)


def span_to_dict(span: Span) -> dict:
    """One span as a flat JSON-safe dict (children by parent_id)."""
    out: dict[str, object] = {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "thread": span.thread,
        "start_s": span.start_s,
        "end_s": span.end_s,
        "duration_s": span.duration_s,
        "attributes": {k: _json_safe(v) for k, v in span.attributes.items()},
        "events": [
            {"op": e.op, "key": e.key, "nbytes": e.nbytes, "at_s": e.at_s}
            for e in span.events
        ],
    }
    if span.trace is not None:
        out["trace"] = {
            "requests": span.trace.total_requests,
            "bytes": span.trace.total_bytes,
            "depth": span.trace.depth,
        }
    return out


def span_tree_from_dicts(rows: Iterable[dict]) -> Span:
    """Rebuild one span tree from :func:`span_to_dict` rows.

    The inverse the flight recorder needs: a retained trace is stored
    as flat rows and must come back as a tree :func:`render_timeline`
    and :func:`~repro.obs.critical_path.critical_path` can walk. Rows
    must contain exactly one root (``parent_id is None``) and parents
    must precede children (the depth-first order ``spans_to_jsonl``
    writes). The attached per-phase ``RequestTrace`` objects do not
    round-trip — only their event rows and summary counts do — so
    rebuilt spans carry ``trace=None``.
    """
    from repro.obs.trace import SpanEvent

    by_id: dict[int, Span] = {}
    root: Span | None = None
    for row in rows:
        parent_id = row.get("parent_id")
        parent = by_id.get(parent_id) if parent_id is not None else None
        span = Span(
            str(row["name"]),
            parent=parent,
            start_s=float(row["start_s"]),
        )
        span.span_id = int(row["span_id"])
        if row.get("end_s") is not None:
            span.end_s = float(row["end_s"])
        span.attributes = dict(row.get("attributes", {}))
        span.thread = str(row.get("thread", ""))
        span.events = [
            SpanEvent(
                op=str(e["op"]),
                key=str(e["key"]),
                nbytes=int(e["nbytes"]),
                at_s=float(e["at_s"]),
            )
            for e in row.get("events", [])
        ]
        if parent is not None:
            parent.children.append(span)
        elif root is not None:
            raise ValueError("span rows contain more than one root")
        else:
            root = span
        by_id[span.span_id] = span
    if root is None:
        raise ValueError("span rows contain no root span")
    return root


def spans_to_jsonl(roots: Iterable[Span]) -> str:
    """Flattened depth-first JSONL dump of one or more span trees."""
    lines = [
        json.dumps(span_to_dict(span), sort_keys=True)
        for root in roots
        for span in root.walk()
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_spans_jsonl(path: str, roots: Iterable[Span]) -> None:
    with open(path, "w") as f:
        f.write(spans_to_jsonl(roots))


# ---------------------------------------------------------------------
# text timeline / flame view
# ---------------------------------------------------------------------
def render_timeline(
    root: Span, *, width: int = 32, max_events: int = 4
) -> str:
    """Indented flame view of one span tree.

    Bars are positioned/scaled against the root span's wall-clock
    window; under a SimClock only simulated time (e.g. retry backoff)
    moves, so bars may be empty while the request counts still tell the
    story. Up to ``max_events`` object-store requests are shown per
    span as ``GET key [bytes]`` leaves.
    """
    window = max(root.duration_s, 1e-12)
    lines: list[str] = []

    def bar(span: Span) -> str:
        start = int((span.start_s - root.start_s) / window * width)
        length = max(1, int(span.duration_s / window * width))
        start = min(start, width - 1)
        length = min(length, width - start)
        return " " * start + "█" * length + " " * (width - start - length)

    def walk(span: Span, depth: int) -> None:
        label = f"{'  ' * depth}{span.name}"
        extra = ""
        if span.events or span.trace is not None:
            requests = (
                span.trace.total_requests if span.trace else len(span.events)
            )
            nbytes = span.trace.total_bytes if span.trace else sum(
                e.nbytes for e in span.events
            )
            extra = f"  {requests} req / {nbytes} B"
        lines.append(
            f"{label:<36} |{bar(span)}| {span.duration_s * 1000:9.3f} ms{extra}"
        )
        shown = span.events[:max_events]
        for event in shown:
            # Chaos-injected client deaths get a loud marker: on a
            # doomed run's timeline the crash boundary is the one line
            # that matters.
            bullet = "‼" if event.op == "CRASH" else "·"
            lines.append(
                f"{'  ' * (depth + 1)}{bullet} {event.op} {event.key} "
                f"[{event.nbytes} B]"
            )
        if len(span.events) > max_events:
            lines.append(
                f"{'  ' * (depth + 1)}· … {len(span.events) - max_events} "
                f"more request(s)"
            )
        for child in span.children:
            walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines)


# ---------------------------------------------------------------------
# BENCH_*.json
# ---------------------------------------------------------------------
def bench_payload(bench: str) -> dict:
    """Empty envelope for one benchmark's machine-readable results."""
    return {"schema": BENCH_SCHEMA, "bench": bench, "measurements": {}}


def validate_bench(payload: dict) -> None:
    """Raise ``ValueError`` unless ``payload`` follows the schema."""
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"bad schema tag {payload.get('schema')!r}; want {BENCH_SCHEMA!r}"
        )
    if not isinstance(payload.get("bench"), str):
        raise ValueError("missing 'bench' name")
    measurements = payload.get("measurements")
    if not isinstance(measurements, dict):
        raise ValueError("missing 'measurements' mapping")
    for key, entry in measurements.items():
        if not isinstance(entry, dict) or "metrics" not in entry:
            raise ValueError(f"measurement {key!r} lacks a 'metrics' mapping")
        if not isinstance(entry["metrics"], dict):
            raise ValueError(f"measurement {key!r}: 'metrics' must be a dict")
        if not isinstance(entry.get("params", {}), dict):
            raise ValueError(f"measurement {key!r}: 'params' must be a dict")


def update_bench_json(
    path: str,
    bench: str,
    measurement: str,
    *,
    metrics: dict,
    params: dict | None = None,
) -> dict:
    """Merge one measurement into ``BENCH_<bench>.json`` at ``path``.

    Read-modify-write so independent benchmark tests can each
    contribute their measurement to one file; returns the full payload
    written. Metrics/params must be JSON-serializable scalars (floats,
    ints, strings) — the point is diffable perf trajectories.
    """
    payload = bench_payload(bench)
    if os.path.exists(path):
        try:
            with open(path) as f:
                existing = json.load(f)
            validate_bench(existing)
            if existing["bench"] == bench:
                payload = existing
        except (json.JSONDecodeError, ValueError):
            pass  # malformed / foreign file: start a fresh envelope
    payload["measurements"][measurement] = {
        "params": {k: _json_safe(v) for k, v in (params or {}).items()},
        "metrics": {k: _json_safe(v) for k, v in metrics.items()},
    }
    validate_bench(payload)
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return payload


# ---------------------------------------------------------------------
# TELEMETRY_*.json
# ---------------------------------------------------------------------
def telemetry_payload(hub: TelemetryHub, *, source: str = "") -> dict:
    """A hub snapshot wrapped in the versioned telemetry envelope."""
    return {
        "schema": TELEMETRY_SCHEMA,
        "source": source,
        "hub": hub.snapshot(),
    }


def write_telemetry_json(
    path: str, hub: TelemetryHub, *, source: str = ""
) -> dict:
    """Persist ``hub`` so another process can evaluate/plot it."""
    payload = telemetry_payload(hub, source=source)
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return payload


def load_telemetry_json(path: str) -> TelemetryHub:
    """Rehydrate a hub from a :func:`write_telemetry_json` snapshot."""
    with open(path) as f:
        payload = json.load(f)
    if payload.get("schema") != TELEMETRY_SCHEMA:
        raise ValueError(
            f"bad schema tag {payload.get('schema')!r}; "
            f"want {TELEMETRY_SCHEMA!r}"
        )
    if not isinstance(payload.get("hub"), dict):
        raise ValueError("missing 'hub' snapshot")
    return TelemetryHub.from_snapshot(payload["hub"])

"""Declarative SLOs evaluated as multi-window burn rates.

An SLO here is an objective over the telemetry hub's windowed series —
"99% of queries under 1 s", "99.9% of queries served non-degraded",
"at most $0.005 of spend per query" — evaluated the way alerting
literature recommends: as **burn rates** over two horizons. The *long*
horizon (every retained window) answers "is the error budget actually
being consumed faster than allowed", the *short* horizon (the most
recent windows) answers "is it still happening now"; an objective is
breached only when **both** exceed the burn threshold, so a long-past
incident doesn't page forever and a two-query blip doesn't page at all.

Three objective kinds map onto the hub:

* :class:`LatencyObjective` — fraction of observations in a
  :class:`~repro.obs.timeseries.WindowedQuantiles` above a threshold,
  against the error budget implied by the target quantile (p99 ≤ 1 s
  means at most 1% of queries may exceed 1 s).
* :class:`AvailabilityObjective` — a bad-event series (degraded
  fallbacks, i.e. ``serve_degraded_queries_total``'s windowed twin)
  over a total-event series, against ``1 - target``.
* :class:`CostObjective` — windowed mean dollars per query against a
  budget (burn = observed / budget; the "error budget" is the budget
  itself).

``repro slo-check`` folds :meth:`SLO.evaluate` into an exit code so CI
can gate benchmark runs on the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.timeseries import TelemetryHub

#: Windows in the short (recent) burn horizon.
DEFAULT_SHORT_WINDOWS = 5

#: Burn rate at/above which a horizon counts as burning.
DEFAULT_BREACH_BURN = 1.0


@dataclass(frozen=True)
class BurnRate:
    """Error-budget consumption over the two horizons."""

    long_burn: float
    short_burn: float
    long_events: int
    short_events: int

    def breached(self, threshold: float = DEFAULT_BREACH_BURN) -> bool:
        return self.long_burn > threshold and self.short_burn > threshold


@dataclass(frozen=True)
class LatencyObjective:
    """``quantile`` of ``series`` must stay at or under ``threshold_s``."""

    name: str
    quantile: float = 0.99
    threshold_s: float = 1.0
    series: str = "serve.latency_s"

    @property
    def error_budget(self) -> float:
        return 1.0 - self.quantile

    def measure(self, hub: TelemetryHub, *, short_windows: int) -> "ObjectiveStatus":
        wq = hub.quantiles(self.series)
        long_sketch = wq.merged()
        short_sketch = wq.merged(last=short_windows)

        def burn(sketch) -> float:
            if sketch.count == 0:
                return 0.0
            bad = sketch.count_above(self.threshold_s) / sketch.count
            return bad / self.error_budget

        rate = BurnRate(
            long_burn=burn(long_sketch),
            short_burn=burn(short_sketch),
            long_events=long_sketch.count,
            short_events=short_sketch.count,
        )
        observed = long_sketch.quantile(self.quantile)
        return ObjectiveStatus(
            name=self.name,
            kind="latency",
            ok=not rate.breached(),
            burn=rate,
            observed=observed,
            limit=self.threshold_s,
            unit="s",
            detail=(
                f"p{self.quantile * 100:g} = {observed * 1000:.1f} ms "
                f"(limit {self.threshold_s * 1000:.0f} ms) over "
                f"{long_sketch.count} queries"
            ),
        )


@dataclass(frozen=True)
class AvailabilityObjective:
    """Fraction of good events must stay at or above ``target``."""

    name: str
    target: float = 0.999
    total_series: str = "serve.queries"
    bad_series: str = "serve.degraded"

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target

    def measure(self, hub: TelemetryHub, *, short_windows: int) -> "ObjectiveStatus":
        total = hub.series(self.total_series)
        bad = hub.series(self.bad_series)

        def burn(last: int | None) -> tuple[float, int]:
            n = total.count(last)
            if n == 0:
                return 0.0, 0
            bad_fraction = bad.count(last) / n
            return bad_fraction / self.error_budget, n

        long_burn, long_n = burn(None)
        short_burn, short_n = burn(short_windows)
        rate = BurnRate(
            long_burn=long_burn,
            short_burn=short_burn,
            long_events=long_n,
            short_events=short_n,
        )
        availability = (
            1.0 - bad.count(None) / long_n if long_n else 1.0
        )
        return ObjectiveStatus(
            name=self.name,
            kind="availability",
            ok=not rate.breached(),
            burn=rate,
            observed=availability,
            limit=self.target,
            unit="",
            detail=(
                f"availability {availability:.4%} "
                f"(target {self.target:.3%}) over {long_n} queries, "
                f"{bad.count(None)} degraded"
            ),
        )


@dataclass(frozen=True)
class CostObjective:
    """Windowed mean dollars per query must stay at or under the budget."""

    name: str
    budget_usd_per_query: float = 5e-3
    cost_series: str = "serve.cost_usd"

    def measure(self, hub: TelemetryHub, *, short_windows: int) -> "ObjectiveStatus":
        series = hub.series(self.cost_series)

        def burn(last: int | None) -> tuple[float, int]:
            n = series.count(last)
            if n == 0:
                return 0.0, 0
            per_query = series.total(last) / n
            return per_query / self.budget_usd_per_query, n

        long_burn, long_n = burn(None)
        short_burn, short_n = burn(short_windows)
        rate = BurnRate(
            long_burn=long_burn,
            short_burn=short_burn,
            long_events=long_n,
            short_events=short_n,
        )
        observed = series.total(None) / long_n if long_n else 0.0
        return ObjectiveStatus(
            name=self.name,
            kind="cost",
            ok=not rate.breached(),
            burn=rate,
            observed=observed,
            limit=self.budget_usd_per_query,
            unit="USD/query",
            detail=(
                f"${observed:.3e}/query "
                f"(budget ${self.budget_usd_per_query:.3e}) over "
                f"{long_n} queries"
            ),
        )


@dataclass(frozen=True)
class ObjectiveStatus:
    """One objective's verdict, burn rates, and observed value."""

    name: str
    kind: str
    ok: bool
    burn: BurnRate
    observed: float
    limit: float
    unit: str
    detail: str

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "ok": self.ok,
            "long_burn": self.burn.long_burn,
            "short_burn": self.burn.short_burn,
            "long_events": self.burn.long_events,
            "short_events": self.burn.short_events,
            "observed": self.observed,
            "limit": self.limit,
            "unit": self.unit,
            "detail": self.detail,
        }


@dataclass
class SLOReport:
    """Every objective's status plus the overall verdict."""

    statuses: list[ObjectiveStatus]

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.statuses)

    @property
    def total_events(self) -> int:
        return max((s.burn.long_events for s in self.statuses), default=0)

    def describe(self) -> str:
        lines = ["SLO status:"]
        for s in self.statuses:
            verdict = "OK    " if s.ok else "BREACH"
            lines.append(
                f"  [{verdict}] {s.name}: {s.detail} "
                f"(burn long {s.burn.long_burn:.2f} / "
                f"short {s.burn.short_burn:.2f})"
            )
        lines.append(
            "overall: " + ("all objectives met" if self.ok else "SLO BREACHED")
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "objectives": [s.to_dict() for s in self.statuses],
        }


@dataclass
class SLO:
    """A named bundle of objectives evaluated against one hub."""

    objectives: list = field(default_factory=list)
    short_windows: int = DEFAULT_SHORT_WINDOWS

    def evaluate(self, hub: TelemetryHub) -> SLOReport:
        return SLOReport(
            statuses=[
                obj.measure(hub, short_windows=self.short_windows)
                for obj in self.objectives
            ]
        )


def default_slo(
    *,
    latency_p99_s: float = 1.0,
    availability: float = 0.999,
    cost_usd_per_query: float = 5e-3,
) -> SLO:
    """The serving SLO this repo's benchmarks are gated on.

    Defaults sit well clear of the committed ``BENCH_serving.json``
    numbers (worst modeled latency ≈ 0.65 s, worst per-query cost
    ≈ $9e-4) so the gate trips on regressions, not on noise.
    """
    return SLO(
        objectives=[
            LatencyObjective(
                name=f"latency_p99_le_{latency_p99_s:g}s",
                quantile=0.99,
                threshold_s=latency_p99_s,
            ),
            AvailabilityObjective(
                name=f"availability_ge_{availability:g}",
                target=availability,
            ),
            CostObjective(
                name=f"cost_le_{cost_usd_per_query:g}_usd_per_query",
                budget_usd_per_query=cost_usd_per_query,
            ),
        ]
    )

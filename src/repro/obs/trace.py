"""Hierarchical spans with cross-thread context propagation.

A :class:`Span` is one timed region of work with attributes and
children; a :class:`Tracer` maintains a per-thread stack of active
spans so nested ``with tracer.span(...)`` blocks form a tree::

    with tracer.span("search"):
        with tracer.span("probe:fm"):
            ...  # object-store GETs recorded as events here

Concurrency is first-class because the serve executor fans one query
across worker threads: the submitting thread captures
``tracer.current()`` and each worker re-attaches it with
:meth:`Tracer.attach`, so worker task spans parent under the right
query span even though they start on a different thread.

Timing is clock-aware: a tracer built with ``clock=None`` stamps spans
from ``time.perf_counter`` (real wall time), while passing the store's
:class:`~repro.util.clock.SimClock` makes span durations exactly the
simulated time that elapsed (e.g. retry backoff advances), keeping
tests deterministic.

Object-store requests are not spans of their own — at thousands per
query that would dominate the cost of tracing — but lightweight
:class:`SpanEvent` rows on the innermost active span, which the
timeline exporter renders as ``GET key [nbytes]`` leaves.

The process-wide default tracer is reached with :func:`get_tracer`;
scoped code (tests, the ``repro profile`` command) swaps it with
:func:`use_tracer`.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.util.clock import Clock

if TYPE_CHECKING:  # circular-import-free type hints only
    from repro.storage.stats import RequestTrace

#: Spans kept on a tracer after their root finishes (oldest dropped).
DEFAULT_KEEP_FINISHED = 256

_span_ids = itertools.count(1)


@dataclass(frozen=True)
class SpanEvent:
    """One point-in-time record inside a span (an object-store request)."""

    op: str
    key: str
    nbytes: int
    at_s: float


class Span:
    """One timed node of a trace tree."""

    __slots__ = (
        "name",
        "span_id",
        "parent",
        "start_s",
        "end_s",
        "attributes",
        "children",
        "events",
        "thread",
        "trace",
    )

    def __init__(self, name: str, *, parent: "Span | None", start_s: float) -> None:
        self.name = name
        self.span_id = next(_span_ids)
        self.parent = parent
        self.start_s = start_s
        self.end_s: float | None = None
        self.attributes: dict[str, object] = {}
        self.children: list[Span] = []
        self.events: list[SpanEvent] = []
        self.thread = threading.current_thread().name
        #: Optional per-phase :class:`RequestTrace` attached by
        #: instrumented code; consumed by ``obs.attribution``.
        self.trace: "RequestTrace | None" = None

    # -- structure -----------------------------------------------------
    @property
    def parent_id(self) -> int | None:
        return self.parent.span_id if self.parent is not None else None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set(self, key: str, value: object) -> "Span":
        self.attributes[key] = value
        return self

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with ``name``, depth-first."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        return [s for s in self.walk() if s.name == name]

    @property
    def total_requests(self) -> int:
        """Events recorded on this span and all descendants."""
        return sum(len(s.events) for s in self.walk())

    @property
    def total_bytes(self) -> int:
        return sum(e.nbytes for s in self.walk() for e in s.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"children={len(self.children)}, events={len(self.events)})"
        )


class Tracer:
    """Builds span trees from nested/concurrent instrumented regions."""

    def __init__(
        self,
        *,
        clock: Clock | None = None,
        enabled: bool = True,
        keep_finished: int = DEFAULT_KEEP_FINISHED,
    ) -> None:
        self.clock = clock
        self.enabled = enabled
        self.finished: deque[Span] = deque(maxlen=keep_finished)
        self._tls = threading.local()
        self._lock = threading.Lock()

    # -- time ----------------------------------------------------------
    def _now(self) -> float:
        if self.clock is not None:
            return self.clock.now()
        return time.perf_counter()

    # -- context -------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def current(self) -> Span | None:
        """The innermost active span on the calling thread, if any."""
        stack = getattr(self._tls, "stack", None)
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attributes: object):
        """Open a child span of the calling thread's current span."""
        if not self.enabled:
            yield _NULL_SPAN
            return
        stack = self._stack()
        parent = stack[-1] if stack else None
        span = Span(name, parent=parent, start_s=self._now())
        if attributes:
            span.attributes.update(attributes)
        if parent is not None:
            # Appending under the tracer lock keeps sibling lists intact
            # when workers attach the same parent from many threads.
            with self._lock:
                parent.children.append(span)
        stack.append(span)
        try:
            yield span
        finally:
            span.end_s = self._now()
            stack.pop()
            if parent is None:
                with self._lock:
                    self.finished.append(span)

    @contextmanager
    def attach(self, parent: Span | None):
        """Adopt ``parent`` as the calling thread's current span.

        This is the cross-thread propagation primitive: the submitting
        thread captures :meth:`current`, ships it with the task, and the
        worker wraps its body in ``attach`` so spans it opens become
        children of the submitter's span. ``attach(None)`` is a no-op.
        """
        if not self.enabled or parent is None:
            yield
            return
        stack = self._stack()
        stack.append(parent)
        try:
            yield
        finally:
            stack.pop()

    # -- events --------------------------------------------------------
    def record_event(self, op: str, key: str, nbytes: int) -> None:
        """Record an object-store request on the current span, if any."""
        if not self.enabled:
            return
        span = self.current()
        if span is not None:
            span.events.append(SpanEvent(op, key, nbytes, self._now()))

    # -- results -------------------------------------------------------
    def pop_finished(self) -> list[Span]:
        """Drain and return completed root spans, oldest first."""
        with self._lock:
            roots = list(self.finished)
            self.finished.clear()
        return roots

    def last_root(self, name: str | None = None) -> Span | None:
        """Most recently finished root span (optionally by name)."""
        with self._lock:
            for span in reversed(self.finished):
                if name is None or span.name == name:
                    return span
        return None


class _NullSpan(Span):
    """Shared inert span handed out by disabled tracers."""

    def __init__(self) -> None:
        super().__init__("null", parent=None, start_s=0.0)

    def set(self, key: str, value: object) -> "Span":
        return self


_NULL_SPAN = _NullSpan()

_global_tracer = Tracer()
_global_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _global_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the default tracer; returns the previous one."""
    global _global_tracer
    with _global_lock:
        previous, _global_tracer = _global_tracer, tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer):
    """Scope: make ``tracer`` the default for the duration of the block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)

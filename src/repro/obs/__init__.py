"""Unified observability: spans, metrics, time-series, SLOs, bills.

The paper's argument is quantitative — latency/cost decompositions
(Fig. 8) and the TCO phase diagram (§VI) — so the reproduction needs
first-class telemetry to prove any perf claim against:

* :mod:`repro.obs.trace` — hierarchical spans with SimClock-aware
  timing and context propagation across the serve executor's worker
  threads;
* :mod:`repro.obs.metrics` — a process-wide registry of labeled
  counters/gauges/histograms every storage and serving layer reports
  into (Prometheus-conformant text rendering);
* :mod:`repro.obs.attribution` — joins a finished span tree with the
  storage latency/cost models into a per-query dollar/latency bill
  whose totals reconcile exactly with IOStats;
* :mod:`repro.obs.timeseries` — the continuous layer: windowed
  ring-buffer series and mergeable quantile sketches feeding one
  process-wide :class:`~repro.obs.timeseries.TelemetryHub`, plus the
  observed-dollars :class:`~repro.obs.timeseries.CostLedger`;
* :mod:`repro.obs.critical_path` — per-trace critical paths and
  aggregate p50-vs-p99 tail attribution over many queries;
* :mod:`repro.obs.slo` — declarative latency/availability/cost
  objectives evaluated as multi-window burn rates (``repro slo-check``
  turns the verdict into an exit code);
* :mod:`repro.obs.dashboard` — a dependency-free HTML report with the
  deployment's measured position on the TCO phase diagram;
* :mod:`repro.obs.export` — JSONL span dumps, text timelines, the
  stable ``BENCH_*.json`` schema benchmarks emit, and the
  ``TELEMETRY_*.json`` hub snapshots the SLO gate evaluates.

Any later PR claiming a speedup demonstrates it through this module:
``repro profile`` for one query, ``BENCH_*.json`` for the trajectory,
``repro slo-check`` for the gate.
"""

from repro.obs.attribution import (
    PhaseBill,
    QueryBill,
    attribute,
    price_iostats,
)
from repro.obs.critical_path import (
    CriticalStep,
    TailRecorder,
    TailReport,
    TailSample,
    critical_path,
    render_critical_path,
    tail_attribution,
)
from repro.obs.dashboard import (
    MeasuredDeployment,
    measured_deployment,
    render_dashboard,
    write_dashboard,
)
from repro.obs.export import (
    BENCH_SCHEMA,
    TELEMETRY_SCHEMA,
    load_telemetry_json,
    render_timeline,
    span_to_dict,
    spans_to_jsonl,
    update_bench_json,
    validate_bench,
    write_spans_jsonl,
    write_telemetry_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.slo import (
    SLO,
    AvailabilityObjective,
    CostObjective,
    LatencyObjective,
    SLOReport,
    default_slo,
)
from repro.obs.timeseries import (
    CostLedger,
    QuantileSketch,
    TelemetryHub,
    WindowedQuantiles,
    WindowedSeries,
    get_hub,
    set_hub,
    use_hub,
)
from repro.obs.trace import (
    Span,
    SpanEvent,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "BENCH_SCHEMA",
    "TELEMETRY_SCHEMA",
    "AvailabilityObjective",
    "CostLedger",
    "CostObjective",
    "Counter",
    "CriticalStep",
    "Gauge",
    "Histogram",
    "LatencyObjective",
    "MeasuredDeployment",
    "MetricsRegistry",
    "PhaseBill",
    "QuantileSketch",
    "QueryBill",
    "SLO",
    "SLOReport",
    "Span",
    "SpanEvent",
    "TailRecorder",
    "TailReport",
    "TailSample",
    "TelemetryHub",
    "Tracer",
    "WindowedQuantiles",
    "WindowedSeries",
    "attribute",
    "critical_path",
    "default_slo",
    "get_hub",
    "get_registry",
    "get_tracer",
    "load_telemetry_json",
    "measured_deployment",
    "price_iostats",
    "render_critical_path",
    "render_dashboard",
    "render_timeline",
    "set_hub",
    "set_tracer",
    "span_to_dict",
    "spans_to_jsonl",
    "tail_attribution",
    "update_bench_json",
    "use_hub",
    "use_tracer",
    "validate_bench",
    "write_dashboard",
    "write_spans_jsonl",
    "write_telemetry_json",
]

"""Unified observability: spans, metrics, and per-query cost bills.

The paper's argument is quantitative — latency/cost decompositions
(Fig. 8) and the TCO phase diagram (§VI) — so the reproduction needs
first-class telemetry to prove any perf claim against:

* :mod:`repro.obs.trace` — hierarchical spans with SimClock-aware
  timing and context propagation across the serve executor's worker
  threads;
* :mod:`repro.obs.metrics` — a process-wide registry of labeled
  counters/gauges/histograms every storage and serving layer reports
  into;
* :mod:`repro.obs.attribution` — joins a finished span tree with the
  storage latency/cost models into a per-query dollar/latency bill
  whose totals reconcile exactly with IOStats;
* :mod:`repro.obs.export` — JSONL span dumps, text timelines, and the
  stable ``BENCH_*.json`` schema benchmarks emit.

Any later PR claiming a speedup demonstrates it through this module:
``repro profile`` for one query, ``BENCH_*.json`` for the trajectory.
"""

from repro.obs.attribution import (
    PhaseBill,
    QueryBill,
    attribute,
    price_iostats,
)
from repro.obs.export import (
    BENCH_SCHEMA,
    render_timeline,
    span_to_dict,
    spans_to_jsonl,
    update_bench_json,
    validate_bench,
    write_spans_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.trace import (
    Span,
    SpanEvent,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "BENCH_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseBill",
    "QueryBill",
    "Span",
    "SpanEvent",
    "Tracer",
    "attribute",
    "get_registry",
    "get_tracer",
    "price_iostats",
    "render_timeline",
    "set_tracer",
    "span_to_dict",
    "spans_to_jsonl",
    "update_bench_json",
    "use_tracer",
    "validate_bench",
    "write_spans_jsonl",
]

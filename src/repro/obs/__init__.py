"""Unified observability: spans, metrics, time-series, SLOs, bills.

The paper's argument is quantitative — latency/cost decompositions
(Fig. 8) and the TCO phase diagram (§VI) — so the reproduction needs
first-class telemetry to prove any perf claim against:

* :mod:`repro.obs.trace` — hierarchical spans with SimClock-aware
  timing and context propagation across the serve executor's worker
  threads;
* :mod:`repro.obs.metrics` — a process-wide registry of labeled
  counters/gauges/histograms every storage and serving layer reports
  into (Prometheus-conformant text rendering);
* :mod:`repro.obs.attribution` — joins a finished span tree with the
  storage latency/cost models into a per-query dollar/latency bill
  whose totals reconcile exactly with IOStats;
* :mod:`repro.obs.timeseries` — the continuous layer: windowed
  ring-buffer series and mergeable quantile sketches feeding one
  process-wide :class:`~repro.obs.timeseries.TelemetryHub`, plus the
  observed-dollars :class:`~repro.obs.timeseries.CostLedger`;
* :mod:`repro.obs.critical_path` — per-trace critical paths and
  aggregate p50-vs-p99 tail attribution over many queries;
* :mod:`repro.obs.slo` — declarative latency/availability/cost
  objectives evaluated as multi-window burn rates (``repro slo-check``
  turns the verdict into an exit code);
* :mod:`repro.obs.dashboard` — a dependency-free HTML report with the
  deployment's measured position on the TCO phase diagram;
* :mod:`repro.obs.export` — JSONL span dumps, text timelines, the
  stable ``BENCH_*.json`` schema benchmarks emit, and the
  ``TELEMETRY_*.json`` hub snapshots the SLO gate evaluates;
* :mod:`repro.obs.flight` — the tail-sampling flight recorder: a
  bounded ring of *complete span trees* for exactly the queries worth
  debugging (errors, SLO breaches, latencies above a live p99), each
  persisted content-addressed through the :class:`ObjectStore`
  (``repro traces <id>`` renders one with its cost bill);
* :mod:`repro.obs.store` — durable, mergeable telemetry snapshots
  (hub series + metrics registry + crack heat map + SLO verdicts)
  whose fold is commutative and associative, so dashboards gain a
  cross-process, cross-run time-travel axis.

Any later PR claiming a speedup demonstrates it through this module:
``repro profile`` for one query, ``BENCH_*.json`` for the trajectory,
``repro slo-check`` for the gate.
"""

from repro.obs.attribution import (
    PhaseBill,
    QueryBill,
    attribute,
    price_iostats,
)
from repro.obs.critical_path import (
    CriticalStep,
    TailRecorder,
    TailReport,
    TailSample,
    critical_path,
    render_critical_path,
    tail_attribution,
)
from repro.obs.dashboard import (
    MeasuredDeployment,
    measured_deployment,
    render_dashboard,
    write_dashboard,
)
from repro.obs.export import (
    BENCH_SCHEMA,
    TELEMETRY_SCHEMA,
    load_telemetry_json,
    render_timeline,
    span_to_dict,
    span_tree_from_dicts,
    spans_to_jsonl,
    update_bench_json,
    validate_bench,
    write_spans_jsonl,
    write_telemetry_json,
)
from repro.obs.flight import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    FlightTrace,
    flight_key,
    get_flight_recorder,
    list_flights,
    load_flight,
    load_flights,
    set_flight_recorder,
    use_flight_recorder,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.slo import (
    SLO,
    AvailabilityObjective,
    CostObjective,
    LatencyObjective,
    SLOReport,
    default_slo,
)
from repro.obs.store import (
    SNAPSHOT_SCHEMA,
    SnapshotStore,
    fold_snapshots,
    merge_metrics,
    snapshot_key,
    snapshot_payload,
    validate_snapshot,
)
from repro.obs.timeseries import (
    CostLedger,
    QuantileSketch,
    TelemetryHub,
    WindowedQuantiles,
    WindowedSeries,
    get_hub,
    set_hub,
    use_hub,
)
from repro.obs.trace import (
    Span,
    SpanEvent,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "BENCH_SCHEMA",
    "FLIGHT_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "TELEMETRY_SCHEMA",
    "AvailabilityObjective",
    "CostLedger",
    "CostObjective",
    "Counter",
    "CriticalStep",
    "FlightRecorder",
    "FlightTrace",
    "Gauge",
    "Histogram",
    "LatencyObjective",
    "MeasuredDeployment",
    "MetricsRegistry",
    "PhaseBill",
    "QuantileSketch",
    "QueryBill",
    "SLO",
    "SLOReport",
    "SnapshotStore",
    "Span",
    "SpanEvent",
    "TailRecorder",
    "TailReport",
    "TailSample",
    "TelemetryHub",
    "Tracer",
    "WindowedQuantiles",
    "WindowedSeries",
    "attribute",
    "critical_path",
    "default_slo",
    "flight_key",
    "fold_snapshots",
    "get_flight_recorder",
    "get_hub",
    "get_registry",
    "get_tracer",
    "list_flights",
    "load_flight",
    "load_flights",
    "load_telemetry_json",
    "measured_deployment",
    "merge_metrics",
    "price_iostats",
    "render_critical_path",
    "render_dashboard",
    "render_timeline",
    "set_flight_recorder",
    "set_hub",
    "set_tracer",
    "snapshot_key",
    "snapshot_payload",
    "span_to_dict",
    "span_tree_from_dicts",
    "spans_to_jsonl",
    "tail_attribution",
    "update_bench_json",
    "use_flight_recorder",
    "use_hub",
    "use_tracer",
    "validate_bench",
    "validate_snapshot",
    "write_dashboard",
    "write_spans_jsonl",
    "write_telemetry_json",
]

"""Critical-path extraction and aggregate tail attribution.

Two questions a single :class:`~repro.obs.attribution.QueryBill` cannot
answer:

* **"What made *this* query slow?"** — the bill sums each phase's
  modeled time, but with a fan-out executor the phases overlap; the
  wall clock follows the *critical path*: the chain of spans you reach
  by always descending into the last-finishing child.
  :func:`critical_path` extracts that chain and the *self time* of each
  link (its duration minus the part covered by the next link), so the
  slowest query's latency reads as a story — "420 ms total, 310 ms of
  it waiting on ``probe:pages``".
* **"What makes the *tail* slow?"** — one trace cannot say whether p99
  is a different animal from p50. :class:`TailRecorder` keeps a bounded
  ring of per-query samples (total latency plus the per-phase split
  from the bill), and :func:`tail_attribution` compares the phase mix
  of a mid-band cohort (queries around the median) against the tail
  cohort (queries at or above p99): each phase's share of either cohort
  and its tail/median amplification. The headline is the paper's serve
  story in one line — e.g. "p50 is index probes; p99 is page reads".

Per-phase seconds come from :func:`repro.obs.attribution.attribute`
bills, so the cohort totals reconcile with the dollars-and-requests
accounting rather than forming a parallel bookkeeping scheme.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.obs.attribution import PHASE_ORDER, QueryBill
from repro.obs.trace import Span

#: Queries retained for tail attribution (oldest evicted).
DEFAULT_TAIL_CAPACITY = 4096


@dataclass(frozen=True)
class CriticalStep:
    """One link of a critical path: a span and its self time."""

    name: str
    phase: str | None
    start_s: float
    end_s: float
    duration_s: float
    self_s: float
    requests: int


def critical_path(root: Span) -> list[CriticalStep]:
    """The follow-the-last-finishing-child chain through ``root``.

    From each span, descend into the child that finished last — that
    child is what the parent was still waiting on when everything else
    had already returned, which under fan-out concurrency is the span
    actually holding the wall clock. Each step's ``self_s`` is its
    duration minus the portion covered by the next step, so the self
    times sum to the root's duration and point at where time was spent
    rather than merely awaited. Unfinished children are skipped.
    """
    steps: list[CriticalStep] = []
    span: Span | None = root
    while span is not None:
        finished = [c for c in span.children if c.end_s is not None]
        next_span = max(finished, key=lambda c: c.end_s) if finished else None
        end_s = span.end_s if span.end_s is not None else span.start_s
        duration_s = max(end_s - span.start_s, 0.0)
        self_s = duration_s - (next_span.duration_s if next_span else 0.0)
        steps.append(
            CriticalStep(
                name=span.name,
                phase=(
                    str(span.attributes["phase"])
                    if "phase" in span.attributes
                    else None
                ),
                start_s=span.start_s,
                end_s=end_s,
                duration_s=duration_s,
                self_s=max(self_s, 0.0),
                requests=len(span.events),
            )
        )
        span = next_span
    return steps


def render_critical_path(steps: list[CriticalStep]) -> str:
    """ASCII rendering of a critical path, one indented line per link."""
    if not steps:
        return "(empty critical path)"
    lines = ["critical path (follow the last-finishing child):"]
    for depth, step in enumerate(steps):
        phase = f" [{step.phase}]" if step.phase else ""
        requests = f" ({step.requests} req)" if step.requests else ""
        lines.append(
            f"  {'  ' * depth}{step.name}{phase}: "
            f"{step.duration_s * 1000:.2f} ms total, "
            f"{step.self_s * 1000:.2f} ms self{requests}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class TailSample:
    """One query's latency and per-phase split, as kept for attribution."""

    total_s: float
    at_s: float
    query: str = ""
    phase_s: dict[str, float] = field(default_factory=dict)
    degraded: bool = False

    def to_dict(self) -> dict:
        return {
            "total_s": self.total_s,
            "at_s": self.at_s,
            "query": self.query,
            "phase_s": dict(self.phase_s),
            "degraded": self.degraded,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TailSample":
        return cls(
            total_s=float(data["total_s"]),
            at_s=float(data["at_s"]),
            query=str(data.get("query", "")),
            phase_s={k: float(v) for k, v in data.get("phase_s", {}).items()},
            degraded=bool(data.get("degraded", False)),
        )


class TailRecorder:
    """Bounded ring of :class:`TailSample` rows (O(capacity) memory)."""

    def __init__(self, capacity: int = DEFAULT_TAIL_CAPACITY) -> None:
        self.capacity = capacity
        self._samples: deque[TailSample] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(
        self,
        total_s: float,
        *,
        at_s: float,
        query: str = "",
        phase_s: dict[str, float] | None = None,
        degraded: bool = False,
    ) -> None:
        sample = TailSample(
            total_s=total_s,
            at_s=at_s,
            query=query,
            phase_s=dict(phase_s or {}),
            degraded=degraded,
        )
        with self._lock:
            self._samples.append(sample)

    def record_bill(
        self,
        bill: QueryBill,
        total_s: float,
        *,
        at_s: float,
        degraded: bool = False,
    ) -> None:
        """Record a query via its attribution bill's per-phase seconds."""
        self.record(
            total_s,
            at_s=at_s,
            query=bill.query,
            phase_s={p.phase: p.est_latency_s for p in bill.phases},
            degraded=degraded,
        )

    def samples(self) -> list[TailSample]:
        with self._lock:
            return list(self._samples)

    def merge(self, other: "TailRecorder") -> "TailRecorder":
        """Fold a peer recorder in: sorted sample union, newest kept.

        Samples are re-sorted by (time, latency, query) — a total order
        over their content — then truncated to the larger of the two
        capacities, so the merged ring is independent of merge order
        (the snapshot-fold commutativity property). Returns ``self``.
        """
        merged = self.samples() + other.samples()
        merged.sort(
            key=lambda s: (
                s.at_s,
                s.total_s,
                s.query,
                s.degraded,
                sorted(s.phase_s.items()),
            )
        )
        with self._lock:
            self.capacity = max(self.capacity, other.capacity)
            self._samples = deque(merged, maxlen=self.capacity)
        return self

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "samples": [s.to_dict() for s in self.samples()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TailRecorder":
        recorder = cls(capacity=int(data.get("capacity", DEFAULT_TAIL_CAPACITY)))
        for row in data.get("samples", []):
            recorder._samples.append(TailSample.from_dict(row))
        return recorder


@dataclass(frozen=True)
class PhaseTailRow:
    """One phase's footprint in the median vs tail cohorts."""

    phase: str
    mid_mean_s: float
    mid_share: float
    tail_mean_s: float
    tail_share: float

    @property
    def amplification(self) -> float:
        """How much more of this phase a tail query carries vs a median
        one (∞-free: 0-mean midpoints report the tail mean ratio vs the
        smallest representable baseline)."""
        if self.mid_mean_s <= 0.0:
            return float("inf") if self.tail_mean_s > 0.0 else 1.0
        return self.tail_mean_s / self.mid_mean_s


@dataclass
class TailReport:
    """Per-phase median-vs-tail decomposition over many queries."""

    rows: list[PhaseTailRow]
    p50_s: float
    tail_threshold_s: float
    tail_q: float
    mid_count: int
    tail_count: int
    sample_count: int

    def dominant(self, *, tail: bool) -> PhaseTailRow | None:
        """The phase with the largest share of the chosen cohort."""
        if not self.rows:
            return None
        return max(self.rows, key=lambda r: r.tail_share if tail else r.mid_share)

    def headline(self) -> str:
        """The one-line story: what drives the tail vs the median."""
        if not self.rows:
            return "tail attribution: no phase-tagged samples yet"
        tail_row = self.dominant(tail=True)
        mid_row = self.dominant(tail=False)
        amp = tail_row.amplification
        amp_txt = f"{amp:.1f}x" if amp != float("inf") else ">100x"
        return (
            f"p{self.tail_q * 100:g} is dominated by {tail_row.phase} "
            f"({tail_row.tail_share:.0%} of tail latency, {amp_txt} its "
            f"median-cohort time); p50 is {mid_row.phase} "
            f"({mid_row.mid_share:.0%} of median latency)"
        )

    def describe(self) -> str:
        header = (
            f"{'phase':<12} {'p50 mean ms':>12} {'p50 share':>10} "
            f"{'tail mean ms':>13} {'tail share':>11} {'amplif':>8}"
        )
        lines = [
            (
                f"tail attribution — {self.sample_count} queries, median "
                f"cohort n={self.mid_count}, tail cohort n={self.tail_count} "
                f"(>= p{self.tail_q * 100:g} = "
                f"{self.tail_threshold_s * 1000:.1f} ms)"
            ),
            header,
            "-" * len(header),
        ]
        for row in self.rows:
            amp = row.amplification
            amp_txt = f"{amp:>7.1f}x" if amp != float("inf") else "    inf"
            lines.append(
                f"{row.phase:<12} {row.mid_mean_s * 1000:>12.2f} "
                f"{row.mid_share:>10.1%} {row.tail_mean_s * 1000:>13.2f} "
                f"{row.tail_share:>11.1%} {amp_txt}"
            )
        lines.append(self.headline())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "p50_s": self.p50_s,
            "tail_threshold_s": self.tail_threshold_s,
            "tail_q": self.tail_q,
            "mid_count": self.mid_count,
            "tail_count": self.tail_count,
            "sample_count": self.sample_count,
            "headline": self.headline(),
            "rows": [
                {
                    "phase": r.phase,
                    "mid_mean_s": r.mid_mean_s,
                    "mid_share": r.mid_share,
                    "tail_mean_s": r.tail_mean_s,
                    "tail_share": r.tail_share,
                    "amplification": (
                        r.amplification
                        if r.amplification != float("inf")
                        else None
                    ),
                }
                for r in self.rows
            ],
        }


def _rank(sorted_totals: list[float], q: float) -> float:
    index = int(round(q * (len(sorted_totals) - 1)))
    return sorted_totals[index]


def tail_attribution(
    samples: list[TailSample],
    *,
    tail_q: float = 0.99,
    mid_band: tuple[float, float] = (0.4, 0.6),
) -> TailReport:
    """Compare the phase mix of median-ish queries against tail queries.

    The *median cohort* is the samples whose total latency falls in the
    ``mid_band`` quantile band (default 0.4–0.6 — "a typical query");
    the *tail cohort* is every sample at or above the ``tail_q``
    latency. Per phase, the report carries the mean seconds spent in
    each cohort, that mean's share of the cohort's total, and the
    tail/median amplification. Phases are ordered canonically
    (:data:`~repro.obs.attribution.PHASE_ORDER` first).
    """
    if not samples:
        return TailReport(
            rows=[],
            p50_s=0.0,
            tail_threshold_s=0.0,
            tail_q=tail_q,
            mid_count=0,
            tail_count=0,
            sample_count=0,
        )
    by_total = sorted(samples, key=lambda s: s.total_s)
    totals = [s.total_s for s in by_total]
    p50 = _rank(totals, 0.5)
    threshold = _rank(totals, tail_q)
    lo = int(round(mid_band[0] * (len(by_total) - 1)))
    hi = int(round(mid_band[1] * (len(by_total) - 1)))
    mid = by_total[lo : hi + 1]
    tail = [s for s in by_total if s.total_s >= threshold]

    phases: list[str] = []
    for sample in samples:
        for phase in sample.phase_s:
            if phase not in phases:
                phases.append(phase)
    ordered = [p for p in PHASE_ORDER if p in phases]
    ordered.extend(p for p in sorted(phases) if p not in PHASE_ORDER)

    def cohort_means(cohort: list[TailSample]) -> dict[str, float]:
        if not cohort:
            return {p: 0.0 for p in ordered}
        return {
            p: sum(s.phase_s.get(p, 0.0) for s in cohort) / len(cohort)
            for p in ordered
        }

    mid_means = cohort_means(mid)
    tail_means = cohort_means(tail)
    mid_total = sum(mid_means.values())
    tail_total = sum(tail_means.values())
    rows = [
        PhaseTailRow(
            phase=p,
            mid_mean_s=mid_means[p],
            mid_share=mid_means[p] / mid_total if mid_total else 0.0,
            tail_mean_s=tail_means[p],
            tail_share=tail_means[p] / tail_total if tail_total else 0.0,
        )
        for p in ordered
    ]
    return TailReport(
        rows=rows,
        p50_s=p50,
        tail_threshold_s=threshold,
        tail_q=tail_q,
        mid_count=len(mid),
        tail_count=len(tail),
        sample_count=len(samples),
    )

"""Per-query cost attribution: span tree -> dollars and seconds.

A finished ``search`` span tree carries one
:class:`~repro.storage.stats.RequestTrace` per *phase* span (the plan,
index probing, in-situ page reads, and the brute-force fill — the
decomposition behind the paper's Fig. 8 curves). Joining those traces
with the storage latency model (§V-B) and the cloud cost model (§VI)
yields a :class:`QueryBill`: per-phase request counts, bytes, modeled
wall-clock, S3 request dollars, and searcher-instance compute dollars.

The bill is *accounting-exact* by construction: every object-store
request a query issues is recorded in exactly one phase's trace, so the
bill's total op counts equal the :class:`~repro.storage.stats.IOStats`
delta across the query, and the bill's total request cost — computed
from the summed counts, not by summing rounded per-phase dollars —
equals that delta priced by :meth:`CostModel.request_cost` to the bit.
``repro profile`` prints the reconciliation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.trace import Span
from repro.storage.costs import CostModel
from repro.storage.latency import LatencyModel
from repro.storage.stats import IOStats, RequestTrace

#: Canonical phase order for bills (spans tag themselves via the
#: ``phase`` attribute; unknown phases are appended after these).
#: ``probe`` is the pipelined executor's fused index-probe + page-read
#: continuation phase; the sequential client keeps the split phases.
PHASE_ORDER = ("plan", "fresh", "probe", "index_probe", "page_read", "brute_force")

#: The searcher instance the paper prices queries against (§VII).
DEFAULT_INSTANCE = "c6i.2xlarge"


@dataclass
class PhaseBill:
    """Requests, bytes, time, and dollars attributed to one phase."""

    phase: str
    spans: int = 0
    gets: int = 0
    puts: int = 0
    lists: int = 0
    heads: int = 0
    deletes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    est_latency_s: float = 0.0
    request_cost_usd: float = 0.0
    compute_cost_usd: float = 0.0

    @property
    def requests(self) -> int:
        return self.gets + self.puts + self.lists + self.heads + self.deletes

    @property
    def cost_usd(self) -> float:
        return self.request_cost_usd + self.compute_cost_usd

    def _absorb(self, trace: RequestTrace) -> None:
        for round_ in trace.rounds:
            for request in round_:
                if request.op == "GET":
                    self.gets += 1
                    self.bytes_read += request.nbytes
                elif request.op == "PUT":
                    self.puts += 1
                    self.bytes_written += request.nbytes
                elif request.op == "LIST":
                    self.lists += 1
                elif request.op == "HEAD":
                    self.heads += 1
                elif request.op == "DELETE":
                    self.deletes += 1


@dataclass
class QueryBill:
    """The full per-query decomposition (Fig. 8's bars, per request)."""

    query: str
    instance_type: str
    instance_hourly_usd: float
    phases: list[PhaseBill] = field(default_factory=list)

    # -- totals (computed from summed counts, never from per-phase $) --
    @property
    def gets(self) -> int:
        return sum(p.gets for p in self.phases)

    @property
    def puts(self) -> int:
        return sum(p.puts for p in self.phases)

    @property
    def lists(self) -> int:
        return sum(p.lists for p in self.phases)

    @property
    def heads(self) -> int:
        return sum(p.heads for p in self.phases)

    @property
    def deletes(self) -> int:
        return sum(p.deletes for p in self.phases)

    @property
    def requests(self) -> int:
        return sum(p.requests for p in self.phases)

    @property
    def bytes_read(self) -> int:
        return sum(p.bytes_read for p in self.phases)

    @property
    def bytes_written(self) -> int:
        return sum(p.bytes_written for p in self.phases)

    @property
    def est_latency_s(self) -> float:
        return sum(p.est_latency_s for p in self.phases)

    def total_request_cost_usd(self, costs: CostModel | None = None) -> float:
        """Summed op counts priced in one shot — the figure that must
        (and does) equal the query's IOStats delta priced the same way."""
        costs = costs or CostModel()
        return costs.request_cost(gets=self.gets, puts=self.puts, lists=self.lists)

    @property
    def compute_cost_usd(self) -> float:
        return sum(p.compute_cost_usd for p in self.phases)

    def total_cost_usd(self, costs: CostModel | None = None) -> float:
        return self.total_request_cost_usd(costs) + self.compute_cost_usd

    def describe(self, costs: CostModel | None = None) -> str:
        costs = costs or CostModel()
        header = (
            f"{'phase':<12} {'req':>5} {'GET':>5} {'PUT':>4} {'LIST':>4} "
            f"{'bytes':>10} {'est ms':>9} {'request $':>12} {'compute $':>12}"
        )
        lines = [
            f"per-query bill — {self.query} "
            f"({self.instance_type} @ ${self.instance_hourly_usd:.3f}/h)",
            header,
            "-" * len(header),
        ]
        for p in self.phases:
            lines.append(
                f"{p.phase:<12} {p.requests:>5} {p.gets:>5} {p.puts:>4} "
                f"{p.lists:>4} {_human_bytes(p.bytes_read + p.bytes_written):>10} "
                f"{p.est_latency_s * 1000:>9.2f} {p.request_cost_usd:>12.3e} "
                f"{p.compute_cost_usd:>12.3e}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'total':<12} {self.requests:>5} {self.gets:>5} {self.puts:>4} "
            f"{self.lists:>4} "
            f"{_human_bytes(self.bytes_read + self.bytes_written):>10} "
            f"{self.est_latency_s * 1000:>9.2f} "
            f"{self.total_request_cost_usd(costs):>12.3e} "
            f"{self.compute_cost_usd:>12.3e}"
        )
        lines.append(
            f"total cost: ${self.total_cost_usd(costs):.3e} per query "
            f"(~{self.est_latency_s * 1000:.1f} ms modeled)"
        )
        return "\n".join(lines)


def price_iostats(stats: IOStats, costs: CostModel | None = None) -> float:
    """An :class:`IOStats` (delta) priced by the cost model — the
    reference figure query bills reconcile against."""
    costs = costs or CostModel()
    return costs.request_cost(gets=stats.gets, puts=stats.puts, lists=stats.lists)


def attribute(
    root: Span,
    *,
    latency: LatencyModel | None = None,
    costs: CostModel | None = None,
    instance_type: str = DEFAULT_INSTANCE,
) -> QueryBill:
    """Join a finished span tree with the latency/cost models.

    Walks ``root`` collecting spans tagged with a ``phase`` attribute
    (each carrying the :class:`RequestTrace` of the store requests that
    phase issued) and produces the per-phase bill. Spans without the
    tag — worker task spans, per-request events — contribute nothing,
    so concurrent executor traces are not double counted.
    """
    latency = latency or LatencyModel()
    costs = costs or CostModel()
    hourly = costs.instance_hourly(instance_type)

    by_phase: dict[str, PhaseBill] = {}
    for span in root.walk():
        phase = span.attributes.get("phase")
        if phase is None:
            continue
        bill = by_phase.setdefault(str(phase), PhaseBill(phase=str(phase)))
        bill.spans += 1
        trace = span.trace
        if trace is None:
            continue
        bill._absorb(trace)
        phase_latency = latency.trace_latency(trace)
        bill.est_latency_s += phase_latency
        bill.compute_cost_usd += phase_latency * hourly / 3600.0

    for bill in by_phase.values():
        bill.request_cost_usd = costs.request_cost(
            gets=bill.gets, puts=bill.puts, lists=bill.lists
        )

    ordered = [by_phase[p] for p in PHASE_ORDER if p in by_phase]
    ordered.extend(
        by_phase[p] for p in sorted(by_phase) if p not in PHASE_ORDER
    )
    return QueryBill(
        query=root.name,
        instance_type=instance_type,
        instance_hourly_usd=hourly,
        phases=ordered,
    )


def _human_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} GB"  # pragma: no cover - unreachable

"""Durable, mergeable telemetry snapshots: the cross-run axis.

A :class:`~repro.obs.timeseries.TelemetryHub` dies with its process; a
``TELEMETRY_*.json`` file captures one run of one process. This module
adds the missing axis — *time across runs and space across processes* —
by committing periodic snapshots of the whole telemetry plane into the
lake's own :class:`~repro.storage.object_store.ObjectStore` (the
paper's point about metadata-scale artifacts belonging in the lake
applies to operational metadata too):

* the hub (windowed series, per-window quantile sketches, tail
  samples, cost ledger — including per-shard ``router.shard{N}.*``
  SLO state and ``ingest.freshness_lag_s``),
* the process metrics registry
  (:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`),
* the crack heat map (:class:`repro.crack.heat.HeatMap` payloads), and
* the ids of durably retained flight traces.

Every component was built mergeable — window-wise commutative
aggregates, bin-wise sketch addition, exponential heat addition,
counter addition — so :func:`fold_snapshots` folds any number of
snapshot payloads from any processes/shards/runs into one, and the
result is independent of merge order (associativity + commutativity
pinned by hypothesis in ``tests/test_obs_store.py``). The folded
payload feeds the dashboard's time-travel panels: this run vs prior
runs, trend lines for the ``BENCH_*`` headline metrics.

Commits are crash-safe the same way every other artifact here is:
content-addressed keys (``{root}/_snapshots/{id}.json``), idempotent
puts (existing keys are skipped, so a crashed commit re-run converges
then idles), and a registered crash point (``obs:put-snapshot``)
exercised by the chaos matrix.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TelemetryHub

if TYPE_CHECKING:  # circular-import-free type hints only
    from repro.crack.heat import HeatMap
    from repro.obs.slo import SLO
    from repro.storage.object_store import ObjectStore

#: Key directory for telemetry snapshots (under the obs root).
SNAPSHOT_DIR = "_snapshots"

#: Version tag inside every snapshot payload.
SNAPSHOT_SCHEMA = "repro.obs.snapshot/v1"


def snapshot_key(root: str, snapshot_id: str) -> str:
    """Object-store key of one committed snapshot."""
    return f"{root}/{SNAPSHOT_DIR}/{snapshot_id}.json"


# ---------------------------------------------------------------------
# metrics-registry snapshot merge
# ---------------------------------------------------------------------
def merge_metrics(a: dict, b: dict) -> dict:
    """Fold two :meth:`MetricsRegistry.snapshot` dumps into one.

    Counters and histogram counts/sums fold by addition (cumulative
    bucket counts add exactly); gauges fold by max — two processes'
    "bytes cached" describe peaks, not a sum; histogram bucket
    exemplars keep the (value, trace_id) tuple-max, matching the
    sketch exemplar rule. Commutative and associative, so registry
    state folds in any order.
    """
    out = json.loads(json.dumps(a))  # deep copy, JSON-safe by contract
    for name, data in b.items():
        mine = out.get(name)
        if mine is None:
            out[name] = json.loads(json.dumps(data))
            continue
        if mine["kind"] != data["kind"]:
            raise ReproError(
                f"cannot merge metric {name!r}: kind {mine['kind']} vs "
                f"{data['kind']}"
            )
        for key, value in data["series"].items():
            current = mine["series"].get(key)
            if current is None:
                mine["series"][key] = json.loads(json.dumps(value))
            elif mine["kind"] == "histogram":
                current["count"] += value["count"]
                current["sum"] += value["sum"]
                buckets = current["buckets"]
                for bound, count in value["buckets"].items():
                    buckets[bound] = buckets.get(bound, 0) + count
                theirs = value.get("exemplars", {})
                if theirs:
                    ours = current.setdefault("exemplars", {})
                    for bound, exemplar in theirs.items():
                        existing = ours.get(bound)
                        if existing is None or (
                            exemplar["value"],
                            exemplar["trace_id"],
                        ) > (existing["value"], existing["trace_id"]):
                            ours[bound] = dict(exemplar)
            elif mine["kind"] == "counter":
                mine["series"][key] = current + value
            else:  # gauge
                mine["series"][key] = max(current, value)
    return out


# ---------------------------------------------------------------------
# snapshot payloads and folding
# ---------------------------------------------------------------------
def snapshot_payload(
    hub: TelemetryHub | None = None,
    *,
    registry: MetricsRegistry | None = None,
    heat: "HeatMap | None" = None,
    slo: "SLO | None" = None,
    source: str = "",
    at_s: float = 0.0,
    flights: list[str] | tuple[str, ...] = (),
) -> dict:
    """One process's telemetry plane as a JSON-safe snapshot payload."""
    payload: dict = {
        "schema": SNAPSHOT_SCHEMA,
        "sources": [source] if source else [],
        "at_s": float(at_s),
        "hub": hub.snapshot() if hub is not None else None,
        "metrics": registry.snapshot() if registry is not None else None,
        "heat": heat.to_dict() if heat is not None else None,
        "flights": sorted(str(f) for f in flights),
        "slo_reports": [],
    }
    if slo is not None and hub is not None:
        report = slo.evaluate(hub).to_dict()
        payload["slo_reports"] = [{"source": source, "report": report}]
    return payload


def validate_snapshot(payload: dict) -> None:
    """Raise :class:`ReproError` unless ``payload`` follows the schema."""
    if payload.get("schema") != SNAPSHOT_SCHEMA:
        raise ReproError(
            f"bad snapshot schema {payload.get('schema')!r}; "
            f"want {SNAPSHOT_SCHEMA!r}"
        )
    if not isinstance(payload.get("sources"), list):
        raise ReproError("snapshot lacks a 'sources' list")


def fold_snapshots(payloads: list[dict]) -> dict:
    """Fold snapshot payloads from any processes/shards/runs into one.

    Every component folds commutatively (hub merge, metrics merge,
    heat merge, sorted unions for sources/flights/SLO reports), so the
    result is independent of the order payloads are supplied in — the
    property the hypothesis suite pins. Per-snapshot SLO reports are
    point-in-time verdicts, not mergeable state: they are collected
    (sorted) rather than combined; re-evaluate an SLO over the folded
    hub for a cross-run verdict.
    """
    if not payloads:
        return snapshot_payload()
    for payload in payloads:
        validate_snapshot(payload)
    hub: TelemetryHub | None = None
    metrics: dict | None = None
    heat_payload: dict | None = None
    sources: set[str] = set()
    flights: set[str] = set()
    reports: list[dict] = []
    at_s = max(float(p.get("at_s", 0.0)) for p in payloads)
    for payload in payloads:
        sources.update(payload.get("sources", []))
        flights.update(payload.get("flights", []))
        reports.extend(payload.get("slo_reports", []))
        if payload.get("hub") is not None:
            piece = TelemetryHub.from_snapshot(payload["hub"])
            hub = piece if hub is None else hub.merge(piece)
        if payload.get("metrics") is not None:
            metrics = (
                json.loads(json.dumps(payload["metrics"]))
                if metrics is None
                else merge_metrics(metrics, payload["metrics"])
            )
        if payload.get("heat") is not None:
            from repro.crack.heat import HeatMap

            piece_heat = HeatMap.from_dict(payload["heat"])
            if heat_payload is None:
                heat_payload = piece_heat.to_dict()
            else:
                heat_payload = (
                    HeatMap.from_dict(heat_payload).merge(piece_heat).to_dict()
                )
    reports.sort(key=lambda r: json.dumps(r, sort_keys=True))
    return {
        "schema": SNAPSHOT_SCHEMA,
        "sources": sorted(sources),
        "at_s": at_s,
        "hub": hub.snapshot() if hub is not None else None,
        "metrics": metrics,
        "heat": heat_payload,
        "flights": sorted(flights),
        "slo_reports": reports,
    }


# ---------------------------------------------------------------------
# the durable store
# ---------------------------------------------------------------------
class SnapshotStore:
    """Commit, list, load, and fold telemetry snapshots in a lake.

    One instance per object store + obs root. Commit is idempotent by
    content address, so a crashed commit re-run converges
    byte-identically and then idles (the chaos-matrix contract); the
    PUT is the registered ``obs:put-snapshot`` crash point.
    """

    def __init__(self, store: "ObjectStore", root: str = "obs") -> None:
        self.store = store
        self.root = root

    def commit(
        self,
        hub: TelemetryHub | None = None,
        *,
        registry: MetricsRegistry | None = None,
        heat: "HeatMap | None" = None,
        slo: "SLO | None" = None,
        source: str = "",
        flights: list[str] | tuple[str, ...] = (),
        at_s: float | None = None,
    ) -> str:
        """Snapshot the given telemetry plane; returns the object key."""
        when = at_s if at_s is not None else self.store.clock.now()
        payload = snapshot_payload(
            hub,
            registry=registry,
            heat=heat,
            slo=slo,
            source=source,
            at_s=when,
            flights=flights,
        )
        return self.commit_payload(payload)

    def commit_payload(self, payload: dict) -> str:
        """Commit a pre-built payload (used by folds and tests)."""
        validate_snapshot(payload)
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        snapshot_id = hashlib.sha256(body).hexdigest()[:16]
        key = snapshot_key(self.root, snapshot_id)
        if not self.store.exists(key):
            self.store.put(key, body)
        return key

    def keys(self) -> list[str]:
        """Keys of every committed snapshot, sorted."""
        prefix = f"{self.root}/{SNAPSHOT_DIR}/"
        return [
            info.key
            for info in self.store.list(prefix)
            if info.key.endswith(".json")
        ]

    def load(self, key: str) -> dict:
        payload = json.loads(self.store.get(key).decode("utf-8"))
        validate_snapshot(payload)
        return payload

    def snapshots(self) -> list[dict]:
        """Every committed snapshot payload, oldest first."""
        payloads = [self.load(key) for key in self.keys()]
        payloads.sort(
            key=lambda p: (
                float(p.get("at_s", 0.0)),
                json.dumps(p.get("sources", []), sort_keys=True),
            )
        )
        return payloads

    def fold(self, keys: list[str] | None = None) -> dict:
        """Fold the chosen (default: all) snapshots into one payload."""
        chosen = keys if keys is not None else self.keys()
        return fold_snapshots([self.load(key) for key in chosen])

    def folded_hub(self, keys: list[str] | None = None) -> TelemetryHub | None:
        """The folded hub across the chosen snapshots, if any carry one."""
        folded = self.fold(keys)
        if folded.get("hub") is None:
            return None
        return TelemetryHub.from_snapshot(folded["hub"])

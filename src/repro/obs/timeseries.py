"""Continuous telemetry: windowed time-series and quantile sketches.

``repro.obs`` so far produced *point-in-time* artifacts — one span tree,
one bill, one metrics snapshot. A running :class:`SearchServer` or
maintenance daemon needs the other axis: how latency, throughput, and
cost evolve over time, with tail percentiles per window and bounded
memory no matter how many queries flow through. Two primitives provide
that:

* :class:`WindowedSeries` — a ring buffer of fixed-width time windows,
  each holding commutative aggregates (count/sum/min/max), so rates and
  gauges are available per window and observations arriving out of
  order *within* a window land identically (an invariance a hypothesis
  test pins).
* :class:`QuantileSketch` — a DDSketch-style mergeable sketch with
  log-spaced bins: any quantile estimate is within a configured
  *relative* error of a true sample at that rank, merge is associative
  and commutative (so per-window sketches roll up into multi-window
  percentiles exactly), and memory is bounded by ``max_bins``
  regardless of observation count.

:class:`WindowedQuantiles` composes the two (one sketch per retained
window); :class:`CostLedger` accumulates observed serve/maintain
dollars so the dashboard can place a deployment on the TCO phase
diagram; :class:`TelemetryHub` is the process-wide registry every
subsystem reports into, mirroring :func:`repro.obs.metrics.get_registry`.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.critical_path import TailRecorder

#: Default window width for hub series (operators think in minutes).
DEFAULT_WINDOW_S = 60.0

#: Default retained windows per series (4 hours at 60 s windows).
DEFAULT_CAPACITY = 240

#: Default relative-error bound for quantile sketches (1%).
DEFAULT_RELATIVE_ACCURACY = 0.01


class QuantileSketch:
    """Mergeable quantile sketch with a relative-error guarantee.

    DDSketch-style: a positive value ``v`` lands in bin
    ``ceil(log_gamma(v))`` where ``gamma = (1 + a) / (1 - a)`` for
    relative accuracy ``a``; the bin's midpoint estimate
    ``2 * gamma^i / (gamma + 1)`` is then within ``a * v`` of every
    value the bin holds. Bin counts are a plain dict, so ``merge`` is
    bin-wise addition — associative, commutative, and exact (two
    sketches over disjoint sample sets merge into precisely the sketch
    of the union). Values at or below ``min_positive`` share one zero
    bin. When the sketch exceeds ``max_bins`` the *lowest* bins collapse
    together, trading accuracy at the cheap end of the distribution to
    keep the tail — the percentiles operators watch — exact to the
    bound. Thread-safe.
    """

    __slots__ = (
        "relative_accuracy",
        "max_bins",
        "min_positive",
        "_gamma",
        "_log_gamma",
        "_bins",
        "_zero_count",
        "count",
        "sum",
        "_min",
        "_max",
        "exemplar",
        "_lock",
    )

    def __init__(
        self,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        *,
        max_bins: int = 2048,
        min_positive: float = 1e-12,
    ) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy}"
            )
        if max_bins < 2:
            raise ValueError(f"max_bins must be >= 2, got {max_bins}")
        self.relative_accuracy = relative_accuracy
        self.max_bins = max_bins
        self.min_positive = min_positive
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._bins: dict[int, int] = {}
        self._zero_count = 0
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        #: (value, trace_id) of the largest exemplar-tagged observation —
        #: the retained flight trace a dashboard p99 bar links to.
        self.exemplar: tuple[float, str] | None = None
        self._lock = threading.Lock()

    # -- ingest --------------------------------------------------------
    def observe(self, value: float, *, trace_id: str | None = None) -> None:
        """Record one non-negative observation.

        ``trace_id`` attaches an exemplar: the sketch remembers the
        (value, trace id) pair with the largest value, so quantile
        estimates near the tail can link back to a retained trace.
        """
        if value < 0:
            raise ValueError(f"sketch values must be >= 0, got {value}")
        with self._lock:
            self.count += 1
            self.sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            if trace_id is not None and (
                self.exemplar is None or value >= self.exemplar[0]
            ):
                self.exemplar = (float(value), str(trace_id))
            if value <= self.min_positive:
                self._zero_count += 1
                return
            index = math.ceil(math.log(value) / self._log_gamma)
            self._bins[index] = self._bins.get(index, 0) + 1
            if len(self._bins) > self.max_bins:
                self._collapse_locked()

    def _collapse_locked(self) -> None:
        """Fold the lowest bin into its neighbor (keeps the tail exact)."""
        ordered = sorted(self._bins)
        lowest, neighbor = ordered[0], ordered[1]
        self._bins[neighbor] += self._bins.pop(lowest)

    # -- read ----------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    @property
    def bin_count(self) -> int:
        """Bins currently held — the O(1)-in-observations memory bound."""
        with self._lock:
            return len(self._bins) + (1 if self._zero_count else 0)

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (nearest rank, 0-indexed).

        The estimate is within ``relative_accuracy`` (relative) of the
        true sample at rank ``round(q * (count - 1))``, clamped to the
        observed min/max.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = int(math.floor(q * (self.count - 1) + 0.5))
            if rank < self._zero_count:
                return self._min if self._min > 0 else 0.0
            cumulative = self._zero_count
            estimate = self._max
            for index in sorted(self._bins):
                cumulative += self._bins[index]
                if cumulative > rank:
                    estimate = 2.0 * self._gamma**index / (self._gamma + 1.0)
                    break
            return min(max(estimate, self._min), self._max)

    def count_above(self, threshold: float) -> int:
        """Approximate count of observations above ``threshold``.

        Whole bins are classified by their midpoint estimate, so the
        boundary bin may be counted either way — an error bounded by
        that single bin's population (used for SLO burn rates, where
        the threshold sits far from the bulk of the distribution).
        """
        with self._lock:
            return sum(
                n
                for index, n in self._bins.items()
                if 2.0 * self._gamma**index / (self._gamma + 1.0) > threshold
            )

    # -- merge ---------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """This sketch plus ``other`` as a new sketch (inputs unchanged).

        Associative and commutative; both sketches must share the same
        relative accuracy so bins line up.
        """
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError(
                "cannot merge sketches with different relative accuracy: "
                f"{self.relative_accuracy} vs {other.relative_accuracy}"
            )
        merged = QuantileSketch(
            self.relative_accuracy,
            max_bins=max(self.max_bins, other.max_bins),
            min_positive=self.min_positive,
        )
        for source in (self, other):
            with source._lock:
                for index, n in source._bins.items():
                    merged._bins[index] = merged._bins.get(index, 0) + n
                merged._zero_count += source._zero_count
                merged.count += source.count
                merged.sum += source.sum
                merged._min = min(merged._min, source._min)
                merged._max = max(merged._max, source._max)
                # Tuple comparison (value, then trace id) keeps the
                # exemplar choice commutative under merge reordering.
                if source.exemplar is not None and (
                    merged.exemplar is None
                    or source.exemplar > merged.exemplar
                ):
                    merged.exemplar = source.exemplar
        while len(merged._bins) > merged.max_bins:
            merged._collapse_locked()
        return merged

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        with self._lock:
            data = {
                "relative_accuracy": self.relative_accuracy,
                "max_bins": self.max_bins,
                "bins": {str(i): n for i, n in self._bins.items()},
                "zero_count": self._zero_count,
                "count": self.count,
                "sum": self.sum,
                "min": self._min if self.count else None,
                "max": self._max if self.count else None,
            }
            if self.exemplar is not None:
                data["exemplar"] = {
                    "value": self.exemplar[0],
                    "trace_id": self.exemplar[1],
                }
            return data

    @classmethod
    def from_dict(cls, data: dict) -> "QuantileSketch":
        sketch = cls(
            float(data["relative_accuracy"]),
            max_bins=int(data.get("max_bins", 2048)),
        )
        sketch._bins = {int(i): int(n) for i, n in data["bins"].items()}
        sketch._zero_count = int(data["zero_count"])
        sketch.count = int(data["count"])
        sketch.sum = float(data["sum"])
        if data.get("min") is not None:
            sketch._min = float(data["min"])
        if data.get("max") is not None:
            sketch._max = float(data["max"])
        exemplar = data.get("exemplar")
        if exemplar is not None:
            sketch.exemplar = (
                float(exemplar["value"]),
                str(exemplar["trace_id"]),
            )
        return sketch


@dataclass
class WindowAggregate:
    """Commutative per-window aggregates (order-invariant by design)."""

    index: int
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def absorb(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def absorb_agg(self, other: "WindowAggregate") -> None:
        """Fold a peer window's aggregates in (commutative addition)."""
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WindowAggregate":
        agg = cls(index=int(data["index"]))
        agg.count = int(data["count"])
        agg.total = float(data["total"])
        if data.get("min") is not None:
            agg.min = float(data["min"])
        if data.get("max") is not None:
            agg.max = float(data["max"])
        return agg


class WindowedSeries:
    """Ring buffer of fixed-width time windows holding rate/gauge data.

    ``observe(value, at_s=t)`` lands in window ``floor(t / window_s)``;
    only the newest ``capacity`` windows are retained (older windows are
    evicted, observations older than the horizon are counted in
    ``late_dropped`` rather than silently lost). Aggregation per window
    is count/sum/min/max — all commutative, so observations arriving
    out of order within a window produce identical state. Thread-safe.
    """

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        *,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.window_s = window_s
        self.capacity = capacity
        self.late_dropped = 0
        self._windows: dict[int, WindowAggregate] = {}
        self._newest: int | None = None
        self._lock = threading.Lock()

    def window_index(self, at_s: float) -> int:
        return int(math.floor(at_s / self.window_s))

    def observe(self, value: float = 1.0, *, at_s: float) -> None:
        index = self.window_index(at_s)
        with self._lock:
            if self._newest is not None and index <= self._newest - self.capacity:
                self.late_dropped += 1
                return
            if self._newest is None or index > self._newest:
                self._newest = max(self._newest or index, index)
            agg = self._windows.get(index)
            if agg is None:
                agg = WindowAggregate(index=index)
                self._windows[index] = agg
            agg.absorb(value)
            horizon = self._newest - self.capacity
            for stale in [i for i in self._windows if i <= horizon]:
                del self._windows[stale]

    # -- read ----------------------------------------------------------
    def points(self) -> list[WindowAggregate]:
        """Retained windows, oldest first."""
        with self._lock:
            return [self._windows[i] for i in sorted(self._windows)]

    def total(self, last: int | None = None) -> float:
        """Sum of values over the last ``last`` windows (all if None)."""
        return sum(p.total for p in self._tail(last))

    def count(self, last: int | None = None) -> int:
        return sum(p.count for p in self._tail(last))

    def rate_per_s(self, last: int | None = None) -> float:
        """Observations per second over the covered window span."""
        points = self._tail(last)
        if not points:
            return 0.0
        span = (points[-1].index - points[0].index + 1) * self.window_s
        return sum(p.count for p in points) / span

    def _tail(self, last: int | None) -> list[WindowAggregate]:
        points = self.points()
        return points if last is None else points[-last:]

    # -- merge ---------------------------------------------------------
    def merge(self, other: "WindowedSeries") -> "WindowedSeries":
        """Fold ``other`` into ``self``, window-index-wise.

        Both series must share ``window_s`` so indices line up. The
        fold is pointwise commutative addition with *no* eviction — a
        snapshot fold must be associative and commutative regardless of
        merge order, and capacity-based eviction mid-fold would make
        the result order-dependent. Capacity applies only to live
        observation. Returns ``self``.
        """
        if other.window_s != self.window_s:
            raise ValueError(
                "cannot merge series with different window widths: "
                f"{self.window_s} vs {other.window_s}"
            )
        with other._lock:
            rows = [
                (i, WindowAggregate.from_dict(other._windows[i].to_dict()))
                for i in sorted(other._windows)
            ]
            late = other.late_dropped
        with self._lock:
            self.capacity = max(self.capacity, other.capacity)
            self.late_dropped += late
            for index, agg in rows:
                mine = self._windows.get(index)
                if mine is None:
                    self._windows[index] = agg
                else:
                    mine.absorb_agg(agg)
                if self._newest is None or index > self._newest:
                    self._newest = index
        return self

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        with self._lock:
            return {
                "window_s": self.window_s,
                "capacity": self.capacity,
                "late_dropped": self.late_dropped,
                "windows": [
                    self._windows[i].to_dict() for i in sorted(self._windows)
                ],
            }

    @classmethod
    def from_dict(cls, data: dict) -> "WindowedSeries":
        series = cls(
            float(data["window_s"]), capacity=int(data["capacity"])
        )
        series.late_dropped = int(data.get("late_dropped", 0))
        for row in data["windows"]:
            agg = WindowAggregate.from_dict(row)
            series._windows[agg.index] = agg
            series._newest = (
                agg.index
                if series._newest is None
                else max(series._newest, agg.index)
            )
        return series


class WindowedQuantiles:
    """One :class:`QuantileSketch` per retained time window.

    Per-window percentiles answer "what was p99 *this minute*"; the
    associative sketch merge rolls any span of windows into one sketch,
    so multi-window percentiles (the SLO horizon, the dashboard's
    headline p99) are computed from the same state without retaining a
    single raw sample. Thread-safe.
    """

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        *,
        capacity: int = DEFAULT_CAPACITY,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        self.window_s = window_s
        self.capacity = capacity
        self.relative_accuracy = relative_accuracy
        self._sketches: dict[int, QuantileSketch] = {}
        self._newest: int | None = None
        self._lock = threading.Lock()

    def observe(
        self, value: float, *, at_s: float, trace_id: str | None = None
    ) -> None:
        index = int(math.floor(at_s / self.window_s))
        with self._lock:
            if self._newest is not None and index <= self._newest - self.capacity:
                return
            if self._newest is None or index > self._newest:
                self._newest = max(self._newest or index, index)
            sketch = self._sketches.get(index)
            if sketch is None:
                sketch = QuantileSketch(self.relative_accuracy)
                self._sketches[index] = sketch
            horizon = self._newest - self.capacity
            for stale in [i for i in self._sketches if i <= horizon]:
                del self._sketches[stale]
        sketch.observe(value, trace_id=trace_id)

    def windows(self) -> list[tuple[int, QuantileSketch]]:
        """Retained (window index, sketch) pairs, oldest first."""
        with self._lock:
            return [(i, self._sketches[i]) for i in sorted(self._sketches)]

    def merged(self, last: int | None = None) -> QuantileSketch:
        """All (or the last ``last``) windows merged into one sketch."""
        pairs = self.windows()
        if last is not None:
            pairs = pairs[-last:]
        merged = QuantileSketch(self.relative_accuracy)
        for _, sketch in pairs:
            merged = merged.merge(sketch)
        return merged

    def quantile_series(self, q: float) -> list[tuple[int, float]]:
        """Per-window quantile estimates, oldest first."""
        return [(i, sketch.quantile(q)) for i, sketch in self.windows()]

    def merge(self, other: "WindowedQuantiles") -> "WindowedQuantiles":
        """Fold ``other`` in, window-index-wise sketch merge.

        Same contract as :meth:`WindowedSeries.merge`: matching
        ``window_s`` (and relative accuracy, required by the sketch
        merge), no eviction during the fold so the result is
        independent of merge order. Returns ``self``.
        """
        if other.window_s != self.window_s:
            raise ValueError(
                "cannot merge quantile series with different window "
                f"widths: {self.window_s} vs {other.window_s}"
            )
        for index, sketch in other.windows():
            with self._lock:
                mine = self._sketches.get(index)
                merged = sketch if mine is None else mine.merge(sketch)
                # Re-materialize so `self` never aliases `other`'s state.
                self._sketches[index] = QuantileSketch.from_dict(
                    merged.to_dict()
                )
                if self._newest is None or index > self._newest:
                    self._newest = index
        with self._lock:
            self.capacity = max(self.capacity, other.capacity)
        return self

    def to_dict(self) -> dict:
        return {
            "window_s": self.window_s,
            "capacity": self.capacity,
            "relative_accuracy": self.relative_accuracy,
            "windows": {
                str(i): sketch.to_dict() for i, sketch in self.windows()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WindowedQuantiles":
        wq = cls(
            float(data["window_s"]),
            capacity=int(data["capacity"]),
            relative_accuracy=float(data["relative_accuracy"]),
        )
        for i, sketch_data in data["windows"].items():
            index = int(i)
            wq._sketches[index] = QuantileSketch.from_dict(sketch_data)
            wq._newest = index if wq._newest is None else max(wq._newest, index)
        return wq


@dataclass
class CostLedger:
    """Observed dollars, accumulated in the TCO model's own coordinates.

    The phase diagram compares approaches by ``index_cost +
    cost_per_month * months + cost_per_query * queries``; this ledger
    keeps the measured counterparts — serve dollars per query, one-time
    index-build dollars, ongoing maintenance dollars, storage bytes —
    so the dashboard can place *this* deployment on the diagram next to
    the model's frontiers. Pure accumulation (floats and a lock), no
    model imports; folding through :mod:`repro.tco` happens at render
    time.
    """

    serve_request_usd: float = 0.0
    serve_compute_usd: float = 0.0
    serve_queries: int = 0
    maintain_request_usd: float = 0.0
    maintain_compute_usd: float = 0.0
    index_build_usd: float = 0.0
    data_bytes: int = 0
    index_bytes: int = 0
    first_at_s: float | None = None
    last_at_s: float | None = None
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def _touch_locked(self, at_s: float) -> None:
        if self.first_at_s is None or at_s < self.first_at_s:
            self.first_at_s = at_s
        if self.last_at_s is None or at_s > self.last_at_s:
            self.last_at_s = at_s

    def record_query(
        self, request_usd: float, compute_usd: float, *, at_s: float
    ) -> None:
        with self._lock:
            self.serve_request_usd += request_usd
            self.serve_compute_usd += compute_usd
            self.serve_queries += 1
            self._touch_locked(at_s)

    def record_maintain(
        self, op: str, request_usd: float, compute_usd: float, *, at_s: float
    ) -> None:
        """Maintenance spend; ``op == "index"`` counts as the one-time
        index cost (the TCO model's ``ic_r``), everything else as
        ongoing monthly maintenance."""
        with self._lock:
            if op == "index":
                self.index_build_usd += request_usd + compute_usd
            else:
                self.maintain_request_usd += request_usd
                self.maintain_compute_usd += compute_usd
            self._touch_locked(at_s)

    def set_storage(self, data_bytes: int, index_bytes: int) -> None:
        with self._lock:
            self.data_bytes = int(data_bytes)
            self.index_bytes = int(index_bytes)

    # -- read ----------------------------------------------------------
    @property
    def serve_usd(self) -> float:
        return self.serve_request_usd + self.serve_compute_usd

    @property
    def maintain_usd(self) -> float:
        return self.maintain_request_usd + self.maintain_compute_usd

    @property
    def cost_per_query_usd(self) -> float:
        return self.serve_usd / self.serve_queries if self.serve_queries else 0.0

    @property
    def elapsed_s(self) -> float:
        if self.first_at_s is None or self.last_at_s is None:
            return 0.0
        return self.last_at_s - self.first_at_s

    def merge(self, other: "CostLedger") -> "CostLedger":
        """Fold a peer process's ledger in (fieldwise addition).

        Storage bytes fold by max — two snapshots of the same deployment
        describe the same bytes, not twice the bytes. Returns ``self``.
        """
        other_data = other.to_dict()
        with self._lock:
            self.serve_request_usd += float(other_data["serve_request_usd"])
            self.serve_compute_usd += float(other_data["serve_compute_usd"])
            self.serve_queries += int(other_data["serve_queries"])
            self.maintain_request_usd += float(
                other_data["maintain_request_usd"]
            )
            self.maintain_compute_usd += float(
                other_data["maintain_compute_usd"]
            )
            self.index_build_usd += float(other_data["index_build_usd"])
            self.data_bytes = max(
                self.data_bytes, int(other_data["data_bytes"])
            )
            self.index_bytes = max(
                self.index_bytes, int(other_data["index_bytes"])
            )
            if other_data["first_at_s"] is not None:
                self._touch_locked(float(other_data["first_at_s"]))
            if other_data["last_at_s"] is not None:
                self._touch_locked(float(other_data["last_at_s"]))
        return self

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "serve_request_usd": self.serve_request_usd,
                "serve_compute_usd": self.serve_compute_usd,
                "serve_queries": self.serve_queries,
                "maintain_request_usd": self.maintain_request_usd,
                "maintain_compute_usd": self.maintain_compute_usd,
                "index_build_usd": self.index_build_usd,
                "data_bytes": self.data_bytes,
                "index_bytes": self.index_bytes,
                "first_at_s": self.first_at_s,
                "last_at_s": self.last_at_s,
            }

    @classmethod
    def from_dict(cls, data: dict) -> "CostLedger":
        ledger = cls()
        for name in (
            "serve_request_usd",
            "serve_compute_usd",
            "maintain_request_usd",
            "maintain_compute_usd",
            "index_build_usd",
        ):
            setattr(ledger, name, float(data.get(name, 0.0)))
        ledger.serve_queries = int(data.get("serve_queries", 0))
        ledger.data_bytes = int(data.get("data_bytes", 0))
        ledger.index_bytes = int(data.get("index_bytes", 0))
        if data.get("first_at_s") is not None:
            ledger.first_at_s = float(data["first_at_s"])
        if data.get("last_at_s") is not None:
            ledger.last_at_s = float(data["last_at_s"])
        return ledger


class TelemetryHub:
    """Process-wide registry of windowed series, sketches, and costs.

    The continuous-telemetry twin of
    :func:`repro.obs.metrics.get_registry`: the serve, daemon, and
    maintenance layers report named series here; the SLO evaluator and
    the dashboard read them back. ``snapshot()`` / ``from_snapshot``
    round-trip the whole hub through JSON so a benchmark run can emit
    its telemetry and ``repro slo-check`` / ``repro dashboard`` can
    evaluate it in another process.
    """

    def __init__(
        self,
        *,
        window_s: float = DEFAULT_WINDOW_S,
        capacity: int = DEFAULT_CAPACITY,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        tail_capacity: int = 4096,
    ) -> None:
        self.window_s = window_s
        self.capacity = capacity
        self.relative_accuracy = relative_accuracy
        self.tail = TailRecorder(capacity=tail_capacity)
        self.ledger = CostLedger()
        self._series: dict[str, WindowedSeries] = {}
        self._quantiles: dict[str, WindowedQuantiles] = {}
        self._lock = threading.Lock()

    def series(self, name: str) -> WindowedSeries:
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = WindowedSeries(
                    self.window_s, capacity=self.capacity
                )
                self._series[name] = series
            return series

    def quantiles(self, name: str) -> WindowedQuantiles:
        with self._lock:
            wq = self._quantiles.get(name)
            if wq is None:
                wq = WindowedQuantiles(
                    self.window_s,
                    capacity=self.capacity,
                    relative_accuracy=self.relative_accuracy,
                )
                self._quantiles[name] = wq
            return wq

    def series_names(self) -> list[str]:
        """Names of every registered windowed series, sorted."""
        with self._lock:
            return sorted(self._series)

    def quantile_names(self) -> list[str]:
        """Names of every registered quantile series, sorted."""
        with self._lock:
            return sorted(self._quantiles)

    def merge(self, other: "TelemetryHub") -> "TelemetryHub":
        """Fold another hub in: series, sketches, tail, and ledger.

        The snapshot store uses this to fold telemetry from independent
        processes/shards/runs; every component merge is commutative and
        associative (window-wise addition, bin-wise sketch addition,
        sorted tail-sample union, fieldwise ledger addition), so the
        fold result is independent of merge order — the property the
        hypothesis suite pins. Returns ``self``.
        """
        if other.window_s != self.window_s:
            raise ValueError(
                "cannot merge hubs with different window widths: "
                f"{self.window_s} vs {other.window_s}"
            )
        for name in other.series_names():
            self.series(name).merge(other.series(name))
        for name in other.quantile_names():
            self.quantiles(name).merge(other.quantiles(name))
        self.tail.merge(other.tail)
        self.ledger.merge(other.ledger)
        return self

    def snapshot(self) -> dict:
        """JSON-safe dump of every series, sketch, tail sample, and the
        cost ledger."""
        with self._lock:
            series = dict(self._series)
            quantiles = dict(self._quantiles)
        return {
            "window_s": self.window_s,
            "capacity": self.capacity,
            "relative_accuracy": self.relative_accuracy,
            "series": {name: s.to_dict() for name, s in series.items()},
            "quantiles": {name: q.to_dict() for name, q in quantiles.items()},
            "tail": self.tail.to_dict(),
            "ledger": self.ledger.to_dict(),
        }

    @classmethod
    def from_snapshot(cls, data: dict) -> "TelemetryHub":
        hub = cls(
            window_s=float(data["window_s"]),
            capacity=int(data["capacity"]),
            relative_accuracy=float(data["relative_accuracy"]),
        )
        for name, series_data in data.get("series", {}).items():
            hub._series[name] = WindowedSeries.from_dict(series_data)
        for name, wq_data in data.get("quantiles", {}).items():
            hub._quantiles[name] = WindowedQuantiles.from_dict(wq_data)
        hub.tail = TailRecorder.from_dict(data.get("tail", {"samples": []}))
        hub.ledger = CostLedger.from_dict(data.get("ledger", {}))
        return hub


_global_hub = TelemetryHub()
_global_lock = threading.Lock()


def get_hub() -> TelemetryHub:
    """The process-wide default telemetry hub."""
    return _global_hub


def set_hub(hub: TelemetryHub) -> TelemetryHub:
    """Replace the default hub; returns the previous one."""
    global _global_hub
    with _global_lock:
        previous, _global_hub = _global_hub, hub
    return previous


@contextmanager
def use_hub(hub: TelemetryHub):
    """Scope: make ``hub`` the default for the duration of the block."""
    previous = set_hub(hub)
    try:
        yield hub
    finally:
        set_hub(previous)

"""Command-line interface: operate a lake + Rottnest index on disk.

Backed by :class:`~repro.storage.localfs.LocalFSObjectStore`, so state
persists across invocations — each subcommand is the "any VM or
serverless function with access to the bucket" of the paper's protocol.

Usage sketch::

    python -m repro create-table --root /tmp/bucket --table lake/logs \
        --schema "ts:int64,request_id:binary,message:string"
    python -m repro append --root /tmp/bucket --table lake/logs \
        --jsonl events.jsonl
    python -m repro index --root /tmp/bucket --table lake/logs \
        --index-dir idx/logs --column request_id --type uuid_trie
    python -m repro search --root /tmp/bucket --table lake/logs \
        --index-dir idx/logs --column request_id --uuid deadbeef... -k 5
    python -m repro compact --root ... ; python -m repro vacuum --root ...
    python -m repro info --root /tmp/bucket --table lake/logs

Binary values travel as hex in JSONL/arguments; vectors as JSON arrays.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.core.client import RottnestClient
from repro.core.maintenance import compact_indices, vacuum_indices
from repro.core.queries import (
    RangeQuery,
    RegexQuery,
    SubstringQuery,
    UuidQuery,
    VectorQuery,
)
from repro.errors import ReproError
from repro.formats.schema import ColumnType, Field, Schema
from repro.lake.table import LakeTable, TableConfig
from repro.storage.localfs import LocalFSObjectStore


def parse_schema(spec: str) -> Schema:
    """``"name:type[:dim]"`` comma list -> Schema."""
    fields = []
    for part in spec.split(","):
        bits = part.strip().split(":")
        if len(bits) not in (2, 3):
            raise ReproError(f"bad field spec {part!r}; want name:type[:dim]")
        name, type_name = bits[0], bits[1].upper()
        try:
            column_type = ColumnType[type_name]
        except KeyError:
            raise ReproError(
                f"unknown type {bits[1]!r}; one of "
                f"{[t.name.lower() for t in ColumnType]}"
            ) from None
        dim = int(bits[2]) if len(bits) == 3 else 0
        fields.append(Field(name=name, type=column_type, vector_dim=dim))
    return Schema.of(*fields)


def _decode_value(field: Field, raw):
    if field.type is ColumnType.BINARY:
        return bytes.fromhex(raw)
    if field.type is ColumnType.VECTOR:
        return raw  # list; batched below
    return raw


def _encode_value(value):
    if isinstance(value, (bytes, bytearray)):
        return bytes(value).hex()
    if isinstance(value, np.ndarray):
        return [round(float(x), 6) for x in value]
    return value


def _load_columns(schema: Schema, lines: list[str]) -> dict[str, list]:
    columns: dict[str, list] = {f.name: [] for f in schema.fields}
    for line_no, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(f"line {line_no}: not JSON ({exc})") from exc
        for f in schema.fields:
            if f.name not in obj:
                raise ReproError(f"line {line_no}: missing column {f.name!r}")
            columns[f.name].append(_decode_value(f, obj[f.name]))
    for f in schema.fields:
        if f.type is ColumnType.VECTOR:
            columns[f.name] = np.asarray(columns[f.name], dtype=np.float32)
    return columns


def _open(args) -> tuple[LocalFSObjectStore, LakeTable]:
    store = LocalFSObjectStore(args.root)
    return store, LakeTable.open(store, args.table)


def cmd_create_table(args) -> int:
    store = LocalFSObjectStore(args.root)
    schema = parse_schema(args.schema)
    config = TableConfig(
        row_group_rows=args.row_group_rows,
        page_target_bytes=args.page_target_bytes,
    )
    LakeTable.create(store, args.table, schema, config)
    print(f"created table {args.table!r} with columns {schema.names}")
    return 0


def cmd_append(args) -> int:
    store, lake = _open(args)
    if args.jsonl == "-":
        lines = sys.stdin.readlines()
    else:
        with open(args.jsonl) as f:
            lines = f.readlines()
    columns = _load_columns(lake.schema, lines)
    count = len(next(iter(columns.values())))
    if count == 0:
        raise ReproError("no rows to append")
    version = lake.append(columns)
    print(f"appended {count} rows as version {version}")
    return 0


def cmd_index(args) -> int:
    store, lake = _open(args)
    client = RottnestClient(store, args.index_dir, lake)
    params = {}
    for pair in args.param or []:
        key, _, value = pair.partition("=")
        params[key] = json.loads(value)
    record = client.index(args.column, args.type, params=params)
    if record is None:
        print("nothing new to index")
    else:
        print(
            f"indexed {record.num_rows} rows "
            f"({len(record.covered_files)} file(s)) into "
            f"{record.index_key} [{record.size} bytes]"
        )
    return 0


def _build_query(args):
    choices = [args.uuid, args.substring, args.regex, args.vector, args.range]
    if sum(c is not None for c in choices) != 1:
        raise ReproError(
            "give exactly one of --uuid, --substring, --regex, --vector, "
            "--range"
        )
    if args.uuid is not None:
        return UuidQuery(bytes.fromhex(args.uuid))
    if args.substring is not None:
        return SubstringQuery(args.substring)
    if args.regex is not None:
        return RegexQuery(args.regex)
    if args.range is not None:
        lo, hi = (json.loads(v) for v in args.range)
        return RangeQuery(lo, hi)
    vector = np.asarray(json.loads(args.vector), dtype=np.float32)
    return VectorQuery(vector, nprobe=args.nprobe, refine=args.refine)


def cmd_search(args) -> int:
    store, lake = _open(args)
    client = RottnestClient(store, args.index_dir, lake)
    query = _build_query(args)
    result = client.search(
        args.column, query, k=args.k, partition=args.partition
    )
    for match in result.matches:
        print(
            json.dumps(
                {
                    "file": match.file,
                    "row": match.row,
                    "value": _encode_value(match.value),
                    **({"score": match.score} if match.score is not None else {}),
                }
            )
        )
    stats = result.stats
    print(
        f"# {len(result.matches)} match(es); "
        f"{stats.index_files_queried} index file(s), "
        f"{stats.pages_probed} page(s) probed, "
        f"{stats.files_brute_forced} file(s) brute-forced, "
        f"~{stats.estimated_latency() * 1000:.0f} ms modeled",
        file=sys.stderr,
    )
    return 0


def cmd_serve_bench(args) -> int:
    """Repeated-query serving benchmark: cold vs warm, concurrency."""
    import threading

    from repro.obs import TelemetryHub, use_hub, write_telemetry_json
    from repro.serve import SearchServer

    store = LocalFSObjectStore(args.root)
    server = SearchServer.for_lake(
        store,
        args.index_dir,
        args.table,
        cache_budget_bytes=args.cache_mb << 20,
        max_searchers=args.max_searchers,
        max_inflight=max(args.clients, 1),
    )
    query = _build_query(args)
    hub = TelemetryHub()
    recorder = None
    if args.flight:
        from repro.obs.flight import FlightRecorder
        from repro.obs.slo import default_slo

        recorder = FlightRecorder(
            store,
            root=args.obs,
            slo=default_slo(
                latency_p99_s=args.latency_p99_s,
                availability=args.availability,
                cost_usd_per_query=args.cost_per_query,
            ),
        )
    from repro.obs.flight import use_flight_recorder

    with use_hub(hub), use_flight_recorder(recorder), server:
        if args.warmup:
            warmed = server.warmup()
            print(f"warmed {warmed} index file(s)", file=sys.stderr)
        cold = server.query(
            args.column, query, k=args.k, partition=args.partition
        )
        cold_latency = server.stats.first_latency_s

        def run_client() -> None:
            for _ in range(args.repeat):
                server.query(
                    args.column, query, k=args.k, partition=args.partition
                )

        threads = [
            threading.Thread(target=run_client) for _ in range(args.clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        warm_latency = server.stats.last_latency_s
        print(
            f"# {len(cold.matches)} match(es); cold "
            f"{cold_latency * 1000:.1f} ms -> warm "
            f"{warm_latency * 1000:.1f} ms modeled"
        )
        print(server.stats.describe(server.max_inflight))
        if args.telemetry or args.dashboard:
            snap = server.client.lake.snapshot()
            index_bytes = sum(
                record.size for record in server.client.meta.records()
            )
            hub.ledger.set_storage(
                data_bytes=snap.total_bytes, index_bytes=index_bytes
            )
    if recorder is not None:
        from repro.obs import get_registry
        from repro.obs.store import SnapshotStore

        persisted = recorder.persist()
        snapshots = SnapshotStore(store, root=args.obs)
        key = snapshots.commit(
            hub,
            registry=get_registry(),
            source="serve-bench",
            flights=[t.trace_id for t in recorder.traces()],
        )
        print(
            f"# flight recorder: {recorder.observed} observed, "
            f"{len(recorder)} retained, {persisted} persisted; "
            f"snapshot {key}",
            file=sys.stderr,
        )
    if args.telemetry:
        write_telemetry_json(args.telemetry, hub, source="serve-bench")
        print(f"# telemetry written to {args.telemetry}", file=sys.stderr)
    if args.dashboard:
        from repro.obs import write_dashboard

        write_dashboard(
            args.dashboard, hub, source="serve-bench", flights=recorder
        )
        print(f"# dashboard written to {args.dashboard}", file=sys.stderr)
    return 0


def cmd_dashboard(args) -> int:
    """Render the telemetry dashboard HTML from a snapshot file.

    With ``--root`` the durable telemetry plane joins in: retained
    flight traces (exemplar links), the folded crack heat map, and the
    snapshot history for the cross-run trend panel.
    """
    from repro.obs import load_flights, load_telemetry_json, write_dashboard
    from repro.obs.slo import default_slo
    from repro.obs.store import SnapshotStore

    hub = load_telemetry_json(args.telemetry)
    slo = default_slo(
        latency_p99_s=args.latency_p99_s,
        availability=args.availability,
        cost_usd_per_query=args.cost_per_query,
    )
    flights = heat = history = None
    if args.root:
        from repro.crack.heat import HeatMap

        store = LocalFSObjectStore(args.root)
        flights = load_flights(store, root=args.obs)
        history = SnapshotStore(store, root=args.obs).snapshots()
        folded_heat = None
        for payload in history:
            if payload.get("heat"):
                piece = HeatMap.from_dict(payload["heat"])
                folded_heat = (
                    piece if folded_heat is None else folded_heat.merge(piece)
                )
        heat = folded_heat
    write_dashboard(
        args.out,
        hub,
        slo=slo,
        source=args.telemetry,
        title=args.title,
        flights=flights,
        heat=heat,
        history=history,
    )
    print(f"dashboard written to {args.out}")
    return 0


def cmd_metrics(args) -> int:
    """Dump the process metrics registry in Prometheus text format.

    With ``--root``/``--table`` the lake is opened first (and the
    index metadata replayed when ``--index-dir`` is given), so the
    storage-layer instruments have something to say; without them the
    command renders whatever this process already recorded. Exits 3
    when no instrument holds a single sample.
    """
    from repro.obs import get_registry

    if args.root and args.table:
        store, table = _open(args)
        table.snapshot()
        if args.index_dir:
            client = RottnestClient(store, args.index_dir, table)
            client.meta.records()
    registry = get_registry()
    if not any(data["series"] for data in registry.snapshot().values()):
        print("error: empty input — no metric samples recorded", file=sys.stderr)
        return 3
    print(registry.render(), end="")
    return 0


def cmd_top(args) -> int:
    """Live-ops summary: burn rates, counters, slowest retained traces.

    The hub comes from ``--telemetry`` (a ``TELEMETRY_*.json`` file)
    or, with ``--root``, from folding the durable snapshot store;
    retained flight traces come from the store. Exits 3 when there is
    neither telemetry nor a single retained trace.
    """
    from repro.obs import load_flights, load_telemetry_json
    from repro.obs.slo import default_slo
    from repro.obs.store import SnapshotStore

    hub = None
    flights = []
    if args.telemetry:
        hub = load_telemetry_json(args.telemetry)
    if args.root:
        store = LocalFSObjectStore(args.root)
        if hub is None:
            hub = SnapshotStore(store, root=args.obs).folded_hub()
        flights = load_flights(store, root=args.obs)
    if hub is None and not flights:
        print(
            "error: empty input — no telemetry snapshot and no retained "
            "flight traces",
            file=sys.stderr,
        )
        return 3
    if hub is not None:
        slo = default_slo(
            latency_p99_s=args.latency_p99_s,
            availability=args.availability,
            cost_usd_per_query=args.cost_per_query,
        )
        report = slo.evaluate(hub)
        print("== burn rates ==")
        for status in report.statuses:
            marker = "ok    " if status.ok else "BREACH"
            print(
                f"{marker} {status.name:<16} long {status.burn.long_burn:6.2f}"
                f"  short {status.burn.short_burn:6.2f}  {status.detail}"
            )
        merged = hub.quantiles("serve.latency_s").merged()
        print("== counters ==")
        print(f"queries    {hub.series('serve.queries').count()}")
        print(f"degraded   {hub.series('serve.degraded').count()}")
        print(f"hedges     {hub.series('router.hedges').count()}")
        print(f"hedge wins {hub.series('router.hedge_wins').count()}")
        if merged.count:
            print(f"p50        {merged.quantile(0.5) * 1000:.2f} ms")
            print(f"p99        {merged.quantile(0.99) * 1000:.2f} ms")
    if flights:
        flights.sort(key=lambda f: (-f.latency_s, f.trace_id))
        print(f"== slowest retained traces ({len(flights)}) ==")
        for flight in flights[: args.limit]:
            print(flight.describe())
    elif args.root:
        print("no retained flight traces")
    return 0


def cmd_traces(args) -> int:
    """Render one retained flight trace: span tree, critical path, bill."""
    from repro.obs import load_flight, render_timeline

    store = LocalFSObjectStore(args.root)
    flight = load_flight(store, args.trace_id, root=args.obs)
    print(
        f"trace {flight.trace_id}  reason={flight.reason}  "
        f"{flight.latency_s * 1000:.2f} ms  slow_phase="
        f"{flight.slow_phase or '-'}  query={flight.query}"
    )
    print()
    print(render_timeline(flight.root()))
    if flight.critical_path:
        print("critical path:")
        for step in flight.critical_path:
            phase = f" [{step['phase']}]" if step.get("phase") else ""
            print(
                f"  {step['name']:<28}{phase:<14} "
                f"self {step['self_s'] * 1000:8.2f} ms  "
                f"total {step['duration_s'] * 1000:8.2f} ms  "
                f"{step['requests']} req"
            )
    if flight.bill is not None:
        bill = flight.bill
        total = float(bill["request_cost_usd"]) + float(
            bill["compute_cost_usd"]
        )
        print(
            f"bill: ${total:.3e} total (requests "
            f"${float(bill['request_cost_usd']):.3e}, compute "
            f"${float(bill['compute_cost_usd']):.3e}); "
            f"{bill['requests']} requests, {bill['bytes_read']} bytes read"
        )
        for phase in bill["phases"]:
            print(
                f"  {phase['phase']:<14} {phase['est_latency_s'] * 1000:8.2f}"
                f" ms  {phase['requests']:4d} req  "
                f"${float(phase['request_cost_usd']) + float(phase['compute_cost_usd']):.3e}"
            )
    return 0


def cmd_slo_check(args) -> int:
    """Evaluate SLOs against a telemetry snapshot; exit 2 on breach."""
    from repro.obs import load_telemetry_json
    from repro.obs.slo import default_slo

    hub = load_telemetry_json(args.telemetry)
    slo = default_slo(
        latency_p99_s=args.latency_p99_s,
        availability=args.availability,
        cost_usd_per_query=args.cost_per_query,
    )
    report = slo.evaluate(hub)
    print(report.describe())
    if report.total_events == 0:
        print("error: telemetry contains no query events", file=sys.stderr)
        return 3
    return 0 if report.ok else 2


def cmd_profile(args) -> int:
    """Traced search(es): timeline, bill, critical path, reconciliation.

    With ``--repeat N`` the same query runs N times and the slowest
    trace (by modeled latency) is the one profiled — the timeline,
    bill, and critical path below describe the worst run, and the
    tail-attribution line compares it against the whole batch.
    """
    from repro.obs import (
        TailSample,
        Tracer,
        attribute,
        critical_path,
        price_iostats,
        render_critical_path,
        render_timeline,
        tail_attribution,
        use_tracer,
        write_spans_jsonl,
    )
    from repro.storage.costs import CostModel
    from repro.storage.latency import LatencyModel

    store, lake = _open(args)
    client = RottnestClient(store, args.index_dir, lake)
    query = _build_query(args)
    tracer = Tracer()  # wall-clock spans; modeled time comes from the bill
    repeat = max(args.repeat, 1)
    before = store.stats.snapshot()
    with use_tracer(tracer):
        if args.max_searchers > 0:
            from repro.serve.executor import SearchExecutor

            with SearchExecutor(
                client, max_searchers=args.max_searchers
            ) as executor:
                for _ in range(repeat):
                    result = executor.search(
                        args.column, query, k=args.k, partition=args.partition
                    )
        else:
            for _ in range(repeat):
                result = client.search(
                    args.column, query, k=args.k, partition=args.partition
                )
    delta = store.stats.snapshot().delta(before)

    roots = [r for r in tracer.pop_finished() if r.name == "search"]
    if not roots:
        raise ReproError("search finished but recorded no span tree")
    costs = CostModel()
    bills = [
        attribute(
            root,
            latency=LatencyModel(),
            costs=costs,
            instance_type=args.instance,
        )
        for root in roots
    ]
    slowest = max(range(len(bills)), key=lambda i: bills[i].est_latency_s)
    root, bill = roots[slowest], bills[slowest]
    print(render_timeline(root))
    print()
    print(bill.describe(costs))
    print()
    print(render_critical_path(critical_path(root)))
    samples = [
        TailSample(
            total_s=b.est_latency_s,
            at_s=float(i),
            query=r.name,
            phase_s={p.phase: p.est_latency_s for p in b.phases},
        )
        for i, (r, b) in enumerate(zip(roots, bills))
    ]
    print(tail_attribution(samples).headline())
    billed = sum(b.total_request_cost_usd(costs) for b in bills)
    reference = price_iostats(delta, costs)
    # Reconcile on the exact integer request/byte counts — the real
    # drift signal (an op outside any phase span) — rather than on the
    # float dollar totals, whose summation order differs between the
    # per-phase bills and the one-shot IOStats pricing.
    attributed = [0] * 7
    for bill in bills:
        for phase in bill.phases:
            for i, n in enumerate(
                (phase.gets, phase.puts, phase.lists, phase.heads,
                 phase.deletes, phase.bytes_read, phase.bytes_written)
            ):
                attributed[i] += n
    observed = [delta.gets, delta.puts, delta.lists, delta.heads,
                delta.deletes, delta.bytes_read, delta.bytes_written]
    verdict = "exact" if attributed == observed else "MISMATCH"
    print(
        f"reconciliation: bill ${billed:.3e} vs IOStats delta "
        f"${reference:.3e} [{verdict}]"
    )
    print(f"# {len(result.matches)} match(es)", file=sys.stderr)
    if args.spans:
        write_spans_jsonl(args.spans, [root])
        print(f"# spans written to {args.spans}", file=sys.stderr)
    return 0 if verdict == "exact" else 2


def cmd_compact(args) -> int:
    store, lake = _open(args)
    client = RottnestClient(store, args.index_dir, lake)
    merged = compact_indices(
        client, args.column, args.type, threshold_bytes=args.threshold_bytes
    )
    print(f"compacted into {len(merged)} merged index file(s)")
    return 0


def cmd_vacuum(args) -> int:
    store, lake = _open(args)
    client = RottnestClient(store, args.index_dir, lake)
    snapshot_id = (
        args.snapshot_id if args.snapshot_id is not None else lake.latest_version()
    )
    report = vacuum_indices(client, snapshot_id=snapshot_id)
    print(
        f"kept {len(report.kept)} index file(s); deleted "
        f"{len(report.deleted_records)} record(s) and "
        f"{len(report.deleted_objects)} object(s)"
    )
    return 0


def cmd_fsck(args) -> int:
    store, lake = _open(args)
    client = RottnestClient(store, args.index_dir, lake)
    from repro.core.fsck import fsck

    report = fsck(client, verify_consistency=not args.fast)
    print(report.describe())
    return 0 if report.invariants_hold else 2


def cmd_chaos(args) -> int:
    """Seeded crash-fault fuzzing of the whole maintenance protocol.

    Runs entirely in memory against a simulated clock (no ``--root``):
    the subject is the protocol, not any particular bucket. Exit 0 on a
    clean run, 2 when an invariant was violated or a search disagreed
    with the oracle — the report then includes a replay command and the
    doomed operation's span timeline.
    """
    from repro.chaos import ChaosConfig, run_chaos

    report = run_chaos(
        ChaosConfig(
            ops=args.ops,
            seed=args.seed,
            clients=args.clients,
            crash_probability=args.crash_probability,
            verify_consistency=not args.fast,
        )
    )
    print(report.describe())
    return 0 if report.ok else 2


def cmd_maintain_bench(args) -> int:
    """Modeled scaling of the parallel maintenance pipeline.

    Runs entirely in memory against a simulated clock (no ``--root``):
    every worker count replays the same maintenance history on a clone
    of one store, and the printed latencies are modeled from the
    request traces. Exit 0 when the widest run clears the 2x modeled
    index speedup the pipeline is built for, 2 otherwise.
    """
    from repro.maintain.bench import run_maintain_bench

    if args.files <= 0 or args.rows <= 0:
        print("error: nothing to benchmark (empty input)", file=sys.stderr)
        return 3
    workers = sorted(set(args.workers) | {1})
    result = run_maintain_bench(
        files=args.files, rows=args.rows, workers=tuple(workers)
    )
    print(result.describe())
    return 0 if result.index_speedup(max(workers)) >= 2.0 else 2


def cmd_shard_bench(args) -> int:
    """Modeled scaling of the sharded scatter-gather router.

    Runs entirely in memory against a simulated clock (no ``--root``):
    one uuid lake is materialized at each shard count, the same query
    stream is routed through every deployment, and a two-replica
    deployment with one injected slow node A/Bs the hedging policy.
    Exit 0 when scatter p50 stays ~flat across shard counts and hedging
    measurably cuts the slow-node p99, 2 otherwise.
    """
    from repro.shard.bench import run_shard_bench

    if args.files <= 0 or args.rows <= 0 or args.queries <= 0:
        print("error: nothing to benchmark (empty input)", file=sys.stderr)
        return 3
    shards = tuple(sorted(set(args.shards) | {1}))
    result = run_shard_bench(
        files=args.files,
        rows=args.rows,
        shard_counts=shards,
        replicas=args.replicas,
        queries=args.queries,
        slow_factor=args.slow_factor,
    )
    print(result.describe())
    return 0 if result.ok else 2


def cmd_ingest_bench(args) -> int:
    """Modeled freshness of the real-time ingest tier.

    Runs entirely in memory against a simulated clock (no ``--root``):
    writers and readers interleave, every acked batch is immediately
    probed (the freshness invariant as recall), periodic drains hand
    rows to the lake, and the drainer's own lag measurements feed the
    gate. Exit 0 when every probe hit and the freshness-lag p99 stays
    within ``--max-lag-s``, 2 otherwise, 3 when there is nothing to
    benchmark.
    """
    from repro.ingest.bench import run_ingest_bench

    if args.batches <= 0 or args.rows <= 0:
        print("error: nothing to benchmark (empty input)", file=sys.stderr)
        return 3
    result = run_ingest_bench(
        batches=args.batches,
        rows=args.rows,
        drain_every=args.drain_every,
        interval_s=args.interval_s,
        probes_per_batch=args.probes,
        max_lag_s=args.max_lag_s,
    )
    print(result.describe())
    return 0 if result.ok else 2


def cmd_crack_bench(args) -> int:
    """Cracked-vs-eager-vs-lazy comparison on a Zipf workload.

    Runs entirely in memory against a simulated clock (no ``--root``):
    the same skewed query trace plays against a fully-eager build, a
    never-indexed lake, and the cracking controller. Exit 0 when the
    cracked deployment spends no more build IO than eager while keeping
    hot-query p50 within ``--p50-budget`` of eager's (and ahead of
    lazy), 2 otherwise, 3 when there is nothing to benchmark.
    """
    from repro.crack.bench import run_crack_bench

    if min(args.files, args.rows, args.ticks, args.queries) <= 0:
        print("error: nothing to benchmark (empty input)", file=sys.stderr)
        return 3
    result = run_crack_bench(
        files=args.files,
        rows=args.rows,
        ticks=args.ticks,
        queries_per_tick=args.queries,
        zipf_s=args.zipf_s,
        hotness_floor=args.hotness_floor,
        p50_budget_ratio=args.p50_budget,
        seed=args.seed,
    )
    print(result.describe())
    return 0 if result.ok else 2


def cmd_info(args) -> int:
    store, lake = _open(args)
    snap = lake.snapshot()
    print(f"table:     {args.table}")
    print(f"version:   {snap.version}")
    print(f"columns:   {', '.join(snap.schema.names)}")
    print(f"files:     {len(snap.files)}")
    print(f"rows:      {snap.num_rows}")
    print(f"bytes:     {snap.total_bytes}")
    print(f"deletions: {len(snap.deletion_vectors)} file(s) with vectors")
    if args.index_dir:
        client = RottnestClient(store, args.index_dir, lake)
        for record in client.meta.records():
            print(
                f"index:     {record.index_type} on {record.column} "
                f"covering {len(record.covered_files)} file(s) "
                f"[{record.size} bytes]"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Rottnest data-lake search (reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, index_dir_required=False):
        p.add_argument("--root", required=True, help="bucket directory")
        p.add_argument("--table", required=True, help="table root key")
        p.add_argument(
            "--index-dir",
            required=index_dir_required,
            help="Rottnest index root key",
        )

    def slo_flags(p):
        p.add_argument(
            "--latency-p99-s", type=float, default=1.0,
            help="p99 modeled-latency objective in seconds",
        )
        p.add_argument(
            "--availability", type=float, default=0.999,
            help="fraction of queries that must complete undegraded",
        )
        p.add_argument(
            "--cost-per-query", type=float, default=5e-3,
            help="observed serve dollars per query budget",
        )

    p = sub.add_parser("create-table", help="create an empty lake table")
    p.add_argument("--root", required=True)
    p.add_argument("--table", required=True)
    p.add_argument("--schema", required=True, help="name:type[:dim],...")
    p.add_argument("--row-group-rows", type=int, default=50_000)
    p.add_argument("--page-target-bytes", type=int, default=1 << 20)
    p.set_defaults(func=cmd_create_table)

    p = sub.add_parser("append", help="append JSONL rows")
    common(p)
    p.add_argument("--jsonl", required=True, help="path or - for stdin")
    p.set_defaults(func=cmd_append)

    p = sub.add_parser("index", help="build/refresh an index on a column")
    common(p, index_dir_required=True)
    p.add_argument("--column", required=True)
    p.add_argument("--type", required=True, help="uuid_trie|bloom|fm|ivf_pq")
    p.add_argument("--param", action="append", help="key=json, repeatable")
    p.set_defaults(func=cmd_index)

    p = sub.add_parser("search", help="search a column")
    common(p, index_dir_required=True)
    p.add_argument("--column", required=True)
    p.add_argument("-k", type=int, default=10)
    p.add_argument("--uuid", help="hex key")
    p.add_argument("--substring")
    p.add_argument("--regex")
    p.add_argument("--vector", help="JSON array of floats")
    p.add_argument(
        "--range", nargs=2, metavar=("LO", "HI"),
        help="inclusive range, JSON values (e.g. 100 200 or '\"a\"' '\"b\"')",
    )
    p.add_argument("--nprobe", type=int, default=8)
    p.add_argument("--refine", type=int, default=100)
    p.add_argument("--partition", help="restrict to one partition")
    p.set_defaults(func=cmd_search)

    p = sub.add_parser(
        "serve-bench",
        help="repeated-query serving benchmark (cache + concurrency)",
    )
    common(p, index_dir_required=True)
    p.add_argument("--column", required=True)
    p.add_argument("-k", type=int, default=10)
    p.add_argument("--uuid", help="hex key")
    p.add_argument("--substring")
    p.add_argument("--regex")
    p.add_argument("--vector", help="JSON array of floats")
    p.add_argument(
        "--range", nargs=2, metavar=("LO", "HI"),
        help="inclusive range, JSON values",
    )
    p.add_argument("--nprobe", type=int, default=8)
    p.add_argument("--refine", type=int, default=100)
    p.add_argument("--partition", help="restrict to one partition")
    p.add_argument("--repeat", type=int, default=4, help="queries per client")
    p.add_argument("--clients", type=int, default=2, help="concurrent clients")
    p.add_argument("--max-searchers", type=int, default=4)
    p.add_argument("--cache-mb", type=int, default=64)
    p.add_argument(
        "--warmup", action="store_true",
        help="pre-load metadata and index roots before the cold query",
    )
    p.add_argument(
        "--telemetry",
        help="write a TELEMETRY_*.json hub snapshot here after the run",
    )
    p.add_argument(
        "--dashboard",
        help="also render the HTML dashboard for this run here",
    )
    p.add_argument(
        "--flight", action="store_true",
        help="run the tail-sampling flight recorder and persist retained "
        "traces + a telemetry snapshot into the bucket",
    )
    p.add_argument(
        "--obs", default="obs",
        help="root key for durable telemetry (flights + snapshots)",
    )
    slo_flags(p)
    p.set_defaults(func=cmd_serve_bench)

    p = sub.add_parser(
        "profile",
        help="trace one search and print its attributed cost/latency bill",
    )
    common(p, index_dir_required=True)
    p.add_argument("--column", required=True)
    p.add_argument("-k", type=int, default=10)
    p.add_argument("--uuid", help="hex key")
    p.add_argument("--substring")
    p.add_argument("--regex")
    p.add_argument("--vector", help="JSON array of floats")
    p.add_argument(
        "--range", nargs=2, metavar=("LO", "HI"),
        help="inclusive range, JSON values",
    )
    p.add_argument("--nprobe", type=int, default=8)
    p.add_argument("--refine", type=int, default=100)
    p.add_argument("--partition", help="restrict to one partition")
    p.add_argument(
        "--max-searchers", type=int, default=0,
        help="profile through the concurrent executor (0 = sequential client)",
    )
    p.add_argument(
        "--instance", default="c6i.2xlarge",
        help="instance type compute time is priced against",
    )
    p.add_argument(
        "--repeat", type=int, default=1,
        help="run the query N times and profile the slowest",
    )
    p.add_argument("--spans", help="also dump the span tree as JSONL here")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("compact", help="merge small index files")
    common(p, index_dir_required=True)
    p.add_argument("--column", required=True)
    p.add_argument("--type", required=True)
    p.add_argument("--threshold-bytes", type=int, default=16 << 20)
    p.set_defaults(func=cmd_compact)

    p = sub.add_parser("vacuum", help="garbage-collect index files")
    common(p, index_dir_required=True)
    p.add_argument("--snapshot-id", type=int, default=None)
    p.set_defaults(func=cmd_vacuum)

    p = sub.add_parser(
        "chaos",
        help="crash-fault fuzz the maintenance protocol (in-memory)",
    )
    p.add_argument("--ops", type=int, default=200, help="protocol steps")
    p.add_argument("--seed", type=int, default=0, help="replayable RNG seed")
    p.add_argument("--clients", type=int, default=3, help="simulated clients")
    p.add_argument(
        "--crash-probability", type=float, default=0.6,
        help="chance each maintenance op gets a crash armed",
    )
    p.add_argument(
        "--fast", action="store_true",
        help="existence-only invariant audits (skip page-table checks)",
    )
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "maintain-bench",
        help="modeled scaling of parallel index build + compaction "
        "(in-memory)",
    )
    p.add_argument(
        "--files", type=int, default=40, help="lake files to index"
    )
    p.add_argument("--rows", type=int, default=32, help="rows per file")
    p.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2, 4],
        help="worker counts to compare (1 is always included)",
    )
    p.set_defaults(func=cmd_maintain_bench)

    p = sub.add_parser(
        "shard-bench",
        help="modeled scaling of the sharded scatter-gather router "
        "(in-memory)",
    )
    p.add_argument(
        "--files", type=int, default=8, help="source lake files to shard"
    )
    p.add_argument("--rows", type=int, default=64, help="rows per file")
    p.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4, 8],
        help="shard counts to compare (1 is always included)",
    )
    p.add_argument(
        "--replicas", type=int, default=2,
        help="replicas per shard in the hedging phase",
    )
    p.add_argument(
        "--queries", type=int, default=24, help="measured queries per phase"
    )
    p.add_argument(
        "--slow-factor", type=float, default=8.0,
        help="latency multiplier of the injected slow node",
    )
    p.set_defaults(func=cmd_shard_bench)

    p = sub.add_parser(
        "ingest-bench",
        help="modeled freshness of the real-time ingest tier (in-memory)",
    )
    p.add_argument(
        "--batches", type=int, default=12, help="ingest batches to write"
    )
    p.add_argument("--rows", type=int, default=24, help="rows per batch")
    p.add_argument(
        "--drain-every", type=int, default=4,
        help="batches between background drains",
    )
    p.add_argument(
        "--interval-s", type=float, default=5.0,
        help="modeled seconds between batches",
    )
    p.add_argument(
        "--probes", type=int, default=4,
        help="fresh probes per batch (each checks a just-acked row)",
    )
    p.add_argument(
        "--max-lag-s", type=float, default=45.0,
        help="freshness-lag p99 budget the gate enforces",
    )
    p.set_defaults(func=cmd_ingest_bench)

    p = sub.add_parser(
        "crack-bench",
        help="cracked vs eager vs lazy on a Zipf workload (in-memory)",
    )
    p.add_argument(
        "--files", type=int, default=8, help="lake files (Zipf ranks)"
    )
    p.add_argument("--rows", type=int, default=200, help="rows per file")
    p.add_argument(
        "--ticks", type=int, default=8, help="controller ticks to run"
    )
    p.add_argument(
        "--queries", type=int, default=10, help="queries per tick"
    )
    p.add_argument(
        "--zipf-s", type=float, default=1.1,
        help="Zipf skew of the query trace over files",
    )
    p.add_argument(
        "--hotness-floor", type=float, default=6.0,
        help="decayed heat a file needs before the controller indexes it",
    )
    p.add_argument(
        "--p50-budget", type=float, default=1.3,
        help="max cracked/eager hot-query p50 ratio the gate allows",
    )
    p.add_argument("--seed", type=int, default=23, help="workload seed")
    p.set_defaults(func=cmd_crack_bench)

    p = sub.add_parser(
        "dashboard",
        help="render the telemetry dashboard HTML from a snapshot",
    )
    p.add_argument(
        "--telemetry", required=True,
        help="TELEMETRY_*.json snapshot (serve-bench --telemetry)",
    )
    p.add_argument("--out", required=True, help="output HTML path")
    p.add_argument("--title", default="Rottnest deployment dashboard")
    p.add_argument(
        "--root",
        help="bucket directory holding durable telemetry (adds the "
        "retained-traces, heat-map, and cross-run trend panels)",
    )
    p.add_argument(
        "--obs", default="obs",
        help="root key for durable telemetry (flights + snapshots)",
    )
    slo_flags(p)
    p.set_defaults(func=cmd_dashboard)

    p = sub.add_parser(
        "metrics",
        help="dump the process metrics registry as Prometheus text "
        "(exit 3 when no samples)",
    )
    p.add_argument("--root", help="bucket directory (opens the lake first)")
    p.add_argument("--table", help="table root key")
    p.add_argument("--index-dir", help="Rottnest index root key")
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser(
        "top",
        help="live-ops summary: SLO burn rates, counters, slowest "
        "retained traces (exit 3 when empty)",
    )
    p.add_argument(
        "--telemetry",
        help="TELEMETRY_*.json snapshot (serve-bench --telemetry)",
    )
    p.add_argument(
        "--root",
        help="bucket directory holding durable telemetry",
    )
    p.add_argument(
        "--obs", default="obs",
        help="root key for durable telemetry (flights + snapshots)",
    )
    p.add_argument("--limit", type=int, default=10, help="traces to show")
    slo_flags(p)
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "traces",
        help="render one retained flight trace (span tree + cost bill)",
    )
    p.add_argument("trace_id", help="trace id or unique prefix")
    p.add_argument("--root", required=True, help="bucket directory")
    p.add_argument(
        "--obs", default="obs",
        help="root key for durable telemetry (flights + snapshots)",
    )
    p.set_defaults(func=cmd_traces)

    p = sub.add_parser(
        "slo-check",
        help="evaluate SLO burn rates against a telemetry snapshot "
        "(exit 2 on breach, 3 on empty telemetry)",
    )
    p.add_argument(
        "--telemetry", required=True,
        help="TELEMETRY_*.json snapshot (serve-bench --telemetry)",
    )
    slo_flags(p)
    p.set_defaults(func=cmd_slo_check)

    p = sub.add_parser("info", help="table + index summary")
    common(p)
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("fsck", help="audit index integrity invariants")
    common(p, index_dir_required=True)
    p.add_argument(
        "--fast", action="store_true",
        help="existence checks only (skip page-table verification)",
    )
    p.set_defaults(func=cmd_fsck)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

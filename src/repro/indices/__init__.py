"""Rottnest index types and the type registry.

Importing this package registers the three built-in index types:
``uuid_trie``, ``fm`` (substring) and ``ivf_pq`` (vector ANN).
"""

from repro.indices.base import (
    ExactQuerier,
    IndexBuilder,
    IndexQuerier,
    RowCandidate,
    ScoringQuerier,
    builder_for,
    querier_for,
    register,
    registered_types,
)
from repro.indices.bloom import BloomBuilder, BloomQuerier
from repro.indices.fm.fm_index import FmBuilder, FmQuerier
from repro.indices.minmax import MinMaxBuilder, MinMaxQuerier
from repro.indices.uuid_trie import UuidTrieBuilder, UuidTrieQuerier
from repro.indices.vector.ivf_pq import IvfPqBuilder, IvfPqQuerier

register(BloomBuilder, BloomQuerier)
register(MinMaxBuilder, MinMaxQuerier)
register(UuidTrieBuilder, UuidTrieQuerier)
register(FmBuilder, FmQuerier)
register(IvfPqBuilder, IvfPqQuerier)

__all__ = [
    "ExactQuerier",
    "IndexBuilder",
    "IndexQuerier",
    "RowCandidate",
    "ScoringQuerier",
    "builder_for",
    "querier_for",
    "register",
    "registered_types",
    "BloomBuilder",
    "MinMaxBuilder",
    "MinMaxQuerier",
    "BloomQuerier",
    "UuidTrieBuilder",
    "UuidTrieQuerier",
    "FmBuilder",
    "FmQuerier",
    "IvfPqBuilder",
    "IvfPqQuerier",
]

"""Bit-string helpers for the binary trie index.

Keys are byte strings viewed as big-endian bit strings (bit 0 is the
most significant bit of byte 0).
"""

from __future__ import annotations


def lcp_bits(a: bytes, b: bytes) -> int:
    """Length in bits of the longest common prefix of two keys."""
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            diff = a[i] ^ b[i]
            return i * 8 + (7 - diff.bit_length() + 1)
    return n * 8


def truncate_bits(key: bytes, bits: int) -> bytes:
    """First ``bits`` bits of ``key``, zero-padded to a whole byte."""
    if bits <= 0:
        return b""
    if bits >= len(key) * 8:
        return bytes(key)
    nbytes = (bits + 7) // 8
    out = bytearray(key[:nbytes])
    spare = nbytes * 8 - bits
    if spare:
        out[-1] &= (0xFF << spare) & 0xFF
    return bytes(out)


def prefix_matches(prefix: bytes, prefix_bits: int, key: bytes) -> bool:
    """Whether the first ``prefix_bits`` bits of ``key`` equal ``prefix``
    (which is already truncated/zero-padded to ``prefix_bits``)."""
    if prefix_bits > len(key) * 8:
        return False
    return truncate_bits(key, prefix_bits) == prefix

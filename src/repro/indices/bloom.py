"""Per-page Bloom-filter index for exact key matching.

A lighter-weight alternative to the binary trie (§V-C1): each data page
gets a Bloom filter over its keys. A lookup tests every page's filter —
all filters are fetched in **one parallel round** (width is cheap on
object storage, §V-B), so latency stays flat while the index is a few
bits per key. The trade-off is a tunable false-positive rate that the
in-situ probing step absorbs, exactly the behaviour the paper's search
protocol is designed around ("Rottnest indices are allowed to return
false positives (e.g. bloom filter)").

Componentization: consecutive pages' filters are packed into
fixed-target components; a query reads all of them in one round. Merge
is concatenation with gid shifts — by far the cheapest compaction of
the index types here.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import ClassVar, Iterable

import numpy as np

from repro.errors import RottnestIndexError
from repro.core.index_file import IndexFileReader, IndexFileWriter
from repro.indices.base import ExactQuerier, IndexBuilder
from repro.util.binio import BinaryReader, BinaryWriter

TYPE_NAME = "bloom"
DEFAULT_BITS_PER_KEY = 12
DEFAULT_NUM_HASHES = 7
DEFAULT_COMPONENT_TARGET_BYTES = 256 * 1024


def _hash_pair(key: bytes) -> tuple[int, int]:
    """Two independent 64-bit hashes (double hashing: h1 + i*h2)."""
    digest = hashlib.blake2b(key, digest_size=16).digest()
    h1 = int.from_bytes(digest[:8], "little")
    h2 = int.from_bytes(digest[8:], "little") | 1  # odd: full period
    return h1, h2


@dataclass
class PageBloom:
    """One page's filter."""

    gid: int
    num_bits: int
    num_hashes: int
    bits: np.ndarray  # uint8 array of ceil(num_bits / 8) bytes

    @classmethod
    def build(
        cls, gid: int, keys: list[bytes], bits_per_key: int, num_hashes: int
    ) -> "PageBloom":
        num_bits = max(8, len(keys) * bits_per_key)
        bits = np.zeros((num_bits + 7) // 8, dtype=np.uint8)
        for key in keys:
            h1, h2 = _hash_pair(bytes(key))
            for i in range(num_hashes):
                bit = (h1 + i * h2) % num_bits
                bits[bit >> 3] |= 1 << (bit & 7)
        return cls(gid=gid, num_bits=num_bits, num_hashes=num_hashes, bits=bits)

    def might_contain(self, key: bytes) -> bool:
        h1, h2 = _hash_pair(bytes(key))
        for i in range(self.num_hashes):
            bit = (h1 + i * h2) % self.num_bits
            if not self.bits[bit >> 3] & (1 << (bit & 7)):
                return False
        return True

    def serialize(self, writer: BinaryWriter) -> None:
        writer.write_uvarint(self.gid)
        writer.write_uvarint(self.num_bits)
        writer.write_uvarint(self.num_hashes)
        writer.write_len_bytes(self.bits.tobytes())

    @classmethod
    def deserialize(cls, reader: BinaryReader) -> "PageBloom":
        gid = reader.read_uvarint()
        num_bits = reader.read_uvarint()
        num_hashes = reader.read_uvarint()
        bits = np.frombuffer(reader.read_len_bytes(), dtype=np.uint8).copy()
        return cls(gid=gid, num_bits=num_bits, num_hashes=num_hashes, bits=bits)


class BloomBuilder(IndexBuilder):
    """In-memory form: one filter per page, in gid order."""

    type_name: ClassVar[str] = TYPE_NAME
    min_rows: ClassVar[int] = 1

    def __init__(self, blooms: list[PageBloom]) -> None:
        self.blooms = blooms

    @classmethod
    def build(
        cls,
        pages: Iterable[tuple[int, list]],
        *,
        bits_per_key: int = DEFAULT_BITS_PER_KEY,
        num_hashes: int = DEFAULT_NUM_HASHES,
        **_params,
    ) -> "BloomBuilder":
        blooms = [
            PageBloom.build(gid, [bytes(v) for v in values],
                            bits_per_key, num_hashes)
            for gid, values in pages
        ]
        if not blooms:
            raise RottnestIndexError("cannot build a bloom index over zero pages")
        blooms.sort(key=lambda b: b.gid)
        return cls(blooms)

    def write(
        self,
        writer: IndexFileWriter,
        *,
        component_target_bytes: int = DEFAULT_COMPONENT_TARGET_BYTES,
    ) -> None:
        component = BinaryWriter()
        count_in_component = 0
        num_components = 0
        counts: list[int] = []

        def flush() -> None:
            nonlocal component, count_in_component, num_components
            if count_in_component:
                header = BinaryWriter()
                header.write_uvarint(count_in_component)
                writer.add_component(
                    f"blooms{num_components}",
                    header.getvalue() + component.getvalue(),
                )
                counts.append(count_in_component)
                num_components += 1
            component = BinaryWriter()
            count_in_component = 0

        for bloom in self.blooms:
            bloom.serialize(component)
            count_in_component += 1
            if len(component) >= component_target_bytes:
                flush()
        flush()
        writer.params["num_components"] = num_components

    @classmethod
    def load(cls, reader: IndexFileReader) -> "BloomBuilder":
        blooms: list[PageBloom] = []
        names = [f"blooms{i}" for i in range(reader.params["num_components"])]
        for blob in reader.components(names):
            r = BinaryReader(blob)
            count = r.read_uvarint()
            for _ in range(count):
                blooms.append(PageBloom.deserialize(r))
        return cls(blooms)

    @classmethod
    def merge(
        cls, parts: list["BloomBuilder"], gid_offsets: list[int]
    ) -> "BloomBuilder":
        """Concatenate filters with shifted gids (O(total filters))."""
        if len(parts) != len(gid_offsets):
            raise RottnestIndexError("parts/offsets length mismatch")
        merged: list[PageBloom] = []
        for part, offset in zip(parts, gid_offsets):
            for bloom in part.blooms:
                merged.append(
                    PageBloom(
                        gid=bloom.gid + offset,
                        num_bits=bloom.num_bits,
                        num_hashes=bloom.num_hashes,
                        bits=bloom.bits,
                    )
                )
        merged.sort(key=lambda b: b.gid)
        return cls(merged)


class BloomQuerier(ExactQuerier):
    """One parallel round: fetch every filter component, test locally."""

    type_name: ClassVar[str] = TYPE_NAME

    def candidate_pages(self, query) -> list[int]:
        key = bytes(query)
        if not key:
            raise RottnestIndexError("cannot search for an empty key")
        names = [
            f"blooms{i}" for i in range(self.reader.params["num_components"])
        ]
        gids: list[int] = []
        for blob in self.reader.components(names):
            r = BinaryReader(blob)
            count = r.read_uvarint()
            for _ in range(count):
                bloom = PageBloom.deserialize(r)
                if bloom.might_contain(key):
                    gids.append(bloom.gid)
        return sorted(gids)

"""Index interfaces and the type registry.

Each Rottnest index type supplies two classes:

* an :class:`IndexBuilder` — in-memory construction from page values,
  merging (for compaction), and serialization into an index file; and
* an :class:`IndexQuerier` — querying the *componentized* on-storage
  layout, fetching only the components a query needs.

Posting granularity is the data page (paper §V-A): exact-match builders
consume ``(global_page_id, values)`` batches and return candidate page
ids; the vector builder additionally keeps per-row offsets so PQ scores
can be refined row by row.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar, Iterable

from repro.errors import UnknownIndexType
from repro.core.index_file import IndexFileReader, IndexFileWriter, PageDirectory


@dataclass(frozen=True)
class RowCandidate:
    """A scored row candidate from a scoring (vector) index."""

    gid: int  # global page id
    offset: int  # row offset within the page
    score: float  # approximate score; smaller = better (a distance)


class IndexBuilder(ABC):
    """In-memory index under construction."""

    type_name: ClassVar[str]
    #: Indexing aborts in favour of brute force below this many rows
    #: (paper footnote 2; vector indices need enough data to train).
    min_rows: ClassVar[int] = 1

    @classmethod
    @abstractmethod
    def build(cls, pages: Iterable[tuple[int, list]], **params) -> "IndexBuilder":
        """Construct from ``(global_page_id, values)`` batches."""

    @abstractmethod
    def write(self, writer: IndexFileWriter) -> None:
        """Serialize into componentized form."""

    @classmethod
    @abstractmethod
    def load(cls, reader: IndexFileReader) -> "IndexBuilder":
        """Reconstruct the in-memory form from an index file (full
        download; used by compaction merges)."""

    @classmethod
    @abstractmethod
    def merge(
        cls, parts: list["IndexBuilder"], gid_offsets: list[int]
    ) -> "IndexBuilder":
        """Merge several indices; part ``i``'s global page ids shift up
        by ``gid_offsets[i]`` in the merged index."""

    @classmethod
    def merge_streaming(
        cls, parts: Iterable["IndexBuilder"], gid_offsets: list[int]
    ) -> "IndexBuilder":
        """Merge from a *lazy* iterable of parts, bounding peak memory.

        Compaction hands ``parts`` as a generator that loads one index
        file at a time; a streaming-capable type folds each part into
        the running merge and drops it before the next load, so peak
        memory is ~(merged-so-far + one part) instead of all parts at
        once. The result must be byte-identical to
        ``merge(list(parts), gid_offsets)`` — compaction's
        content-addressed idempotence depends on it.

        The default materializes the iterable and delegates to
        :meth:`merge`; types whose merge is associative override this.
        """
        return cls.merge(list(parts), list(gid_offsets))


class IndexQuerier(ABC):
    """Query-side view over an opened index file."""

    type_name: ClassVar[str]

    def __init__(self, reader: IndexFileReader) -> None:
        self.reader = reader

    @property
    def directory(self) -> PageDirectory:
        return self.reader.directory


class ExactQuerier(IndexQuerier):
    """Exact-match indices return candidate pages (may include false
    positives; never false negatives)."""

    @abstractmethod
    def candidate_pages(self, query) -> list[int]:
        """Global page ids possibly containing ``query``."""


class ScoringQuerier(IndexQuerier):
    """Scoring indices return approximately-ranked row candidates."""

    @abstractmethod
    def candidates(self, query) -> list[RowCandidate]:
        """Row candidates, best (smallest score) first."""


_REGISTRY: dict[str, tuple[type[IndexBuilder], type[IndexQuerier]]] = {}


def register(builder: type[IndexBuilder], querier: type[IndexQuerier]) -> None:
    name = builder.type_name
    if querier.type_name != name:
        raise ValueError(
            f"builder/querier type mismatch: {name!r} vs {querier.type_name!r}"
        )
    _REGISTRY[name] = (builder, querier)


def builder_for(type_name: str) -> type[IndexBuilder]:
    try:
        return _REGISTRY[type_name][0]
    except KeyError:
        raise UnknownIndexType(
            f"no index type {type_name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def querier_for(type_name: str) -> type[IndexQuerier]:
    try:
        return _REGISTRY[type_name][1]
    except KeyError:
        raise UnknownIndexType(
            f"no index type {type_name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def registered_types() -> list[str]:
    return sorted(_REGISTRY)

"""BWT merging via interleave iteration (Holt & McMillan, 2014).

The paper merges FM indices "with bounded interleave iterations" [43].
Given the BWTs of two texts (each with its own sentinel), the BWT of
the two-string collection is an *interleave* of the input BWTs: every
merged row takes its character from one source, preserving source
order. Starting from the trivial interleave (all of A, then all of B),
each pass applies one stable counting-sort step — equivalently, one
LF-extension — so after ``k`` passes rows are correctly ordered by
their first ``k`` characters. With 0x00 row separators bounding LCPs,
natural corpora converge in a handful of passes; the iteration count is
bounded, and on non-convergence the caller falls back to inversion +
rebuild.

The result is a **multi-string** BWT: two sentinel rows (A's sentinel
sorting before B's). The FM querier supports this directly — its ``C``
array and ``Occ`` handle any number of sentinels — and satellite arrays
(page map, SA samples) weave through the same interleave.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RottnestIndexError

#: Interleave passes before giving up (the paper's bound). Each pass is
#: one vectorized stable sort, so the bound is generous.
DEFAULT_MAX_ITERATIONS = 10_000


class MergeDidNotConverge(RottnestIndexError):
    """The interleave did not reach a fixpoint within the bound."""


def _symbols(
    bwt: bytes, sentinel_indices: list[int], sentinel_symbol: int
) -> np.ndarray:
    """BWT characters in int space; sentinels become a distinct negative
    symbol so every A sentinel sorts before every B sentinel. Sentinels
    *within* one part keep their relative order through the stable sort,
    which is exactly their (already correct) order in that part."""
    arr = np.frombuffer(bwt, dtype=np.uint8).astype(np.int16).copy()
    arr[list(sentinel_indices)] = sentinel_symbol
    return arr


def apply_interleave(
    interleave: np.ndarray, values_a: np.ndarray, values_b: np.ndarray
) -> np.ndarray:
    """Weave two per-row arrays by the merge interleave (False = A)."""
    if len(values_a) + len(values_b) != len(interleave):
        raise RottnestIndexError(
            f"interleave of length {len(interleave)} cannot weave "
            f"{len(values_a)} + {len(values_b)} rows"
        )
    out = np.empty(len(interleave), dtype=np.asarray(values_a).dtype)
    out[~interleave] = values_a
    out[interleave] = values_b
    return out


def merge_bwts(
    bwt_a: bytes,
    sentinels_a: list[int],
    bwt_b: bytes,
    sentinels_b: list[int],
    *,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> tuple[np.ndarray, int]:
    """Interleave vector merging two (possibly multi-string) BWTs.

    Returns ``(interleave, iterations)``: ``interleave[row]`` is False
    when merged row ``row`` comes from A, True from B. Raises
    :class:`MergeDidNotConverge` past ``max_iterations``.
    """
    # A's sentinels (-2) sort before B's (-1): A's texts precede B's.
    sym_a = _symbols(bwt_a, sentinels_a, -2)
    sym_b = _symbols(bwt_b, sentinels_b, -1)
    n = len(sym_a) + len(sym_b)

    interleave = np.zeros(n, dtype=bool)
    interleave[len(sym_a):] = True

    for iteration in range(1, max_iterations + 1):
        # Characters emitted by merged rows in the current order.
        woven = apply_interleave(interleave, sym_a, sym_b)
        # One LF-extension: stable sort rows by emitted character.
        order = np.argsort(woven, kind="stable")
        new_interleave = interleave[order]
        if np.array_equal(new_interleave, interleave):
            return interleave, iteration
        interleave = new_interleave
    raise MergeDidNotConverge(
        f"interleave did not converge within {max_iterations} iterations"
    )


def merged_bwt_and_sentinels(
    interleave: np.ndarray,
    bwt_a: bytes,
    sentinels_a: list[int],
    bwt_b: bytes,
    sentinels_b: list[int],
) -> tuple[bytes, list[int]]:
    """The merged multi-string BWT bytes and its sentinel row indices."""
    sym_a = _symbols(bwt_a, sentinels_a, -2)
    sym_b = _symbols(bwt_b, sentinels_b, -1)
    woven = apply_interleave(interleave, sym_a, sym_b)
    sentinels = np.nonzero(woven < 0)[0].tolist()
    out = woven.copy()
    out[out < 0] = 0  # placeholder byte, as in single BWTs
    return out.astype(np.uint8).tobytes(), sorted(int(s) for s in sentinels)

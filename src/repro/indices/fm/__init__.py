"""FM-index substring search: BWT primitives and the componentized index."""

from repro.indices.fm.bwt import bwt_from_sa, invert_bwt, lf_array, suffix_array
from repro.indices.fm.fm_index import FmBuilder, FmQuerier, page_text

__all__ = [
    "suffix_array",
    "bwt_from_sa",
    "invert_bwt",
    "lf_array",
    "FmBuilder",
    "FmQuerier",
    "page_text",
]

"""Componentized FM-index for exact substring search (§V-C2).

Built over the concatenation of all page texts of the indexed column
(rows separated by 0x00 so matches cannot span rows). The on-storage
layout follows the componentization principle:

* ``blk{i}`` — rank blocks: 256 absolute occurrence counts at the block
  start (u32) + the raw BWT slice. One ``Occ(c, pos)`` evaluation reads
  exactly one block.
* ``pg{i}`` — optional page-map blocks: the global page id of each
  suffix in BWT order. Fast interval→pages but ~log2(#pages) bits per
  character; disable with ``store_pagemap=False`` for the paper's
  storage profile (index ≈ compressed data), where pages are recovered
  through sampled-SA LF-walks instead.
* ``sa{i}`` — sampled suffix array blocks: (local BWT offset, text
  position) pairs for suffixes whose text position is a multiple of the
  sample rate.
* ``pagelens`` — per-page text lengths + global page ids; enough to
  map positions to pages and to rebuild the index from inverted text.

The structure is a **multi-string** FM-index: a fresh build has one
sentinel, and every compaction merge (Holt-McMillan interleave, see
:mod:`repro.indices.fm.merge`) adds the parts' sentinels to the
collection. Patterns never contain the 0x00 separator, so counting and
locating behave exactly as over the concatenated text.

A substring query runs classic backward search: one dependent round of
(at most two) block reads per pattern character, then a round resolving
pages. Depth is O(|pattern|) — the paper's depth-bound access profile.
"""

from __future__ import annotations

from typing import ClassVar, Iterable

import numpy as np

from repro.errors import RottnestIndexError
from repro.core.index_file import IndexFileReader, IndexFileWriter
from repro.indices.base import ExactQuerier, IndexBuilder
from repro.indices.fm.bwt import (
    bwt_from_sa,
    invert_bwt,
    invert_multi_bwt,
    suffix_array,
)
from repro.indices.fm.merge import (
    MergeDidNotConverge,
    apply_interleave,
    merge_bwts,
    merged_bwt_and_sentinels,
)
from repro.util.binio import BinaryReader, BinaryWriter

TYPE_NAME = "fm"
DEFAULT_BLOCK_SIZE = 32 * 1024
DEFAULT_SAMPLE_RATE = 64
SEPARATOR = 0  # byte placed after every row


def page_text(values: list[str]) -> bytes:
    """Concatenate a page's rows with trailing separators."""
    out = bytearray()
    for value in values:
        encoded = value.encode("utf-8")
        if SEPARATOR in encoded:
            raise RottnestIndexError("rows must not contain NUL bytes")
        out += encoded
        out.append(SEPARATOR)
    return bytes(out)


class FmBuilder(IndexBuilder):
    """In-memory FM-index state (possibly multi-string)."""

    type_name: ClassVar[str] = TYPE_NAME
    min_rows: ClassVar[int] = 1

    def __init__(
        self,
        bwt: bytes,
        sentinels: list[int],
        pagemap: np.ndarray,
        samples: list[tuple[int, int]],
        page_lens: list[int],
        page_gids: list[int],
        block_size: int,
        sample_rate: int,
        store_pagemap: bool = True,
    ) -> None:
        self.bwt = bwt
        self.sentinels = sorted(int(s) for s in sentinels)
        self.pagemap = pagemap
        self.samples = samples
        self.page_lens = page_lens
        self.page_gids = page_gids
        self.block_size = block_size
        self.sample_rate = sample_rate
        self.store_pagemap = store_pagemap

    @property
    def sentinel_index(self) -> int:
        """First sentinel row (the only one for fresh builds)."""
        return self.sentinels[0]

    @property
    def n(self) -> int:
        return len(self.bwt)

    @property
    def text_length(self) -> int:
        """Total characters across all texts (excludes sentinels)."""
        return self.n - len(self.sentinels)

    # -- construction ---------------------------------------------------
    @classmethod
    def build(
        cls,
        pages: Iterable[tuple[int, list]],
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        sample_rate: int = DEFAULT_SAMPLE_RATE,
        store_pagemap: bool = True,
        **_params,
    ) -> "FmBuilder":
        """Build from page batches.

        ``store_pagemap=True`` materializes the per-position page map
        (fast interval→pages, but the map costs ~log2(#pages) bits per
        character). ``False`` is the paper's storage profile: pages are
        recovered at query time through sampled-suffix-array LF-walks,
        keeping the index close to the size of the compressed data.
        """
        page_gids: list[int] = []
        page_lens: list[int] = []
        chunks: list[bytes] = []
        for gid, values in pages:
            text = page_text(values)
            page_gids.append(gid)
            page_lens.append(len(text))
            chunks.append(text)
        if not chunks:
            raise RottnestIndexError("cannot build an FM-index over zero pages")
        return cls._from_text(
            b"".join(chunks),
            page_lens,
            page_gids,
            block_size=block_size,
            sample_rate=sample_rate,
            store_pagemap=store_pagemap,
        )

    @classmethod
    def _from_text(
        cls,
        text: bytes,
        page_lens: list[int],
        page_gids: list[int],
        *,
        block_size: int,
        sample_rate: int,
        store_pagemap: bool = True,
    ) -> "FmBuilder":
        if sum(page_lens) != len(text):
            raise RottnestIndexError("page lengths do not sum to text length")
        sa = suffix_array(text)
        bwt, sentinel_index = bwt_from_sa(text, sa)
        # Page of each suffix start; the sentinel suffix (start == n)
        # points past the text and is parked on the last page — it can
        # only be "matched" by the empty pattern, which is rejected.
        starts = np.concatenate(
            ([0], np.cumsum(np.asarray(page_lens, dtype=np.int64)))
        )
        page_index = np.searchsorted(starts, sa, side="right") - 1
        page_index = np.minimum(page_index, len(page_lens) - 1)
        pagemap = np.asarray(page_gids, dtype=np.uint32)[page_index]
        sampled = np.nonzero(sa % sample_rate == 0)[0]
        samples = [(int(i), int(sa[i])) for i in sampled]
        return cls(
            bwt=bwt,
            sentinels=[sentinel_index],
            pagemap=pagemap,
            samples=samples,
            page_lens=list(page_lens),
            page_gids=list(page_gids),
            block_size=block_size,
            sample_rate=sample_rate,
            store_pagemap=store_pagemap,
        )

    # -- serialization ------------------------------------------------
    def write(self, writer: IndexFileWriter) -> None:
        arr = np.frombuffer(self.bwt, dtype=np.uint8)
        block = self.block_size
        num_blocks = -(-self.n // block)
        # Narrowest page-map dtype keeps the index near the size of the
        # compressed data (the paper's substring-index storage profile).
        pg_dtype = _pagemap_dtype(
            int(self.pagemap.max()) if len(self.pagemap) else 0
        )
        # Absolute raw-byte counts before each block (sentinel slots are
        # counted as raw 0x00 here; queriers correct using the sentinel
        # list in params).
        counts = np.zeros(256, dtype=np.uint32)
        sample_cursor = 0
        for b in range(num_blocks):
            lo, hi = b * block, min((b + 1) * block, self.n)
            payload = BinaryWriter()
            payload.write_bytes(counts.astype("<u4").tobytes())
            payload.write_bytes(self.bwt[lo:hi])
            writer.add_component(f"blk{b}", payload.getvalue())
            counts += np.bincount(arr[lo:hi], minlength=256).astype(np.uint32)

            if self.store_pagemap:
                writer.add_component(
                    f"pg{b}", self.pagemap[lo:hi].astype(pg_dtype).tobytes()
                )

            sa_payload = BinaryWriter()
            in_block = []
            while (
                sample_cursor < len(self.samples)
                and self.samples[sample_cursor][0] < hi
            ):
                in_block.append(self.samples[sample_cursor])
                sample_cursor += 1
            sa_payload.write_uvarint(len(in_block))
            prev = lo
            for bwt_index, text_pos in in_block:
                sa_payload.write_uvarint(bwt_index - prev)
                prev = bwt_index
                sa_payload.write_uvarint(text_pos)
            writer.add_component(f"sa{b}", sa_payload.getvalue())

        lens_payload = BinaryWriter()
        lens_payload.write_uvarint(len(self.page_lens))
        for length, gid in zip(self.page_lens, self.page_gids):
            lens_payload.write_uvarint(length)
            lens_payload.write_uvarint(gid)
        writer.add_component("pagelens", lens_payload.getvalue())

        writer.params.update(
            {
                "n": self.n,
                "block_size": block,
                "num_blocks": num_blocks,
                "sample_rate": self.sample_rate,
                "sentinels": list(self.sentinels),
                "pg_dtype": pg_dtype,
                "has_pagemap": self.store_pagemap,
            }
        )

    @classmethod
    def load(cls, reader: IndexFileReader) -> "FmBuilder":
        params = reader.params
        num_blocks = params["num_blocks"]
        blk_blobs = reader.components([f"blk{b}" for b in range(num_blocks)])
        bwt = b"".join(blob[1024:] for blob in blk_blobs)
        pg_dtype = params.get("pg_dtype", "<u4")
        has_pagemap = params.get("has_pagemap", True)
        samples: list[tuple[int, int]] = []
        block = params["block_size"]
        for b, blob in enumerate(
            reader.components([f"sa{b}" for b in range(num_blocks)])
        ):
            r = BinaryReader(blob)
            count = r.read_uvarint()
            cursor = b * block
            for _ in range(count):
                cursor += r.read_uvarint()
                samples.append((cursor, r.read_uvarint()))
        lens_reader = BinaryReader(reader.component("pagelens"))
        num_pages = lens_reader.read_uvarint()
        page_lens, page_gids = [], []
        for _ in range(num_pages):
            page_lens.append(lens_reader.read_uvarint())
            page_gids.append(lens_reader.read_uvarint())
        if has_pagemap:
            pagemap = np.concatenate(
                [
                    np.frombuffer(blob, dtype=pg_dtype).astype(np.uint32)
                    for blob in reader.components(
                        [f"pg{b}" for b in range(num_blocks)]
                    )
                ]
            )
        else:
            # Not materialized; the merge paths recompute it if needed.
            pagemap = np.empty(0, dtype=np.uint32)
        return cls(
            bwt=bwt,
            sentinels=params["sentinels"],
            pagemap=pagemap,
            samples=samples,
            page_lens=page_lens,
            page_gids=page_gids,
            block_size=block,
            sample_rate=params["sample_rate"],
            store_pagemap=has_pagemap,
        )

    # -- merging --------------------------------------------------------
    @classmethod
    def merge(
        cls, parts: list["FmBuilder"], gid_offsets: list[int]
    ) -> "FmBuilder":
        """Merge by bounded interleave iteration (paper §V-C2, [43]).

        Parts fold pairwise through :func:`merge_bwts`; satellite arrays
        weave through the same interleave. Falls back to
        :meth:`merge_rebuild` if an interleave fails to converge within
        its bound.
        """
        if len(parts) != len(gid_offsets):
            raise RottnestIndexError("parts/offsets length mismatch")
        try:
            shifted = [
                part._with_gid_offset(offset)
                for part, offset in zip(parts, gid_offsets)
            ]
            merged = shifted[0]
            for part in shifted[1:]:
                merged = cls._merge_two(merged, part)
            return merged
        except MergeDidNotConverge:
            return cls.merge_rebuild(parts, gid_offsets)

    @classmethod
    def merge_rebuild(
        cls, parts: list["FmBuilder"], gid_offsets: list[int]
    ) -> "FmBuilder":
        """Merge by BWT inversion + from-scratch rebuild.

        Produces a single-sentinel index byte-identical to building over
        the concatenated pages; slower than the interleave merge but the
        exact reference (and the fallback for pathological inputs).
        Never needs the raw Parquet files.
        """
        if len(parts) != len(gid_offsets):
            raise RottnestIndexError("parts/offsets length mismatch")
        texts = [_invert_text(part) for part in parts]
        page_lens: list[int] = []
        page_gids: list[int] = []
        for part, offset in zip(parts, gid_offsets):
            page_lens.extend(part.page_lens)
            page_gids.extend(g + offset for g in part.page_gids)
        return cls._from_text(
            b"".join(texts),
            page_lens,
            page_gids,
            block_size=max(p.block_size for p in parts),
            sample_rate=max(p.sample_rate for p in parts),
            store_pagemap=all(p.store_pagemap for p in parts),
        )

    @classmethod
    def merge_streaming(
        cls, parts: Iterable["FmBuilder"], gid_offsets: list[int]
    ) -> "FmBuilder":
        """Streaming :meth:`merge`: fold one part at a time.

        The interleave fold is left-associative already, so consuming a
        lazy iterable part-by-part gives the same ``_merge_two`` call
        sequence — and the same bytes — as the materialized merge while
        holding at most the running merge plus one loaded part.

        If an interleave fails to converge, we cannot replay
        :meth:`merge_rebuild` over the original parts (they are gone);
        instead the running merge's BWT is inverted back to the
        concatenated text of everything consumed so far, remaining
        parts append their own inverted texts, and one ``_from_text``
        rebuild finishes the job. Rebuild parameters (max block size,
        max sample rate, AND of pagemap flags) are tracked per original
        part, matching the materialized fallback exactly.
        """
        offsets = list(gid_offsets)
        it = iter(parts)
        merged: "FmBuilder | None" = None
        block = 0
        rate = 0
        pagemap_all = True
        n = 0
        # (texts, page_lens, page_gids) once an interleave diverges.
        rebuild: tuple[list[bytes], list[int], list[int]] | None = None
        # zip pulls offsets first so a surplus part stays in ``it`` for
        # the leftover check below instead of being silently consumed.
        for offset, part in zip(offsets, it):
            n += 1
            block = max(block, part.block_size)
            rate = max(rate, part.sample_rate)
            pagemap_all = pagemap_all and part.store_pagemap
            if rebuild is not None:
                texts, lens, gids = rebuild
                texts.append(_invert_text(part))
                lens.extend(part.page_lens)
                gids.extend(g + offset for g in part.page_gids)
                continue
            shifted = part._with_gid_offset(offset)
            if merged is None:
                merged = shifted
                continue
            try:
                merged = cls._merge_two(merged, shifted)
            except MergeDidNotConverge:
                rebuild = (
                    [_invert_text(merged), _invert_text(part)],
                    list(merged.page_lens) + list(part.page_lens),
                    list(merged.page_gids)
                    + [g + offset for g in part.page_gids],
                )
        if n != len(offsets) or n == 0 or next(it, None) is not None:
            raise RottnestIndexError("parts/offsets length mismatch")
        if rebuild is not None:
            texts, lens, gids = rebuild
            return cls._from_text(
                b"".join(texts),
                lens,
                gids,
                block_size=block,
                sample_rate=rate,
                store_pagemap=pagemap_all,
            )
        return merged

    def _with_gid_offset(self, offset: int) -> "FmBuilder":
        if offset == 0:
            return self
        pagemap = self.pagemap
        if len(pagemap):
            pagemap = pagemap + np.uint32(offset)
        return FmBuilder(
            bwt=self.bwt,
            sentinels=self.sentinels,
            pagemap=pagemap,
            samples=self.samples,
            page_lens=self.page_lens,
            page_gids=[g + offset for g in self.page_gids],
            block_size=self.block_size,
            sample_rate=self.sample_rate,
            store_pagemap=self.store_pagemap,
        )

    @classmethod
    def _merge_two(cls, a: "FmBuilder", b: "FmBuilder") -> "FmBuilder":
        interleave, _iterations = merge_bwts(
            a.bwt, a.sentinels, b.bwt, b.sentinels
        )
        bwt, sentinels = merged_bwt_and_sentinels(
            interleave, a.bwt, a.sentinels, b.bwt, b.sentinels
        )
        both_pagemaps = a.store_pagemap and b.store_pagemap
        if both_pagemaps and len(a.pagemap) and len(b.pagemap):
            pagemap = apply_interleave(interleave, a.pagemap, b.pagemap)
        else:
            pagemap = np.empty(0, dtype=np.uint32)
            both_pagemaps = False
        # Satellite samples: remap BWT rows through the interleave and
        # shift B's text positions past A's total text length.
        rows_a = np.nonzero(~interleave)[0]
        rows_b = np.nonzero(interleave)[0]
        shift = a.text_length
        samples = sorted(
            [(int(rows_a[i]), pos) for i, pos in a.samples]
            + [(int(rows_b[i]), pos + shift) for i, pos in b.samples]
        )
        return cls(
            bwt=bwt,
            sentinels=sentinels,
            pagemap=pagemap,
            samples=samples,
            page_lens=a.page_lens + b.page_lens,
            page_gids=a.page_gids + b.page_gids,
            block_size=max(a.block_size, b.block_size),
            sample_rate=max(a.sample_rate, b.sample_rate),
            store_pagemap=both_pagemaps,
        )


class FmQuerier(ExactQuerier):
    """Backward search + page resolution over the componentized layout."""

    type_name: ClassVar[str] = TYPE_NAME

    #: Cap on LF-walk locates for one query in page-map-less mode.
    MAX_LOCATED_MATCHES = 10_000

    def __init__(self, reader: IndexFileReader) -> None:
        super().__init__(reader)
        params = reader.params
        self.n: int = params["n"]
        self.block_size: int = params["block_size"]
        self.num_blocks: int = params["num_blocks"]
        self.sentinels: list[int] = sorted(params["sentinels"])
        self._sentinel_arr = np.asarray(self.sentinels, dtype=np.int64)
        self._block_cache: dict[int, bytes] = {}
        self._decoded: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._sa_cache: dict[int, bytes] = {}
        self._c_array: np.ndarray | None = None

    # -- low-level ------------------------------------------------------
    def _block(self, b: int) -> bytes:
        if b not in self._block_cache:
            self._block_cache[b] = self.reader.component(f"blk{b}")
        return self._block_cache[b]

    def _block_arrays(self, b: int) -> tuple[np.ndarray, np.ndarray]:
        """Decoded views of one block: ``(cumulative counts, BWT chars)``.

        Decoding (frombuffer + dtype widening) happens once per block
        and is cached, so the backward-search inner loop is pure numpy
        rank arithmetic over resident arrays — every extension step of
        :meth:`interval` otherwise re-parses the same hot blocks.
        """
        cached = self._decoded.get(b)
        if cached is None:
            blob = self._block(b)
            base = np.frombuffer(blob, dtype="<u4", count=256).astype(np.int64)
            chars = np.frombuffer(blob, dtype=np.uint8, offset=1024)
            cached = (base, chars)
            self._decoded[b] = cached
        return cached

    def _prefetch_blocks(self, blocks: list[int]) -> None:
        missing = sorted({b for b in blocks if b not in self._block_cache})
        if not missing:
            return
        blobs = self.reader.components([f"blk{b}" for b in missing])
        for b, blob in zip(missing, blobs):
            self._block_cache[b] = blob

    def _sentinels_before(self, pos: int) -> int:
        # Sentinel positions are sorted: the count of those < pos is a
        # binary search, not a Python scan.
        return int(np.searchsorted(self._sentinel_arr, pos, side="left"))

    def _occ(self, char: int, pos: int) -> int:
        """Occurrences of ``char`` in BWT[0:pos), sentinel-corrected."""
        if pos <= 0:
            return 0
        pos = min(pos, self.n)
        b = (pos - 1) // self.block_size
        base, chars = self._block_arrays(b)
        local = pos - b * self.block_size
        occ = int(base[char]) + int(np.count_nonzero(chars[:local] == char))
        if char == 0:
            occ -= self._sentinels_before(pos)
        return occ

    @property
    def c_array(self) -> np.ndarray:
        """``C[c]`` = BWT characters (incl. sentinels) smaller than c."""
        if self._c_array is None:
            base, tail = self._block_arrays(self.num_blocks - 1)
            totals = base + np.bincount(tail, minlength=256)
            totals[0] -= len(self.sentinels)
            c = np.empty(257, dtype=np.int64)
            c[0] = len(self.sentinels)
            c[1:] = len(self.sentinels) + np.cumsum(totals)
            self._c_array = c
        return self._c_array

    # -- search -----------------------------------------------------
    def interval(self, needle: bytes) -> tuple[int, int]:
        """Backward search; returns the matched BWT interval [lo, hi)."""
        if not needle:
            raise RottnestIndexError("empty search pattern")
        if SEPARATOR in needle:
            raise RottnestIndexError("pattern must not contain NUL bytes")
        c = self.c_array
        lo, hi = 0, self.n
        for char in reversed(needle):
            self.reader.barrier()  # each extension depends on the last
            self._prefetch_blocks(
                [max(0, (p - 1)) // self.block_size for p in (lo, hi) if p > 0]
            )
            lo = int(c[char]) + self._occ(char, lo)
            hi = int(c[char]) + self._occ(char, hi)
            if lo >= hi:
                return lo, lo
        return lo, hi

    def count(self, needle) -> int:
        """Exact number of (possibly overlapping) occurrences."""
        lo, hi = self.interval(_as_bytes(needle))
        return hi - lo

    def candidate_pages(self, query, limit: int | None = None) -> list[int]:
        """Distinct global page ids containing the pattern.

        With a stored page map, reads only the page-map blocks covering
        the matched interval. Without one (the paper's storage profile),
        each match position is recovered by a sampled-SA LF-walk and
        mapped to its page through the page-length table. ``limit``
        stops early once that many distinct pages are found.
        """
        lo, hi = self.interval(_as_bytes(query))
        if lo >= hi:
            return []
        self.reader.barrier()
        if self.reader.params.get("has_pagemap", True):
            return self._pages_from_pagemap(lo, hi, limit)
        return self._pages_from_walks(lo, hi, limit)

    def _pages_from_pagemap(
        self, lo: int, hi: int, limit: int | None
    ) -> list[int]:
        pages: set[int] = set()
        pg_dtype = self.reader.params.get("pg_dtype", "<u4")
        first_block = lo // self.block_size
        last_block = (hi - 1) // self.block_size
        for b in range(first_block, last_block + 1):
            blob = self.reader.component(f"pg{b}")
            arr = np.frombuffer(blob, dtype=pg_dtype)
            block_lo = max(lo - b * self.block_size, 0)
            block_hi = min(hi - b * self.block_size, len(arr))
            pages.update(np.unique(arr[block_lo:block_hi]).tolist())
            if limit is not None and len(pages) >= limit:
                break
        return sorted(pages)

    def _pages_from_walks(self, lo: int, hi: int, limit: int | None) -> list[int]:
        starts, gids = self._page_starts()
        pages: set[int] = set()
        for row in range(lo, min(hi, lo + self.MAX_LOCATED_MATCHES)):
            position = self._resolve(row)
            page_index = int(np.searchsorted(starts, position, side="right")) - 1
            page_index = min(max(page_index, 0), len(gids) - 1)
            pages.add(int(gids[page_index]))
            if limit is not None and len(pages) >= limit:
                break
        return sorted(pages)

    def _page_starts(self):
        if not hasattr(self, "_page_starts_cache"):
            r = BinaryReader(self.reader.component("pagelens"))
            count = r.read_uvarint()
            lens, gids = [], []
            for _ in range(count):
                lens.append(r.read_uvarint())
                gids.append(r.read_uvarint())
            starts = np.concatenate(
                ([0], np.cumsum(np.asarray(lens, dtype=np.int64))[:-1])
            )
            self._page_starts_cache = (starts, np.asarray(gids, dtype=np.uint32))
        return self._page_starts_cache

    def locate_positions(self, needle, limit: int = 100) -> list[int]:
        """Exact text offsets of up to ``limit`` matches (sampled-SA
        LF-walks; each step is a dependent block read)."""
        lo, hi = self.interval(_as_bytes(needle))
        positions = []
        for i in range(lo, min(hi, lo + limit)):
            positions.append(self._resolve(i))
        return sorted(positions)

    def _resolve(self, row: int) -> int:
        steps = 0
        j = row
        while True:
            sample = self._sample_at(j)
            if sample is not None:
                return sample + steps
            _, chars = self._block_arrays(j // self.block_size)
            char = int(chars[j % self.block_size])
            self.reader.barrier()
            j = int(self.c_array[char]) + self._occ(char, j)
            steps += 1

    def _sample_at(self, bwt_index: int) -> int | None:
        block = bwt_index // self.block_size
        if block not in self._sa_cache:
            self._sa_cache[block] = self.reader.component(f"sa{block}")
        blob = self._sa_cache[block]
        r = BinaryReader(blob)
        count = r.read_uvarint()
        cursor = block * self.block_size
        for _ in range(count):
            cursor += r.read_uvarint()
            value = r.read_uvarint()
            if cursor == bwt_index:
                return value
            if cursor > bwt_index:
                return None
        return None


def _invert_text(part: "FmBuilder") -> bytes:
    """The original concatenated text behind one (possibly merged) part."""
    if len(part.sentinels) == 1:
        return invert_bwt(part.bwt, part.sentinels[0])
    return b"".join(invert_multi_bwt(part.bwt, part.sentinels))


def _pagemap_dtype(max_gid: int) -> str:
    if max_gid < 256:
        return "<u1"
    if max_gid < 65536:
        return "<u2"
    return "<u4"


def _as_bytes(query) -> bytes:
    if isinstance(query, str):
        return query.encode("utf-8")
    return bytes(query)

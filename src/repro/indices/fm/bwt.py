"""Suffix array and Burrows-Wheeler transform primitives.

The substring index (§V-C2) is an FM-index over the concatenated page
texts. Construction uses prefix-doubling (O(n log^2 n)) on numpy arrays
— pure Python SA-IS would be far slower at the MB scales this repo runs.

Conventions:

* input text is ``bytes``; a unique sentinel smaller than every byte is
  appended internally (represented as -1 in int space),
* the suffix array has ``len(text) + 1`` entries; entry 0 is the
  sentinel suffix,
* the BWT is returned as a byte array of the same length with the
  sentinel's slot holding 0x00, plus the index of that slot.
"""

from __future__ import annotations

import numpy as np


def suffix_array(text: bytes) -> np.ndarray:
    """Suffix array (including the sentinel suffix) of ``text``.

    Returns an int64 array ``sa`` of length ``len(text) + 1`` where
    ``sa[i]`` is the start of the i-th smallest suffix; ``sa[0] ==
    len(text)`` (the sentinel).
    """
    n = len(text) + 1
    # Ints, with sentinel -1 (smaller than any byte).
    s = np.empty(n, dtype=np.int64)
    if len(text):
        s[:-1] = np.frombuffer(text, dtype=np.uint8)
    s[-1] = -1
    rank = s.copy()
    k = 1
    idx = np.arange(n, dtype=np.int64)
    while True:
        # Key = (rank[i], rank[i + k]) with -1 past the end.
        second = np.full(n, -1, dtype=np.int64)
        second[: n - k] = rank[k:]
        order = np.lexsort((second, rank))
        r1 = rank[order]
        r2 = second[order]
        changed = np.empty(n, dtype=np.int64)
        changed[0] = 0
        changed[1:] = (r1[1:] != r1[:-1]) | (r2[1:] != r2[:-1])
        new_rank = np.empty(n, dtype=np.int64)
        new_rank[order] = np.cumsum(changed)
        rank = new_rank
        if rank[order[-1]] == n - 1:
            return order
        k *= 2


def bwt_from_sa(text: bytes, sa: np.ndarray) -> tuple[bytes, int]:
    """BWT of ``text`` given its suffix array.

    Returns ``(bwt, sentinel_index)``: ``bwt[i]`` is the character
    preceding suffix ``sa[i]`` (0x00 placeholder where the preceding
    character is the sentinel, at position ``sentinel_index``).
    """
    n = len(sa)
    arr = np.empty(n, dtype=np.uint8)
    t = np.frombuffer(text, dtype=np.uint8)
    prev = sa - 1
    sentinel_index = int(np.nonzero(sa == 0)[0][0])
    prev_safe = np.where(prev >= 0, prev, 0)
    if len(text):
        arr[:] = t[prev_safe]
    arr[sentinel_index] = 0
    return arr.tobytes(), sentinel_index


def char_counts(bwt: bytes, sentinel_index: int) -> np.ndarray:
    """``C`` array: ``C[c]`` = number of BWT characters smaller than
    ``c``, counting the sentinel (always smallest) but not as a byte.

    Returns int64 array of length 257 where ``C[256]`` is the total.
    """
    arr = np.frombuffer(bwt, dtype=np.uint8)
    counts = np.bincount(arr, minlength=256).astype(np.int64)
    counts[0] -= 1  # the sentinel placeholder is not a real 0x00
    c = np.empty(257, dtype=np.int64)
    c[0] = 1  # the sentinel sorts before everything
    c[1:] = 1 + np.cumsum(counts)
    return c


def lf_array(bwt: bytes, sentinel_index: int) -> np.ndarray:
    """Full LF-mapping (int64 per position), used to invert a BWT.

    ``lf[i]`` is the BWT row of the suffix starting one character before
    row ``i``'s suffix; the sentinel row maps to row 0.
    """
    arr = np.frombuffer(bwt, dtype=np.uint8).astype(np.int64)
    n = len(arr)
    c = char_counts(bwt, sentinel_index)
    lf = np.zeros(n, dtype=np.int64)
    # Occurrence ranks per character, excluding the sentinel slot.
    mask = np.ones(n, dtype=bool)
    mask[sentinel_index] = False
    for ch in np.unique(arr[mask]):
        positions = np.nonzero((arr == ch) & mask)[0]
        lf[positions] = c[ch] + np.arange(len(positions))
    lf[sentinel_index] = 0
    return lf


def lf_array_multi(bwt: bytes, sentinel_indices: list[int]) -> np.ndarray:
    """LF-mapping for a multi-string BWT with ``k`` sentinels.

    Sentinel rows (whose character is a sentinel) map to 0; they are
    never walked from because each is the position-0 suffix of its text,
    which the sampled-SA layer marks as sampled.
    """
    arr = np.frombuffer(bwt, dtype=np.uint8).astype(np.int64)
    n = len(arr)
    k = len(sentinel_indices)
    mask = np.ones(n, dtype=bool)
    mask[list(sentinel_indices)] = False
    counts = np.bincount(arr[mask], minlength=256)
    c = np.empty(257, dtype=np.int64)
    c[0] = k
    c[1:] = k + np.cumsum(counts)
    lf = np.zeros(n, dtype=np.int64)
    for ch in np.unique(arr[mask]):
        positions = np.nonzero((arr == ch) & mask)[0]
        lf[positions] = c[ch] + np.arange(len(positions))
    return lf


def invert_multi_bwt(bwt: bytes, sentinel_indices: list[int]) -> list[bytes]:
    """Recover every text of a multi-string BWT, in collection order.

    Rows ``0..k-1`` are the sentinel suffixes of texts ``0..k-1``; the
    walk from row ``i`` spells text ``i`` back to front and terminates
    when it reaches the text's own sentinel character.
    """
    k = len(sentinel_indices)
    if k == 0:
        raise ValueError("need at least one sentinel")
    sentinel_set = set(int(s) for s in sentinel_indices)
    lf = lf_array_multi(bwt, sentinel_indices)
    arr = np.frombuffer(bwt, dtype=np.uint8)
    texts = []
    for i in range(k):
        chars = bytearray()
        j = i
        while j not in sentinel_set:
            chars.append(arr[j])
            j = lf[j]
        texts.append(bytes(reversed(chars)))
    return texts


def invert_bwt(bwt: bytes, sentinel_index: int) -> bytes:
    """Recover the original text from its BWT (without the sentinel)."""
    n = len(bwt)
    if n == 1:
        return b""
    lf = lf_array(bwt, sentinel_index)
    arr = np.frombuffer(bwt, dtype=np.uint8)
    out = np.empty(n - 1, dtype=np.uint8)
    # Row 0 always holds the sentinel suffix, so bwt[0] is the last text
    # character; LF then walks the text back to front.
    j = 0
    for k in range(n - 2, -1, -1):
        out[k] = arr[j]
        j = lf[j]
    return out.tobytes()

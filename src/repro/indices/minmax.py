"""Min-max zone-map index: per-page (min, max) of a comparable column.

This is the indexing primitive Parquet data lakes already rely on —
lifted out of the file footers into a Rottnest index so it can serve
planned point/range probes without opening any footer. It is also the
paper's §II-B negative exhibit: on clustered or sorted columns (time,
monotonically increasing ids) a probe touches few pages, but on
high-cardinality random columns every page's [min, max] spans the whole
key space and the "index" prunes nothing. The measurable contrast with
the trie/bloom indices is what motivates Rottnest in the first place.

Layout: entries packed into components of consecutive pages; a probe
reads every component in one parallel round (the structure is tiny:
two values per page).
"""

from __future__ import annotations

import struct
from typing import ClassVar, Iterable

from repro.errors import RottnestIndexError
from repro.core.index_file import IndexFileReader, IndexFileWriter
from repro.indices.base import ExactQuerier, IndexBuilder
from repro.util.binio import BinaryReader, BinaryWriter

TYPE_NAME = "minmax"
DEFAULT_COMPONENT_TARGET_BYTES = 256 * 1024

_TAG_INT = "i"
_TAG_STR = "s"
_TAG_BYTES = "b"


def _tag_of(value) -> str:
    if isinstance(value, bool):
        raise RottnestIndexError("boolean columns are not comparable keys")
    if isinstance(value, int):
        return _TAG_INT
    if isinstance(value, str):
        return _TAG_STR
    if isinstance(value, (bytes, bytearray)):
        return _TAG_BYTES
    raise RottnestIndexError(
        f"min-max index cannot compare values of type {type(value).__name__}"
    )


def _write_value(writer: BinaryWriter, tag: str, value) -> None:
    if tag == _TAG_INT:
        writer.write_bytes(struct.pack("<q", value))
    elif tag == _TAG_STR:
        writer.write_str(value)
    else:
        writer.write_len_bytes(bytes(value))


def _read_value(reader: BinaryReader, tag: str):
    if tag == _TAG_INT:
        return struct.unpack("<q", reader.read_bytes(8))[0]
    if tag == _TAG_STR:
        return reader.read_str()
    return reader.read_len_bytes()


class MinMaxBuilder(IndexBuilder):
    """In-memory form: ``(gid, min, max)`` per page, gid-ordered."""

    type_name: ClassVar[str] = TYPE_NAME
    min_rows: ClassVar[int] = 1

    def __init__(self, tag: str, entries: list[tuple[int, object, object]]) -> None:
        self.tag = tag
        self.entries = entries

    @classmethod
    def build(
        cls, pages: Iterable[tuple[int, list]], **_params
    ) -> "MinMaxBuilder":
        entries: list[tuple[int, object, object]] = []
        tag: str | None = None
        for gid, values in pages:
            if not len(values):
                raise RottnestIndexError(f"page {gid} has no values")
            page_tag = _tag_of(values[0])
            if tag is None:
                tag = page_tag
            elif tag != page_tag:
                raise RottnestIndexError(
                    f"mixed value types in min-max index: {tag} vs {page_tag}"
                )
            normalized = (
                [bytes(v) for v in values] if tag == _TAG_BYTES else list(values)
            )
            entries.append((gid, min(normalized), max(normalized)))
        if tag is None:
            raise RottnestIndexError("cannot build a min-max index over zero pages")
        entries.sort(key=lambda e: e[0])
        return cls(tag, entries)

    def write(
        self,
        writer: IndexFileWriter,
        *,
        component_target_bytes: int = DEFAULT_COMPONENT_TARGET_BYTES,
    ) -> None:
        component = BinaryWriter()
        count = 0
        num_components = 0

        def flush() -> None:
            nonlocal component, count, num_components
            if count:
                header = BinaryWriter()
                header.write_uvarint(count)
                writer.add_component(
                    f"zones{num_components}",
                    header.getvalue() + component.getvalue(),
                )
                num_components += 1
            component = BinaryWriter()
            count = 0

        for gid, lo, hi in self.entries:
            component.write_uvarint(gid)
            _write_value(component, self.tag, lo)
            _write_value(component, self.tag, hi)
            count += 1
            if len(component) >= component_target_bytes:
                flush()
        flush()
        writer.params["num_components"] = num_components
        writer.params["value_tag"] = self.tag

    @classmethod
    def load(cls, reader: IndexFileReader) -> "MinMaxBuilder":
        tag = reader.params["value_tag"]
        entries: list[tuple[int, object, object]] = []
        names = [f"zones{i}" for i in range(reader.params["num_components"])]
        for blob in reader.components(names):
            r = BinaryReader(blob)
            count = r.read_uvarint()
            for _ in range(count):
                gid = r.read_uvarint()
                lo = _read_value(r, tag)
                hi = _read_value(r, tag)
                entries.append((gid, lo, hi))
        return cls(tag, entries)

    @classmethod
    def merge(
        cls, parts: list["MinMaxBuilder"], gid_offsets: list[int]
    ) -> "MinMaxBuilder":
        if len(parts) != len(gid_offsets):
            raise RottnestIndexError("parts/offsets length mismatch")
        tags = {p.tag for p in parts}
        if len(tags) != 1:
            raise RottnestIndexError(f"cannot merge mixed value tags {tags}")
        entries: list[tuple[int, object, object]] = []
        for part, offset in zip(parts, gid_offsets):
            entries.extend((g + offset, lo, hi) for g, lo, hi in part.entries)
        entries.sort(key=lambda e: e[0])
        return cls(tags.pop(), entries)


class MinMaxQuerier(ExactQuerier):
    """One parallel round: fetch all zone components, prune locally."""

    type_name: ClassVar[str] = TYPE_NAME

    def candidate_pages(self, query) -> list[int]:
        """Pages whose [min, max] intersects the probe.

        ``query`` is a point value (exact match) or an inclusive
        ``(lo, hi)`` tuple (range probe).
        """
        tag = self.reader.params["value_tag"]
        if isinstance(query, tuple):
            lo, hi = query
        else:
            lo = hi = query
        lo = _coerce(tag, lo)
        hi = _coerce(tag, hi)
        names = [
            f"zones{i}" for i in range(self.reader.params["num_components"])
        ]
        gids: list[int] = []
        for blob in self.reader.components(names):
            r = BinaryReader(blob)
            count = r.read_uvarint()
            for _ in range(count):
                gid = r.read_uvarint()
                page_lo = _read_value(r, tag)
                page_hi = _read_value(r, tag)
                if page_lo <= hi and lo <= page_hi:
                    gids.append(gid)
        return sorted(gids)


def _coerce(tag: str, value):
    if tag == _TAG_BYTES:
        if not isinstance(value, (bytes, bytearray)):
            raise RottnestIndexError(
                f"probe type {type(value).__name__} vs binary zone map"
            )
        return bytes(value)
    if tag == _TAG_INT and not isinstance(value, int):
        raise RottnestIndexError(
            f"probe type {type(value).__name__} vs int zone map"
        )
    if tag == _TAG_STR and not isinstance(value, str):
        raise RottnestIndexError(
            f"probe type {type(value).__name__} vs string zone map"
        )
    return value

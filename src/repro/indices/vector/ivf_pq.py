"""IVF-PQ vector index (§V-C3).

The paper picks a centroid-based index over graph-based ones because
object-storage search cost is dominated by *dependent request chains*,
and IVF-PQ needs exactly two: fetch the coarse centroids (usually free,
they ride in the file tail), then fetch the ``nprobe`` selected inverted
lists in one parallel round. The ``refine`` stage — re-ranking the best
PQ candidates with full-precision vectors — happens *in situ* against
the Parquet pages and is orchestrated by the search client.

Components:

* ``pq`` — the product-quantizer codebooks,
* ``list{i}`` — inverted list ``i``: entry locations (global page id +
  row offset) and PQ codes of the residuals,
* ``centroids`` — coarse centroids, written last so they land in the
  cached tail.

Merging retrains from decoded (approximately reconstructed) vectors by
default; the maintenance layer prefers rebuilding from the raw Parquet
pages when they are still available (§IV-C allows compaction to read
raw files).
"""

from __future__ import annotations

from typing import ClassVar, Iterable

import numpy as np

from repro.errors import RottnestIndexError
from repro.core.index_file import IndexFileReader, IndexFileWriter
from repro.indices.base import IndexBuilder, RowCandidate, ScoringQuerier
from repro.indices.vector.kmeans import assign, kmeans, squared_distances
from repro.indices.vector.pq import ProductQuantizer
from repro.util.binio import BinaryReader, BinaryWriter

TYPE_NAME = "ivf_pq"
DEFAULT_NLIST = 64
DEFAULT_M = 16
DEFAULT_TRAIN_SAMPLE = 20_000
#: Below this many rows, indexing aborts in favour of brute force
#: (paper footnote 2: vector indices have a minimum size).
MIN_ROWS = 256


class IvfPqBuilder(IndexBuilder):
    """Trained IVF-PQ structure in memory."""

    type_name: ClassVar[str] = TYPE_NAME
    min_rows: ClassVar[int] = MIN_ROWS
    prefers_raw_rebuild: ClassVar[bool] = True

    def __init__(
        self,
        centroids: np.ndarray,
        pq: ProductQuantizer,
        lists: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
    ) -> None:
        # lists[i] = (gids u32, offsets u32, codes (n_i, m) u8)
        self.centroids = centroids.astype(np.float32)
        self.pq = pq
        self.lists = lists

    @property
    def nlist(self) -> int:
        return len(self.centroids)

    @property
    def dim(self) -> int:
        return self.centroids.shape[1]

    @classmethod
    def build(
        cls,
        pages: Iterable[tuple[int, list]],
        *,
        nlist: int = DEFAULT_NLIST,
        m: int = DEFAULT_M,
        train_sample: int = DEFAULT_TRAIN_SAMPLE,
        seed: int = 0,
        **_params,
    ) -> "IvfPqBuilder":
        gid_list: list[np.ndarray] = []
        offset_list: list[np.ndarray] = []
        vec_list: list[np.ndarray] = []
        for gid, values in pages:
            try:
                vectors = np.asarray(values, dtype=np.float32)
            except ValueError as exc:
                raise RottnestIndexError(
                    f"page {gid} values are not numeric vectors: {exc}"
                ) from exc
            if vectors.ndim != 2:
                raise RottnestIndexError(
                    f"page {gid} values are not a vector batch"
                )
            count = len(vectors)
            gid_list.append(np.full(count, gid, dtype=np.uint32))
            offset_list.append(np.arange(count, dtype=np.uint32))
            vec_list.append(vectors)
        if not vec_list:
            raise RottnestIndexError("cannot build an IVF-PQ over zero pages")
        vectors = np.concatenate(vec_list)
        gids = np.concatenate(gid_list)
        offsets = np.concatenate(offset_list)
        return cls._train(
            vectors, gids, offsets, nlist=nlist, m=m,
            train_sample=train_sample, seed=seed,
        )

    @classmethod
    def _train(
        cls,
        vectors: np.ndarray,
        gids: np.ndarray,
        offsets: np.ndarray,
        *,
        nlist: int,
        m: int,
        train_sample: int,
        seed: int,
    ) -> "IvfPqBuilder":
        n = len(vectors)
        rng = np.random.default_rng(seed)
        sample = vectors
        if n > train_sample:
            sample = vectors[rng.choice(n, size=train_sample, replace=False)]
        nlist = max(1, min(nlist, n))
        centroids, _ = kmeans(sample, nlist, seed=seed)
        labels = assign(vectors, centroids)
        residuals = vectors - centroids[labels]
        pq = ProductQuantizer.train(
            sample - centroids[assign(sample, centroids)], m, seed=seed
        )
        codes = pq.encode(residuals)
        lists: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for c in range(len(centroids)):
            members = np.nonzero(labels == c)[0]
            lists.append((gids[members], offsets[members], codes[members]))
        return cls(centroids, pq, lists)

    # -- serialization ------------------------------------------------
    def write(self, writer: IndexFileWriter) -> None:
        writer.add_component("pq", self.pq.serialize())
        for i, (gids, offsets, codes) in enumerate(self.lists):
            payload = BinaryWriter()
            payload.write_uvarint(len(gids))
            payload.write_bytes(gids.astype("<u4").tobytes())
            payload.write_bytes(offsets.astype("<u4").tobytes())
            payload.write_bytes(codes.astype(np.uint8).tobytes())
            writer.add_component(f"list{i}", payload.getvalue())
        # Centroids last: they land in the cached file tail, making the
        # first search round free for typical nlist values.
        writer.add_component(
            "centroids", self.centroids.astype("<f4").tobytes()
        )
        writer.params.update(
            {"nlist": self.nlist, "dim": self.dim, "m": self.pq.m}
        )

    @classmethod
    def load(cls, reader: IndexFileReader) -> "IvfPqBuilder":
        params = reader.params
        nlist, dim, m = params["nlist"], params["dim"], params["m"]
        centroids = np.frombuffer(
            reader.component("centroids"), dtype="<f4"
        ).reshape(nlist, dim)
        pq = ProductQuantizer.deserialize(reader.component("pq"))
        lists = []
        for blob in reader.components([f"list{i}" for i in range(nlist)]):
            lists.append(_parse_list(blob, m))
        return cls(centroids.copy(), pq, lists)

    @classmethod
    def merge(
        cls, parts: list["IvfPqBuilder"], gid_offsets: list[int]
    ) -> "IvfPqBuilder":
        """Retrain over approximately-reconstructed vectors.

        Residual PQ decoding (centroid + codebook entry) recovers each
        vector to within quantization error; the merged index's recall
        is nearly identical to a from-scratch rebuild. The maintenance
        layer uses a raw-page rebuild instead whenever the covered
        Parquet files still exist.
        """
        if len(parts) != len(gid_offsets):
            raise RottnestIndexError("parts/offsets length mismatch")
        all_vecs, all_gids, all_offs = [], [], []
        for part, shift in zip(parts, gid_offsets):
            for c, (gids, offsets, codes) in enumerate(part.lists):
                if not len(gids):
                    continue
                vecs = part.pq.decode(codes) + part.centroids[c]
                all_vecs.append(vecs)
                all_gids.append(gids.astype(np.uint32) + np.uint32(shift))
                all_offs.append(offsets)
        vectors = np.concatenate(all_vecs)
        nlist = max(p.nlist for p in parts)
        m = parts[0].pq.m
        return cls._train(
            vectors,
            np.concatenate(all_gids),
            np.concatenate(all_offs),
            nlist=nlist,
            m=m,
            train_sample=DEFAULT_TRAIN_SAMPLE,
            seed=0,
        )

    # -- query-adaptive refinement (cracking) -------------------------
    def refine_cells(
        self,
        cells: Iterable[int],
        *,
        min_cell_rows: int = 32,
        seed: int = 0,
    ) -> int:
        """Split hot inverted lists in two, in place (index cracking).

        For each requested cell with at least ``min_cell_rows``
        members, the members are approximately reconstructed (centroid
        + decoded PQ residual), 2-means re-clusters them, the first
        child replaces the cell and the second is appended at the end —
        so untouched lists keep their exact bytes and ordinals, and the
        lists remain a partition of all indexed vectors (exhaustive
        probes stay exact). The PQ codebooks are **reused**: only the
        residuals are re-encoded against the child centroids, which is
        what makes refinement an incremental per-cell rewrite instead
        of a full retrain (the streaming-merge economics, applied to
        one cell at a time).

        Deterministic for a given (input bytes, cells, seed): the
        2-means seed is derived per cell ordinal, so a crashed-and-
        retried refinement rebuilds byte-identical output. Returns the
        number of cells actually split (degenerate cells — too small,
        out of range, or with coincident members — are skipped).
        """
        split = 0
        for c in sorted({int(c) for c in cells}):
            if c < 0 or c >= len(self.lists):
                continue
            gids, offsets, codes = self.lists[c]
            if len(gids) < max(2, min_cell_rows):
                continue
            vectors = self.pq.decode(codes) + self.centroids[c]
            children, labels = kmeans(vectors, 2, seed=seed * 1_000_003 + c)
            if len(children) < 2 or labels.min() == labels.max():
                continue  # all members coincide; nothing to split
            halves = []
            for child in (0, 1):
                members = np.nonzero(labels == child)[0]
                residuals = vectors[members] - children[child]
                halves.append(
                    (gids[members], offsets[members], self.pq.encode(residuals))
                )
            self.centroids[c] = children[0]
            self.lists[c] = halves[0]
            self.centroids = np.concatenate(
                [self.centroids, children[1:2].astype(np.float32)]
            )
            self.lists.append(halves[1])
            split += 1
        return split

    @classmethod
    def merge_streaming(
        cls, parts: Iterable["IvfPqBuilder"], gid_offsets: list[int]
    ) -> "IvfPqBuilder":
        """Materialize, then :meth:`merge` — IVF-PQ cannot stream.

        The k-means retraining inside :meth:`merge` samples over *all*
        parts' decoded vectors at once; folding part-by-part would
        retrain on different samples and change the committed bytes.
        Peak memory is unaffected in practice: the maintenance layer
        prefers the raw-page rebuild path for this type
        (``prefers_raw_rebuild``), which never loads old parts at all.
        """
        return cls.merge(list(parts), list(gid_offsets))


class IvfPqQuerier(ScoringQuerier):
    """Two-round query: centroids (tail) → probed lists (one round)."""

    type_name: ClassVar[str] = TYPE_NAME

    def __init__(self, reader: IndexFileReader) -> None:
        super().__init__(reader)
        self.nlist: int = reader.params["nlist"]
        self.dim: int = reader.params["dim"]
        self.m: int = reader.params["m"]
        self._centroids: np.ndarray | None = None
        self._pq: ProductQuantizer | None = None
        #: Cell ordinals the most recent :meth:`candidates` call probed
        #: — the per-query signal the cracking heat map aggregates to
        #: decide which inverted lists are worth splitting.
        self.last_probed_cells: tuple[int, ...] = ()

    @property
    def centroids(self) -> np.ndarray:
        if self._centroids is None:
            self._centroids = np.frombuffer(
                self.reader.component("centroids"), dtype="<f4"
            ).reshape(self.nlist, self.dim)
        return self._centroids

    @property
    def pq(self) -> ProductQuantizer:
        if self._pq is None:
            self._pq = ProductQuantizer.deserialize(self.reader.component("pq"))
        return self._pq

    def candidates(
        self, query, *, nprobe: int = 8, limit: int = 200
    ) -> list[RowCandidate]:
        """Best ``limit`` PQ-approximate candidates from the ``nprobe``
        nearest inverted lists."""
        vector = np.asarray(query, dtype=np.float32).reshape(-1)
        if vector.shape[0] != self.dim:
            raise RottnestIndexError(
                f"query dim {vector.shape[0]} != index dim {self.dim}"
            )
        nprobe = max(1, min(nprobe, self.nlist))
        dists = squared_distances(vector.reshape(1, -1), self.centroids).ravel()
        probe = np.argsort(dists)[:nprobe]
        self.last_probed_cells = tuple(int(c) for c in probe)
        self.reader.barrier()  # list fetches depend on centroid ranking
        names = [f"list{int(c)}" for c in probe] + ["pq"]
        blobs = self.reader.components(names)
        pq = ProductQuantizer.deserialize(blobs[-1]) if self._pq is None else self._pq
        self._pq = pq
        # Score whole probed lists as arrays; one lexsort at the end
        # replaces the per-candidate tuple loop + sort (same order,
        # including (score, gid, offset) tie-breaking).
        parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for c, blob in zip(probe, blobs[:-1]):
            gids, offsets, codes = _parse_list(blob, self.m)
            if not len(gids):
                continue
            table = pq.adc_table(vector - self.centroids[c])
            approx = ProductQuantizer.adc_distances(codes, table)
            parts.append((np.asarray(approx, dtype=np.float64), gids, offsets))
        if not parts:
            return []
        approx = np.concatenate([p[0] for p in parts])
        gids = np.concatenate([p[1] for p in parts]).astype(np.int64)
        offsets = np.concatenate([p[2] for p in parts]).astype(np.int64)
        order = np.lexsort((offsets, gids, approx))[:limit]
        return [
            RowCandidate(
                gid=int(gids[i]), offset=int(offsets[i]), score=float(approx[i])
            )
            for i in order
        ]


def _parse_list(blob: bytes, m: int):
    reader = BinaryReader(blob)
    count = reader.read_uvarint()
    gids = np.frombuffer(reader.read_bytes(4 * count), dtype="<u4")
    offsets = np.frombuffer(reader.read_bytes(4 * count), dtype="<u4")
    codes = np.frombuffer(reader.read_bytes(m * count), dtype=np.uint8).reshape(
        count, m
    )
    return gids, offsets, codes

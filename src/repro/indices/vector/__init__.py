"""Vector ANN substrate: k-means, product quantization, IVF-PQ."""

from repro.indices.vector.ivf_pq import IvfPqBuilder, IvfPqQuerier
from repro.indices.vector.kmeans import assign, kmeans, squared_distances
from repro.indices.vector.pq import ProductQuantizer

__all__ = [
    "IvfPqBuilder",
    "IvfPqQuerier",
    "ProductQuantizer",
    "kmeans",
    "assign",
    "squared_distances",
]

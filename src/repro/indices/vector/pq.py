"""Product quantization: compress vectors to ``m`` one-byte codes.

Each vector is split into ``m`` subvectors; each subspace gets its own
256-entry codebook trained by k-means. Asymmetric distance computation
(ADC) scores a query against compressed vectors with one table lookup
per subspace — the cheap approximate ranking step of IVF-PQ.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RottnestIndexError
from repro.indices.vector.kmeans import assign, kmeans

CODEBOOK_SIZE = 256


class ProductQuantizer:
    """Trained codebooks for one (sub)vector space."""

    def __init__(self, codebooks: np.ndarray) -> None:
        # (m, 256, sub_dim) float32; entries beyond the trained count of
        # a small dataset simply repeat and are never emitted by encode.
        if codebooks.ndim != 3:
            raise RottnestIndexError(
                f"codebooks must be 3-D, got shape {codebooks.shape}"
            )
        self.codebooks = codebooks.astype(np.float32)

    @property
    def m(self) -> int:
        return self.codebooks.shape[0]

    @property
    def sub_dim(self) -> int:
        return self.codebooks.shape[2]

    @property
    def dim(self) -> int:
        return self.m * self.sub_dim

    @classmethod
    def train(
        cls, vectors: np.ndarray, m: int, *, iters: int = 12, seed: int = 0
    ) -> "ProductQuantizer":
        vectors = np.asarray(vectors, dtype=np.float32)
        n, d = vectors.shape
        if d % m != 0:
            raise RottnestIndexError(f"dim {d} not divisible by m={m}")
        sub = d // m
        k = min(CODEBOOK_SIZE, n)
        codebooks = np.empty((m, CODEBOOK_SIZE, sub), dtype=np.float32)
        for j in range(m):
            centers, _ = kmeans(
                vectors[:, j * sub : (j + 1) * sub], k, iters=iters, seed=seed + j
            )
            codebooks[j, :k] = centers
            if k < CODEBOOK_SIZE:
                codebooks[j, k:] = centers[0]
        return cls(codebooks)

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Compress to (n, m) uint8 codes."""
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.shape[1] != self.dim:
            raise RottnestIndexError(
                f"vector dim {vectors.shape[1]} != trained dim {self.dim}"
            )
        codes = np.empty((len(vectors), self.m), dtype=np.uint8)
        sub = self.sub_dim
        for j in range(self.m):
            codes[:, j] = assign(
                vectors[:, j * sub : (j + 1) * sub], self.codebooks[j]
            )
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Approximate reconstruction from codes, (n, dim)."""
        codes = np.asarray(codes, dtype=np.uint8)
        out = np.empty((len(codes), self.dim), dtype=np.float32)
        sub = self.sub_dim
        for j in range(self.m):
            out[:, j * sub : (j + 1) * sub] = self.codebooks[j][codes[:, j]]
        return out

    def adc_table(self, query: np.ndarray) -> np.ndarray:
        """(m, 256) table of squared distances from query subvectors to
        every codebook entry."""
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        if query.shape[0] != self.dim:
            raise RottnestIndexError(
                f"query dim {query.shape[0]} != trained dim {self.dim}"
            )
        sub = self.sub_dim
        diffs = self.codebooks - query.reshape(self.m, 1, sub)
        return np.sum(diffs * diffs, axis=2)

    @staticmethod
    def adc_distances(codes: np.ndarray, table: np.ndarray) -> np.ndarray:
        """Approximate squared distances of coded vectors to the query
        behind ``table``."""
        m = table.shape[0]
        return table[np.arange(m), codes].sum(axis=1)

    def serialize(self) -> bytes:
        header = np.asarray(
            [self.m, CODEBOOK_SIZE, self.sub_dim], dtype="<u4"
        ).tobytes()
        return header + self.codebooks.astype("<f4").tobytes()

    @classmethod
    def deserialize(cls, data: bytes) -> "ProductQuantizer":
        m, k, sub = np.frombuffer(data, dtype="<u4", count=3)
        books = np.frombuffer(data, dtype="<f4", offset=12).reshape(
            int(m), int(k), int(sub)
        )
        return cls(books.copy())

"""Minimal k-means (kmeans++ init, Lloyd iterations) on numpy.

Used twice by the IVF-PQ index: for the coarse inverted-list centroids
and per-subspace for the product-quantizer codebooks. Deterministic
given a seed.
"""

from __future__ import annotations

import numpy as np

ASSIGN_CHUNK = 16_384


def squared_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Pairwise squared L2 distances, (n, k)."""
    p2 = np.sum(points * points, axis=1, keepdims=True)
    c2 = np.sum(centers * centers, axis=1)
    d = p2 + c2 - 2.0 * points @ centers.T
    np.maximum(d, 0.0, out=d)
    return d


def assign(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Index of the nearest center for every point (chunked)."""
    out = np.empty(len(points), dtype=np.int64)
    for start in range(0, len(points), ASSIGN_CHUNK):
        chunk = points[start : start + ASSIGN_CHUNK]
        out[start : start + ASSIGN_CHUNK] = np.argmin(
            squared_distances(chunk, centers), axis=1
        )
    return out


def _kmeans_pp_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    n = len(points)
    centers = np.empty((k, points.shape[1]), dtype=points.dtype)
    centers[0] = points[rng.integers(n)]
    closest = squared_distances(points, centers[:1]).ravel()
    for i in range(1, k):
        total = closest.sum()
        if total <= 0:
            # All points coincide with chosen centers; fill randomly.
            centers[i:] = points[rng.integers(n, size=k - i)]
            break
        probs = closest / total
        idx = rng.choice(n, p=probs)
        centers[i] = points[idx]
        np.minimum(
            closest, squared_distances(points, centers[i : i + 1]).ravel(), out=closest
        )
    return centers


def kmeans(
    points: np.ndarray,
    k: int,
    *,
    iters: int = 15,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Cluster ``points`` into ``k`` groups.

    Returns ``(centers, assignments)``. ``k`` is clamped to ``len(points)``.
    """
    points = np.asarray(points, dtype=np.float32)
    if points.ndim != 2 or len(points) == 0:
        raise ValueError(f"need a non-empty 2-D array, got shape {points.shape}")
    k = max(1, min(k, len(points)))
    rng = np.random.default_rng(seed)
    centers = _kmeans_pp_init(points, k, rng).astype(np.float32)
    labels = assign(points, centers)
    for _ in range(iters):
        for c in range(k):
            members = points[labels == c]
            if len(members):
                centers[c] = members.mean(axis=0)
            else:
                # Re-seed empty clusters from a random point.
                centers[c] = points[rng.integers(len(points))]
        new_labels = assign(points, centers)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return centers, labels

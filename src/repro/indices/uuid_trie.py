"""High-cardinality identifier index: componentized binary trie (§V-C1).

Each key (UUID, transaction hash, pod name digest, ...) is a path in a
binary trie. To keep the index small only a prefix of each key is
stored: its longest common prefix with its sorted neighbours plus one
distinguishing bit, *plus 8 extra bits of headroom* so indices can be
merged without recomputing LCPs — after a merge, entries whose stored
prefixes collide simply map to multiple pages, which is fine because
Rottnest indices may return false positives (in-situ probing filters
them).

Layout, per the componentization principle of Fig. 6:

* the first 8 trie levels are replaced by a 256-entry **lookup table**
  (component ``lut``, written last so it lands in the cached tail of the
  file — reading it costs no extra request), and
* entries live in **leaf components** (``leaf0``, ``leaf1``, ...), each
  holding a contiguous range of the sorted entries, bin-packed to a
  target raw size.

A lookup therefore costs: open (tail fetch, includes the LUT) → one
dependent round fetching exactly one leaf component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Iterable

from repro.errors import RottnestIndexError
from repro.core.index_file import IndexFileReader, IndexFileWriter
from repro.indices.base import ExactQuerier, IndexBuilder
from repro.indices.bits import lcp_bits, prefix_matches, truncate_bits
from repro.util.binio import BinaryReader, BinaryWriter

TYPE_NAME = "uuid_trie"
DEFAULT_EXTRA_BITS = 8
DEFAULT_COMPONENT_TARGET_BYTES = 256 * 1024
LUT_SIZE = 256


@dataclass
class TrieEntry:
    """One truncated key and the pages containing its full key(s)."""

    prefix: bytes  # truncated, zero-padded key prefix
    bits: int  # number of meaningful bits in ``prefix``
    gids: list[int]  # global page ids, sorted ascending

    def sort_key(self) -> tuple[bytes, int]:
        return (self.prefix, self.bits)


class UuidTrieBuilder(IndexBuilder):
    """In-memory trie: the sorted truncated-entry array."""

    type_name: ClassVar[str] = TYPE_NAME
    min_rows: ClassVar[int] = 1

    def __init__(self, entries: list[TrieEntry], extra_bits: int) -> None:
        self.entries = entries
        self.extra_bits = extra_bits

    @classmethod
    def build(
        cls,
        pages: Iterable[tuple[int, list]],
        *,
        extra_bits: int = DEFAULT_EXTRA_BITS,
        **_params,
    ) -> "UuidTrieBuilder":
        pairs: list[tuple[bytes, int]] = []
        for gid, values in pages:
            for value in values:
                key = bytes(value)
                if not key:
                    raise RottnestIndexError("cannot index empty keys")
                pairs.append((key, gid))
        if not pairs:
            raise RottnestIndexError("cannot build a trie over zero rows")
        pairs.sort()
        # Group identical keys, merging their page lists.
        keys: list[bytes] = []
        gid_lists: list[list[int]] = []
        for key, gid in pairs:
            if keys and keys[-1] == key:
                if gid_lists[-1][-1] != gid:
                    gid_lists[-1].append(gid)
            else:
                keys.append(key)
                gid_lists.append([gid])
        entries = []
        for i, key in enumerate(keys):
            lcp = 0
            if i > 0:
                lcp = max(lcp, lcp_bits(key, keys[i - 1]))
            if i + 1 < len(keys):
                lcp = max(lcp, lcp_bits(key, keys[i + 1]))
            # LCP + 1 distinguishing bit + merge headroom, floor of one
            # byte so the 8-bit LUT level is always present, capped at
            # the key's own length.
            bits = min(max(lcp + 1 + extra_bits, 8), len(key) * 8)
            entries.append(
                TrieEntry(
                    prefix=truncate_bits(key, bits), bits=bits, gids=gid_lists[i]
                )
            )
        entries.sort(key=TrieEntry.sort_key)
        return cls(_coalesce(entries), extra_bits)

    # -- serialization --------------------------------------------------
    def write(
        self,
        writer: IndexFileWriter,
        *,
        component_target_bytes: int = DEFAULT_COMPONENT_TARGET_BYTES,
    ) -> None:
        # Bucket = first byte of the prefix (the 8 LUT levels).
        bucket_ranges: list[tuple[int, int]] = []  # per bucket: (start, count)
        starts = [0] * (LUT_SIZE + 1)
        for e in self.entries:
            starts[e.prefix[0] + 1] += 1
        for b in range(LUT_SIZE):
            starts[b + 1] += starts[b]
        for b in range(LUT_SIZE):
            bucket_ranges.append((starts[b], starts[b + 1] - starts[b]))

        # Bin-pack consecutive buckets into leaf components.
        leaf_of_bucket = [0] * LUT_SIZE
        leaf_payloads: list[BinaryWriter] = []
        leaf_entry_start: list[int] = []  # global entry index of leaf start
        current = BinaryWriter()
        current_start = 0
        current_buckets: list[int] = []
        cursor = 0

        def flush() -> None:
            nonlocal current, current_start
            if current_buckets:
                for b in current_buckets:
                    leaf_of_bucket[b] = len(leaf_payloads)
                leaf_payloads.append(current)
                leaf_entry_start.append(current_start)
            current = BinaryWriter()
            current_buckets.clear()

        for b in range(LUT_SIZE):
            start, count = bucket_ranges[b]
            if not current_buckets:
                current_start = start
            current_buckets.append(b)
            for e in self.entries[start : start + count]:
                _write_entry(current, e)
            cursor = start + count
            if len(current) >= component_target_bytes:
                flush()
        flush()

        for i, payload in enumerate(leaf_payloads):
            writer.add_component(f"leaf{i}", payload.getvalue())

        # LUT last: lands in the file tail, so reading it is free.
        lut = BinaryWriter()
        for b in range(LUT_SIZE):
            start, count = bucket_ranges[b]
            lut.write_uvarint(leaf_of_bucket[b])
            lut.write_uvarint(start - leaf_entry_start[leaf_of_bucket[b]])
            lut.write_uvarint(count)
        writer.add_component("lut", lut.getvalue())
        writer.params["num_leaves"] = len(leaf_payloads)
        writer.params["extra_bits"] = self.extra_bits

    @classmethod
    def load(cls, reader: IndexFileReader) -> "UuidTrieBuilder":
        entries: list[TrieEntry] = []
        num_leaves = reader.params["num_leaves"]
        for blob in reader.components([f"leaf{i}" for i in range(num_leaves)]):
            r = BinaryReader(blob)
            while r.remaining():
                entries.append(_read_entry(r))
        return cls(entries, reader.params.get("extra_bits", DEFAULT_EXTRA_BITS))

    @classmethod
    def merge(
        cls, parts: list["UuidTrieBuilder"], gid_offsets: list[int]
    ) -> "UuidTrieBuilder":
        """K-way merge of sorted entry arrays with gid remapping.

        No raw data is read; stored prefixes keep their lengths (the
        ``extra_bits`` headroom absorbs new collisions, which become
        multi-page entries — i.e. possible false positives, by design).
        """
        if len(parts) != len(gid_offsets):
            raise RottnestIndexError("parts/offsets length mismatch")
        shifted: list[TrieEntry] = []
        for part, offset in zip(parts, gid_offsets):
            for e in part.entries:
                shifted.append(
                    TrieEntry(
                        prefix=e.prefix,
                        bits=e.bits,
                        gids=[g + offset for g in e.gids],
                    )
                )
        shifted.sort(key=TrieEntry.sort_key)
        extra = max(p.extra_bits for p in parts)
        return cls(_coalesce(shifted), extra)

    @classmethod
    def merge_streaming(
        cls, parts: Iterable["UuidTrieBuilder"], gid_offsets: list[int]
    ) -> "UuidTrieBuilder":
        """Streaming :meth:`merge`: consume one part at a time.

        Entry shifting is per part and the sort/coalesce happens once
        over the accumulated array, so only the entries survive each
        iteration — never two loaded parts at once — and the result is
        byte-identical to the materialized merge.
        """
        shifted: list[TrieEntry] = []
        extra = 0
        count = 0
        it = iter(parts)
        # zip pulls offsets first so a surplus part stays in ``it`` for
        # the leftover check below instead of being silently consumed.
        for offset, part in zip(gid_offsets, it):
            count += 1
            extra = max(extra, part.extra_bits)
            for e in part.entries:
                shifted.append(
                    TrieEntry(
                        prefix=e.prefix,
                        bits=e.bits,
                        gids=[g + offset for g in e.gids],
                    )
                )
        if count == 0 or count != len(gid_offsets) or next(it, None) is not None:
            raise RottnestIndexError("parts/offsets length mismatch")
        shifted.sort(key=TrieEntry.sort_key)
        return cls(_coalesce(shifted), extra)


class UuidTrieQuerier(ExactQuerier):
    """Query path: LUT (free, from the cached tail) → one leaf GET."""

    type_name: ClassVar[str] = TYPE_NAME

    def candidate_pages(self, query) -> list[int]:
        key = bytes(query)
        if not key:
            raise RottnestIndexError("cannot search for an empty key")
        lut = BinaryReader(self.reader.component("lut"))
        bucket = key[0]
        leaf_id = skip_in_leaf = count = 0
        for b in range(bucket + 1):
            leaf_id = lut.read_uvarint()
            skip_in_leaf = lut.read_uvarint()
            count = lut.read_uvarint()
        if count == 0:
            return []
        self.reader.barrier()  # leaf fetch depends on the LUT
        blob = BinaryReader(self.reader.component(f"leaf{leaf_id}"))
        for _ in range(skip_in_leaf):
            _read_entry(blob)  # skip entries of earlier buckets
        gids: list[int] = []
        for _ in range(count):
            entry = _read_entry(blob)
            if prefix_matches(entry.prefix, entry.bits, key):
                gids.extend(entry.gids)
        return sorted(set(gids))


def _coalesce(sorted_entries: list[TrieEntry]) -> list[TrieEntry]:
    """Merge adjacent entries with identical (prefix, bits)."""
    out: list[TrieEntry] = []
    for e in sorted_entries:
        if out and out[-1].prefix == e.prefix and out[-1].bits == e.bits:
            merged = sorted(set(out[-1].gids) | set(e.gids))
            out[-1] = TrieEntry(prefix=e.prefix, bits=e.bits, gids=merged)
        else:
            out.append(e)
    return out


def _write_entry(writer: BinaryWriter, entry: TrieEntry) -> None:
    writer.write_uvarint(entry.bits)
    writer.write_bytes(entry.prefix)  # length implied by bits
    writer.write_uvarint(len(entry.gids))
    prev = 0
    for gid in entry.gids:
        writer.write_uvarint(gid - prev)
        prev = gid


def _read_entry(reader: BinaryReader) -> TrieEntry:
    bits = reader.read_uvarint()
    prefix = reader.read_bytes((bits + 7) // 8)
    count = reader.read_uvarint()
    gids = []
    cursor = 0
    for _ in range(count):
        cursor += reader.read_uvarint()
        gids.append(cursor)
    return TrieEntry(prefix=prefix, bits=bits, gids=gids)

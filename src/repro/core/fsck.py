"""Index integrity checker ("fsck" for a Rottnest deployment).

Audits the §IV-D invariants against live state:

* **Existence** — every index file the metadata table references is
  physically present in the bucket;
* **Consistency** — every index file's embedded page tables match the
  real layout of each covered Parquet file that still exists (a
  violated page table would mean in-situ probes read the wrong bytes);
* plus operational findings: orphan index files (uploaded but never
  committed — normal within the index timeout, vacuum fodder after)
  and stale records (covering no file of any retained snapshot).

Read-only; safe to run any time, from anywhere. Exposed as
``python -m repro fsck``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FormatError, InvariantViolation, ObjectStoreError
from repro.core.client import RottnestClient
from repro.core.index_file import IndexFileReader
from repro.formats.page_reader import build_page_table
from repro.formats.reader import ParquetFile


@dataclass
class FsckReport:
    """Findings of one integrity pass."""

    records_checked: int = 0
    files_verified: int = 0
    missing_index_files: list[str] = field(default_factory=list)  # Existence
    corrupt_index_files: list[str] = field(default_factory=list)
    page_table_mismatches: list[tuple[str, str]] = field(default_factory=list)
    orphan_index_files: list[str] = field(default_factory=list)
    stale_records: list[str] = field(default_factory=list)

    @property
    def invariants_hold(self) -> bool:
        """Existence + Consistency (orphans and stale records are
        expected operational debris, not violations)."""
        return not (
            self.missing_index_files
            or self.corrupt_index_files
            or self.page_table_mismatches
        )

    def describe(self) -> str:
        """Human-readable audit summary, one finding class per line."""
        lines = [
            f"records checked:        {self.records_checked}",
            f"covered files verified: {self.files_verified}",
            f"missing index files:    {len(self.missing_index_files)}",
            f"corrupt index files:    {len(self.corrupt_index_files)}",
            f"page-table mismatches:  {len(self.page_table_mismatches)}",
            f"orphan index files:     {len(self.orphan_index_files)}",
            f"stale records:          {len(self.stale_records)}",
            "invariants: " + ("OK" if self.invariants_hold else "VIOLATED"),
        ]
        for key in self.missing_index_files:
            lines.append(f"  MISSING  {key}")
        for key in self.corrupt_index_files:
            lines.append(f"  CORRUPT  {key}")
        for index_key, data_path in self.page_table_mismatches:
            lines.append(f"  MISMATCH {index_key} vs {data_path}")
        return "\n".join(lines)


def fsck(client: RottnestClient, *, verify_consistency: bool = True) -> FsckReport:
    """Audit one deployment; returns findings without changing anything."""
    report = FsckReport()
    records = client.meta.records()
    live_keys = {r.index_key for r in records}
    active = client.lake.files_since(client.lake.latest_version())

    for record in records:
        report.records_checked += 1
        # Existence.
        if not client.store.exists(record.index_key):
            report.missing_index_files.append(record.index_key)
            continue
        if not (set(record.covered_files) & active):
            report.stale_records.append(record.index_key)
        if not verify_consistency:
            continue
        # Consistency: the page tables embedded at build time must match
        # the current physical layout of every still-existing file.
        try:
            reader = IndexFileReader.open(client.store, record.index_key)
            tables = reader.directory.tables
        except (FormatError, ObjectStoreError):
            report.corrupt_index_files.append(record.index_key)
            continue
        for table in tables:
            if not client.store.exists(table.file_key):
                continue  # ¬exists(d_f): vacuously consistent
            try:
                parquet = ParquetFile(client.store, table.file_key)
                fresh = build_page_table(
                    parquet.metadata, table.file_key, reader.column
                )
            except (FormatError, ObjectStoreError):
                report.page_table_mismatches.append(
                    (record.index_key, table.file_key)
                )
                continue
            if fresh.entries != table.entries:
                report.page_table_mismatches.append(
                    (record.index_key, table.file_key)
                )
            else:
                report.files_verified += 1

    # Orphans: physically present, never committed.
    prefix = f"{client.index_dir}/files/"
    for info in client.store.list(prefix):
        if info.key not in live_keys:
            report.orphan_index_files.append(info.key)
    return report


class InvariantChecker:
    """Existence/Consistency verdict machine for the chaos harness.

    Thin, purposeful wrapper over :func:`fsck`: where ``fsck`` is an
    operator tool that *reports*, the checker is an oracle that
    *asserts* — the chaos fuzzer calls :meth:`assert_holds` after every
    injected crash, and any surviving violation is a protocol bug by
    definition (paper §IV-D proves none can exist).

    Always audits through a fresh, un-faulted view of the store: the
    doomed client is dead, and the invariants are a statement about
    what *every other* client observes afterwards.
    """

    def __init__(
        self, client: RottnestClient, *, verify_consistency: bool = True
    ) -> None:
        """Audit ``client``'s deployment; ``verify_consistency=False``
        checks Existence only (cheaper, for high-frequency fuzzing)."""
        self.client = client
        self.verify_consistency = verify_consistency

    def check(self) -> FsckReport:
        """Run one audit and return the raw findings."""
        return fsck(self.client, verify_consistency=self.verify_consistency)

    def assert_holds(self) -> FsckReport:
        """Audit and raise :class:`~repro.errors.InvariantViolation`
        (carrying the full report text) unless both invariants hold."""
        report = self.check()
        if not report.invariants_hold:
            raise InvariantViolation(report.describe())
        return report

"""Search query types.

A query carries everything the search path needs: how to use an index
(which index type can serve it), how to verify a candidate row in situ
(``matches``), and — for scoring queries — how to rank.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.errors import TCOError


@dataclass(frozen=True)
class UuidQuery:
    """Exact match on a binary identifier column.

    Served by the binary trie or (with more false-positive probes) the
    Bloom-filter index; the search planner uses whichever index files
    exist, preferring earlier entries of ``index_types``.
    """

    key: bytes
    index_types = ("uuid_trie", "bloom", "minmax")
    scoring = False

    def matches(self, value) -> bool:
        return bytes(value) == self.key

    def index_probe(self):
        return self.key


@dataclass(frozen=True)
class SubstringQuery:
    """Exact substring match on a string column."""

    needle: str
    index_types = ("fm",)
    scoring = False

    def matches(self, value) -> bool:
        return self.needle in value

    def index_probe(self):
        return self.needle


@dataclass(frozen=True)
class RegexQuery:
    """Regular-expression match on a string column.

    No Rottnest index accelerates general regexes; the search client
    falls back to brute-force scanning for these (still benefiting from
    top-K early exit). Included for API parity with the paper's
    motivating workloads.
    """

    pattern: str
    index_types: tuple = ()
    scoring = False

    def matches(self, value) -> bool:
        return re.search(self.pattern, value) is not None


@dataclass(frozen=True)
class VectorQuery:
    """Approximate nearest-neighbour query on a vector column.

    ``nprobe`` — coarse lists probed; ``refine`` — PQ candidates
    re-ranked with full-precision vectors (paper §V-C3). Both trade
    recall against query cost.
    """

    vector: np.ndarray
    nprobe: int = 8
    refine: int = 100
    index_types = ("ivf_pq",)
    scoring = True

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "vector", np.asarray(self.vector, dtype=np.float32).reshape(-1)
        )
        if self.nprobe < 1 or self.refine < 1:
            raise TCOError("nprobe and refine must be >= 1")

    def distance(self, value) -> float:
        diff = np.asarray(value, dtype=np.float32) - self.vector
        return float(np.dot(diff, diff))


@dataclass(frozen=True)
class RangeQuery:
    """Inclusive range match on a comparable column (int / string /
    binary). Served by the min-max zone-map index — the structured-
    attribute counterpart of the search indices: highly selective on
    clustered/sorted columns, useless on high-cardinality random ones
    (the §II-B failure the paper starts from)."""

    lo: object
    hi: object
    index_types = ("minmax",)
    scoring = False

    def __post_init__(self) -> None:
        if type(self.lo) is not type(self.hi):
            raise TCOError(
                f"range endpoints must share a type, got "
                f"{type(self.lo).__name__} and {type(self.hi).__name__}"
            )
        if self.lo > self.hi:
            raise TCOError(f"empty range: {self.lo!r} > {self.hi!r}")

    def matches(self, value) -> bool:
        if isinstance(self.lo, bytes):
            value = bytes(value)
        return self.lo <= value <= self.hi

    def index_probe(self):
        return (self.lo, self.hi)


Query = UuidQuery | SubstringQuery | RegexQuery | RangeQuery | VectorQuery

"""Index maintenance: ``compact`` and ``vacuum`` (paper §IV-C).

Compaction merges many small index files into fewer large ones —
Rottnest's LSM-style answer to search latency growing with the number
of index files (Fig. 13). It never deletes anything; vacuum does, and
only after its commit, keeping the Existence invariant: everything the
metadata table references must be physically present.

Both passes are **idempotent and resumable**: a maintenance client may
die after any single PUT or DELETE, and a fresh client simply re-runs
the same command to converge on the uninterrupted outcome.

* ``compact`` uploads merged index files under *content-addressed*
  keys, so a re-run after a mid-upload crash overwrites the same bytes
  at the same keys instead of accreting orphans, and its final commit
  skips records the metadata table already holds (a crash between the
  commit and the caller observing it is therefore harmless too).
* ``vacuum`` commits the metadata deletes first, then physically
  removes files one by one; a crash anywhere leaves ``M ⊆ B``
  (references ⊆ bucket), and a re-run recomputes the remaining
  deletions from live state — deleting an already-deleted object is an
  S3 no-op.

``docs/protocol.md`` walks every crash point; the :mod:`repro.chaos`
harness exercises each one mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RottnestIndexError
from repro.core.client import RottnestClient, _iter_page_values
from repro.core.index_file import IndexFileReader, IndexFileWriter, PageDirectory
from repro.formats.page_reader import build_page_table
from repro.formats.reader import ParquetFile
from repro.indices.base import builder_for
from repro.meta.metadata_table import IndexRecord
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.storage.pool import TracedPool
from repro.storage.stats import RequestTrace

DEFAULT_COMPACT_THRESHOLD_BYTES = 16 * 1024 * 1024
DEFAULT_COMPACT_TARGET_BYTES = 256 * 1024 * 1024

_MAINTENANCE = get_registry().counter(
    "maintenance_runs_total", "compact/vacuum passes completed", ("op",)
)


@dataclass
class VacuumReport:
    """What one vacuum pass did."""

    kept: list[str]
    deleted_records: list[str]
    deleted_objects: list[str]


def covering_records(
    client: RottnestClient, column: str, index_type: str
) -> list[IndexRecord]:
    """The index records a search of the latest snapshot would use:
    newest-first greedy cover over the snapshot's files."""
    all_records = [
        r
        for r in client.meta.records()
        if r.column == column and r.index_type == index_type
    ]
    snap_paths = set(client.lake.snapshot().file_paths)
    ordered = [
        all_records[i]
        for i in sorted(
            range(len(all_records)),
            key=lambda i: (-all_records[i].created_at, -i),
        )
    ]
    covering: list[IndexRecord] = []
    covered: set[str] = set()
    for record in ordered:
        useful = (set(record.covered_files) & snap_paths) - covered
        if useful:
            covering.append(record)
            covered |= useful
    return covering


def compact_indices(
    client: RottnestClient,
    column: str,
    index_type: str,
    *,
    threshold_bytes: int = DEFAULT_COMPACT_THRESHOLD_BYTES,
    target_bytes: int = DEFAULT_COMPACT_TARGET_BYTES,
    workers: int = 1,
    pool: TracedPool | None = None,
) -> list[IndexRecord]:
    """Merge small index files on ``column`` into larger ones.

    Plan: bin-pack index files smaller than ``threshold_bytes`` into
    groups of up to ``target_bytes``. Merge: rebuild from raw Parquet
    pages when every covered file still exists (most faithful; §IV-C
    explicitly permits reading raw files), falling back to the index
    type's native merge otherwise. Commit: insert merged records. Old
    records/files stay until :func:`vacuum_indices`, exactly like data
    lake compaction.

    ``workers > 1`` (or an injected ``pool``) merges independent
    bin-packed groups concurrently. Groups never overlap (each covers a
    disjoint record set), merged uploads are content-addressed, and the
    final metadata commit is a single insert on the calling thread, so
    the committed state is byte-identical to the serial pass for any
    worker count.

    Idempotent and crash-resumable: uploads are content-addressed and
    the commit skips already-live records, so re-running after a crash
    at any mutation boundary converges on the uninterrupted outcome
    (the ``repro chaos`` matrix proves this byte-for-byte).
    """
    with get_tracer().span(
        "compact", column=column, index_type=index_type
    ) as span:
        merged_records = _compact_indices(
            client,
            column,
            index_type,
            threshold_bytes=threshold_bytes,
            target_bytes=target_bytes,
            workers=workers,
            pool=pool,
        )
        span.set("merged_files", len(merged_records))
        _MAINTENANCE.inc(op="compact")
    return merged_records


def _compact_indices(
    client: RottnestClient,
    column: str,
    index_type: str,
    *,
    threshold_bytes: int,
    target_bytes: int,
    workers: int = 1,
    pool: TracedPool | None = None,
) -> list[IndexRecord]:
    """Plan, merge, and commit one compaction pass (see
    :func:`compact_indices` for the public contract)."""
    tracer = get_tracer()
    # Plan over the *covering set* only — the same newest-first greedy
    # search uses. Records subsumed by a newer (e.g. already-compacted)
    # index, or covering no file of the current snapshot, are vacuum
    # fodder and must not be re-merged: that would produce an index
    # covering the same Parquet file twice.
    with tracer.span("compact.plan", phase="plan") as plan_span:
        client.store.start_trace()
        try:
            covering = covering_records(client, column, index_type)
        finally:
            plan_trace = client.store.stop_trace()
        plan_trace.barrier()
        plan_span.trace = plan_trace
    records = [r for r in covering if r.size < threshold_bytes]
    if len(records) < 2:
        return []
    records.sort(key=lambda r: r.created_at)
    groups: list[list[IndexRecord]] = [[]]
    group_bytes = 0
    for record in records:
        if groups[-1] and group_bytes + record.size > target_bytes:
            groups.append([])
            group_bytes = 0
        groups[-1].append(record)
        group_bytes += record.size
    mergeable = [group for group in groups if len(group) >= 2]

    # Merge: groups are independent (disjoint records, disjoint covered
    # files), so they fan across workers; uploads inside are content-
    # addressed, making completion order irrelevant to the final state.
    with tracer.span(
        "compact.merge", phase="merge", groups=len(mergeable)
    ) as merge_span:
        if not mergeable:
            merged_records = []
        elif pool is not None:
            merge_trace, merged_records = pool.run(
                [
                    lambda g=group: _merge_group(client, column, index_type, g)
                    for group in mergeable
                ],
                span_name="compactor:task",
            )
            merge_span.trace = merge_trace
        elif workers > 1:
            with TracedPool(
                client.store,
                workers=workers,
                thread_name_prefix="compactor",
                span_name="compactor:task",
            ) as scratch:
                merge_trace, merged_records = scratch.run(
                    [
                        lambda g=group: _merge_group(
                            client, column, index_type, g
                        )
                        for group in mergeable
                    ]
                )
            merge_span.trace = merge_trace
        else:
            # Serial loop: one blocking merge at a time, so per-group
            # traces compose sequentially — the same shape a one-worker
            # pool records.
            merge_trace = RequestTrace()
            merged_records = []
            for group in mergeable:
                client.store.start_trace()
                try:
                    merged_records.append(
                        _merge_group(client, column, index_type, group)
                    )
                finally:
                    merge_trace = merge_trace.then(client.store.stop_trace())
            merge_span.trace = merge_trace
    if merged_records:
        # Idempotent commit: a resumed run (or a concurrent compactor
        # that built the identical merge) may find some records already
        # live under their content-addressed keys. Re-inserting them
        # would poison the metadata log, so only the missing ones go in.
        # Single-threaded whatever the worker count — the metadata log
        # is one conditional-PUT stream.
        with tracer.span("compact.commit", phase="commit") as commit_span:
            client.store.start_trace()
            try:
                live = {r.index_key for r in client.meta.records()}
                fresh = [
                    r for r in merged_records if r.index_key not in live
                ]
                if fresh:
                    client.meta.insert(fresh)
            finally:
                commit_span.trace = client.store.stop_trace()
    return merged_records


def _merge_group(
    client: RottnestClient,
    column: str,
    index_type: str,
    group: list[IndexRecord],
) -> IndexRecord:
    """Merge one bin-packed group into a single uploaded index file.

    The upload key is content-addressed (deterministic), which is the
    keystone of compaction resumability: every re-run of the same plan
    produces the same blob at the same key, so crashed prefixes of a
    run converge to the uninterrupted state byte-for-byte.
    """
    builder_cls = builder_for(index_type)
    covered: list[str] = []
    for record in group:
        covered.extend(record.covered_files)
    if len(set(covered)) != len(covered):
        raise RottnestIndexError(
            "compaction group covers a Parquet file twice; vacuum first"
        )

    # The merged file must answer queries tuned for the originals
    # (e.g. an ivf_pq probed with nprobe == its nlist), so the build
    # params recorded in the first part's header carry over — a raw
    # rebuild with defaults would silently change the index geometry.
    params = IndexFileReader.open(client.store, group[0].index_key).params

    raw_ok = getattr(builder_cls, "prefers_raw_rebuild", False) and all(
        client.store.exists(path) for path in covered
    )
    if raw_ok:
        # Rebuild from raw pages: read every covered file again.
        tables = []
        page_stream = []
        gid = 0
        for path in covered:
            reader = ParquetFile(client.store, path)
            table = build_page_table(reader.metadata, path, column)
            tables.append(table)
            for values in _iter_page_values(reader, table, column):
                page_stream.append((gid, values))
                gid += 1
        merged = builder_cls.build(page_stream, **params)
        directory = PageDirectory(tables)
    else:
        # Native merge from the index files alone. Opening a reader
        # fetches only the footer (directory + params); the heavy
        # component downloads happen inside ``load``, which the lazy
        # generator defers so a streaming-capable type holds at most
        # the running merge plus one fully-loaded part in memory.
        readers = [
            IndexFileReader.open(client.store, record.index_key)
            for record in group
        ]
        directories = [reader.directory for reader in readers]
        offsets = []
        base = 0
        for directory in directories:
            offsets.append(base)
            base += directory.num_pages
        merged = builder_cls.merge_streaming(
            (builder_cls.load(reader) for reader in readers), offsets
        )
        directory = PageDirectory.concat(directories)

    writer = IndexFileWriter(
        index_type, column, directory, params=params, codec=client.codec
    )
    merged.write(writer)
    blob = writer.finish()
    key = client.new_index_key(blob, deterministic=True)
    client.store.put(key, blob)
    return IndexRecord(
        index_key=key,
        index_type=index_type,
        column=column,
        covered_files=tuple(covered),
        num_rows=sum(r.num_rows for r in group),
        size=len(blob),
        created_at=client.store.clock.now(),
    )


def vacuum_indices(client: RottnestClient, *, snapshot_id: int) -> VacuumReport:
    """Garbage-collect index files (paper §IV-C ``vacuum``).

    Plan: greedily keep the index files that cover the most Parquet
    files active in any snapshot >= ``snapshot_id``; stop when coverage
    cannot grow. Commit: delete the other records from the metadata
    table. Remove: physically delete index files that are absent from
    the metadata table *and* older than the index timeout — younger
    unreferenced files may belong to an in-flight indexer, which is
    guaranteed to either commit or abort within the timeout.

    Crash-resumable: every intermediate state satisfies ``M ⊆ B``
    (metadata references a subset of the bucket), and a re-run from a
    fresh client finishes whatever physical deletions remain.
    """
    with get_tracer().span("vacuum", snapshot_id=snapshot_id) as span:
        report = _vacuum_indices(client, snapshot_id=snapshot_id)
        span.set("kept", len(report.kept))
        span.set("deleted_records", len(report.deleted_records))
        span.set("deleted_objects", len(report.deleted_objects))
        _MAINTENANCE.inc(op="vacuum")
    return report


def _vacuum_indices(client: RottnestClient, *, snapshot_id: int) -> VacuumReport:
    """Plan, commit, and physically apply one vacuum pass (see
    :func:`vacuum_indices` for the public contract)."""
    active = client.lake.files_since(snapshot_id)
    records = client.meta.records()

    # Coverage is per logical index: an FM index on "text" covering a
    # file says nothing about the trie on "uuid".
    groups: dict[tuple[str, str], list[IndexRecord]] = {}
    for record in records:
        groups.setdefault((record.column, record.index_type), []).append(record)

    kept: list[IndexRecord] = []
    for group in groups.values():
        # Enumerate so equal-gain ties prefer newer records (higher
        # insertion index): compaction products over their inputs.
        remaining = list(enumerate(group))
        covered: set[str] = set()
        while remaining:
            position, best = max(
                remaining,
                key=lambda item: (
                    len((set(item[1].covered_files) & active) - covered),
                    item[1].created_at,
                    item[0],
                ),
            )
            gain = len((set(best.covered_files) & active) - covered)
            if gain == 0:
                break
            kept.append(best)
            covered |= set(best.covered_files) & active
            remaining.remove((position, best))

    kept_keys = {r.index_key for r in kept}
    to_delete = [r.index_key for r in records if r.index_key not in kept_keys]
    if to_delete:
        client.meta.delete(to_delete)

    # Physical removal comes strictly after the metadata commit so the
    # Existence invariant never observes a dangling reference.
    live = {r.index_key for r in client.meta.records()}
    cutoff = client.store.clock.now() - client.index_timeout_s
    deleted_objects: list[str] = []
    prefix = f"{client.index_dir}/files/"
    for info in client.store.list(prefix):
        if info.key in live:
            continue
        if info.mtime > cutoff:
            continue  # possibly an in-flight indexer's upload
        client.store.delete(info.key)
        deleted_objects.append(info.key)
    return VacuumReport(
        kept=[r.index_key for r in kept],
        deleted_records=to_delete,
        deleted_objects=deleted_objects,
    )

"""Rottnest core: client protocol, index files, componentization."""

from repro.core.client import (
    RottnestClient,
    SearchMatch,
    SearchPlan,
    SearchResult,
    SearchStats,
)
from repro.core.componentize import ComponentFileReader, ComponentFileWriter
from repro.core.index_file import IndexFileReader, IndexFileWriter, PageDirectory
from repro.core.daemon import MaintenanceDaemon, MaintenancePolicy, TickReport
from repro.core.fsck import FsckReport, fsck
from repro.core.maintenance import (
    VacuumReport,
    compact_indices,
    covering_records,
    vacuum_indices,
)
from repro.core.queries import (
    Query,
    RangeQuery,
    RegexQuery,
    SubstringQuery,
    UuidQuery,
    VectorQuery,
)

__all__ = [
    "RottnestClient",
    "SearchMatch",
    "SearchPlan",
    "SearchResult",
    "SearchStats",
    "ComponentFileReader",
    "ComponentFileWriter",
    "IndexFileReader",
    "IndexFileWriter",
    "PageDirectory",
    "FsckReport",
    "fsck",
    "MaintenanceDaemon",
    "MaintenancePolicy",
    "TickReport",
    "VacuumReport",
    "covering_records",
    "compact_indices",
    "vacuum_indices",
    "Query",
    "RangeQuery",
    "RegexQuery",
    "SubstringQuery",
    "UuidQuery",
    "VectorQuery",
]

"""Componentization: the index-file layout strategy of §V-B.

A Rottnest index is split into *components* — serialized, individually
compressed chunks chosen so that one logical access into the data
structure touches few components, and components needed together can be
fetched in one parallel round of byte-range GETs. This sits between the
two naive extremes the paper describes:

* download-everything (one big sequential read, wasteful for random
  access), and
* "memory-mapping" (minimal bytes but long chains of dependent requests
  and no compression).

File layout:

.. code-block:: text

    +--------+------------------------+-----------+---------+--------+
    | "RIX1" | component 0..n-1 bytes | directory | len u32 | "RIX1" |
    +--------+------------------------+-----------+---------+--------+

The directory holds a JSON header (index type, column, parameters) and
the offset/size/codec of every component. Opening a file fetches the
tail once; reads of components that happened to land inside the cached
tail are free, everything else is one ranged GET per component (or one
parallel round via :meth:`ComponentFileReader.read_many`).
"""

from __future__ import annotations

import json

from repro.errors import FormatError
from repro.formats import compression
from repro.storage.object_store import ObjectStore
from repro.util.binio import BinaryReader, BinaryWriter

MAGIC = b"RIX1"

#: Tail bytes fetched speculatively on open; sized like real footer
#: readers so small indices resolve in a single request.
TAIL_SPECULATIVE_BYTES = 256 * 1024


class ComponentFileWriter:
    """Builds an index file from components."""

    def __init__(self, codec: str = "zlib") -> None:
        self._codec_id = compression.codec_id(codec)
        self._body = BinaryWriter()
        self._body.write_bytes(MAGIC)
        self._entries: list[tuple[int, int, int, int]] = []  # off, stored, raw, codec

    def add(self, data: bytes, *, compress: bool = True) -> int:
        """Append one component; returns its id (dense, from 0)."""
        codec = self._codec_id if compress else compression.NONE
        stored = compression.compress(data, codec)
        # Store uncompressed when compression does not help.
        if len(stored) >= len(data):
            stored, codec = data, compression.NONE
        self._entries.append((len(self._body), len(stored), len(data), codec))
        self._body.write_bytes(stored)
        return len(self._entries) - 1

    @property
    def count(self) -> int:
        return len(self._entries)

    def finish(self, header: dict) -> bytes:
        """Write the directory + footer; returns the full file bytes."""
        directory = BinaryWriter()
        directory.write_len_bytes(json.dumps(header).encode("utf-8"))
        directory.write_uvarint(len(self._entries))
        prev_offset = 0
        for offset, stored, raw, codec in self._entries:
            directory.write_uvarint(offset - prev_offset)
            prev_offset = offset
            directory.write_uvarint(stored)
            directory.write_uvarint(raw)
            directory.write_u8(codec)
        dir_bytes = directory.getvalue()
        self._body.write_bytes(dir_bytes)
        self._body.write_u32(len(dir_bytes))
        self._body.write_bytes(MAGIC)
        return self._body.getvalue()


class ComponentFileReader:
    """Random access to components of an index file on object storage."""

    def __init__(
        self,
        store: ObjectStore,
        key: str,
        *,
        size: int,
        header: dict,
        entries: list[tuple[int, int, int, int]],
        tail: bytes,
        tail_start: int,
    ) -> None:
        self.store = store
        self.key = key
        self.size = size
        self.header = header
        self._entries = entries
        self._tail = tail
        self._tail_start = tail_start

    @classmethod
    def open(cls, store: ObjectStore, key: str) -> "ComponentFileReader":
        """One HEAD + one tail GET; a second GET only for huge directories."""
        size = store.head(key).size
        tail_len = min(TAIL_SPECULATIVE_BYTES, size)
        tail_start = size - tail_len
        tail = store.get(key, (tail_start, tail_len))
        if tail[-4:] != MAGIC:
            raise FormatError(f"{key!r} is not an index file (bad magic)")
        dir_len = int.from_bytes(tail[-8:-4], "little")
        frame = dir_len + 8
        if frame > size:
            raise FormatError(f"{key!r}: directory length {dir_len} too large")
        if frame <= tail_len:
            dir_bytes = tail[-frame:-8]
        else:
            store.barrier()
            dir_bytes = store.get(key, (size - frame, dir_len))
            tail_start, tail = size - frame, dir_bytes + tail[-8:]
        reader = BinaryReader(dir_bytes)
        header = json.loads(reader.read_len_bytes().decode("utf-8"))
        count = reader.read_uvarint()
        entries = []
        offset = 0
        for _ in range(count):
            offset += reader.read_uvarint()
            stored = reader.read_uvarint()
            raw = reader.read_uvarint()
            codec = reader.read_u8()
            entries.append((offset, stored, raw, codec))
        return cls(
            store,
            key,
            size=size,
            header=header,
            entries=entries,
            tail=tail,
            tail_start=tail_start,
        )

    def __len__(self) -> int:
        return len(self._entries)

    def component_size(self, component_id: int) -> int:
        return self._entry(component_id)[1]

    def _entry(self, component_id: int) -> tuple[int, int, int, int]:
        if not 0 <= component_id < len(self._entries):
            raise FormatError(
                f"component {component_id} out of range in {self.key!r} "
                f"({len(self._entries)} components)"
            )
        return self._entries[component_id]

    def _fetch(self, offset: int, stored: int) -> bytes:
        # Served from the cached tail when fully contained — free, like
        # any real reader that keeps its footer read around.
        if offset >= self._tail_start:
            rel = offset - self._tail_start
            return self._tail[rel : rel + stored]
        return self.store.get(self.key, (offset, stored))

    def read(self, component_id: int) -> bytes:
        """Fetch and decompress one component (<= one ranged GET)."""
        offset, stored, _, codec = self._entry(component_id)
        return compression.decompress(self._fetch(offset, stored), codec)

    def read_many(self, component_ids: list[int]) -> list[bytes]:
        """Fetch several components as one parallel round (no barriers
        between them); returns them in input order."""
        return [self.read(cid) for cid in component_ids]

    def read_all(self) -> list[bytes]:
        """Download every component (used by compaction merges, where a
        full sequential read is the right access pattern)."""
        return [self.read(cid) for cid in range(len(self._entries))]

"""The Rottnest client: ``index`` and ``search`` (paper §IV-A, §IV-B).

The client is stateless between calls; all shared state lives in the
object store (index files + metadata table) and the underlying lake.
``index`` may be called from any process; ``search`` is read-only and
safe to run concurrently with everything else. ``compact`` and
``vacuum`` live in :mod:`repro.core.maintenance`.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import (
    IndexAborted,
    ObjectStoreError,
    RottnestIndexError,
    SnapshotNotFound,
)
from repro.core.index_file import IndexFileReader, IndexFileWriter, PageDirectory
from repro.core.queries import Query, VectorQuery
from repro.formats.page_reader import (
    PageEntry,
    PageTable,
    build_page_table,
    fetch_pages,
)
from repro.formats.reader import ParquetFile
from repro.indices.base import (
    ExactQuerier,
    ScoringQuerier,
    builder_for,
    querier_for,
)
from repro.lake.snapshot import Snapshot
from repro.lake.table import LakeTable
from repro.meta.metadata_table import IndexRecord, MetadataTable
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.storage.latency import LatencyModel
from repro.storage.object_store import ObjectStore
from repro.storage.pool import TracedPool
from repro.storage.stats import RequestTrace

INDEX_FILES_DIR = "files"
DEFAULT_INDEX_TIMEOUT_S = 3600.0

_SEARCHES = get_registry().counter(
    "searches_total", "Search calls by query kind", ("kind",)
)
_INDEX_BUILDS = get_registry().counter(
    "index_builds_total", "Index build attempts by outcome", ("outcome",)
)


@dataclass(frozen=True)
class SearchMatch:
    """One verified result row."""

    file: str
    row: int  # file-global row index
    value: object  # the matched column value
    score: float | None = None  # distance for scoring queries


@dataclass
class SearchStats:
    """Accounting for one search call."""

    trace: RequestTrace
    index_files_queried: int = 0
    files_brute_forced: int = 0
    pages_probed: int = 0
    candidates: int = 0
    false_positives: int = 0

    def estimated_latency(self, model: LatencyModel | None = None) -> float:
        """Wall-clock estimate under the store's latency model."""
        return (model or LatencyModel()).trace_latency(self.trace)


@dataclass
class SearchResult:
    matches: list[SearchMatch]
    stats: SearchStats


@dataclass(frozen=True)
class SearchPlan:
    """What a search would do, without doing it (``explain``)."""

    column: str
    snapshot_version: int
    candidate_files: tuple[str, ...]  # files in scope after filtering
    index_files: tuple[tuple[str, str, int], ...]  # (key, type, files covered)
    uncovered_files: tuple[str, ...]  # would be brute-force scanned

    @property
    def fully_covered(self) -> bool:
        return not self.uncovered_files

    def describe(self) -> str:
        lines = [
            f"search plan for column {self.column!r} "
            f"@ snapshot v{self.snapshot_version}",
            f"  files in scope: {len(self.candidate_files)}",
        ]
        for key, index_type, covered in self.index_files:
            lines.append(
                f"  index {key} ({index_type}) -> {covered} file(s)"
            )
        if self.uncovered_files:
            lines.append(
                f"  brute-force scan: {len(self.uncovered_files)} file(s)"
            )
        else:
            lines.append("  brute-force scan: none (fully covered)")
        return "\n".join(lines)


class RottnestClient:
    """Index management + search over one lake table column set."""

    def __init__(
        self,
        store: ObjectStore,
        index_dir: str,
        lake: LakeTable,
        *,
        index_timeout_s: float = DEFAULT_INDEX_TIMEOUT_S,
        codec: str = "zlib",
        key_entropy: Callable[[], bytes] | None = None,
    ) -> None:
        self.store = store
        self.index_dir = index_dir.rstrip("/")
        self.lake = lake
        self.meta = MetadataTable(store, self.index_dir)
        self.index_timeout_s = index_timeout_s
        self.codec = codec
        #: Optional :class:`repro.ingest.IngestTier`. When attached,
        #: ``search`` merges the tier's fresh view of the query snapshot
        #: (WAL segments beyond the snapshot's committed high-water
        #: mark) with the lazy-tier results, so acked-but-undrained rows
        #: are returned before any ``index`` run. Assigned, not
        #: constructor-injected, to keep the core free of an ingest
        #: dependency.
        self.fresh_tier = None
        # Salt source for fresh index keys. Injectable so the chaos
        # fuzzer can make whole protocol histories bit-reproducible
        # from one seed.
        self._key_entropy = key_entropy or (lambda: os.urandom(4))

    # ------------------------------------------------------------------
    # index (§IV-A): plan -> build -> upload -> commit, with timeout
    # ------------------------------------------------------------------
    def index(
        self,
        column: str,
        index_type: str,
        *,
        snapshot: Snapshot | None = None,
        params: dict | None = None,
        workers: int = 1,
        pool: "TracedPool | None" = None,
    ) -> IndexRecord | None:
        """Bring the index on ``column`` up to date with ``snapshot``.

        Builds one new index file covering every Parquet file in the
        snapshot not already covered by the metadata table. Returns the
        committed record, or ``None`` when there is nothing new to
        index. Raises :class:`IndexAborted` on timeout, on inputs that
        vanish mid-build (e.g. a concurrent lake vacuum), or when the
        new data is below the index type's minimum size.

        ``workers > 1`` (or an injected ``pool``) fans the per-file
        page-value extraction across a bounded worker pool; the index
        structure itself is still built and committed on the calling
        thread, so the committed bytes and metadata are identical to
        the serial run regardless of worker count.
        """
        with get_tracer().span(
            "index", column=column, index_type=index_type
        ) as span:
            before = self.store.stats.snapshot()
            try:
                record = self._index(
                    column,
                    index_type,
                    snapshot=snapshot,
                    params=params,
                    workers=workers,
                    pool=pool,
                )
            except IndexAborted:
                _INDEX_BUILDS.inc(outcome="aborted")
                span.set("outcome", "aborted")
                raise
            finally:
                delta = self.store.stats.snapshot().delta(before)
                span.set("bytes_read", delta.bytes_read)
                span.set("bytes_written", delta.bytes_written)
                span.set(
                    "requests",
                    delta.gets + delta.puts + delta.lists
                    + delta.heads + delta.deletes,
                )
            outcome = "noop" if record is None else "committed"
            _INDEX_BUILDS.inc(outcome=outcome)
            span.set("outcome", outcome)
            if record is not None:
                span.set("rows", record.num_rows)
                span.set("index_bytes", record.size)
            return record

    def _index(
        self,
        column: str,
        index_type: str,
        *,
        snapshot: Snapshot | None = None,
        params: dict | None = None,
        workers: int = 1,
        pool: "TracedPool | None" = None,
    ) -> IndexRecord | None:
        tracer = get_tracer()
        started = self.store.clock.now()
        builder_cls = builder_for(index_type)

        # Plan: new data files only (deletion vectors are never
        # indexed); coverage is per (column, index type). Metadata and
        # manifest reads are inherently sequential round trips, so the
        # plan phase always runs on the calling thread.
        with tracer.span("index.plan", phase="plan") as plan_span:
            self.store.start_trace()
            try:
                snap = snapshot or self.lake.snapshot()
                already = self.meta.indexed_files(column, index_type)
            finally:
                plan_trace = self.store.stop_trace()
            plan_trace.barrier()
            plan_span.trace = plan_trace
        new_files = [f for f in snap.files if f.path not in already]
        if not new_files:
            return None
        total_rows = sum(f.num_rows for f in new_files)
        if total_rows < builder_cls.min_rows:
            raise IndexAborted(
                f"{total_rows} new rows < minimum {builder_cls.min_rows} for "
                f"{index_type!r}; leave them to brute-force scanning"
            )

        # Extract: page tables + page values, one task per input file.
        # Workers only *read*; results are reassembled in snapshot file
        # order with sequentially renumbered page gids, so the page
        # stream — and hence the built index — is byte-identical to the
        # serial loop no matter how tasks interleave.
        with tracer.span(
            "index.extract", phase="extract", files=len(new_files)
        ) as extract_span:
            if pool is not None:
                extract_trace, extracted = pool.run(
                    [
                        lambda e=entry: self._extract_file(e, column)
                        for entry in new_files
                    ],
                    span_name="indexer:task",
                )
            elif workers > 1:
                with TracedPool(
                    self.store,
                    workers=workers,
                    thread_name_prefix="indexer",
                    span_name="indexer:task",
                ) as scratch:
                    extract_trace, extracted = scratch.run(
                        [
                            lambda e=entry: self._extract_file(e, column)
                            for entry in new_files
                        ]
                    )
            else:
                # Serial loop: one blocking extraction at a time, so
                # per-file traces compose sequentially — the same shape
                # a one-worker pool records.
                extract_trace = RequestTrace()
                extracted = []
                for entry in new_files:
                    self.store.start_trace()
                    try:
                        extracted.append(self._extract_file(entry, column))
                    finally:
                        extract_trace = extract_trace.then(
                            self.store.stop_trace()
                        )
            extract_span.trace = extract_trace

        tables: list[PageTable] = []
        page_stream: list[tuple[int, list]] = []
        gid = 0
        for table, page_values in extracted:
            tables.append(table)
            for values in page_values:
                page_stream.append((gid, values))
                gid += 1
        builder = builder_cls.build(page_stream, **(params or {}))
        writer = IndexFileWriter(
            index_type,
            column,
            PageDirectory(tables),
            params=dict(params or {}),
            codec=self.codec,
        )
        builder.write(writer)
        blob = writer.finish()

        # Timeout check before any externally visible effect: an indexer
        # that overruns must abort so vacuum's age-based GC stays sound.
        self._check_timeout(started, "before upload")

        # Commit (transactional insert into the metadata table) stays
        # single-threaded whatever the worker count — the Existence
        # invariant needs the index-file PUT durable before its record,
        # and the metadata log is one conditional-PUT stream anyway.
        with tracer.span("index.commit", phase="commit") as commit_span:
            self.store.start_trace()
            try:
                key = self.new_index_key(blob)
                self.store.put(key, blob)

                # A crash between upload and here leaves an orphan index
                # file, cleaned up by vacuum once it is older than the
                # timeout.
                self._check_timeout(started, "before commit")
                record = IndexRecord(
                    index_key=key,
                    index_type=index_type,
                    column=column,
                    covered_files=tuple(f.path for f in new_files),
                    num_rows=total_rows,
                    size=len(blob),
                    created_at=self.store.clock.now(),
                )
                self.meta.insert([record])
            finally:
                commit_trace = self.store.stop_trace()
            commit_span.trace = commit_trace
        return record

    def _extract_file(
        self, entry, column: str
    ) -> tuple[PageTable, list[list]]:
        """Read one Parquet file's page table + page values for indexing.

        Pure read work — safe to run on a pool thread. Raises
        :class:`IndexAborted` when the input vanished mid-build (e.g. a
        concurrent lake vacuum), exactly like the serial loop did.
        """
        try:
            reader = ParquetFile(self.store, entry.path)
        except ObjectStoreError as exc:
            raise IndexAborted(
                f"input file {entry.path!r} disappeared during indexing; "
                f"retry against a newer snapshot"
            ) from exc
        table = build_page_table(reader.metadata, entry.path, column)
        return table, list(_iter_page_values(reader, table, column))

    def new_index_key(self, blob: bytes, *, deterministic: bool = False) -> str:
        """Object key for a freshly built index blob.

        ``index`` keys are salted: two concurrent indexers of the same
        snapshot build identical blobs but must commit *distinct*
        records (the metadata table rejects double-insert of one key),
        so each gets its own key and vacuum later drops the loser.

        ``deterministic=True`` is content-addressed — same blob, same
        key — which is what makes compaction idempotent: a crashed run
        re-executed by a fresh client re-uploads the same bytes to the
        same key (a harmless overwrite) instead of accreting orphans.
        """
        digest = hashlib.sha1(blob).hexdigest()
        if deterministic:
            return f"{self.index_dir}/{INDEX_FILES_DIR}/{digest[:20]}.index"
        return (
            f"{self.index_dir}/{INDEX_FILES_DIR}/"
            f"{digest[:10]}-{self._key_entropy().hex()}.index"
        )

    def _open_data_file(self, snap: Snapshot, path: str) -> ParquetFile:
        """Open a snapshot data file, translating a missing object into
        an actionable error: old snapshots stop being searchable once
        the lake's vacuum physically drops their files."""
        try:
            return ParquetFile(self.store, path)
        except ObjectStoreError as exc:
            _raise_unmaterialized(snap, path, exc)

    def _check_timeout(self, started: float, stage: str) -> None:
        elapsed = self.store.clock.now() - started
        if elapsed > self.index_timeout_s:
            raise IndexAborted(
                f"index operation exceeded timeout ({elapsed:.0f}s > "
                f"{self.index_timeout_s:.0f}s) {stage}; retry"
            )

    # ------------------------------------------------------------------
    # search (§IV-B): plan -> query indices -> in-situ probe -> brute fill
    # ------------------------------------------------------------------
    def search(
        self,
        column: str,
        query: Query,
        *,
        k: int = 10,
        snapshot: Snapshot | None = None,
        partition: str | None = None,
        file_predicate=None,
        use_indices: bool = True,
    ) -> SearchResult:
        """Top-K search of ``snapshot`` (defaults to latest).

        Exact queries return any K verified matches; scoring queries
        return the K best-ranked. Rows in unindexed Parquet files are
        found by brute-force scanning, so no live row is ever missed.

        ``partition`` / ``file_predicate`` restrict the search to a
        subset of the snapshot's files — the paper's §VI mechanism for
        structured filters (e.g. a time-range predicate over
        time-partitioned data): cost scales with the fraction of
        partitions touched instead of the whole lake.

        ``use_indices=False`` skips index planning entirely and scans
        every in-scope file — the degraded mode the serve layer falls
        back to when an index component read fails mid-query. Results
        are identical (indices only accelerate), just slower.
        """
        if k < 1:
            raise RottnestIndexError(f"k must be >= 1, got {k}")
        tracer = get_tracer()
        with tracer.span(
            "search",
            column=column,
            k=k,
            engine="client",
            # Query kind rides on the root so the cracking heat map can
            # weigh workloads (a brute-forced vector scan costs far more
            # than a brute-forced UUID probe).
            kind=type(query).__name__,
        ) as root:
            # Plan phase is part of the query's latency: reading the
            # metadata table (and the snapshot manifest when not pinned)
            # costs real object-store round trips.
            with tracer.span("plan", phase="plan") as plan_span:
                self.store.start_trace()
                snap = snapshot or self.lake.snapshot()
                snap_paths = self._scope(snap, partition, file_predicate)
                if use_indices:
                    chosen, uncovered = self._plan(column, query, snap_paths)
                else:
                    chosen, uncovered = [], set(snap_paths)
                plan_trace = self.store.stop_trace()
                plan_trace.barrier()  # index queries depend on the plan
                plan_span.trace = plan_trace

            stats = SearchStats(trace=plan_trace)
            stats.index_files_queried = len(chosen)

            # Fresh tier first: memtable probes are in-memory, so they
            # cost nothing in the trace but count toward K. Structured
            # scoping (partition / file predicate) addresses lake files
            # only, so scoped queries stay lazy-tier-only.
            fresh: list[SearchMatch] = []
            if (
                self.fresh_tier is not None
                and partition is None
                and file_predicate is None
            ):
                with tracer.span("probe:fresh", phase="fresh") as fresh_span:
                    fresh = self.fresh_tier.search_fresh(
                        column, query, k=k, snapshot=snap
                    )
                    fresh_span.set("matches", len(fresh))

            if query.scoring:
                lazy = self._search_scoring(
                    column, query, k, snap, snap_paths, chosen, uncovered, stats
                )
                matches = sorted(fresh + lazy, key=lambda m: m.score)[:k]
            elif len(fresh) >= k:
                matches = fresh[:k]
            else:
                matches = fresh + self._search_exact(
                    column,
                    query,
                    k - len(fresh),
                    snap,
                    snap_paths,
                    chosen,
                    uncovered,
                    stats,
                )
            _SEARCHES.inc(kind="scoring" if query.scoring else "exact")
            root.set("matches", len(matches))
            root.set("fresh_matches", len(fresh))
            root.set("index_files_queried", stats.index_files_queried)
            root.set("pages_probed", stats.pages_probed)
            root.set("files_brute_forced", stats.files_brute_forced)
            return SearchResult(matches=matches, stats=stats)

    def count(
        self,
        column: str,
        query,
        *,
        snapshot: Snapshot | None = None,
        partition: str | None = None,
    ) -> int:
        """Exact occurrence count of a substring, straight off the
        FM indices (no in-situ probing for covered files).

        Counts *occurrences* (overlapping included), not matching rows,
        which is what corpus-frequency analytics wants. Rows in
        uncovered files are brute-force counted; logically deleted rows
        are **included** for covered files (their text is still in the
        index) — pass a post-vacuum snapshot for exact live counts, or
        use :meth:`search` when deletions matter.
        """
        from repro.core.queries import SubstringQuery
        from repro.indices.fm.fm_index import FmQuerier

        if not isinstance(query, SubstringQuery):
            raise RottnestIndexError(
                "count() serves SubstringQuery only; use search() otherwise"
            )
        with get_tracer().span("count", column=column) as span:
            snap = snapshot or self.lake.snapshot()
            snap_paths = self._scope(snap, partition, None)
            chosen, uncovered = self._plan(column, query, snap_paths)
            total = 0
            for record in chosen:
                reader = IndexFileReader.open(self.store, record.index_key)
                querier = FmQuerier(reader)
                # Count only occurrences within in-scope files: when the
                # index also covers out-of-scope files, fall back to probing
                # pages per file via candidate resolution.
                if set(record.covered_files) <= snap_paths:
                    total += querier.count(query.needle)
                else:
                    total += self._count_via_scan(
                        column, query, snap,
                        set(record.covered_files) & snap_paths,
                    )
            total += self._count_via_scan(column, query, snap, uncovered)
            span.set("occurrences", total)
            return total

    def _count_via_scan(self, column, query, snap, paths) -> int:
        total = 0
        for path in sorted(paths):
            dv = self.lake.deletion_vector(snap, path)
            reader = self._open_data_file(snap, path)
            for row, value in reader.scan_column(column):
                if row in dv:
                    continue
                total += _count_overlapping(value, query.needle)
        return total

    def _scope(
        self,
        snap: Snapshot,
        partition: str | None,
        file_predicate,
    ) -> set[str]:
        """Snapshot files in scope for this query."""
        paths = set(snap.file_paths)
        if partition is not None:
            paths = {
                p for p in paths if LakeTable.partition_of(p) == partition
            }
        if file_predicate is not None:
            paths = {p for p in paths if file_predicate(p)}
        return paths

    def explain(
        self,
        column: str,
        query: Query,
        *,
        snapshot: Snapshot | None = None,
        partition: str | None = None,
        file_predicate=None,
    ) -> SearchPlan:
        """The plan :meth:`search` would execute, without executing it."""
        snap = snapshot or self.lake.snapshot()
        snap_paths = self._scope(snap, partition, file_predicate)
        chosen, uncovered = self._plan(column, query, snap_paths)
        return SearchPlan(
            column=column,
            snapshot_version=snap.version,
            candidate_files=tuple(sorted(snap_paths)),
            index_files=tuple(
                (
                    r.index_key,
                    r.index_type,
                    len(set(r.covered_files) & snap_paths),
                )
                for r in chosen
            ),
            uncovered_files=tuple(sorted(uncovered)),
        )

    def _plan(
        self, column: str, query: Query, snap_paths: set[str]
    ) -> tuple[list[IndexRecord], set[str]]:
        """Pick index files to query and files left to brute-force.

        Newest-first greedy cover: later index files (e.g. produced by
        index compaction) win over the older ones they subsume; index
        files covering no file of the snapshot are skipped entirely.
        Any index type the query declares compatible can serve it, with
        earlier types in ``query.index_types`` preferred on timestamp
        ties (e.g. a trie over a bloom filter for the same files).
        """
        if not query.index_types:
            return [], set(snap_paths)
        type_rank = {t: i for i, t in enumerate(query.index_types)}
        records = [
            r
            for r in self.meta.records()
            if r.column == column and r.index_type in type_rank
        ]
        # Newest first; ties (same store-clock second) broken by query
        # type preference, then metadata insertion order so compaction
        # products win over the files they subsume.
        ordered = [
            records[i]
            for i in sorted(
                range(len(records)),
                key=lambda i: (
                    -records[i].created_at,
                    type_rank[records[i].index_type],
                    -i,
                ),
            )
        ]
        chosen: list[IndexRecord] = []
        covered: set[str] = set()
        for record in ordered:
            useful = (set(record.covered_files) & snap_paths) - covered
            if useful:
                chosen.append(record)
                covered |= useful
        return chosen, snap_paths - covered

    # -- exact (UUID / substring / regex) ------------------------------
    def _search_exact(
        self,
        column: str,
        query: Query,
        k: int,
        snap: Snapshot,
        snap_paths: set[str],
        chosen: list[IndexRecord],
        uncovered: set[str],
        stats: SearchStats,
    ) -> list[SearchMatch]:
        tracer = get_tracer()
        # Candidate pages are kept per record (first probe to claim a
        # page wins, via the shared `seen_pages` set) so page reads can
        # be issued as one coalesced batch per claiming record — the
        # same partition the pipelined executor produces.
        per_record_pages: list[list[PageEntry]] = []
        seen_pages: set[tuple[str, int]] = set()
        with tracer.span("probe:index", phase="index_probe") as index_span:
            index_trace = RequestTrace()
            for record in chosen:
                claimed: list[PageEntry] = []
                trace = self._query_one_exact(
                    record, query, snap_paths, claimed, seen_pages
                )
                per_record_pages.append(claimed)
                # Index files are queried in parallel with each other...
                index_trace = index_trace.merge_parallel(trace)
            index_span.trace = index_trace
        # ...but strictly after the plan phase.
        stats.trace = stats.trace.then(index_trace)
        stats.candidates = sum(len(c) for c in per_record_pages)

        # In-situ probing: each record's claimed pages go out as one
        # coalesced batch (`get_many`), then the real predicate is
        # verified row by row with deletion vectors applied. Early-K
        # termination skips whole later batches.
        with tracer.span("probe:pages", phase="page_read") as page_span:
            self.store.start_trace()
            field = snap.schema.field(column)
            matches: list[SearchMatch] = []
            probed_files: set[str] = set()
            for claimed in per_record_pages:
                if len(matches) >= k or not claimed:
                    continue
                try:
                    payloads = fetch_pages(self.store, field, claimed)
                except ObjectStoreError as exc:
                    _raise_unmaterialized(snap, _failed_key(exc, claimed), exc)
                stats.pages_probed += len(claimed)
                probed_files.update(entry.file_key for entry in claimed)
                for entry, (row_start, values) in zip(claimed, payloads):
                    dv = self.lake.deletion_vector(snap, entry.file_key)
                    page_hit = False
                    for i, value in enumerate(values):
                        row = row_start + i
                        if row in dv or not query.matches(value):
                            continue
                        page_hit = True
                        matches.append(
                            SearchMatch(file=entry.file_key, row=row, value=value)
                        )
                    if not page_hit:
                        stats.false_positives += 1
                    if len(matches) >= k:
                        break
            # Probing depends on index results; sequential after them.
            page_span.trace = self.store.stop_trace()
            page_span.set("probed_files", tuple(sorted(probed_files)))
            stats.trace = stats.trace.then(page_span.trace)

        # Brute-force the uncovered files only if K is not yet satisfied
        # (paper §IV-B step 3).
        if len(matches) < k and uncovered:
            with tracer.span("brute_force", phase="brute_force") as brute_span:
                self.store.start_trace()
                scanned: list[str] = []
                for path in sorted(uncovered):
                    stats.files_brute_forced += 1
                    scanned.append(path)
                    matches.extend(
                        self._brute_force_exact(
                            column, query, snap, path, k - len(matches)
                        )
                    )
                    if len(matches) >= k:
                        break
                brute_span.trace = self.store.stop_trace()
                brute_span.set("scanned_files", tuple(scanned))
                stats.trace = stats.trace.then(brute_span.trace)
        return matches[:k]

    def _query_one_exact(
        self,
        record: IndexRecord,
        query: Query,
        snap_paths: set[str],
        candidate_pages: list[PageEntry],
        seen_pages: set[tuple[str, int]],
    ) -> RequestTrace:
        """Query one index file; traces are kept separate so parallel
        index queries do not serialize in the latency estimate."""
        self.store.start_trace()
        try:
            reader = IndexFileReader.open(self.store, record.index_key)
            querier = querier_for(record.index_type)(reader)
            assert isinstance(querier, ExactQuerier)
            key = _exact_key(query)
            gids = querier.candidate_pages(key)
            directory = reader.directory
            for gid in gids:
                entry = directory.locate(gid)
                if entry.file_key not in snap_paths:
                    continue  # stale location (file compacted away)
                page_key = (entry.file_key, entry.page_id)
                if page_key not in seen_pages:
                    seen_pages.add(page_key)
                    candidate_pages.append(entry)
        finally:
            trace = self.store.stop_trace()
        return trace

    def _brute_force_exact(
        self,
        column: str,
        query: Query,
        snap: Snapshot,
        path: str,
        needed: int,
    ) -> list[SearchMatch]:
        dv = self.lake.deletion_vector(snap, path)
        reader = self._open_data_file(snap, path)
        out: list[SearchMatch] = []
        for row, value in reader.scan_column(column):
            if row in dv or not query.matches(value):
                continue
            out.append(SearchMatch(file=path, row=row, value=value))
            if len(out) >= needed:
                break
        return out

    # -- scoring (vector) ------------------------------------------------
    def _search_scoring(
        self,
        column: str,
        query: VectorQuery,
        k: int,
        snap: Snapshot,
        snap_paths: set[str],
        chosen: list[IndexRecord],
        uncovered: set[str],
        stats: SearchStats,
    ) -> list[SearchMatch]:
        tracer = get_tracer()
        candidates: list[tuple[PageEntry, int, float]] = []
        with tracer.span("probe:index", phase="index_probe") as index_span:
            index_trace = RequestTrace()
            cell_probes: list[tuple[str, tuple[int, ...]]] = []
            for record in chosen:
                self.store.start_trace()
                try:
                    reader = IndexFileReader.open(self.store, record.index_key)
                    querier = querier_for(record.index_type)(reader)
                    assert isinstance(querier, ScoringQuerier)
                    found = querier.candidates(
                        query.vector, nprobe=query.nprobe, limit=query.refine
                    )
                    probed = getattr(querier, "last_probed_cells", ())
                    if probed:
                        cell_probes.append((record.index_key, tuple(probed)))
                    directory = reader.directory
                    for cand in found:
                        entry = directory.locate(cand.gid)
                        if entry.file_key in snap_paths:
                            candidates.append((entry, cand.offset, cand.score))
                finally:
                    trace = self.store.stop_trace()
                index_trace = index_trace.merge_parallel(trace)
            index_span.trace = index_trace
            index_span.set("cell_probes", tuple(cell_probes))
        stats.trace = stats.trace.then(index_trace)
        # Keep the globally best `refine` PQ candidates across indices.
        candidates.sort(key=lambda c: c[2])
        candidates = candidates[: query.refine]
        stats.candidates = len(candidates)

        # Refine: read candidate pages as one coalesced batch, compute
        # exact distances.
        with tracer.span("probe:pages", phase="page_read") as page_span:
            self.store.start_trace()
            field = snap.schema.field(column)
            by_page: dict[tuple[str, int], list[int]] = {}
            entries: dict[tuple[str, int], PageEntry] = {}
            for entry, offset, _ in candidates:
                page_key = (entry.file_key, entry.page_id)
                by_page.setdefault(page_key, []).append(offset)
                entries[page_key] = entry
            scored: list[SearchMatch] = []
            page_entries = [entries[page_key] for page_key in by_page]
            try:
                payloads = fetch_pages(self.store, field, page_entries)
            except ObjectStoreError as exc:
                _raise_unmaterialized(snap, _failed_key(exc, page_entries), exc)
            stats.pages_probed += len(page_entries)
            for entry, offsets, (row_start, values) in zip(
                page_entries, by_page.values(), payloads
            ):
                dv = self.lake.deletion_vector(snap, entry.file_key)
                for offset in set(offsets):
                    row = row_start + offset
                    if row in dv:
                        continue
                    value = values[offset]
                    scored.append(
                        SearchMatch(
                            file=entry.file_key,
                            row=row,
                            value=value,
                            score=query.distance(value),
                        )
                    )
            page_span.trace = self.store.stop_trace()
            page_span.set(
                "probed_files", tuple(sorted({e.file_key for e in page_entries}))
            )
            stats.trace = stats.trace.then(page_span.trace)
        # Scoring queries must rank *all* data: unindexed files are
        # scanned exhaustively (paper §IV-B step 3).
        if uncovered:
            with tracer.span("brute_force", phase="brute_force") as brute_span:
                self.store.start_trace()
                brute_span.set("scanned_files", tuple(sorted(uncovered)))
                for path in sorted(uncovered):
                    stats.files_brute_forced += 1
                    dv = self.lake.deletion_vector(snap, path)
                    reader = self._open_data_file(snap, path)
                    for row, value in reader.scan_column(column):
                        if row in dv:
                            continue
                        scored.append(
                            SearchMatch(
                                file=path, row=row, value=value,
                                score=query.distance(value),
                            )
                        )
                brute_span.trace = self.store.stop_trace()
                stats.trace = stats.trace.then(brute_span.trace)
        scored.sort(key=lambda m: m.score)
        return scored[:k]


def _count_overlapping(haystack: str, needle: str) -> int:
    count = start = 0
    while True:
        start = haystack.find(needle, start)
        if start < 0:
            return count
        count += 1
        start += 1


def _failed_key(exc: Exception, entries: list[PageEntry]) -> str:
    """The data-file key behind a failed batched page read.

    Store errors that know their key (``ObjectNotFound``) report it;
    otherwise the batch's first file stands in for the error message.
    """
    key = getattr(exc, "key", None)
    return key if isinstance(key, str) else entries[0].file_key


def _raise_unmaterialized(snap: Snapshot, path: str, exc: Exception):
    raise SnapshotNotFound(
        f"data file {path!r} of snapshot v{snap.version} is no longer "
        f"materialized (removed by a lake vacuum); search a newer snapshot"
    ) from exc


def _exact_key(query: Query):
    if hasattr(query, "index_probe"):
        return query.index_probe()
    raise RottnestIndexError(f"query {query!r} cannot probe an index")


def _iter_page_values(reader: ParquetFile, table: PageTable, column: str):
    """Yield each page's values in page-table order.

    Index builds stream whole files, so chunk-granularity reads are the
    right access width; the chunks are then re-sliced along the page
    boundaries the index will point at.
    """
    all_values: list = []
    vector_chunks: list[np.ndarray] = []
    # Chunk reads depend on the footer fetched at open: a dependent
    # round in the trace (chunks themselves fan out within the round).
    reader.store.barrier()
    for rg_index in range(len(reader.metadata.row_groups)):
        values = reader.read_column_chunk(rg_index, column)
        if isinstance(values, np.ndarray):
            vector_chunks.append(values)
        else:
            all_values.extend(values)
    column_values = (
        np.concatenate(vector_chunks) if vector_chunks else all_values
    )
    for entry in table.entries:
        yield column_values[entry.row_start : entry.row_start + entry.num_values]

"""Rottnest index file: page directory + componentized index payload.

Every index file records, for each Parquet file it covers, the *page
table* of the indexed column (offsets/sizes/row ranges of every data
page — §V-A). Pages across all covered files get dense **global page
ids**: file 0's pages come first, then file 1's, and so on. Index
posting lists speak global page ids; the page directory converts them
back into ``(file, byte-range)`` for in-situ probing.

Component 0 of every index file is the serialized page directory; the
type-specific components follow and are addressed by *name* through the
``components`` map in the JSON header.
"""

from __future__ import annotations


from repro.errors import FormatError
from repro.formats.page_reader import PageEntry, PageTable
from repro.core.componentize import ComponentFileReader, ComponentFileWriter
from repro.storage.object_store import ObjectStore
from repro.util.binio import BinaryReader, BinaryWriter

FORMAT_VERSION = 1


class PageDirectory:
    """Maps global page ids to concrete pages of covered files."""

    def __init__(self, tables: list[PageTable]) -> None:
        self.tables = tables
        self._bases: list[int] = []
        base = 0
        for table in tables:
            self._bases.append(base)
            base += len(table)
        self._num_pages = base

    @property
    def num_pages(self) -> int:
        return self._num_pages

    @property
    def file_keys(self) -> list[str]:
        return [t.file_key for t in self.tables]

    @property
    def num_rows(self) -> int:
        return sum(t.num_rows for t in self.tables)

    def base_of(self, file_index: int) -> int:
        return self._bases[file_index]

    def locate(self, gid: int) -> PageEntry:
        """Global page id -> the page's entry (with its file key)."""
        if not 0 <= gid < self._num_pages:
            raise FormatError(f"global page id {gid} out of range")
        # Binary search over bases.
        lo, hi = 0, len(self._bases) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._bases[mid] <= gid:
                lo = mid
            else:
                hi = mid - 1
        return self.tables[lo].entry(gid - self._bases[lo])

    def table_of(self, gid: int) -> PageTable:
        lo, hi = 0, len(self._bases) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._bases[mid] <= gid:
                lo = mid
            else:
                hi = mid - 1
        return self.tables[lo]

    def serialize(self) -> bytes:
        writer = BinaryWriter()
        writer.write_uvarint(len(self.tables))
        for table in self.tables:
            table.serialize(writer)
        return writer.getvalue()

    @classmethod
    def deserialize(cls, data: bytes) -> "PageDirectory":
        reader = BinaryReader(data)
        count = reader.read_uvarint()
        return cls([PageTable.deserialize(reader) for _ in range(count)])

    @classmethod
    def concat(cls, parts: list["PageDirectory"]) -> "PageDirectory":
        """Directory of a merged index: parts in order, gids shifted."""
        tables: list[PageTable] = []
        for part in parts:
            tables.extend(part.tables)
        return cls(tables)


class IndexFileWriter:
    """Assembles one index file."""

    def __init__(
        self,
        index_type: str,
        column: str,
        directory: PageDirectory,
        *,
        params: dict | None = None,
        codec: str = "zlib",
    ) -> None:
        self.index_type = index_type
        self.column = column
        self.directory = directory
        self.params = dict(params or {})
        self._writer = ComponentFileWriter(codec)
        first = self._writer.add(directory.serialize())
        self._names: dict[str, int] = {"__pages__": first}

    def add_component(self, name: str, data: bytes, *, compress: bool = True) -> int:
        if name in self._names:
            raise FormatError(f"duplicate component name {name!r}")
        cid = self._writer.add(data, compress=compress)
        self._names[name] = cid
        return cid

    def finish(self) -> bytes:
        header = {
            "format": FORMAT_VERSION,
            "index_type": self.index_type,
            "column": self.column,
            "covered_files": self.directory.file_keys,
            "num_rows": self.directory.num_rows,
            "params": self.params,
            "components": self._names,
        }
        return self._writer.finish(header)


class IndexFileReader:
    """Opens an index file and exposes named components on demand."""

    def __init__(self, reader: ComponentFileReader) -> None:
        self._reader = reader
        header = reader.header
        if header.get("format") != FORMAT_VERSION:
            raise FormatError(
                f"unsupported index format {header.get('format')!r} in "
                f"{reader.key!r}"
            )
        self.index_type: str = header["index_type"]
        self.column: str = header["column"]
        self.covered_files: list[str] = header["covered_files"]
        self.num_rows: int = header["num_rows"]
        self.params: dict = header["params"]
        self._names: dict[str, int] = header["components"]
        self._directory: PageDirectory | None = None

    @classmethod
    def open(cls, store: ObjectStore, key: str) -> "IndexFileReader":
        return cls(ComponentFileReader.open(store, key))

    @property
    def key(self) -> str:
        return self._reader.key

    @property
    def store(self) -> ObjectStore:
        return self._reader.store

    @property
    def size(self) -> int:
        return self._reader.size

    def component_names(self) -> list[str]:
        return sorted(self._names)

    def has_component(self, name: str) -> bool:
        return name in self._names

    def component(self, name: str) -> bytes:
        try:
            cid = self._names[name]
        except KeyError:
            raise FormatError(
                f"no component {name!r} in {self._reader.key!r}"
            ) from None
        return self._reader.read(cid)

    def components(self, names: list[str]) -> list[bytes]:
        """Fetch several components as one parallel round."""
        return self._reader.read_many([self._names[n] for n in names])

    def barrier(self) -> None:
        """Dependency point between component reads (latency tracing)."""
        self._reader.store.barrier()

    @property
    def directory(self) -> PageDirectory:
        if self._directory is None:
            self._directory = PageDirectory.deserialize(self.component("__pages__"))
        return self._directory

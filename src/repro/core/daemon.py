"""Maintenance daemon: policy-driven index / compact / vacuum.

The paper's APIs are deliberately manual — "can be called from any VM
instance or serverless function" — and in production someone schedules
them. This module is that someone: a :class:`MaintenancePolicy` says
*when* each operation is due, and :class:`MaintenanceDaemon.tick` runs
whatever is due against the store's clock. Driving ticks from a cron
job (or, in tests, from a :class:`~repro.util.clock.SimClock`) yields
the paper's deployment story without any resident process state — the
daemon can crash and restart anywhere, because all its inputs come from
the metadata table and the lake log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IndexAborted
from repro.core.client import RottnestClient
from repro.core.maintenance import (
    VacuumReport,
    compact_indices,
    covering_records,
    vacuum_indices,
)
from repro.meta.metadata_table import IndexRecord
from repro.obs.attribution import attribute
from repro.obs.metrics import get_registry
from repro.obs.timeseries import get_hub
from repro.obs.trace import get_tracer
from repro.storage.pool import IOBudget, TracedPool

_TICKS = get_registry().counter(
    "daemon_ticks_total", "Maintenance daemon ticks by outcome", ("outcome",)
)
_ACTIONS = get_registry().counter(
    "daemon_actions_total", "Maintenance operations run by ticks", ("action",)
)


@dataclass(frozen=True)
class MaintenancePolicy:
    """When is each maintenance operation worth running?"""

    index_min_new_files: int = 1
    """Run ``index`` when at least this many uncovered files exist."""

    index_min_new_bytes: int = 0
    """...and they total at least this many bytes."""

    compact_min_small_files: int = 4
    """Run ``compact`` when this many sub-threshold index files exist."""

    compact_threshold_bytes: int = 16 * 1024 * 1024

    vacuum_interval_s: float = 7 * 24 * 3600.0
    """Run ``vacuum`` at most this often (it LISTs the bucket)."""

    retain_snapshots: int = 1
    """Vacuum keeps indices for the last N lake snapshots."""


@dataclass
class TickReport:
    """What one daemon tick did."""

    indexed: list[IndexRecord] = field(default_factory=list)
    index_aborts: list[str] = field(default_factory=list)
    compacted: list[IndexRecord] = field(default_factory=list)
    vacuum: VacuumReport | None = None
    refined: list[IndexRecord] = field(default_factory=list)
    """Index files rewritten in place by cell refinement (the cracking
    controller's verb; always empty for the schedule-driven daemon)."""

    @property
    def idle(self) -> bool:
        return (
            not self.indexed
            and not self.index_aborts
            and not self.compacted
            and not self.refined
            and self.vacuum is None
        )


class MaintenanceDaemon:
    """Runs due maintenance for a set of (column, index type) targets."""

    def __init__(
        self,
        client: RottnestClient,
        targets: list[tuple[str, str]],
        *,
        policy: MaintenancePolicy | None = None,
        index_params: dict[tuple[str, str], dict] | None = None,
        workers: int = 1,
        budget: "IOBudget | None" = None,
    ) -> None:
        self.client = client
        self.targets = list(targets)
        self.policy = policy or MaintenancePolicy()
        self.index_params = dict(index_params or {})
        self._last_vacuum: float | None = None
        # ``workers > 1`` (or a shared IO budget) routes index/compact
        # through a TracedPool so maintenance ticks can overlap live
        # serving: the budget caps the combined in-flight store tasks
        # of this pool and any query executor sharing it.
        self.workers = workers
        self.budget = budget
        self._pool: "TracedPool | None" = None
        if workers > 1 or budget is not None:
            self._pool = TracedPool(
                client.store,
                workers=workers,
                thread_name_prefix="maintainer",
                span_name="maintainer:task",
                budget=budget,
            )

    def close(self) -> None:
        """Shut down the worker pool (no-op for serial daemons)."""
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "MaintenanceDaemon":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- due? ---------------------------------------------------------
    def index_due(self, column: str, index_type: str) -> bool:
        snap = self.client.lake.snapshot()
        covered = self.client.meta.indexed_files(column, index_type)
        new = [f for f in snap.files if f.path not in covered]
        if len(new) < self.policy.index_min_new_files:
            return False
        return sum(f.size for f in new) >= self.policy.index_min_new_bytes

    def compact_due(self, column: str, index_type: str) -> bool:
        small = [
            r
            for r in covering_records(self.client, column, index_type)
            if r.size < self.policy.compact_threshold_bytes
        ]
        return len(small) >= self.policy.compact_min_small_files

    def vacuum_due(self) -> bool:
        now = self.client.store.clock.now()
        if self._last_vacuum is None:
            return True
        return now - self._last_vacuum >= self.policy.vacuum_interval_s

    # -- act ------------------------------------------------------------
    def run_index(
        self, column: str, index_type: str, *, snapshot=None, report: TickReport
    ) -> IndexRecord | None:
        """One guarded index run, folded into ``report``.

        The extension point subclass controllers drive: passing a
        ``snapshot`` restricted to a subset of the lake's files turns
        the run into *targeted* indexing (only those files get covered;
        the rest stay on the brute-force path). Aborts (e.g. too few
        rows for a vector index yet) are recorded, not raised — the
        data stays brute-force searchable and a later tick retries.
        """
        try:
            record = self.client.index(
                column,
                index_type,
                snapshot=snapshot,
                params=self.index_params.get((column, index_type)),
                pool=self._pool,
            )
        except IndexAborted as exc:
            report.index_aborts.append(f"{column}/{index_type}: {exc}")
            _ACTIONS.inc(action="index_abort")
            return None
        if record is not None:
            report.indexed.append(record)
            _ACTIONS.inc(action="index")
        return record

    def tick(self) -> TickReport:
        """Run everything currently due; returns what happened."""
        report = TickReport()
        with get_tracer().span("daemon.tick") as span:
            for column, index_type in self.targets:
                if self.index_due(column, index_type):
                    self.run_index(column, index_type, report=report)
                if self.compact_due(column, index_type):
                    compacted = compact_indices(
                        self.client,
                        column,
                        index_type,
                        threshold_bytes=self.policy.compact_threshold_bytes,
                        pool=self._pool,
                    )
                    report.compacted.extend(compacted)
                    if compacted:
                        _ACTIONS.inc(action="compact")
            if self.vacuum_due():
                latest = self.client.lake.latest_version()
                snapshot_id = max(0, latest - self.policy.retain_snapshots + 1)
                report.vacuum = vacuum_indices(self.client, snapshot_id=snapshot_id)
                self._last_vacuum = self.client.store.clock.now()
                _ACTIONS.inc(action="vacuum")
            span.set("idle", report.idle)
            span.set("indexed", len(report.indexed))
            span.set("compacted", len(report.compacted))
        _TICKS.inc(outcome="idle" if report.idle else "acted")
        self._record_telemetry(span, report)
        return report

    def _record_telemetry(self, span, report: TickReport) -> None:
        """Feed tick outcomes and maintenance spend into the hub.

        A tick that indexed anything is billed to the ledger's one-time
        index-build bucket (the TCO model's ``ic``); any other non-idle
        tick bills to ongoing maintenance. Mixed ticks land entirely in
        the index bucket — the build dominates and the split is not
        recoverable from a single tick-level span tree.
        """
        hub = get_hub()
        at_s = self.client.store.clock.now()
        actions = (
            len(report.indexed)
            + len(report.index_aborts)
            + len(report.compacted)
            + len(report.refined)
            + (1 if report.vacuum is not None else 0)
        )
        hub.series("daemon.ticks").observe(1.0, at_s=at_s)
        if actions:
            hub.series("daemon.actions").observe(float(actions), at_s=at_s)
        if report.idle:
            return
        bill = attribute(span)
        request_usd = bill.total_request_cost_usd()
        compute_usd = bill.compute_cost_usd
        op = "index" if (report.indexed or report.refined) else "maintain"
        hub.ledger.record_maintain(op, request_usd, compute_usd, at_s=at_s)
        hub.series("maintain.cost_usd").observe(
            request_usd + compute_usd, at_s=at_s
        )

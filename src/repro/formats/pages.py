"""Data pages: the minimal access granularity of the columnar format.

The paper's key observation (§V-A) is that although Parquet *row groups*
are ~128 MB, the *data page* inside a column chunk is sized by
uncompressed content (~1 MB raw, a few hundred KB compressed) regardless
of row-group size — so a reader that can address pages directly gets
search-friendly granularity out of a format designed for scans.

A page on disk is just the compressed encoding of a run of values; all
framing (offset, sizes, row range) lives in the file footer and, for
Rottnest, in external page tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.formats import compression
from repro.formats.encoding import decode_values, encode_values, value_nbytes
from repro.formats.schema import ColumnType, Field

#: Default uncompressed bytes of raw data per page (paper: ~1 MB).
DEFAULT_PAGE_TARGET_BYTES = 1 << 20


@dataclass(frozen=True)
class BuiltPage:
    """A page ready to be placed into a file."""

    data: bytes  # compressed encoded values
    uncompressed_size: int
    num_values: int


def split_into_pages(field: Field, values, target_bytes: int) -> list[list]:
    """Split a column chunk's values into page-sized runs.

    Greedy: accumulate values until the uncompressed size would exceed
    ``target_bytes``; every page holds at least one value so oversized
    single values (a 5 MB document, say) still fit.
    """
    if target_bytes <= 0:
        raise ValueError(f"target_bytes must be positive, got {target_bytes}")
    pages: list[list] = []
    current: list = []
    current_bytes = 0
    for value in values:
        nbytes = value_nbytes(field, value)
        if current and current_bytes + nbytes > target_bytes:
            pages.append(current)
            current = []
            current_bytes = 0
        current.append(value)
        current_bytes += nbytes
    if current:
        pages.append(current)
    return pages


def build_page(field: Field, values, codec: int) -> BuiltPage:
    """Encode and compress one page of values."""
    if field.type is ColumnType.VECTOR:
        num_values = len(values)
    else:
        num_values = len(values)
    raw = encode_values(field, values)
    return BuiltPage(
        data=compression.compress(raw, codec),
        uncompressed_size=len(raw),
        num_values=num_values,
    )


def decode_page(field: Field, data: bytes, codec: int, num_values: int):
    """Decompress and decode one page back into values."""
    raw = compression.decompress(data, codec)
    return decode_values(field, raw, num_values)

"""Table schema for the columnar format.

Types cover the paper's three workloads: INT64/FLOAT64 structured
attributes, STRING text (substring search), BINARY identifiers (UUID
search), and fixed-dimension float32 VECTOR embeddings (ANN search).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import FormatError
from repro.util.binio import BinaryReader, BinaryWriter


class ColumnType(enum.IntEnum):
    INT64 = 0
    FLOAT64 = 1
    STRING = 2
    BINARY = 3
    VECTOR = 4


@dataclass(frozen=True)
class Field:
    """One column: name, type, and vector dimension when applicable."""

    name: str
    type: ColumnType
    vector_dim: int = 0

    def __post_init__(self) -> None:
        if self.type is ColumnType.VECTOR and self.vector_dim <= 0:
            raise FormatError(f"vector field {self.name!r} needs vector_dim > 0")
        if self.type is not ColumnType.VECTOR and self.vector_dim:
            raise FormatError(f"non-vector field {self.name!r} has vector_dim set")


@dataclass(frozen=True)
class Schema:
    fields: tuple[Field, ...]

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise FormatError(f"duplicate column names in schema: {names}")

    @classmethod
    def of(cls, *fields: Field) -> "Schema":
        return cls(fields=tuple(fields))

    @property
    def names(self) -> list[str]:
        return [f.name for f in self.fields]

    def field(self, name: str) -> Field:
        for f in self.fields:
            if f.name == name:
                return f
        raise FormatError(f"no column {name!r} in schema {self.names}")

    def index_of(self, name: str) -> int:
        for i, f in enumerate(self.fields):
            if f.name == name:
                return i
        raise FormatError(f"no column {name!r} in schema {self.names}")

    def serialize(self, writer: BinaryWriter) -> None:
        writer.write_uvarint(len(self.fields))
        for f in self.fields:
            writer.write_str(f.name)
            writer.write_u8(int(f.type))
            writer.write_uvarint(f.vector_dim)

    @classmethod
    def deserialize(cls, reader: BinaryReader) -> "Schema":
        count = reader.read_uvarint()
        fields = []
        for _ in range(count):
            name = reader.read_str()
            type_ = ColumnType(reader.read_u8())
            dim = reader.read_uvarint()
            fields.append(Field(name=name, type=type_, vector_dim=dim))
        return cls(fields=tuple(fields))

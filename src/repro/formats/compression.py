"""Compression codecs for pages and index components.

Real Parquet supports snappy/zstd/gzip; offline we get zlib from the
standard library, which has the same qualitative behaviour the paper
relies on: compression shrinks both storage cost and read amplification,
and decompression is cheap relative to object-store latency (Fig. 10b).
"""

from __future__ import annotations

import zlib

from repro.errors import FormatError

NONE = 0
ZLIB = 1

_NAMES = {NONE: "none", ZLIB: "zlib"}
_IDS = {name: codec_id for codec_id, name in _NAMES.items()}


def codec_id(name: str) -> int:
    """Numeric id for a codec name (``"none"`` or ``"zlib"``)."""
    try:
        return _IDS[name]
    except KeyError:
        raise FormatError(f"unknown codec {name!r}; known: {sorted(_IDS)}") from None


def codec_name(codec: int) -> str:
    try:
        return _NAMES[codec]
    except KeyError:
        raise FormatError(f"unknown codec id {codec}") from None


def compress(data: bytes, codec: int) -> bytes:
    if codec == NONE:
        return data
    if codec == ZLIB:
        return zlib.compress(data, level=6)
    raise FormatError(f"unknown codec id {codec}")


def decompress(data: bytes, codec: int) -> bytes:
    if codec == NONE:
        return data
    if codec == ZLIB:
        try:
            return zlib.decompress(data)
        except zlib.error as exc:
            raise FormatError(f"corrupt zlib page: {exc}") from exc
    raise FormatError(f"unknown codec id {codec}")

"""Writer and footer metadata for the Parquet-like columnar file.

File layout (all offsets absolute within the file):

.. code-block:: text

    +--------+-------------------------------+--------+---------+--------+
    | "RPQ1" | page data (all chunks, pages) | footer | len u32 | "RPQ1" |
    +--------+-------------------------------+--------+---------+--------+

Row groups contain one column chunk per schema field; a chunk is a
sequence of contiguous pages. The footer records the full page index and
per-chunk min/max statistics, mirroring real Parquet closely enough that
the paper's two pain points reproduce: (1) min/max stats are useless for
high-cardinality/search columns, and (2) a traditional reader's unit of
IO is the (large) column chunk.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro.errors import FormatError
from repro.formats import compression
from repro.formats.encoding import comparable, pack_stat, unpack_stat
from repro.formats.pages import (
    DEFAULT_PAGE_TARGET_BYTES,
    build_page,
    split_into_pages,
)
from repro.formats.schema import Schema
from repro.util.binio import BinaryReader, BinaryWriter

MAGIC = b"RPQ1"

#: Default rows per row group. Real writers target ~128 MB; for the
#: MB-scale corpora in this repo a row-count target keeps files realistic
#: (multiple row groups, chunk >> page) without gigabyte inputs.
DEFAULT_ROW_GROUP_ROWS = 50_000


@dataclass(frozen=True)
class PageMeta:
    """Placement of one page within the file."""

    offset: int
    compressed_size: int
    uncompressed_size: int
    num_values: int
    first_row: int  # file-global row index of the page's first value


@dataclass(frozen=True)
class ColumnChunkMeta:
    """One column's data within one row group."""

    column: str
    codec: int
    pages: tuple[PageMeta, ...]
    stat_min: bytes | None = None
    stat_max: bytes | None = None

    @property
    def start_offset(self) -> int:
        return self.pages[0].offset

    @property
    def total_compressed_size(self) -> int:
        return sum(p.compressed_size for p in self.pages)

    @property
    def num_values(self) -> int:
        return sum(p.num_values for p in self.pages)


@dataclass(frozen=True)
class RowGroupMeta:
    first_row: int
    num_rows: int
    chunks: tuple[ColumnChunkMeta, ...]

    def chunk(self, column: str) -> ColumnChunkMeta:
        for c in self.chunks:
            if c.column == column:
                return c
        raise FormatError(f"no column chunk {column!r} in row group")


@dataclass(frozen=True)
class FileMetadata:
    schema: Schema
    row_groups: tuple[RowGroupMeta, ...]

    @property
    def num_rows(self) -> int:
        return sum(rg.num_rows for rg in self.row_groups)

    def chunk_stats(self, column: str):
        """(min, max) per row group for ``column``, or None entries when
        stats are unavailable for the type."""
        f = self.schema.field(column)
        out = []
        for rg in self.row_groups:
            chunk = rg.chunk(column)
            if chunk.stat_min is None or chunk.stat_max is None:
                out.append(None)
            else:
                out.append(
                    (unpack_stat(f, chunk.stat_min), unpack_stat(f, chunk.stat_max))
                )
        return out


@dataclass
class WriteResult:
    """Everything a caller (lake writer, indexer) needs about a new file."""

    data: bytes
    metadata: FileMetadata
    num_rows: int = dc_field(init=False)

    def __post_init__(self) -> None:
        self.num_rows = self.metadata.num_rows


def write_parquet(
    schema: Schema,
    columns: dict[str, list],
    *,
    codec: str = "zlib",
    row_group_rows: int = DEFAULT_ROW_GROUP_ROWS,
    page_target_bytes: int = DEFAULT_PAGE_TARGET_BYTES,
) -> WriteResult:
    """Serialize columnar data into a single file's bytes.

    ``columns`` maps every schema field name to its list of values; all
    columns must have equal length >= 1.
    """
    if set(columns) != set(schema.names):
        raise FormatError(
            f"columns {sorted(columns)} do not match schema {schema.names}"
        )
    lengths = {name: len(vals) for name, vals in columns.items()}
    if len(set(lengths.values())) != 1:
        raise FormatError(f"ragged columns: {lengths}")
    num_rows = next(iter(lengths.values()))
    if num_rows == 0:
        raise FormatError("cannot write an empty file")
    if row_group_rows <= 0:
        raise FormatError(f"row_group_rows must be positive, got {row_group_rows}")

    codec_id = compression.codec_id(codec)
    body = BinaryWriter()
    body.write_bytes(MAGIC)

    row_groups: list[RowGroupMeta] = []
    for rg_start in range(0, num_rows, row_group_rows):
        rg_rows = min(row_group_rows, num_rows - rg_start)
        chunks: list[ColumnChunkMeta] = []
        for f in schema.fields:
            values = columns[f.name][rg_start : rg_start + rg_rows]
            pages: list[PageMeta] = []
            row_cursor = rg_start
            for page_values in split_into_pages(f, values, page_target_bytes):
                built = build_page(f, page_values, codec_id)
                pages.append(
                    PageMeta(
                        offset=len(body),
                        compressed_size=len(built.data),
                        uncompressed_size=built.uncompressed_size,
                        num_values=built.num_values,
                        first_row=row_cursor,
                    )
                )
                body.write_bytes(built.data)
                row_cursor += built.num_values
            stat_min = stat_max = None
            if comparable(f):
                stat_min = pack_stat(f, min(values))
                stat_max = pack_stat(f, max(values))
            chunks.append(
                ColumnChunkMeta(
                    column=f.name,
                    codec=codec_id,
                    pages=tuple(pages),
                    stat_min=stat_min,
                    stat_max=stat_max,
                )
            )
        row_groups.append(
            RowGroupMeta(first_row=rg_start, num_rows=rg_rows, chunks=tuple(chunks))
        )

    metadata = FileMetadata(schema=schema, row_groups=tuple(row_groups))
    footer = _serialize_footer(metadata)
    body.write_bytes(footer)
    body.write_u32(len(footer))
    body.write_bytes(MAGIC)
    return WriteResult(data=body.getvalue(), metadata=metadata)


def _serialize_footer(metadata: FileMetadata) -> bytes:
    w = BinaryWriter()
    metadata.schema.serialize(w)
    w.write_uvarint(len(metadata.row_groups))
    for rg in metadata.row_groups:
        w.write_uvarint(rg.first_row)
        w.write_uvarint(rg.num_rows)
        w.write_uvarint(len(rg.chunks))
        for chunk in rg.chunks:
            w.write_str(chunk.column)
            w.write_u8(chunk.codec)
            w.write_len_bytes(chunk.stat_min if chunk.stat_min is not None else b"")
            w.write_u8(1 if chunk.stat_min is not None else 0)
            w.write_len_bytes(chunk.stat_max if chunk.stat_max is not None else b"")
            w.write_u8(1 if chunk.stat_max is not None else 0)
            w.write_uvarint(len(chunk.pages))
            for p in chunk.pages:
                w.write_uvarint(p.offset)
                w.write_uvarint(p.compressed_size)
                w.write_uvarint(p.uncompressed_size)
                w.write_uvarint(p.num_values)
                w.write_uvarint(p.first_row)
    return w.getvalue()


def parse_footer(footer: bytes) -> FileMetadata:
    r = BinaryReader(footer)
    schema = Schema.deserialize(r)
    num_rgs = r.read_uvarint()
    row_groups = []
    for _ in range(num_rgs):
        first_row = r.read_uvarint()
        num_rows = r.read_uvarint()
        num_chunks = r.read_uvarint()
        chunks = []
        for _ in range(num_chunks):
            column = r.read_str()
            codec = r.read_u8()
            min_bytes = r.read_len_bytes()
            has_min = r.read_u8()
            max_bytes = r.read_len_bytes()
            has_max = r.read_u8()
            num_pages = r.read_uvarint()
            pages = tuple(
                PageMeta(
                    offset=r.read_uvarint(),
                    compressed_size=r.read_uvarint(),
                    uncompressed_size=r.read_uvarint(),
                    num_values=r.read_uvarint(),
                    first_row=r.read_uvarint(),
                )
                for _ in range(num_pages)
            )
            chunks.append(
                ColumnChunkMeta(
                    column=column,
                    codec=codec,
                    pages=pages,
                    stat_min=min_bytes if has_min else None,
                    stat_max=max_bytes if has_max else None,
                )
            )
        row_groups.append(
            RowGroupMeta(first_row=first_row, num_rows=num_rows, chunks=tuple(chunks))
        )
    return FileMetadata(schema=schema, row_groups=tuple(row_groups))

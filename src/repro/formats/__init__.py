"""Parquet-like columnar file format and its two readers."""

from repro.formats.page_reader import (
    PageEntry,
    PageTable,
    build_page_table,
    read_page,
    read_pages,
    read_rows_via_pages,
)
from repro.formats.parquet import (
    DEFAULT_ROW_GROUP_ROWS,
    FileMetadata,
    WriteResult,
    parse_footer,
    write_parquet,
)
from repro.formats.pages import DEFAULT_PAGE_TARGET_BYTES
from repro.formats.reader import ParquetFile
from repro.formats.schema import ColumnType, Field, Schema

__all__ = [
    "ColumnType",
    "Field",
    "Schema",
    "FileMetadata",
    "WriteResult",
    "write_parquet",
    "parse_footer",
    "ParquetFile",
    "PageEntry",
    "PageTable",
    "build_page_table",
    "read_page",
    "read_pages",
    "read_rows_via_pages",
    "DEFAULT_PAGE_TARGET_BYTES",
    "DEFAULT_ROW_GROUP_ROWS",
]

"""Plain value encodings per column type.

Values travel through the library as Python lists (ints, floats, strs,
bytes) except vectors, which are numpy ``float32`` arrays of shape
``(n, dim)`` for speed in the ANN code paths.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import FormatError
from repro.formats.schema import ColumnType, Field
from repro.util.binio import BinaryReader, BinaryWriter


def encode_values(field: Field, values) -> bytes:
    """Encode a homogeneous batch of values for ``field``."""
    writer = BinaryWriter()
    type_ = field.type
    if type_ is ColumnType.INT64:
        writer.write_bytes(np.asarray(values, dtype="<i8").tobytes())
    elif type_ is ColumnType.FLOAT64:
        writer.write_bytes(np.asarray(values, dtype="<f8").tobytes())
    elif type_ is ColumnType.STRING:
        for v in values:
            writer.write_len_bytes(v.encode("utf-8"))
    elif type_ is ColumnType.BINARY:
        for v in values:
            writer.write_len_bytes(bytes(v))
    elif type_ is ColumnType.VECTOR:
        arr = np.asarray(values, dtype="<f4")
        if arr.ndim != 2 or arr.shape[1] != field.vector_dim:
            raise FormatError(
                f"vector batch shape {arr.shape} does not match dim "
                f"{field.vector_dim}"
            )
        writer.write_bytes(arr.tobytes())
    else:  # pragma: no cover - enum is closed
        raise FormatError(f"unknown column type {type_}")
    return writer.getvalue()


def decode_values(field: Field, data: bytes, count: int):
    """Decode ``count`` values of ``field`` from ``data``.

    Inverse of :func:`encode_values`; returns a list (or a 2-D numpy
    array for vectors).
    """
    type_ = field.type
    if type_ is ColumnType.INT64:
        _expect(data, count * 8)
        return np.frombuffer(data, dtype="<i8", count=count).tolist()
    if type_ is ColumnType.FLOAT64:
        _expect(data, count * 8)
        return np.frombuffer(data, dtype="<f8", count=count).tolist()
    if type_ is ColumnType.STRING:
        reader = BinaryReader(data)
        return [reader.read_len_bytes().decode("utf-8") for _ in range(count)]
    if type_ is ColumnType.BINARY:
        reader = BinaryReader(data)
        return [reader.read_len_bytes() for _ in range(count)]
    if type_ is ColumnType.VECTOR:
        _expect(data, count * field.vector_dim * 4)
        arr = np.frombuffer(data, dtype="<f4", count=count * field.vector_dim)
        return arr.reshape(count, field.vector_dim).copy()
    raise FormatError(f"unknown column type {type_}")  # pragma: no cover


def value_nbytes(field: Field, value) -> int:
    """Uncompressed encoded size of a single value (used by the page
    writer to decide page boundaries without re-encoding)."""
    type_ = field.type
    if type_ in (ColumnType.INT64, ColumnType.FLOAT64):
        return 8
    if type_ is ColumnType.STRING:
        n = len(value.encode("utf-8"))
        return n + _uvarint_len(n)
    if type_ is ColumnType.BINARY:
        n = len(value)
        return n + _uvarint_len(n)
    if type_ is ColumnType.VECTOR:
        return field.vector_dim * 4
    raise FormatError(f"unknown column type {type_}")  # pragma: no cover


def _uvarint_len(value: int) -> int:
    length = 1
    while value >= 0x80:
        value >>= 7
        length += 1
    return length


def _expect(data: bytes, nbytes: int) -> None:
    if len(data) < nbytes:
        raise FormatError(f"page too short: have {len(data)}, need {nbytes}")


def comparable(field: Field) -> bool:
    """Whether min/max chunk statistics make sense for this type."""
    return field.type in (
        ColumnType.INT64,
        ColumnType.FLOAT64,
        ColumnType.STRING,
        ColumnType.BINARY,
    )


def pack_stat(field: Field, value) -> bytes:
    """Serialize a min/max statistic value."""
    type_ = field.type
    if type_ is ColumnType.INT64:
        return struct.pack("<q", value)
    if type_ is ColumnType.FLOAT64:
        return struct.pack("<d", value)
    if type_ is ColumnType.STRING:
        return value.encode("utf-8")
    if type_ is ColumnType.BINARY:
        return bytes(value)
    raise FormatError(f"no stats for column type {type_}")


def unpack_stat(field: Field, data: bytes):
    type_ = field.type
    if type_ is ColumnType.INT64:
        return struct.unpack("<q", data)[0]
    if type_ is ColumnType.FLOAT64:
        return struct.unpack("<d", data)[0]
    if type_ is ColumnType.STRING:
        return data.decode("utf-8")
    if type_ is ColumnType.BINARY:
        return data
    raise FormatError(f"no stats for column type {type_}")

"""Rottnest's optimized reader: page granularity, no footer access.

At *index* time Rottnest records a :class:`PageTable` — the offsets,
sizes and row ranges of every data page of the indexed column (paper
§V-A, the analogue of NoDB's positional zone maps). At *query* time a
page read is then a single byte-range GET of a few hundred KB that
bypasses the footer entirely (Fig. 5, right), versus the traditional
reader's footer fetch plus tens-of-MB chunk fetch.

Posting lists in Rottnest indices point at ``(file, page ordinal)``
pairs; in-situ probing reads just those pages and re-applies the real
predicate to remove false positives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FormatError
from repro.formats.pages import decode_page
from repro.formats.parquet import FileMetadata
from repro.formats.schema import Field
from repro.storage.object_store import ObjectStore
from repro.util.binio import BinaryReader, BinaryWriter


@dataclass(frozen=True)
class PageEntry:
    """Placement of one data page of the indexed column."""

    file_key: str
    page_id: int  # ordinal of the page within (file, column)
    offset: int
    compressed_size: int
    num_values: int
    row_start: int  # file-global row index of the first value
    codec: int


class PageTable:
    """All pages of one column of one file, in page-ordinal order."""

    def __init__(self, file_key: str, column: str, entries: list[PageEntry]) -> None:
        self.file_key = file_key
        self.column = column
        self.entries = entries

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def num_rows(self) -> int:
        return sum(e.num_values for e in self.entries)

    def entry(self, page_id: int) -> PageEntry:
        if not 0 <= page_id < len(self.entries):
            raise FormatError(
                f"page {page_id} out of range for {self.file_key!r} "
                f"({len(self.entries)} pages)"
            )
        return self.entries[page_id]

    def page_of_row(self, row_index: int) -> int:
        """Page ordinal containing a file-global row index."""
        lo, hi = 0, len(self.entries) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.entries[mid].row_start <= row_index:
                lo = mid
            else:
                hi = mid - 1
        e = self.entries[lo]
        if not e.row_start <= row_index < e.row_start + e.num_values:
            raise FormatError(f"row {row_index} outside {self.file_key!r}")
        return lo

    # -- serialization (embedded into index files) ---------------------
    def serialize(self, writer: BinaryWriter) -> None:
        writer.write_str(self.file_key)
        writer.write_str(self.column)
        writer.write_uvarint(len(self.entries))
        prev_offset = 0
        for e in self.entries:
            writer.write_uvarint(e.offset - prev_offset)  # delta: ascending
            prev_offset = e.offset
            writer.write_uvarint(e.compressed_size)
            writer.write_uvarint(e.num_values)
            writer.write_uvarint(e.row_start)
            writer.write_u8(e.codec)

    @classmethod
    def deserialize(cls, reader: BinaryReader) -> "PageTable":
        file_key = reader.read_str()
        column = reader.read_str()
        count = reader.read_uvarint()
        entries = []
        offset = 0
        for page_id in range(count):
            offset += reader.read_uvarint()
            entries.append(
                PageEntry(
                    file_key=file_key,
                    page_id=page_id,
                    offset=offset,
                    compressed_size=reader.read_uvarint(),
                    num_values=reader.read_uvarint(),
                    row_start=reader.read_uvarint(),
                    codec=reader.read_u8(),
                )
            )
        return cls(file_key=file_key, column=column, entries=entries)


def build_page_table(metadata: FileMetadata, file_key: str, column: str) -> PageTable:
    """Extract the page table for ``column`` from a file's footer
    metadata (done once, at index build time)."""
    entries: list[PageEntry] = []
    page_id = 0
    for rg in metadata.row_groups:
        chunk = rg.chunk(column)
        for page in chunk.pages:
            entries.append(
                PageEntry(
                    file_key=file_key,
                    page_id=page_id,
                    offset=page.offset,
                    compressed_size=page.compressed_size,
                    num_values=page.num_values,
                    row_start=page.first_row,
                    codec=chunk.codec,
                )
            )
            page_id += 1
    if not entries:
        raise FormatError(f"column {column!r} has no pages in {file_key!r}")
    return PageTable(file_key=file_key, column=column, entries=entries)


def read_page(store: ObjectStore, field: Field, entry: PageEntry):
    """One byte-range GET + decode of a single page.

    Returns ``(row_start, values)``; no footer or HEAD request is made.
    """
    blob = store.get(entry.file_key, (entry.offset, entry.compressed_size))
    values = decode_page(field, blob, entry.codec, entry.num_values)
    return entry.row_start, values


def fetch_pages(
    store: ObjectStore,
    field: Field,
    entries: list[PageEntry],
    *,
    gap_threshold: int | None = None,
    budget=None,
):
    """Read several pages through the coalescing batch scheduler.

    The page ranges go to :meth:`ObjectStore.get_many`, which merges
    near-adjacent ranges into one GET per cluster (delta-encoded page
    tables make neighbouring pages of one file exactly contiguous, so
    adjacent candidates merge with zero waste). Returns a list of
    ``(row_start, values)`` in input order, byte-identical to calling
    :func:`read_page` per entry.
    """
    from repro.storage.sched import RangeRequest

    requests = [
        RangeRequest(e.file_key, e.offset, e.compressed_size) for e in entries
    ]
    blobs = store.get_many(
        requests, gap_threshold=gap_threshold, budget=budget
    )
    return [
        (e.row_start, decode_page(field, blob, e.codec, e.num_values))
        for e, blob in zip(entries, blobs)
    ]


def read_pages(store: ObjectStore, field: Field, entries: list[PageEntry]):
    """Read several pages (issued as one coalesced parallel round).

    Returns a list of ``(row_start, values)`` in input order.
    """
    return fetch_pages(store, field, entries)


def read_rows_via_pages(
    store: ObjectStore,
    field: Field,
    table: PageTable,
    row_indices: list[int],
):
    """Fetch specific rows reading only the pages that contain them.

    Returns ``{row_index: value}``.
    """
    wanted = sorted(set(row_indices))
    if not wanted:
        return {}
    by_page: dict[int, list[int]] = {}
    for r in wanted:
        by_page.setdefault(table.page_of_row(r), []).append(r)
    entries = [table.entry(page_id) for page_id in by_page]
    out = {}
    for rows, (row_start, values) in zip(
        by_page.values(), fetch_pages(store, field, entries)
    ):
        for r in rows:
            out[r] = values[r - row_start]
    return out

"""Traditional Parquet reader: column-chunk granularity.

This mirrors how open-source readers behave on object storage (paper
Fig. 5, left): open the footer first, then fetch *entire column chunks*
even when only a handful of rows are needed. It is the baseline against
which the page-granular reader in :mod:`repro.formats.page_reader` is an
ablation (Fig. 11: "no custom reader").
"""

from __future__ import annotations

from repro.errors import FormatError
from repro.formats.parquet import MAGIC, ColumnChunkMeta, FileMetadata, parse_footer
from repro.formats.pages import decode_page
from repro.formats.schema import Field
from repro.storage.object_store import ObjectStore

#: Suffix readers speculatively fetch hoping it contains the footer.
FOOTER_SPECULATIVE_BYTES = 64 * 1024


class ParquetFile:
    """A reader handle over one file in an object store.

    Opening costs one HEAD plus one (usually single) ranged GET for the
    footer; column-chunk reads cost one ranged GET each.
    """

    def __init__(self, store: ObjectStore, key: str) -> None:
        self.store = store
        self.key = key
        self._size = store.head(key).size
        self.metadata = self._read_footer()

    def _read_footer(self) -> FileMetadata:
        tail_len = min(FOOTER_SPECULATIVE_BYTES, self._size)
        tail = self.store.get(self.key, (self._size - tail_len, tail_len))
        if tail[-4:] != MAGIC:
            raise FormatError(f"{self.key!r} is not a columnar file (bad magic)")
        footer_len = int.from_bytes(tail[-8:-4], "little")
        frame = footer_len + 8
        if frame > self._size:
            raise FormatError(f"{self.key!r}: footer length {footer_len} too large")
        if frame <= tail_len:
            footer = tail[-frame:-8]
        else:
            # Footer did not fit in the speculative read; fetch exactly.
            self.store.barrier()
            footer = self.store.get(self.key, (self._size - frame, footer_len))
        return parse_footer(footer)

    @property
    def schema(self):
        return self.metadata.schema

    @property
    def num_rows(self) -> int:
        return self.metadata.num_rows

    def _field(self, column: str) -> Field:
        return self.metadata.schema.field(column)

    def read_column_chunk(self, rg_index: int, column: str):
        """Read one row group's chunk of ``column`` with a single GET."""
        rg = self.metadata.row_groups[rg_index]
        chunk = rg.chunk(column)
        return self._decode_chunk(chunk)

    def _decode_chunk(self, chunk: ColumnChunkMeta):
        field = self._field(chunk.column)
        start = chunk.start_offset
        blob = self.store.get(self.key, (start, chunk.total_compressed_size))
        values = []
        for page in chunk.pages:
            page_bytes = blob[page.offset - start : page.offset - start + page.compressed_size]
            values.extend(decode_page(field, page_bytes, chunk.codec, page.num_values))
        return values

    def scan_column(self, column: str):
        """Yield ``(row_index, value)`` for every row, chunk by chunk."""
        for rg_index, rg in enumerate(self.metadata.row_groups):
            self.store.barrier()
            values = self.read_column_chunk(rg_index, column)
            for i, value in enumerate(values):
                yield rg.first_row + i, value

    def read_rows(self, column: str, row_indices: list[int]):
        """Fetch specific rows the *traditional* way: whole chunks.

        Returns ``{row_index: value}``. Chunks containing none of the
        requested rows are skipped (that much predicate pushdown real
        readers do get from the footer).
        """
        wanted = sorted(set(row_indices))
        if not wanted:
            return {}
        out = {}
        for rg_index, rg in enumerate(self.metadata.row_groups):
            lo, hi = rg.first_row, rg.first_row + rg.num_rows
            in_group = [r for r in wanted if lo <= r < hi]
            if not in_group:
                continue
            values = self.read_column_chunk(rg_index, column)
            for r in in_group:
                out[r] = values[r - lo]
        missing = [r for r in wanted if r not in out]
        if missing:
            raise FormatError(f"rows {missing[:5]}... out of range for {self.key!r}")
        return out

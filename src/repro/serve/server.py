"""The query-serving front end: admission control, warmup, stats.

:class:`SearchServer` is the piece the ROADMAP's "heavy traffic" north
star needs in front of :class:`~repro.core.client.RottnestClient`: it
owns a :class:`~repro.serve.executor.SearchExecutor` (bounded
concurrency *within* a query), an optional
:class:`~repro.serve.cache.CachingObjectStore` (reuse *across*
queries), per-server admission control (bounded concurrency *across*
queries), single-flight deduplication of identical in-flight queries,
and a warmup path that pre-loads the hot read-path components — the
metadata-table state, every index file's tail, its page directory, and
the trie root lookup tables — so the first user-facing query already
runs warm.

:class:`ServeStats` aggregates what operators watch (QPS estimate,
cache hit rate, modeled latency percentiles) and feeds the measured
requests-per-query back into :mod:`repro.tco.throughput`, replacing
that model's assumed constant with an observed one.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.client import RottnestClient, SearchResult
from repro.core.index_file import IndexFileReader
from repro.core.queries import Query, VectorQuery
from repro.errors import (
    FormatError,
    ObjectStoreError,
    ServeError,
    ServerOverloaded,
)
from repro.lake.snapshot import Snapshot
from repro.lake.table import LakeTable
from repro.obs.attribution import attribute
from repro.obs.flight import get_flight_recorder
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_S, get_registry
from repro.obs.timeseries import QuantileSketch, get_hub
from repro.obs.trace import get_tracer
from repro.serve.cache import CacheStats, CachingObjectStore
from repro.serve.executor import SearchExecutor
from repro.serve.singleflight import SingleFlight
from repro.storage.costs import CostModel
from repro.storage.latency import LatencyModel
from repro.storage.object_store import ObjectStore
from repro.tco.throughput import ThroughputModel

_QUERIES = get_registry().counter(
    "serve_queries_total", "Queries by admission outcome", ("status",)
)
_INFLIGHT = get_registry().gauge(
    "serve_inflight_queries", "Queries currently holding an admission slot"
)
_LATENCY = get_registry().histogram(
    "serve_modeled_latency_seconds",
    "Modeled end-to-end query latency",
    buckets=DEFAULT_LATENCY_BUCKETS_S,
)
_DEGRADED = get_registry().counter(
    "serve_degraded_queries_total",
    "Queries answered by brute-force fallback after an index read failure",
)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass
class ServeStats:
    """Aggregate serving report for one :class:`SearchServer`.

    Latency percentiles are backed by a mergeable
    :class:`~repro.obs.timeseries.QuantileSketch`, so memory stays
    O(sketch bins) — constant in query count — while ``p50_s`` /
    ``p90_s`` / ``p99_s`` remain available at the sketch's configured
    relative accuracy (1% by default). The first and last modeled
    latencies are kept verbatim for the cold-vs-warm comparison the
    ``serve-bench`` CLI and benchmarks print.
    """

    queries: int = 0
    rejected: int = 0  # shed by admission control
    deduplicated: int = 0  # served by another query's flight
    degraded: int = 0  # answered via brute-force fallback
    fresh_matches: int = 0  # matches served from the ingest fresh tier
    total_requests: int = 0  # object-store requests across all queries
    latency_sketch: QuantileSketch = field(default_factory=QuantileSketch)
    first_latency_s: float | None = None  # the cold query
    last_latency_s: float | None = None  # the most recent (warm) query
    cache: CacheStats | None = None

    def observe_latency(self, seconds: float) -> None:
        """Record one modeled per-query latency."""
        if self.first_latency_s is None:
            self.first_latency_s = seconds
        self.last_latency_s = seconds
        self.latency_sketch.observe(seconds)

    @property
    def latency_count(self) -> int:
        return self.latency_sketch.count

    @property
    def mean_latency_s(self) -> float:
        return self.latency_sketch.mean

    def percentile(self, q: float) -> float:
        return self.latency_sketch.quantile(q)

    @property
    def p50_s(self) -> float:
        return self.percentile(0.50)

    @property
    def p90_s(self) -> float:
        return self.percentile(0.90)

    @property
    def p99_s(self) -> float:
        return self.percentile(0.99)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache.hit_rate if self.cache is not None else 0.0

    @property
    def requests_per_query(self) -> float:
        return self.total_requests / self.queries if self.queries else 0.0

    def qps_estimate(self, max_inflight: int) -> float:
        """Little's-law throughput ceiling: ``max_inflight`` queries in
        flight, each holding a slot for its mean modeled latency."""
        mean = self.mean_latency_s
        return max_inflight / mean if mean > 0 else 0.0

    def throughput_model(self, base: ThroughputModel | None = None) -> ThroughputModel:
        """A §VII-D3 throughput model with the *measured* requests per
        query in place of the paper's assumed constant."""
        base = base or ThroughputModel()
        rpq = self.requests_per_query
        if rpq <= 0:
            return base
        return ThroughputModel(
            prefix_get_rps=base.prefix_get_rps,
            rottnest_requests_per_query=rpq,
            dedicated_qps=base.dedicated_qps,
            brute_force_concurrent_clusters=base.brute_force_concurrent_clusters,
        )

    def describe(self, max_inflight: int | None = None) -> str:
        lines = [
            f"queries served:    {self.queries} "
            f"({self.deduplicated} deduplicated, {self.rejected} shed, "
            f"{self.degraded} degraded)",
            f"requests/query:    {self.requests_per_query:.1f}",
            f"modeled latency:   p50 {self.p50_s * 1000:.1f} ms  "
            f"p90 {self.p90_s * 1000:.1f} ms  p99 {self.p99_s * 1000:.1f} ms",
        ]
        if self.cache is not None:
            lines.append(
                f"cache:             {self.cache.hits} hits / "
                f"{self.cache.misses} misses "
                f"(hit rate {self.cache.hit_rate:.1%}, "
                f"{self.cache.evictions} evictions)"
            )
        if max_inflight is not None:
            lines.append(
                f"QPS ceiling:       ~{self.qps_estimate(max_inflight):.1f} "
                f"at {max_inflight} in-flight"
            )
        return "\n".join(lines)


def _query_fingerprint(query: Query):
    """Hashable identity of a query for single-flight deduplication."""
    if isinstance(query, VectorQuery):
        return (
            "vector",
            query.vector.tobytes(),
            query.nprobe,
            query.refine,
        )
    return (type(query).__name__, repr(query))


class SearchServer:
    """Serves concurrent queries over one indexed lake column set."""

    def __init__(
        self,
        client: RottnestClient,
        *,
        max_searchers: int = 4,
        max_inflight: int = 8,
        shed_on_overload: bool = False,
        latency_model: LatencyModel | None = None,
        cost_model: CostModel | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ServeError(f"max_inflight must be >= 1, got {max_inflight}")
        self.client = client
        self.executor = SearchExecutor(client, max_searchers=max_searchers)
        self.max_inflight = max_inflight
        self.shed_on_overload = shed_on_overload
        self.latency_model = latency_model or LatencyModel()
        self.cost_model = cost_model or CostModel()
        self.stats = ServeStats(cache=self._find_cache_stats(client.store))
        self._admission = threading.BoundedSemaphore(max_inflight)
        self._flights = SingleFlight()
        self._stats_lock = threading.Lock()

    @classmethod
    def for_lake(
        cls,
        store: ObjectStore,
        index_dir: str,
        lake_root: str,
        *,
        cache_budget_bytes: int | None = None,
        **kwargs,
    ) -> "SearchServer":
        """Assemble the full serving stack over a raw store: wrap it in
        a :class:`CachingObjectStore`, re-open the lake and client
        through the cache, and build the server on top."""
        cached = CachingObjectStore(
            store,
            **(
                {"budget_bytes": cache_budget_bytes}
                if cache_budget_bytes is not None
                else {}
            ),
        )
        lake = LakeTable.open(cached, lake_root)
        client = RottnestClient(cached, index_dir, lake)
        return cls(client, **kwargs)

    @staticmethod
    def _find_cache_stats(store: ObjectStore) -> CacheStats | None:
        """Walk a wrapper chain (retry/cache/faults) to the cache, if
        one is stacked anywhere in it."""
        seen = 0
        while store is not None and seen < 8:
            if isinstance(store, CachingObjectStore):
                return store.cache_stats
            store = getattr(store, "inner", None)
            seen += 1
        return None

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self.executor.close()

    def __enter__(self) -> "SearchServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- serving -------------------------------------------------------
    def warmup(self) -> int:
        """Pre-load the hot read path into the cache.

        Reads the metadata-table state, then every index file's tail,
        page directory, and — for componentized tries — the root lookup
        table. Returns the number of index files warmed. Without a
        caching store this still works; it just warms nothing.
        """
        warmed = 0
        for record in self.client.meta.records():
            reader = IndexFileReader.open(self.client.store, record.index_key)
            reader.directory  # page directory (component 0)
            if reader.has_component("lut"):
                reader.component("lut")  # trie root levels
            warmed += 1
        return warmed

    def query(
        self,
        column: str,
        query: Query,
        *,
        k: int = 10,
        snapshot: Snapshot | None = None,
        partition: str | None = None,
    ) -> SearchResult:
        """Admission-controlled, deduplicated search.

        Identical queries in flight at the same moment share one
        execution (both callers get the same :class:`SearchResult`).
        With ``shed_on_overload`` the call raises
        :class:`~repro.errors.ServerOverloaded` instead of queueing when
        ``max_inflight`` queries are already running.

        If an index component read fails mid-query (store fault,
        vacuumed or corrupt index file), the query is transparently
        re-executed without indices — a brute-force scan returns the
        identical answer, just slower. Degraded answers are counted in
        :attr:`ServeStats.degraded` and the
        ``serve_degraded_queries_total`` metric so operators see an
        index-health regression as a rate, not an outage.
        """
        if self.shed_on_overload:
            admitted = self._admission.acquire(blocking=False)
            if not admitted:
                with self._stats_lock:
                    self.stats.rejected += 1
                _QUERIES.inc(status="rejected")
                raise ServerOverloaded(
                    f"{self.max_inflight} queries already in flight"
                )
        else:
            self._admission.acquire()
        _INFLIGHT.add(1)
        try:
            flight_key = (
                column,
                _query_fingerprint(query),
                k,
                snapshot.version if snapshot is not None else None,
                partition,
            )
            # Only the flight leader executes, so only it holds the
            # finished span tree (and therefore the attribution bill);
            # shared callers record a latency observation and nothing
            # else — costs were incurred exactly once.
            flight = {"root": None, "degraded": False}

            def execute() -> SearchResult:
                with get_tracer().span("serve.query", column=column, k=k) as root:
                    flight["root"] = root
                    try:
                        return self.executor.search(
                            column,
                            query,
                            k=k,
                            snapshot=snapshot,
                            partition=partition,
                        )
                    except (ObjectStoreError, FormatError):
                        # Graceful degradation: an index component read
                        # failed (file vacuumed under us, corrupt blob,
                        # transient store fault). Indices only
                        # accelerate — the same answer is reachable by
                        # scanning, so serve it degraded rather than
                        # failing the query. Data-file losses surface
                        # as SnapshotNotFound and still propagate.
                        _DEGRADED.inc()
                        flight["degraded"] = True
                        with self._stats_lock:
                            self.stats.degraded += 1
                        with get_tracer().span(
                            "serve.degraded", column=column, k=k
                        ):
                            return self.executor.search(
                                column,
                                query,
                                k=k,
                                snapshot=snapshot,
                                partition=partition,
                                use_indices=False,
                            )

            result, shared = self._flights.do_detailed(flight_key, execute)
            modeled_s = result.stats.estimated_latency(self.latency_model)
            fresh_matches = self._count_fresh(result)
            with self._stats_lock:
                self.stats.queries += 1
                if shared:
                    self.stats.deduplicated += 1
                self.stats.total_requests += result.stats.trace.total_requests
                self.stats.observe_latency(modeled_s)
                self.stats.fresh_matches += fresh_matches
            _QUERIES.inc(status="deduplicated" if shared else "served")
            trace_id = self._record_telemetry(
                modeled_s,
                root=None if shared else flight["root"],
                degraded=flight["degraded"] and not shared,
                fresh_matches=fresh_matches,
            )
            _LATENCY.observe(modeled_s, trace_id=trace_id)
            return result
        finally:
            _INFLIGHT.add(-1)
            self._admission.release()

    def _count_fresh(self, result: SearchResult) -> int:
        """Matches served from the ingest fresh tier (WAL-backed
        memtables), recognized by their WAL-segment file identity."""
        tier = getattr(self.client, "fresh_tier", None)
        if tier is None:
            return 0
        prefix = tier.wal.prefix
        return sum(1 for m in result.matches if m.file.startswith(prefix))

    def _record_telemetry(
        self,
        modeled_s: float,
        *,
        root,
        degraded: bool,
        fresh_matches: int = 0,
    ) -> str | None:
        """Feed the per-query outcome into the process telemetry hub.

        Every caller (leader or deduplicated) contributes a latency
        observation and a query count — that is what it experienced.
        Only the flight leader carries ``root`` (the finished span
        tree), so only it is attributed into dollars, the cost ledger,
        the tail recorder, and the flight recorder: the spend happened
        once. Returns the trace id when the flight recorder retained
        this query, so callers can attach it as an exemplar.
        """
        hub = get_hub()
        at_s = self.client.store.clock.now()
        trace_id: str | None = None
        bill = None
        if root is not None and root.end_s is not None:
            bill = attribute(
                root, latency=self.latency_model, costs=self.cost_model
            )
            recorder = get_flight_recorder()
            if recorder is not None:
                retained = recorder.record(
                    root,
                    latency_s=modeled_s,
                    at_s=at_s,
                    error=degraded,
                    bill=bill,
                    hub=hub,
                )
                if retained is not None:
                    trace_id = retained.trace_id
        hub.quantiles("serve.latency_s").observe(
            modeled_s, at_s=at_s, trace_id=trace_id
        )
        hub.series("serve.queries").observe(1.0, at_s=at_s)
        if fresh_matches:
            hub.series("ingest.fresh_matches").observe(
                float(fresh_matches), at_s=at_s
            )
        if degraded:
            hub.series("serve.degraded").observe(1.0, at_s=at_s)
        if bill is None:
            return trace_id
        request_usd = bill.total_request_cost_usd(self.cost_model)
        compute_usd = bill.compute_cost_usd
        hub.series("serve.cost_usd").observe(
            request_usd + compute_usd, at_s=at_s
        )
        hub.ledger.record_query(request_usd, compute_usd, at_s=at_s)
        hub.tail.record_bill(bill, modeled_s, at_s=at_s, degraded=degraded)
        return trace_id

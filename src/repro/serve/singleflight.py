"""Single-flight deduplication of concurrent identical work.

When many clients miss the cache on the same hot object (or issue the
same query) at the same instant, the naive path issues one object-store
fetch *per caller* — a thundering herd that multiplies both cost and
per-prefix request rate. :class:`SingleFlight` collapses the herd: the
first caller for a key becomes the *leader* and executes the work; every
concurrent caller for the same key blocks on the leader's result and
shares it (exceptions included). Callers arriving after the flight has
landed start a fresh one, so results are never stale beyond the flight
itself.

This is the Go ``golang.org/x/sync/singleflight`` pattern; both the
caching store and the search server are built on it.
"""

from __future__ import annotations

import threading
from typing import Callable, Hashable, TypeVar

T = TypeVar("T")


class _Flight:
    """One in-progress call; carries its outcome to the waiters."""

    __slots__ = ("done", "result", "error", "sharers")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: object = None
        self.error: BaseException | None = None
        self.sharers = 0  # callers that joined instead of executing


class SingleFlight:
    """Thread-safe per-key deduplication of in-flight calls."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[Hashable, _Flight] = {}
        self.leaders = 0  # calls that actually executed the work
        self.shared = 0  # calls served by somebody else's flight

    def do(self, key: Hashable, fn: Callable[[], T]) -> T:
        """Run ``fn`` once per key among concurrent callers.

        The leader's return value (or exception) is delivered to every
        caller that joined while the flight was in progress.
        """
        return self.do_detailed(key, fn)[0]

    def do_detailed(self, key: Hashable, fn: Callable[[], T]) -> tuple[T, bool]:
        """Like :meth:`do`, but also reports whether this caller shared
        another caller's flight instead of executing ``fn`` itself."""
        with self._lock:
            flight = self._flights.get(key)
            leading = flight is None
            if leading:
                flight = _Flight()
                self._flights[key] = flight
                self.leaders += 1
            else:
                flight.sharers += 1
                self.shared += 1
        if leading:
            try:
                flight.result = fn()
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                with self._lock:
                    self._flights.pop(key, None)
                flight.done.set()
            return flight.result, False  # type: ignore[return-value]
        flight.done.wait()
        if flight.error is not None:
            raise flight.error
        return flight.result, True  # type: ignore[return-value]

    def in_flight(self) -> int:
        """Number of keys currently being fetched (for introspection)."""
        with self._lock:
            return len(self._flights)

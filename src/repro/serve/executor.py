"""Concurrent search execution (paper Fig. 8c/8d).

Rottnest's defining serving property is that index-file queries are
*independent*: one query fans its index probes and in-situ page reads
across searchers, latency stays ~flat (the dependency *depth* is the
floor) while cost grows ~linearly with searcher count.
:class:`RottnestClient.search` executes that plan one index file at a
time on one thread; :class:`SearchExecutor` runs the same plan across a
bounded worker pool.

Execution keeps the sequential client's *semantics* bit-for-bit — the
matches returned are identical (an equivalence test enforces this
across the UUID, substring, and vector workloads) — while the measured
:class:`~repro.storage.stats.RequestTrace` reflects the real
concurrency: each worker records its own per-thread trace; traces of
tasks running in the same wave of ``max_searchers`` workers merge with
``merge_parallel``, waves compose sequentially with ``then``. With one
searcher the trace degenerates to the sequential client's shape; with
many it reproduces Fig. 8c's flat-latency/linear-cost curve.
"""

from __future__ import annotations

import threading
from typing import Callable, TypeVar

from repro.core.client import (
    RottnestClient,
    SearchMatch,
    SearchResult,
    SearchStats,
    _exact_key,
    _failed_key as _failed_page_key,
    _raise_unmaterialized,
)
from repro.core.index_file import IndexFileReader
from repro.core.queries import Query, VectorQuery
from repro.errors import ObjectStoreError, RottnestIndexError
from repro.formats.page_reader import PageEntry, fetch_pages
from repro.indices.base import ExactQuerier, ScoringQuerier, querier_for
from repro.lake.snapshot import Snapshot
from repro.meta.metadata_table import IndexRecord
from repro.obs.timeseries import get_hub
from repro.obs.trace import get_tracer
from repro.storage.pool import IOBudget, TracedPool
from repro.storage.stats import RequestTrace

T = TypeVar("T")


class SearchExecutor:
    """Runs one query's search plan across ``max_searchers`` workers.

    Usable as a context manager; :meth:`close` shuts the pool down.
    Results are interchangeable with ``client.search`` — only the
    request trace (and therefore modeled latency/cost) differs.
    """

    def __init__(
        self,
        client: RottnestClient,
        *,
        max_searchers: int = 4,
        budget: IOBudget | None = None,
    ) -> None:
        if max_searchers < 1:
            raise RottnestIndexError(
                f"max_searchers must be >= 1, got {max_searchers}"
            )
        self.client = client
        self.max_searchers = max_searchers
        # The fan-out machinery (per-worker traces, wave merging,
        # deterministic payload order) lives in TracedPool, shared with
        # the maintenance pipeline. A shared ``budget`` caps combined
        # in-flight tasks across everything holding it — the signal
        # that lets maintenance overlap serving without starving it.
        self._pool = TracedPool(
            client.store,
            workers=max_searchers,
            thread_name_prefix="searcher",
            span_name="searcher:task",
            budget=budget,
        )

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self._pool.close()

    def __enter__(self) -> "SearchExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- fan-out machinery ---------------------------------------------
    def _fan_out(self, tasks: list[Callable[[], T]]) -> tuple[RequestTrace, list[T]]:
        """Run tasks on the shared pool in waves of ``max_searchers``;
        see :meth:`TracedPool.run` for trace composition and ordering."""
        if tasks:
            get_hub().series("serve.fanout_tasks").observe(
                float(len(tasks)), at_s=self.client.store.clock.now()
            )
        return self._pool.run(tasks)

    # -- public API ----------------------------------------------------
    def search(
        self,
        column: str,
        query: Query,
        *,
        k: int = 10,
        snapshot: Snapshot | None = None,
        partition: str | None = None,
        file_predicate=None,
        use_indices: bool = True,
    ) -> SearchResult:
        """Concurrent equivalent of :meth:`RottnestClient.search`.

        ``use_indices=False`` skips index planning and fans the
        brute-force scans across the pool — the degraded mode
        :class:`~repro.serve.server.SearchServer` falls back to when an
        index component read fails mid-query.
        """
        if k < 1:
            raise RottnestIndexError(f"k must be >= 1, got {k}")
        client = self.client
        store = client.store
        tracer = get_tracer()
        with tracer.span(
            "search",
            column=column,
            k=k,
            engine="executor",
            searchers=self.max_searchers,
        ) as root:
            # Plan phase on the calling thread: metadata-table and
            # manifest reads are inherently sequential round trips.
            with tracer.span("plan", phase="plan") as plan_span:
                store.start_trace()
                snap = snapshot or client.lake.snapshot()
                snap_paths = client._scope(snap, partition, file_predicate)
                if use_indices:
                    chosen, uncovered = client._plan(column, query, snap_paths)
                else:
                    chosen, uncovered = [], set(snap_paths)
                plan_trace = store.stop_trace()
                plan_trace.barrier()
                plan_span.trace = plan_trace

            stats = SearchStats(trace=plan_trace)
            stats.index_files_queried = len(chosen)

            # Fresh-tier probe on the calling thread: memtables are
            # in-memory, so there is nothing to fan out. Same merge
            # contract as the sequential client — fresh rows count
            # toward K for exact queries, scored rows join the global
            # sort for top-k queries. Scoped queries stay lazy-only.
            fresh: list[SearchMatch] = []
            if (
                client.fresh_tier is not None
                and partition is None
                and file_predicate is None
            ):
                with tracer.span("probe:fresh", phase="fresh") as fresh_span:
                    fresh = client.fresh_tier.search_fresh(
                        column, query, k=k, snapshot=snap
                    )
                    fresh_span.set("matches", len(fresh))

            if query.scoring:
                lazy = self._scoring(
                    column, query, k, snap, snap_paths, chosen, uncovered, stats
                )
                matches = sorted(fresh + lazy, key=lambda m: m.score)[:k]
            elif len(fresh) >= k:
                matches = fresh[:k]
            else:
                matches = fresh + self._exact(
                    column,
                    query,
                    k - len(fresh),
                    snap,
                    snap_paths,
                    chosen,
                    uncovered,
                    stats,
                )
            root.set("matches", len(matches))
            root.set("fresh_matches", len(fresh))
            root.set("index_files_queried", stats.index_files_queried)
            root.set("pages_probed", stats.pages_probed)
            root.set("files_brute_forced", stats.files_brute_forced)
        return SearchResult(matches=matches, stats=stats)

    # -- exact path ------------------------------------------------------
    def _exact(
        self,
        column: str,
        query: Query,
        k: int,
        snap: Snapshot,
        snap_paths: set[str],
        chosen: list[IndexRecord],
        uncovered: set[str],
        stats: SearchStats,
    ) -> list[SearchMatch]:
        client = self.client
        store = client.store
        field = snap.schema.field(column)

        # Pipelined continuations: one task per index record runs probe
        # -> claim -> coalesced page reads without a global barrier, so
        # a finished probe's page reads overlap other records' probes.
        # Claiming (first probe to claim a page wins, under a lock in
        # task-submission order for the common single-record case)
        # partitions pages exactly like the sequential client's shared
        # `seen_pages` set, so both engines issue the same batches.
        seen_pages: set[tuple[str, int]] = set()
        claim_lock = threading.Lock()

        def search_record(record: IndexRecord):
            reader = IndexFileReader.open(store, record.index_key)
            querier = querier_for(record.index_type)(reader)
            assert isinstance(querier, ExactQuerier)
            gids = querier.candidate_pages(_exact_key(query))
            directory = reader.directory
            found = [
                entry
                for entry in (directory.locate(gid) for gid in gids)
                if entry.file_key in snap_paths
            ]
            claimed: list[PageEntry] = []
            with claim_lock:
                for entry in found:
                    page_key = (entry.file_key, entry.page_id)
                    if page_key not in seen_pages:
                        seen_pages.add(page_key)
                        claimed.append(entry)
            # Page reads depend on this record's probe — but only on
            # it, not on every other record's (the old phase barrier).
            store.barrier()
            try:
                payloads = fetch_pages(store, field, claimed)
            except ObjectStoreError as exc:
                _raise_unmaterialized(snap, _failed_page_key(exc, claimed), exc)
            dvs = [
                client.lake.deletion_vector(snap, entry.file_key)
                for entry in claimed
            ]
            return claimed, payloads, dvs

        with get_tracer().span("probe", phase="probe") as probe_span:
            probe_trace, per_record = self._fan_out(
                [lambda r=record: search_record(r) for record in chosen]
            )
            probe_span.trace = probe_trace
        stats.trace = stats.trace.then(probe_trace)
        stats.candidates = sum(len(claimed) for claimed, _, _ in per_record)
        stats.pages_probed = stats.candidates

        # Verification replays the batches in submission order so
        # early-K termination picks the same matches the sequential
        # scan would.
        matches: list[SearchMatch] = []
        for claimed, payloads, dvs in per_record:
            if len(matches) >= k:
                break
            for entry, (row_start, values), dv in zip(claimed, payloads, dvs):
                page_hit = False
                for i, value in enumerate(values):
                    row = row_start + i
                    if row in dv or not query.matches(value):
                        continue
                    page_hit = True
                    matches.append(
                        SearchMatch(file=entry.file_key, row=row, value=value)
                    )
                if not page_hit:
                    stats.false_positives += 1
                if len(matches) >= k:
                    break

        if len(matches) < k and uncovered:
            needed = k - len(matches)
            with get_tracer().span("brute_force", phase="brute_force") as brute_span:
                brute_trace, per_file = self._fan_out(
                    [
                        lambda p=path: client._brute_force_exact(
                            column, query, snap, p, needed
                        )
                        for path in sorted(uncovered)
                    ]
                )
                brute_span.trace = brute_trace
            stats.trace = stats.trace.then(brute_trace)
            stats.files_brute_forced = len(per_file)
            for file_matches in per_file:
                matches.extend(file_matches)
                if len(matches) >= k:
                    break
        return matches[:k]

    # -- scoring path ----------------------------------------------------
    def _scoring(
        self,
        column: str,
        query: VectorQuery,
        k: int,
        snap: Snapshot,
        snap_paths: set[str],
        chosen: list[IndexRecord],
        uncovered: set[str],
        stats: SearchStats,
    ) -> list[SearchMatch]:
        client = self.client
        store = client.store

        def probe_index(record: IndexRecord):
            reader = IndexFileReader.open(store, record.index_key)
            querier = querier_for(record.index_type)(reader)
            assert isinstance(querier, ScoringQuerier)
            found = querier.candidates(
                query.vector, nprobe=query.nprobe, limit=query.refine
            )
            directory = reader.directory
            return [
                (entry, cand.offset, cand.score)
                for cand in found
                for entry in (directory.locate(cand.gid),)
                if entry.file_key in snap_paths
            ]

        with get_tracer().span("probe:index", phase="index_probe") as index_span:
            index_trace, per_record = self._fan_out(
                [lambda r=record: probe_index(r) for record in chosen]
            )
            index_span.trace = index_trace
        stats.trace = stats.trace.then(index_trace)
        candidates: list[tuple[PageEntry, int, float]] = []
        for found in per_record:
            candidates.extend(found)
        candidates.sort(key=lambda c: c[2])
        candidates = candidates[: query.refine]
        stats.candidates = len(candidates)

        # Refine: group candidates by page (insertion order, like the
        # sequential client), read them as one coalesced batch, then
        # score in order. The global sort above is a real cross-record
        # dependency, so this phase keeps its barrier.
        field = snap.schema.field(column)
        by_page: dict[tuple[str, int], list[int]] = {}
        entries: dict[tuple[str, int], PageEntry] = {}
        for entry, offset, _ in candidates:
            page_key = (entry.file_key, entry.page_id)
            by_page.setdefault(page_key, []).append(offset)
            entries[page_key] = entry
        page_entries = [entries[page_key] for page_key in by_page]

        def probe_pages():
            try:
                payloads = fetch_pages(store, field, page_entries)
            except ObjectStoreError as exc:
                _raise_unmaterialized(
                    snap, _failed_page_key(exc, page_entries), exc
                )
            dvs = [
                client.lake.deletion_vector(snap, entry.file_key)
                for entry in page_entries
            ]
            return payloads, dvs

        with get_tracer().span("probe:pages", phase="page_read") as page_span:
            refine_trace, batches = self._fan_out(
                [probe_pages] if page_entries else []
            )
            page_span.trace = refine_trace
        payloads, dvs = batches[0] if batches else ([], [])
        stats.pages_probed = len(page_entries)
        scored: list[SearchMatch] = []
        for entry, offsets, (row_start, values), dv in zip(
            page_entries, by_page.values(), payloads, dvs
        ):
            for offset in set(offsets):
                row = row_start + offset
                if row in dv:
                    continue
                value = values[offset]
                scored.append(
                    SearchMatch(
                        file=entry.file_key,
                        row=row,
                        value=value,
                        score=query.distance(value),
                    )
                )

        def scan_file(path: str) -> list[SearchMatch]:
            dv = client.lake.deletion_vector(snap, path)
            reader = client._open_data_file(snap, path)
            return [
                SearchMatch(
                    file=path, row=row, value=value, score=query.distance(value)
                )
                for row, value in reader.scan_column(column)
                if row not in dv
            ]

        with get_tracer().span("brute_force", phase="brute_force") as scan_span:
            scan_trace, per_file = self._fan_out(
                [lambda p=path: scan_file(p) for path in sorted(uncovered)]
            )
            scan_span.trace = scan_trace
        stats.files_brute_forced = len(per_file)
        for file_matches in per_file:
            scored.extend(file_matches)
        stats.trace = stats.trace.then(refine_trace).then(scan_trace)
        scored.sort(key=lambda m: m.score)
        return scored[:k]

"""Query serving: concurrent execution, caching, admission control.

The one-shot :class:`~repro.core.client.RottnestClient` turns into a
query-serving system here (paper Fig. 8c/8d; ROADMAP north star):

* :mod:`repro.serve.executor` — fan one query's index probes and page
  reads across a bounded searcher pool,
* :mod:`repro.serve.cache` — byte-budgeted LRU in front of the object
  store, with size-based admission and single-flight misses,
* :mod:`repro.serve.singleflight` — deduplicate concurrent identical
  work,
* :mod:`repro.serve.server` — admission control, warmup, and the
  :class:`ServeStats` report that feeds :mod:`repro.tco.throughput`.
"""

from repro.serve.cache import CacheStats, CachingObjectStore
from repro.serve.executor import SearchExecutor
from repro.serve.server import SearchServer, ServeStats
from repro.serve.singleflight import SingleFlight

__all__ = [
    "CacheStats",
    "CachingObjectStore",
    "SearchExecutor",
    "SearchServer",
    "ServeStats",
    "SingleFlight",
]

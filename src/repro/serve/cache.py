"""Caching object-store wrapper for the serving read path.

Cloud-oriented indexes live or die by the cache in front of object
storage (Airphant makes the same observation): every Rottnest query
re-reads the same hot components — the metadata-table checkpoint, index
file tails, trie roots — and at ~30 ms time-to-first-byte per GET those
repeats dominate warm-query latency. :class:`CachingObjectStore` wraps
any :class:`~repro.storage.object_store.ObjectStore` (the same ABC
``RetryingObjectStore`` implements, so the two stack in either order)
with:

* a **byte-budgeted LRU** over whole objects *and* byte-ranges — object
  storage charges per request, so caching a 2 KB trie root is worth as
  much as caching a 2 MB component;
* **size-based admission**: ranges above ``max_entry_bytes`` are served
  but never cached, so one big brute-force scan cannot evict the whole
  working set (scan resistance);
* **invalidation** on ``put`` / ``delete`` of a key, keeping the wrapper
  transparent as long as writes flow through it (read-your-writes);
* **metadata caching**: LIST-by-prefix and HEAD results (the paper's
  latency model makes LIST pages cost ~100 ms and unparallelisable, so
  the plan phase of a warm query is where caching pays most); a write
  to any key invalidates its HEAD entry and every cached LIST whose
  prefix covers the key;
* **single-flight** misses: concurrent identical GETs share one
  underlying fetch instead of stampeding the store; and
* hit / miss / eviction counters feeding
  :class:`~repro.serve.server.ServeStats`.

Cache hits never reach the inner store, so they record no request into
IO stats or the active :class:`~repro.storage.stats.RequestTrace` —
which is exactly how a warm query's *modeled* latency drops below the
cold one.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.obs.metrics import get_registry
from repro.serve.singleflight import SingleFlight
from repro.storage.object_store import ObjectInfo, ObjectStore

_LOOKUPS = get_registry().counter(
    "cache_lookups_total", "Serving-cache lookups by outcome", ("outcome",)
)
_EVICTIONS = get_registry().counter(
    "cache_evictions_total", "Serving-cache entries evicted by the byte budget"
)
_INVALIDATIONS = get_registry().counter(
    "cache_invalidations_total", "Serving-cache entries dropped by writes"
)
_CACHED_BYTES = get_registry().gauge(
    "cache_cached_bytes", "Bytes currently held by the serving cache"
)

#: Cache key: (object key, None) for a whole object, or
#: (object key, (offset, length)) for one byte range.
_CacheKey = tuple[str, tuple[int, int] | None]

DEFAULT_BUDGET_BYTES = 256 << 20
DEFAULT_MAX_ENTRY_BYTES = 8 << 20
#: LIST/HEAD results kept (count-bounded; they are metadata-sized).
DEFAULT_MAX_META_ENTRIES = 4096


@dataclass
class CacheStats:
    """Counters for one :class:`CachingObjectStore`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    rejected: int = 0  # entries not admitted (above max_entry_bytes)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # Counter updates mirror into the process-wide metrics registry so
    # operators see one aggregate series across every cache instance.
    def record_hit(self) -> None:
        self.hits += 1
        _LOOKUPS.inc(outcome="hit")

    def record_miss(self) -> None:
        self.misses += 1
        _LOOKUPS.inc(outcome="miss")

    def record_eviction(self) -> None:
        self.evictions += 1
        _EVICTIONS.inc()

    def record_invalidation(self) -> None:
        self.invalidations += 1
        _INVALIDATIONS.inc()

    def record_rejection(self) -> None:
        self.rejected += 1
        _LOOKUPS.inc(outcome="rejected")


class CachingObjectStore(ObjectStore):
    """Read-through LRU cache over an inner object store.

    Transparency contract: any operation sequence through the wrapper
    returns byte-identical results to running it against the inner
    store directly, provided all mutations of cached keys also go
    through the wrapper (verified by a hypothesis property test).
    """

    def __init__(
        self,
        inner: ObjectStore,
        *,
        budget_bytes: int = DEFAULT_BUDGET_BYTES,
        max_entry_bytes: int = DEFAULT_MAX_ENTRY_BYTES,
    ) -> None:
        super().__init__(inner.clock)
        if budget_bytes < 1:
            raise ValueError("budget_bytes must be >= 1")
        self.inner = inner
        self.budget_bytes = budget_bytes
        self.max_entry_bytes = min(max_entry_bytes, budget_bytes)
        self.stats = inner.stats  # billed IO is the inner store's
        self.cache_stats = CacheStats()
        self._entries: OrderedDict[_CacheKey, bytes] = OrderedDict()
        self._by_object: dict[str, set[_CacheKey]] = {}
        self._generation: dict[str, int] = {}  # bumped on invalidate
        self._cached_bytes = 0
        self._lists: OrderedDict[str, list[ObjectInfo]] = OrderedDict()
        self._heads: OrderedDict[str, ObjectInfo] = OrderedDict()
        self._write_epoch = 0  # any invalidation; guards LIST admission
        self._max_meta_entries = DEFAULT_MAX_META_ENTRIES
        self._cache_lock = threading.RLock()
        self._flights = SingleFlight()

    # -- cache mechanics ----------------------------------------------
    @property
    def cached_bytes(self) -> int:
        return self._cached_bytes

    def _lookup(self, key: str, byte_range: tuple[int, int] | None) -> bytes | None:
        """Cached bytes for a request, or None. A whole-object entry
        serves any in-bounds range of that object."""
        with self._cache_lock:
            data = self._entries.get((key, byte_range))
            if data is not None:
                self._entries.move_to_end((key, byte_range))
                self.cache_stats.record_hit()
                return data
            if byte_range is not None:
                whole = self._entries.get((key, None))
                if whole is not None:
                    offset, length = byte_range
                    if 0 <= offset and 0 <= length and offset + length <= len(whole):
                        self._entries.move_to_end((key, None))
                        self.cache_stats.record_hit()
                        return whole[offset : offset + length]
            self.cache_stats.record_miss()
            return None

    def _admit(
        self,
        key: str,
        byte_range: tuple[int, int] | None,
        data: bytes,
        generation: int,
    ) -> None:
        if len(data) > self.max_entry_bytes:
            with self._cache_lock:
                self.cache_stats.record_rejection()
            return
        cache_key: _CacheKey = (key, byte_range)
        with self._cache_lock:
            if self._generation.get(key, 0) != generation:
                return  # key was written/deleted while this fetch flew
            old = self._entries.pop(cache_key, None)
            if old is not None:
                self._cached_bytes -= len(old)
            self._entries[cache_key] = data
            self._by_object.setdefault(key, set()).add(cache_key)
            self._cached_bytes += len(data)
            while self._cached_bytes > self.budget_bytes:
                victim_key, victim = self._entries.popitem(last=False)
                self._cached_bytes -= len(victim)
                self._by_object[victim_key[0]].discard(victim_key)
                self.cache_stats.record_eviction()
            _CACHED_BYTES.set(self._cached_bytes)

    def invalidate(self, key: str) -> None:
        """Drop every cached entry for a key: whole object, ranges, its
        HEAD, and any LIST whose prefix covers the key."""
        with self._cache_lock:
            self._generation[key] = self._generation.get(key, 0) + 1
            self._write_epoch += 1
            for cache_key in self._by_object.pop(key, set()):
                data = self._entries.pop(cache_key, None)
                if data is not None:
                    self._cached_bytes -= len(data)
                    self.cache_stats.record_invalidation()
            if self._heads.pop(key, None) is not None:
                self.cache_stats.record_invalidation()
            for prefix in [p for p in self._lists if key.startswith(p)]:
                del self._lists[prefix]
                self.cache_stats.record_invalidation()
            _CACHED_BYTES.set(self._cached_bytes)

    def clear(self) -> None:
        """Drop the entire cache (counters are kept)."""
        with self._cache_lock:
            self._entries.clear()
            self._by_object.clear()
            self._lists.clear()
            self._heads.clear()
            self._cached_bytes = 0
            _CACHED_BYTES.set(0)

    # -- operations ----------------------------------------------------
    def get(self, key: str, byte_range: tuple[int, int] | None = None) -> bytes:
        cached = self._lookup(key, byte_range)
        if cached is not None:
            return cached

        with self._cache_lock:
            generation = self._generation.get(key, 0)

        def fetch() -> bytes:
            data = self.inner.get(key, byte_range)
            self._admit(key, byte_range, data, generation)
            return data

        return self._flights.do(("GET", key, byte_range), fetch)

    def get_many(
        self,
        requests,
        *,
        gap_threshold: int | None = None,
        budget=None,
        return_exceptions: bool = False,
    ) -> list[bytes]:
        """Batched reads that serve cache hits and coalesce only misses.

        Each requested sub-range is looked up individually first (a
        whole-object entry serves any in-bounds range); only the misses
        enter the coalescing planner, and each merged GET then flows
        through :meth:`get` — picking up single-flight dedup at
        merged-request granularity and admission of the merged range,
        so a repeat of the same plan is served entirely from cache.
        """
        from repro.storage import sched

        results: list[bytes | None] = [None] * len(requests)
        misses: list[tuple[int, object]] = []
        for index, request in enumerate(requests):
            cached = self._lookup(request.key, (request.offset, request.length))
            if cached is not None:
                results[index] = cached
            else:
                misses.append((index, request))
        if misses:
            local = [request for _, request in misses]
            gap = (
                sched.DEFAULT_GAP_THRESHOLD
                if gap_threshold is None
                else gap_threshold
            )
            fetched = sched.execute_plan(
                self,
                local,
                sched.plan_reads(local, gap),
                budget=budget,
                return_exceptions=return_exceptions,
            )
            for (index, _), data in zip(misses, fetched):
                results[index] = data
        return results  # type: ignore[return-value]

    def put(self, key: str, data: bytes, *, if_none_match: bool = False) -> ObjectInfo:
        # Invalidate even on a failed conditional PUT: the attempt
        # proves the caller is about to re-read the key's latest state.
        self.invalidate(key)
        return self.inner.put(key, data, if_none_match=if_none_match)

    def delete(self, key: str) -> None:
        self.invalidate(key)
        self.inner.delete(key)

    def head(self, key: str) -> ObjectInfo:
        with self._cache_lock:
            info = self._heads.get(key)
            if info is not None:
                self._heads.move_to_end(key)
                self.cache_stats.record_hit()
                return info
            self.cache_stats.record_miss()
            generation = self._generation.get(key, 0)
        info = self.inner.head(key)
        with self._cache_lock:
            if self._generation.get(key, 0) == generation:
                self._heads[key] = info
                while len(self._heads) > self._max_meta_entries:
                    self._heads.popitem(last=False)
                    self.cache_stats.record_eviction()
        return info

    def list(self, prefix: str = "") -> list[ObjectInfo]:
        with self._cache_lock:
            infos = self._lists.get(prefix)
            if infos is not None:
                self._lists.move_to_end(prefix)
                self.cache_stats.record_hit()
                return list(infos)
            self.cache_stats.record_miss()
            epoch = self._write_epoch
        infos = self.inner.list(prefix)
        with self._cache_lock:
            if self._write_epoch == epoch:
                self._lists[prefix] = list(infos)
                while len(self._lists) > self._max_meta_entries:
                    self._lists.popitem(last=False)
                    self.cache_stats.record_eviction()
        return infos

    # -- tracing delegates to the inner store --------------------------
    def start_trace(self):
        return self.inner.start_trace()

    def stop_trace(self):
        return self.inner.stop_trace()

    def barrier(self) -> None:
        self.inner.barrier()

"""Parallel maintenance pipeline (public surface).

The heart of the package is :class:`MaintenancePipeline`: the
maintenance-side twin of :class:`repro.serve.executor.SearchExecutor`,
fanning per-file index builds and independent compaction merge groups
across a bounded :class:`repro.storage.pool.TracedPool`, optionally
under a shared :class:`repro.storage.pool.IOBudget` so maintenance
overlaps serving without starving it.
"""

from repro.maintain.pipeline import MaintainReport, MaintenancePipeline
from repro.storage.pool import IOBudget, TracedPool

__all__ = [
    "IOBudget",
    "MaintainReport",
    "MaintenancePipeline",
    "TracedPool",
]

"""The parallel maintenance pipeline (write-path twin of ``repro.serve``).

The paper's lazy maintenance protocol (§IV) is cheap because its three
verbs are rare and coarse — but our serial ``index`` loop extracted one
Parquet file at a time and ``compact`` merged one group at a time, so
wall-clock grew linearly with lake size while the read path (the query
executor) already fanned out. :class:`MaintenancePipeline` closes that
gap:

* ``index`` fans per-file page-value extraction across a bounded
  worker pool; the index structure is still built and committed on the
  calling thread, so the committed bytes and metadata are identical to
  the serial run for any worker count.
* ``compact`` merges independent bin-packed groups concurrently;
  uploads are content-addressed, the commit is one single-threaded
  metadata insert, and a streaming merge bounds per-worker memory.
* Every worker records a per-thread request trace under a phase-tagged
  span, so one finished pipeline run attributes to dollars and modeled
  seconds with :func:`repro.obs.attribution.attribute` — reconciling
  against the store's :class:`~repro.storage.stats.IOStats` delta
  exactly as query bills do.

Sharing an :class:`~repro.storage.pool.IOBudget` between a pipeline and
a query executor caps their *combined* in-flight store tasks: the
backpressure signal that lets the daemon overlap maintenance ticks with
live serving.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.client import RottnestClient
from repro.core.maintenance import (
    DEFAULT_COMPACT_TARGET_BYTES,
    DEFAULT_COMPACT_THRESHOLD_BYTES,
    VacuumReport,
    compact_indices,
    vacuum_indices,
)
from repro.meta.metadata_table import IndexRecord
from repro.obs.attribution import DEFAULT_INSTANCE, QueryBill, attribute
from repro.obs.metrics import get_registry
from repro.obs.timeseries import get_hub
from repro.obs.trace import Span, get_tracer
from repro.storage.costs import CostModel
from repro.storage.latency import LatencyModel
from repro.storage.pool import IOBudget, TracedPool
from repro.storage.stats import RequestTrace

_RUNS = get_registry().counter(
    "maintain_runs_total",
    "Pipeline maintenance runs by verb.",
    ("op",),
)
_TASKS = get_registry().counter(
    "maintain_worker_tasks_total",
    "Worker tasks the pipeline fanned out, by verb.",
    ("op",),
)
_MODELED_SECONDS = get_registry().counter(
    "maintain_modeled_seconds_total",
    "Modeled store-latency seconds spent in maintenance, by verb.",
    ("op",),
)


@dataclass
class MaintainReport:
    """One pipeline run: what was committed and what it cost.

    ``trace`` is the phase traces composed sequentially (plan →
    extract/merge waves → commit), so
    ``LatencyModel().trace_latency(report.trace)`` is the modeled
    wall-clock of the run at the pipeline's worker count; ``root`` is
    the finished span tree for full cost attribution.
    """

    op: str
    workers: int
    records: list[IndexRecord] = field(default_factory=list)
    trace: RequestTrace = field(default_factory=RequestTrace)
    root: Span | None = None
    worker_tasks: int = 0

    def modeled_latency(self, model: LatencyModel | None = None) -> float:
        """Modeled seconds for the run under ``model``."""
        return (model or LatencyModel()).trace_latency(self.trace)

    def bill(
        self,
        *,
        latency: LatencyModel | None = None,
        costs: CostModel | None = None,
        instance_type: str = DEFAULT_INSTANCE,
    ) -> QueryBill:
        """Per-phase cost attribution, same machinery as query bills."""
        if self.root is None:
            raise ValueError("report has no span tree to attribute")
        return attribute(
            self.root, latency=latency, costs=costs, instance_type=instance_type
        )


class MaintenancePipeline:
    """Runs maintenance verbs for one client over a bounded worker pool.

    Usable as a context manager; :meth:`close` shuts the pool down.
    Committed state is byte-identical to the serial client calls — the
    pipeline only changes *when* the reads happen, never what gets
    written (a hypothesis property test pins this).
    """

    def __init__(
        self,
        client: RottnestClient,
        *,
        workers: int = 4,
        budget: IOBudget | None = None,
    ) -> None:
        self.client = client
        self.workers = workers
        self.budget = budget
        self._pool = TracedPool(
            client.store,
            workers=workers,
            thread_name_prefix="maintainer",
            span_name="maintainer:task",
            budget=budget,
        )

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self._pool.close()

    def __enter__(self) -> "MaintenancePipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- verbs ---------------------------------------------------------
    def index(
        self,
        column: str,
        index_type: str,
        *,
        snapshot=None,
        params: dict | None = None,
    ) -> MaintainReport:
        """Parallel :meth:`RottnestClient.index`; returns a report."""
        with get_tracer().span(
            "maintain.index",
            column=column,
            index_type=index_type,
            workers=self.workers,
        ) as root:
            record = self.client.index(
                column,
                index_type,
                snapshot=snapshot,
                params=params,
                pool=self._pool,
            )
        return self._report(
            "index", root, [record] if record is not None else []
        )

    def compact(
        self,
        column: str,
        index_type: str,
        *,
        threshold_bytes: int = DEFAULT_COMPACT_THRESHOLD_BYTES,
        target_bytes: int = DEFAULT_COMPACT_TARGET_BYTES,
    ) -> MaintainReport:
        """Parallel :func:`compact_indices`; returns a report."""
        with get_tracer().span(
            "maintain.compact",
            column=column,
            index_type=index_type,
            workers=self.workers,
        ) as root:
            records = compact_indices(
                self.client,
                column,
                index_type,
                threshold_bytes=threshold_bytes,
                target_bytes=target_bytes,
                pool=self._pool,
            )
        return self._report("compact", root, records)

    def vacuum(self, *, snapshot_id: int) -> VacuumReport:
        """Serial :func:`vacuum_indices` passthrough.

        Vacuum is a metadata commit plus one-by-one physical deletes
        whose ordering *is* its crash-safety argument — there is
        nothing safe to fan out, so the pipeline keeps it sequential.
        """
        report = vacuum_indices(self.client, snapshot_id=snapshot_id)
        _RUNS.inc(op="vacuum")
        get_hub().series("maintain.vacuum.runs").observe(
            1.0, at_s=self.client.store.clock.now()
        )
        return report

    # -- internals -----------------------------------------------------
    def _report(
        self, op: str, root: Span, records: list[IndexRecord]
    ) -> MaintainReport:
        trace = RequestTrace()
        tasks = 0
        for span in root.walk():
            if span.name.endswith(":task"):
                tasks += 1
                continue  # task traces are owned by their phase span
            if span.attributes.get("phase") and span.trace is not None:
                trace = trace.then(span.trace)
        report = MaintainReport(
            op=op,
            workers=self.workers,
            records=records,
            trace=trace,
            root=root,
            worker_tasks=tasks,
        )
        _RUNS.inc(op=op)
        if tasks:
            _TASKS.inc(tasks, op=op)
        modeled_s = report.modeled_latency()
        _MODELED_SECONDS.inc(modeled_s, op=op)

        hub = get_hub()
        at_s = self.client.store.clock.now()
        bill = report.bill()
        request_usd = bill.total_request_cost_usd()
        compute_usd = bill.compute_cost_usd
        hub.ledger.record_maintain(op, request_usd, compute_usd, at_s=at_s)
        hub.series(f"maintain.{op}.modeled_s").observe(modeled_s, at_s=at_s)
        hub.series("maintain.cost_usd").observe(
            request_usd + compute_usd, at_s=at_s
        )
        return report

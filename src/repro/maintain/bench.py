"""Modeled-latency benchmark scenario for the maintenance pipeline.

Builds a many-file uuid lake on a simulated store, then runs the same
maintenance history at several worker counts on byte-identical clones.
Latencies are *modeled* from the recorded request traces (per-round
first-byte + list costs under :class:`~repro.storage.latency
.LatencyModel`), not wall-clock — the store is in memory and the
machine may have one core, but the trace shape (how many dependent
round trips the run needs) is exactly what parallelism changes.

Shared by ``benchmarks/bench_maintenance.py`` (which persists the
numbers to ``results/BENCH_maintenance.json`` for the regression gate)
and the ``repro maintain-bench`` CLI subcommand (which prints them).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.client import RottnestClient
from repro.core.maintenance import covering_records
from repro.formats.schema import ColumnType, Field as SchemaField, Schema
from repro.lake.table import LakeTable, TableConfig
from repro.maintain.pipeline import MaintenancePipeline
from repro.obs.trace import Tracer, use_tracer
from repro.storage.latency import LatencyModel
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock

SCHEMA = Schema.of(SchemaField("uuid", ColumnType.BINARY))
LAKE_ROOT = "lake/u"
INDEX_DIR = "idx/u"


@dataclass
class MaintainBenchResult:
    """Modeled numbers for one (files, rows, workers-set) scenario."""

    files: int
    rows: int
    index_modeled_ms: dict[int, float] = field(default_factory=dict)
    index_worker_tasks: dict[int, int] = field(default_factory=dict)
    compact_modeled_ms: dict[int, float] = field(default_factory=dict)
    compact_merge_ms: dict[int, float] = field(default_factory=dict)
    compact_groups: int = 0

    def index_speedup(self, workers: int) -> float:
        """Modeled serial latency over modeled latency at ``workers``."""
        return self.index_modeled_ms[1] / self.index_modeled_ms[workers]

    def compact_speedup(self, workers: int) -> float:
        """Serial over parallel modeled compaction latency, end to end.

        Amdahl-limited: plan and commit are constant-cost serial
        sections, so only the merge phase (see
        :meth:`merge_speedup`) scales with the pool.
        """
        return self.compact_modeled_ms[1] / self.compact_modeled_ms[workers]

    def merge_speedup(self, workers: int) -> float:
        """Serial over parallel modeled latency of the merge phase only."""
        return self.compact_merge_ms[1] / self.compact_merge_ms[workers]

    def describe(self) -> str:
        """Human-readable summary for the CLI."""
        lines = [
            f"maintain-bench: {self.files} files x {self.rows} rows "
            "(modeled store latency)",
            "  index (one call covering every file):",
        ]
        for w in sorted(self.index_modeled_ms):
            lines.append(
                f"    workers={w}: {self.index_modeled_ms[w]:8.1f} ms"
                f"  (speedup {self.index_speedup(w):.2f}x, "
                f"{self.index_worker_tasks[w]} extraction tasks)"
            )
        lines.append(
            f"  compact ({self.compact_groups} independent merge groups):"
        )
        for w in sorted(self.compact_modeled_ms):
            lines.append(
                f"    workers={w}: {self.compact_modeled_ms[w]:8.1f} ms"
                f"  (end-to-end {self.compact_speedup(w):.2f}x, "
                f"merge phase {self.merge_speedup(w):.2f}x)"
            )
        return "\n".join(lines)


def _client(store) -> RottnestClient:
    counter = itertools.count()
    return RottnestClient(
        store,
        INDEX_DIR,
        LakeTable.open(store, LAKE_ROOT),
        key_entropy=lambda: next(counter).to_bytes(4, "big"),
    )


def _build_lake(files: int, rows: int) -> InMemoryObjectStore:
    store = InMemoryObjectStore(clock=SimClock(start=1_000_000.0))
    lake = LakeTable.create(
        store,
        LAKE_ROOT,
        SCHEMA,
        TableConfig(row_group_rows=16, page_target_bytes=1024),
    )
    for i in range(files):
        lake.append(
            {
                "uuid": [
                    f"{i:03d}-{j:04d}".encode().ljust(16, b"\0")
                    for j in range(rows)
                ]
            }
        )
    return store


def run_maintain_bench(
    *,
    files: int = 40,
    rows: int = 32,
    workers: tuple[int, ...] = (1, 2, 4),
    compact_files: int = 12,
    model: LatencyModel | None = None,
) -> MaintainBenchResult:
    """Run the index and compact scenarios at each worker count.

    Every worker count runs on a clone of the same starting store, so
    the workloads are byte-identical and the only variable is the
    pipeline width.
    """
    model = model or LatencyModel()
    result = MaintainBenchResult(files=files, rows=rows)

    # -- index: one call extracting every file --------------------------
    base = _build_lake(files, rows)
    for w in workers:
        store = base.clone()
        tracer = Tracer(clock=store.clock)
        with use_tracer(tracer), MaintenancePipeline(
            _client(store), workers=w
        ) as pipe:
            report = pipe.index("uuid", "uuid_trie")
        result.index_modeled_ms[w] = report.modeled_latency(model) * 1000
        result.index_worker_tasks[w] = report.worker_tasks

    # -- compact: independent merge groups across workers ---------------
    compact_base = _build_lake(compact_files, rows)
    seed_client = _client(compact_base)
    for version in range(1, compact_files + 1):
        seed_client.index(
            "uuid", "uuid_trie", snapshot=seed_client.lake.snapshot(version)
        )
    # Pack two per-file indices per group so the group count (and the
    # parallel win) is files/2.
    target = 2 * max(
        r.size
        for r in covering_records(seed_client, "uuid", "uuid_trie")
    ) + 1
    for w in workers:
        store = compact_base.clone()
        tracer = Tracer(clock=store.clock)
        with use_tracer(tracer), MaintenancePipeline(
            _client(store), workers=w
        ) as pipe:
            report = pipe.compact(
                "uuid", "uuid_trie", target_bytes=target
            )
        result.compact_modeled_ms[w] = report.modeled_latency(model) * 1000
        merge = next(
            ph
            for ph in report.bill(latency=model).phases
            if ph.phase == "merge"
        )
        result.compact_merge_ms[w] = merge.est_latency_s * 1000
        result.compact_groups = max(result.compact_groups, len(report.records))
    return result

"""Maximum-throughput analysis (§VII-D3).

The TCO framework compares total cost, but each approach also has a
QPS ceiling:

* copy-data clusters are bounded by their nodes' disk IOPS/CPU —
  typically thousands of QPS per replica set;
* Rottnest and brute force share S3's ~5500 GET/s per-prefix limit.
  Brute force additionally needs a whole cluster per concurrent query;
  Rottnest spends `requests_per_query` GETs, capping it at tens to low
  hundreds of QPS.

The paper's conclusion, which :func:`throughput_analysis` checks: by
the time a workload would exceed Rottnest's QPS ceiling, the TCO phase
diagram has *already* handed the win to the copy-data approach, so the
throughput limit does not change any conclusions (10 QPS sustained for
10 months = 2.52x10^7 total queries, past the upper boundary).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TCOError
from repro.tco.phase import PhaseDiagram

SECONDS_PER_MONTH = 730.0 * 3600.0


@dataclass(frozen=True)
class ThroughputModel:
    """QPS ceilings of the three approaches."""

    prefix_get_rps: float = 5500.0
    rottnest_requests_per_query: float = 50.0
    dedicated_qps: float = 5000.0  # per replica set, RAM/SSD-bound
    brute_force_concurrent_clusters: int = 1

    def __post_init__(self) -> None:
        if self.rottnest_requests_per_query <= 0:
            raise TCOError("requests per query must be positive")

    @property
    def rottnest_max_qps(self) -> float:
        return self.prefix_get_rps / self.rottnest_requests_per_query

    def brute_force_max_qps(self, scan_latency_s: float) -> float:
        """One query occupies the whole cluster for its duration."""
        if scan_latency_s <= 0:
            raise TCOError("scan latency must be positive")
        return self.brute_force_concurrent_clusters / scan_latency_s

    def sustained_queries(self, qps: float, months: float) -> float:
        """Total queries if run at ``qps`` for ``months``."""
        return qps * months * SECONDS_PER_MONTH


@dataclass(frozen=True)
class ThroughputAnalysis:
    rottnest_max_qps: float
    queries_at_cap: float  # total queries at the cap over the horizon
    copy_data_boundary: float | None  # upper edge of Rottnest's win band
    cap_binds_before_boundary: bool

    @property
    def conclusion_unchanged(self) -> bool:
        """True when the QPS cap lies beyond the point where copy-data
        already wins on cost — the paper's §VII-D3 finding."""
        return not self.cap_binds_before_boundary


def throughput_analysis(
    diagram: PhaseDiagram,
    *,
    months: float = 10.0,
    model: ThroughputModel | None = None,
    rottnest_name: str = "rottnest",
) -> ThroughputAnalysis:
    """Check whether Rottnest's QPS ceiling changes the TCO verdict."""
    model = model or ThroughputModel()
    qps = model.rottnest_max_qps
    queries_at_cap = model.sustained_queries(qps, months)
    band = diagram.win_band(rottnest_name, months)
    boundary = band[1] if band else None
    binds = boundary is not None and queries_at_cap < boundary
    return ThroughputAnalysis(
        rottnest_max_qps=qps,
        queries_at_cap=queries_at_cap,
        copy_data_boundary=boundary,
        cap_binds_before_boundary=binds,
    )

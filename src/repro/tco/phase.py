"""Phase-change diagrams: which approach is cheapest where (§VI, Fig. 7/9).

A diagram is a log-log grid over (months of operation, total normalized
queries); each cell holds the index of the approach with the lowest TCO
there. Boundary extraction gives the query counts where the winner flips
at each operating duration — the lines of Figs. 7, 9, 11 and 12.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TCOError
from repro.tco.model import ApproachCost, cracked_cost

DEFAULT_MONTHS_RANGE = (0.03, 120.0)  # ~1 day .. 10 years
DEFAULT_QUERIES_RANGE = (1.0, 1e9)


@dataclass(frozen=True)
class PhaseDiagram:
    """Computed winner grid."""

    approaches: tuple[ApproachCost, ...]
    months: np.ndarray  # (nm,) log-spaced
    queries: np.ndarray  # (nq,) log-spaced
    winner: np.ndarray  # (nq, nm) int indices into approaches

    def winner_at(self, months: float, queries: float) -> ApproachCost:
        """Cheapest approach at an exact (not grid-snapped) point."""
        costs = [a.tco(months, queries) for a in self.approaches]
        return self.approaches[int(np.argmin(costs))]

    def share(self, name: str) -> float:
        """Fraction of grid cells won by the named approach."""
        idx = self._index_of(name)
        return float(np.mean(self.winner == idx))

    def win_band(self, name: str, months: float) -> tuple[float, float] | None:
        """(min, max) query counts where ``name`` wins at ``months``.

        Uses exact TCO comparison on a fine query grid. None if the
        approach never wins at that duration.
        """
        idx = self._index_of(name)
        fine = np.geomspace(self.queries[0], self.queries[-1], 2048)
        tcos = np.stack(
            [
                a.index_cost + a.cost_per_month * months + a.cost_per_query * fine
                for a in self.approaches
            ]
        )
        winners = np.argmin(tcos, axis=0)
        hits = np.nonzero(winners == idx)[0]
        if not len(hits):
            return None
        return float(fine[hits[0]]), float(fine[hits[-1]])

    def orders_of_magnitude_won(self, name: str, months: float) -> float:
        """log10 span of the win band (the paper's ">= 4 orders of
        magnitude at 10 months" metric)."""
        band = self.win_band(name, months)
        if band is None or band[0] <= 0:
            return 0.0
        return float(np.log10(band[1] / band[0]))

    def break_even_months(self, name: str, queries: float) -> float | None:
        """Earliest duration at which ``name`` becomes the winner for a
        fixed query count (the "2 days for substring search" onset)."""
        idx = self._index_of(name)
        fine = np.geomspace(self.months[0], self.months[-1], 2048)
        tcos = np.stack(
            [
                a.index_cost + a.cost_per_month * fine + a.cost_per_query * queries
                for a in self.approaches
            ]
        )
        winners = np.argmin(tcos, axis=0)
        hits = np.nonzero(winners == idx)[0]
        if not len(hits):
            return None
        return float(fine[hits[0]])

    def boundary(self, months: float) -> list[tuple[float, str, str]]:
        """Winner transitions along the query axis at ``months``:
        list of (query_count, loser, winner) flips, bottom-up."""
        fine = np.geomspace(self.queries[0], self.queries[-1], 2048)
        tcos = np.stack(
            [
                a.index_cost + a.cost_per_month * months + a.cost_per_query * fine
                for a in self.approaches
            ]
        )
        winners = np.argmin(tcos, axis=0)
        flips = []
        for i in range(1, len(fine)):
            if winners[i] != winners[i - 1]:
                flips.append(
                    (
                        float(fine[i]),
                        self.approaches[winners[i - 1]].name,
                        self.approaches[winners[i]].name,
                    )
                )
        return flips

    def _index_of(self, name: str) -> int:
        for i, a in enumerate(self.approaches):
            if a.name == name:
                return i
        raise TCOError(
            f"no approach {name!r}; have {[a.name for a in self.approaches]}"
        )


def feasible(approaches: list[ApproachCost], sla_s: float) -> list[ApproachCost]:
    """Approaches whose minimum latency meets an SLA (Fig. 2's axis).

    The TCO comparison assumes no latency constraint (§VI); when one
    exists, infeasible approaches drop out before cost is compared —
    e.g. a sub-second SLA removes both brute force and Rottnest,
    leaving copy-data alone regardless of cost.
    """
    if sla_s <= 0:
        raise TCOError(f"SLA must be positive, got {sla_s}")
    return [a for a in approaches if a.min_latency_s <= sla_s]


def cheapest_feasible(
    approaches: list[ApproachCost],
    *,
    months: float,
    queries: float,
    sla_s: float | None = None,
) -> ApproachCost | None:
    """The recommendation function behind Figure 2: cheapest approach
    that also meets the latency SLA (None if nothing does)."""
    candidates = feasible(approaches, sla_s) if sla_s is not None else approaches
    if not candidates:
        return None
    return min(candidates, key=lambda a: a.tco(months, queries))


def cracked_phase_diagram(
    eager: ApproachCost,
    brute: ApproachCost,
    *,
    hot_coverage: float,
    hot_query_share: float,
    name: str = "cracked",
    **kwargs,
) -> PhaseDiagram:
    """Three-way diagram adding a cracked policy curve to Fig. 7's two.

    The cracked approach is :func:`~repro.tco.model.cracked_cost`
    derived from the same two extremes it competes with, so the diagram
    directly shows *where adaptivity pays*: under a skewed workload
    (``hot_query_share`` near 1 with ``hot_coverage`` well below 1) the
    cracked region swallows the middle band where eager's up-front
    build is too dear and brute force's per-query burn is too dear.
    ``kwargs`` pass through to :func:`compute_phase_diagram`.
    """
    cracked = cracked_cost(
        name,
        eager,
        brute,
        hot_coverage=hot_coverage,
        hot_query_share=hot_query_share,
    )
    return compute_phase_diagram([eager, brute, cracked], **kwargs)


def compute_phase_diagram(
    approaches: list[ApproachCost],
    *,
    months_range: tuple[float, float] = DEFAULT_MONTHS_RANGE,
    queries_range: tuple[float, float] = DEFAULT_QUERIES_RANGE,
    resolution: int = 96,
) -> PhaseDiagram:
    """Evaluate TCO over a log-log grid and record the winner per cell."""
    if len(approaches) < 2:
        raise TCOError("need at least two approaches to compare")
    if months_range[0] <= 0 or queries_range[0] <= 0:
        raise TCOError("phase diagram axes must be strictly positive")
    months = np.geomspace(*months_range, resolution)
    queries = np.geomspace(*queries_range, resolution)
    month_grid = months.reshape(1, -1)
    query_grid = queries.reshape(-1, 1)
    tcos = np.stack(
        [
            a.index_cost + a.cost_per_month * month_grid + a.cost_per_query * query_grid
            for a in approaches
        ]
    )
    winner = np.argmin(tcos, axis=0)
    return PhaseDiagram(
        approaches=tuple(approaches),
        months=months,
        queries=queries,
        winner=winner,
    )

"""Sensitivity analysis over the TCO parameters (§VII-D1, Fig. 12).

Scales one Rottnest coefficient at a time (``cpq_r``, ``ic_r``, or the
index-attributable part of ``cpm_r``) by a set of factors and reports
how the phase boundaries move. The paper's takeaways this reproduces:

* cheaper queries (``cpq_r`` down) push the Rottnest/copy-data boundary
  up, barely moving the brute-force boundary;
* a smaller index (``cpm_r`` down) does the opposite;
* cheaper indexing (``ic_r`` down) only moves the short-horizon onset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TCOError
from repro.tco.model import ApproachCost
from repro.tco.phase import PhaseDiagram, compute_phase_diagram

PARAMETERS = ("cost_per_query", "index_cost", "index_storage_monthly")


@dataclass(frozen=True)
class SensitivityPoint:
    parameter: str
    factor: float
    diagram: PhaseDiagram
    win_band_at_10_months: tuple[float, float] | None


def scaled_rottnest(
    rottnest: ApproachCost,
    brute: ApproachCost,
    parameter: str,
    factor: float,
) -> ApproachCost:
    """Rottnest coefficients with one parameter scaled.

    ``index_storage_monthly`` scales only ``cpm_r - cpm_bf`` — the
    storage attributable to the index files, since the raw data's S3
    cost is paid regardless (paper Fig. 12 does exactly this).
    """
    if factor <= 0:
        raise TCOError(f"scale factor must be positive, got {factor}")
    if parameter == "cost_per_query":
        return rottnest.scaled(cost_per_query=factor)
    if parameter == "index_cost":
        return rottnest.scaled(index_cost=factor)
    if parameter == "index_storage_monthly":
        index_part = rottnest.cost_per_month - brute.cost_per_month
        if index_part < 0:
            raise TCOError(
                "Rottnest monthly cost below brute force; cannot isolate "
                "index storage"
            )
        new_monthly = brute.cost_per_month + index_part * factor
        return ApproachCost(
            name=rottnest.name,
            cost_per_month=new_monthly,
            cost_per_query=rottnest.cost_per_query,
            index_cost=rottnest.index_cost,
            min_latency_s=rottnest.min_latency_s,
        )
    raise TCOError(f"unknown parameter {parameter!r}; known: {PARAMETERS}")


def sweep(
    rottnest: ApproachCost,
    brute: ApproachCost,
    copy_data: ApproachCost,
    *,
    parameter: str,
    factors: list[float],
    resolution: int = 96,
) -> list[SensitivityPoint]:
    """Phase diagram per scale factor for one parameter."""
    points = []
    for factor in factors:
        scaled = scaled_rottnest(rottnest, brute, parameter, factor)
        diagram = compute_phase_diagram(
            [copy_data, brute, scaled], resolution=resolution
        )
        points.append(
            SensitivityPoint(
                parameter=parameter,
                factor=factor,
                diagram=diagram,
                win_band_at_10_months=diagram.win_band(rottnest.name, 10.0),
            )
        )
    return points

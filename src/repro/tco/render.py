"""Text rendering of phase diagrams for benchmark output.

Benchmarks print these so the reproduced figures can be eyeballed next
to the paper's: queries on the y-axis (log, decreasing downward-to-top
style of the paper: top = many queries), months on the x-axis (log).
"""

from __future__ import annotations

import numpy as np

from repro.tco.phase import PhaseDiagram

#: Cell glyph per approach slot (copy-data, brute force, Rottnest, ...).
GLYPHS = "CBR*+x"


def render(diagram: PhaseDiagram, *, width: int = 64, height: int = 24) -> str:
    """ASCII phase diagram with axes and a legend."""
    rows = []
    nq, nm = diagram.winner.shape
    q_idx = np.linspace(nq - 1, 0, height).astype(int)
    m_idx = np.linspace(0, nm - 1, width).astype(int)
    for qi in q_idx:
        queries = diagram.queries[qi]
        line = "".join(GLYPHS[diagram.winner[qi, mi]] for mi in m_idx)
        rows.append(f"{queries:9.1e} |{line}|")
    footer = " " * 11 + "+" + "-" * width + "+"
    months_lo = f"{diagram.months[0]:.2g}"
    months_hi = f"{diagram.months[-1]:.3g}"
    axis = (
        " " * 12
        + months_lo
        + " " * max(1, width - len(months_lo) - len(months_hi))
        + months_hi
        + "  (months)"
    )
    legend = "  ".join(
        f"{GLYPHS[i]}={a.name}" for i, a in enumerate(diagram.approaches)
    )
    return "\n".join(rows + [footer, axis, "legend: " + legend])


def describe_boundaries(diagram: PhaseDiagram, months_points: list[float]) -> str:
    """One line per duration: where the winner flips along queries."""
    lines = []
    for months in months_points:
        flips = diagram.boundary(months)
        if not flips:
            winner = diagram.winner_at(months, float(diagram.queries[0])).name
            lines.append(f"{months:7.2f} months: {winner} everywhere")
            continue
        parts = [
            f"{loser}->{winner} @ {q:.2e} queries" for q, loser, winner in flips
        ]
        lines.append(f"{months:7.2f} months: " + "; ".join(parts))
    return "\n".join(lines)

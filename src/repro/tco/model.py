"""Total-cost-of-ownership model (paper §VI).

Each approach is summarized by three numbers (plus an optional one-time
index cost)::

    TCO(months, queries) = index_cost
                         + cost_per_month * months
                         + cost_per_query * queries

* copy-data folds indexing and querying into ``cost_per_month``
  (``cpm_i``),
* brute force has no index cost, tiny ``cpm_bf`` (S3 storage of the
  compressed data), huge ``cpq_bf``,
* Rottnest has one-time ``ic_r``, moderate ``cpm_r`` (data + index
  storage), small ``cpq_r``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import TCOError


@dataclass(frozen=True)
class ApproachCost:
    """One approach's cost coefficients (dollars)."""

    name: str
    cost_per_month: float
    cost_per_query: float = 0.0
    index_cost: float = 0.0
    min_latency_s: float = 0.0  # informational; not part of TCO

    def __post_init__(self) -> None:
        if self.cost_per_month < 0 or self.cost_per_query < 0 or self.index_cost < 0:
            raise TCOError(f"negative cost in {self!r}")

    def tco(self, months: float, queries: float) -> float:
        """Total cost of owning this system for a workload point."""
        if months < 0 or queries < 0:
            raise TCOError(f"negative workload point ({months}, {queries})")
        return (
            self.index_cost
            + self.cost_per_month * months
            + self.cost_per_query * queries
        )

    def scaled(
        self,
        *,
        index_cost: float = 1.0,
        cost_per_month: float = 1.0,
        cost_per_query: float = 1.0,
    ) -> "ApproachCost":
        """Copy with coefficients multiplied (sensitivity analysis)."""
        return replace(
            self,
            index_cost=self.index_cost * index_cost,
            cost_per_month=self.cost_per_month * cost_per_month,
            cost_per_query=self.cost_per_query * cost_per_query,
        )


def copy_data_cost(name: str, monthly: float, latency_s: float = 0.03) -> ApproachCost:
    """Copy-data approach: constant monthly burn, nothing else."""
    return ApproachCost(
        name=name, cost_per_month=monthly, min_latency_s=latency_s
    )


def brute_force_cost(
    name: str, storage_monthly: float, per_query: float, latency_s: float
) -> ApproachCost:
    return ApproachCost(
        name=name,
        cost_per_month=storage_monthly,
        cost_per_query=per_query,
        min_latency_s=latency_s,
    )


def cracked_cost(
    name: str,
    eager: ApproachCost,
    brute: ApproachCost,
    *,
    hot_coverage: float,
    hot_query_share: float,
    latency_s: float | None = None,
) -> ApproachCost:
    """Query-adaptive (cracking) deployment, interpolated from its two
    extremes: a fully-eager indexed system and pure brute force.

    The controller indexes only the hot fraction of the lake, so

    * ``index_cost`` shrinks to ``hot_coverage`` of eager's one-time
      build (the cold tail is never built);
    * ``cost_per_month`` carries brute force's storage plus
      ``hot_coverage`` of the *extra* monthly burn eager pays on top of
      it (index storage scales with what was actually built);
    * ``cost_per_query`` is the workload mix: ``hot_query_share`` of
      queries land on covered files at eager's per-query price, the
      rest brute-force.

    Both fractions must lie in [0, 1]; the endpoints recover the parent
    models exactly (coverage/share 1 -> eager, 0 -> brute force).
    """
    for label, frac in (
        ("hot_coverage", hot_coverage),
        ("hot_query_share", hot_query_share),
    ):
        if not 0.0 <= frac <= 1.0:
            raise TCOError(f"{label} must be in [0, 1], got {frac}")
    if latency_s is None:
        latency_s = (
            hot_query_share * eager.min_latency_s
            + (1.0 - hot_query_share) * brute.min_latency_s
        )
    return ApproachCost(
        name=name,
        index_cost=eager.index_cost * hot_coverage,
        cost_per_month=(
            brute.cost_per_month
            + (eager.cost_per_month - brute.cost_per_month) * hot_coverage
        ),
        cost_per_query=(
            hot_query_share * eager.cost_per_query
            + (1.0 - hot_query_share) * brute.cost_per_query
        ),
        min_latency_s=latency_s,
    )


def rottnest_cost(
    name: str,
    index_cost: float,
    storage_monthly: float,
    per_query: float,
    latency_s: float,
) -> ApproachCost:
    return ApproachCost(
        name=name,
        index_cost=index_cost,
        cost_per_month=storage_monthly,
        cost_per_query=per_query,
        min_latency_s=latency_s,
    )

"""Total-cost-of-ownership model (paper §VI).

Each approach is summarized by three numbers (plus an optional one-time
index cost)::

    TCO(months, queries) = index_cost
                         + cost_per_month * months
                         + cost_per_query * queries

* copy-data folds indexing and querying into ``cost_per_month``
  (``cpm_i``),
* brute force has no index cost, tiny ``cpm_bf`` (S3 storage of the
  compressed data), huge ``cpq_bf``,
* Rottnest has one-time ``ic_r``, moderate ``cpm_r`` (data + index
  storage), small ``cpq_r``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import TCOError


@dataclass(frozen=True)
class ApproachCost:
    """One approach's cost coefficients (dollars)."""

    name: str
    cost_per_month: float
    cost_per_query: float = 0.0
    index_cost: float = 0.0
    min_latency_s: float = 0.0  # informational; not part of TCO

    def __post_init__(self) -> None:
        if self.cost_per_month < 0 or self.cost_per_query < 0 or self.index_cost < 0:
            raise TCOError(f"negative cost in {self!r}")

    def tco(self, months: float, queries: float) -> float:
        """Total cost of owning this system for a workload point."""
        if months < 0 or queries < 0:
            raise TCOError(f"negative workload point ({months}, {queries})")
        return (
            self.index_cost
            + self.cost_per_month * months
            + self.cost_per_query * queries
        )

    def scaled(
        self,
        *,
        index_cost: float = 1.0,
        cost_per_month: float = 1.0,
        cost_per_query: float = 1.0,
    ) -> "ApproachCost":
        """Copy with coefficients multiplied (sensitivity analysis)."""
        return replace(
            self,
            index_cost=self.index_cost * index_cost,
            cost_per_month=self.cost_per_month * cost_per_month,
            cost_per_query=self.cost_per_query * cost_per_query,
        )


def copy_data_cost(name: str, monthly: float, latency_s: float = 0.03) -> ApproachCost:
    """Copy-data approach: constant monthly burn, nothing else."""
    return ApproachCost(
        name=name, cost_per_month=monthly, min_latency_s=latency_s
    )


def brute_force_cost(
    name: str, storage_monthly: float, per_query: float, latency_s: float
) -> ApproachCost:
    return ApproachCost(
        name=name,
        cost_per_month=storage_monthly,
        cost_per_query=per_query,
        min_latency_s=latency_s,
    )


def rottnest_cost(
    name: str,
    index_cost: float,
    storage_monthly: float,
    per_query: float,
    latency_s: float,
) -> ApproachCost:
    return ApproachCost(
        name=name,
        index_cost=index_cost,
        cost_per_month=storage_monthly,
        cost_per_query=per_query,
        min_latency_s=latency_s,
    )

"""TCO phase-diagram evaluation framework (paper §VI)."""

from repro.tco.model import (
    ApproachCost,
    brute_force_cost,
    copy_data_cost,
    cracked_cost,
    rottnest_cost,
)
from repro.tco.phase import (
    PhaseDiagram,
    cheapest_feasible,
    compute_phase_diagram,
    cracked_phase_diagram,
    feasible,
)
from repro.tco.render import describe_boundaries, render
from repro.tco.sensitivity import SensitivityPoint, scaled_rottnest, sweep
from repro.tco.throughput import (
    ThroughputAnalysis,
    ThroughputModel,
    throughput_analysis,
)

__all__ = [
    "ApproachCost",
    "copy_data_cost",
    "brute_force_cost",
    "cracked_cost",
    "rottnest_cost",
    "PhaseDiagram",
    "compute_phase_diagram",
    "cracked_phase_diagram",
    "cheapest_feasible",
    "feasible",
    "render",
    "describe_boundaries",
    "SensitivityPoint",
    "scaled_rottnest",
    "sweep",
    "ThroughputAnalysis",
    "ThroughputModel",
    "throughput_analysis",
]

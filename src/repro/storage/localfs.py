"""Filesystem-backed object store.

Persists lakes and indices across processes (used by the CLI and the
examples that want durable state). Keys map to files under a root
directory; S3 semantics are emulated:

* atomic PUT via write-to-temp + ``os.replace`` (readers never observe
  partial objects),
* conditional PUT (``if-none-match``) via ``O_CREAT | O_EXCL``, giving
  the same compare-and-swap the transaction logs need,
* object mtimes come from the store's clock (written to a sidecar-free
  scheme: the file's own mtime is set with ``os.utime``), so the vacuum
  timeout logic behaves identically to the in-memory store.

POSIX-only in the sense that ``os.replace`` atomicity is assumed.
"""

from __future__ import annotations

import os
import tempfile

from repro.errors import InvalidByteRange, ObjectNotFound, PreconditionFailed
from repro.storage.object_store import ObjectInfo, ObjectStore
from repro.util.clock import Clock, SystemClock


class LocalFSObjectStore(ObjectStore):
    """Object store rooted at a directory on the local filesystem."""

    def __init__(self, root: str, clock: Clock | None = None) -> None:
        """Create (if needed) and root the store at directory ``root``."""
        super().__init__(clock if clock is not None else SystemClock())
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        if not key or key.startswith("/") or ".." in key.split("/"):
            raise ValueError(f"invalid key {key!r}")
        return os.path.join(self.root, *key.split("/"))

    def put(self, key: str, data: bytes, *, if_none_match: bool = False) -> ObjectInfo:
        """Atomic PUT (temp + rename); ``if_none_match`` uses O_EXCL CAS."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        mtime = self.clock.now()
        with self._lock:
            if if_none_match:
                # O_EXCL makes creation the atomic commit point.
                try:
                    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
                except FileExistsError:
                    self._record("PUT", key, 0)
                    raise PreconditionFailed(key) from None
                try:
                    os.write(fd, data)
                finally:
                    os.close(fd)
            else:
                fd, tmp = tempfile.mkstemp(
                    dir=os.path.dirname(path), prefix=".upload-"
                )
                try:
                    os.write(fd, data)
                finally:
                    os.close(fd)
                os.replace(tmp, path)
            os.utime(path, (mtime, mtime))
            self._record("PUT", key, len(data))
            return ObjectInfo(key=key, size=len(data), mtime=mtime)

    def get(self, key: str, byte_range: tuple[int, int] | None = None) -> bytes:
        """Read the object (or an in-bounds byte range) from its file."""
        path = self._path(key)
        try:
            with open(path, "rb") as f:
                if byte_range is None:
                    data = f.read()
                    self._record("GET", key, len(data))
                    return data
                offset, length = byte_range
                size = os.fstat(f.fileno()).st_size
                if offset < 0 or length < 0 or offset + length > size:
                    raise InvalidByteRange(
                        f"range ({offset}, {length}) outside object "
                        f"{key!r} of size {size}"
                    )
                f.seek(offset)
                data = f.read(length)
                self._record("GET", key, length)
                return data
        except FileNotFoundError:
            raise ObjectNotFound(key) from None

    def head(self, key: str) -> ObjectInfo:
        """Size/mtime metadata from ``os.stat``, no payload read."""
        path = self._path(key)
        try:
            stat = os.stat(path)
        except FileNotFoundError:
            raise ObjectNotFound(key) from None
        self._record("HEAD", key, 0)
        return ObjectInfo(key=key, size=stat.st_size, mtime=stat.st_mtime)

    def list(self, prefix: str = "") -> list[ObjectInfo]:
        """Walk the root and return key-sorted objects under ``prefix``."""
        self._record("LIST", prefix, 0)
        out = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.startswith(".upload-"):
                    continue  # in-flight temp files are not objects
                full = os.path.join(dirpath, name)
                key = os.path.relpath(full, self.root).replace(os.sep, "/")
                if not key.startswith(prefix):
                    continue
                stat = os.stat(full)
                out.append(
                    ObjectInfo(key=key, size=stat.st_size, mtime=stat.st_mtime)
                )
        return sorted(out, key=lambda i: i.key)

    def delete(self, key: str) -> None:
        """Remove the object's file; deleting a missing key is a no-op."""
        self._record("DELETE", key, 0)
        try:
            os.remove(self._path(key))
        except FileNotFoundError:
            pass

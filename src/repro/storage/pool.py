"""Bounded, trace-aware worker pool shared by serving and maintenance.

:class:`TracedPool` generalizes the fan-out machinery that
:class:`~repro.serve.executor.SearchExecutor` pioneered for queries so
the maintenance write path (:mod:`repro.maintain`) can reuse it
verbatim: tasks run in waves of ``workers``; each worker records its
own per-thread :class:`~repro.storage.stats.RequestTrace`; traces
within a wave merge with ``merge_parallel`` (they really were in
flight together), waves compose sequentially with ``then`` (only
``workers`` requests can be outstanding at once). Payloads come back
in task order regardless of completion order — determinism of results
never depends on scheduling.

:class:`IOBudget` is the backpressure signal that lets a maintenance
daemon overlap its ticks with live serving without starving it: both
sides wrap their store-touching tasks in :meth:`IOBudget.slot`, so the
*total* IO concurrency across pools is capped by one shared semaphore.
Budget occupancy is exported through :mod:`repro.obs` gauges so an
operator can see maintenance yielding to queries in real time.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, Iterator, TypeVar

from repro.errors import RottnestIndexError
from repro.obs.metrics import get_registry
from repro.obs.trace import Span, get_tracer
from repro.storage.object_store import ObjectStore
from repro.storage.stats import RequestTrace

T = TypeVar("T")

_BUDGET_SLOTS = get_registry().gauge(
    "io_budget_slots",
    "Configured IO-budget slots per shared budget.",
    ("budget",),
)
_BUDGET_IN_USE = get_registry().gauge(
    "io_budget_in_use",
    "IO-budget slots currently held per shared budget.",
    ("budget",),
)
_BUDGET_WAITS = get_registry().counter(
    "io_budget_waits_total",
    "Times a worker blocked waiting for an IO-budget slot.",
    ("budget",),
)


class IOBudget:
    """A shared cap on concurrent store-touching tasks.

    One budget can be handed to several :class:`TracedPool` instances
    (e.g. a query executor and a maintenance pipeline); their combined
    in-flight task count never exceeds ``slots``. Acquisition order is
    the semaphore's (FIFO-ish) — neither side can starve the other
    indefinitely, which is the backpressure contract the daemon relies
    on when it overlaps maintenance with serving.
    """

    def __init__(self, slots: int, *, name: str = "shared") -> None:
        """Create a budget of ``slots`` concurrent store-touching tasks."""
        if slots < 1:
            raise RottnestIndexError(f"IO budget slots must be >= 1, got {slots}")
        self.slots = slots
        self.name = name
        self._sem = threading.Semaphore(slots)
        self._lock = threading.Lock()
        self._in_use = 0
        _BUDGET_SLOTS.set(slots, budget=name)
        _BUDGET_IN_USE.set(0, budget=name)

    @property
    def in_use(self) -> int:
        """Slots currently held (for tests and dashboards)."""
        with self._lock:
            return self._in_use

    @contextmanager
    def slot(self) -> Iterator[None]:
        """Hold one budget slot for the duration of the block."""
        if not self._sem.acquire(blocking=False):
            _BUDGET_WAITS.inc(budget=self.name)
            self._sem.acquire()
        with self._lock:
            self._in_use += 1
        _BUDGET_IN_USE.add(1, budget=self.name)
        try:
            yield
        finally:
            with self._lock:
                self._in_use -= 1
            _BUDGET_IN_USE.add(-1, budget=self.name)
            self._sem.release()


class TracedPool:
    """Runs tasks in bounded waves, recording per-worker traces.

    Usable as a context manager; :meth:`close` shuts the pool down.
    """

    def __init__(
        self,
        store: ObjectStore,
        *,
        workers: int = 4,
        thread_name_prefix: str = "worker",
        span_name: str = "worker:task",
        budget: IOBudget | None = None,
    ) -> None:
        """Create a pool of ``workers`` threads over ``store``.

        ``budget`` (optional) wraps every task in a shared
        :meth:`IOBudget.slot` so several pools can cap their combined
        concurrency.
        """
        if workers < 1:
            raise RottnestIndexError(f"workers must be >= 1, got {workers}")
        self.store = store
        self.workers = workers
        self.span_name = span_name
        self.budget = budget
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=thread_name_prefix
        )

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Shut the pool down, waiting for in-flight tasks."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "TracedPool":
        """Context-manager entry: the pool itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: close the pool."""
        self.close()

    # -- fan-out machinery ---------------------------------------------
    def _traced(
        self, fn: Callable[[], T], parent: Span | None, span_name: str
    ) -> Callable[[], tuple[RequestTrace, T]]:
        """Wrap a task so it records store requests into its own
        per-thread trace and returns ``(trace, payload)``.

        ``parent`` is the submitting thread's current span: the worker
        re-attaches it so its task span (and the store events recorded
        inside) lands under the right root even though it runs on a
        pool thread.
        """
        store = self.store
        budget = self.budget

        def run() -> tuple[RequestTrace, T]:
            """Worker-side body: attach span, trace, run the task."""
            tracer = get_tracer()
            with tracer.attach(parent), tracer.span(span_name) as task_span:
                if budget is not None:
                    with budget.slot():
                        store.start_trace()
                        try:
                            payload = fn()
                        finally:
                            trace = store.stop_trace()
                else:
                    store.start_trace()
                    try:
                        payload = fn()
                    finally:
                        trace = store.stop_trace()
                # Per-task trace for inspection; the *phase* span owns
                # the merged wave trace, so attribution counts each
                # request once (task spans carry no ``phase`` attr).
                task_span.trace = trace
                task_span.set("requests", trace.total_requests)
            return trace, payload

        return run

    def run(
        self, tasks: list[Callable[[], T]], *, span_name: str | None = None
    ) -> tuple[RequestTrace, list[T]]:
        """Run tasks on the pool in waves of ``workers``.

        Traces within a wave merge in parallel; waves compose
        sequentially. Payloads come back in task order regardless of
        completion order, which is what keeps results deterministic.
        Errors are collected per wave and the first (in task order) is
        re-raised — including :class:`~repro.errors.SimulatedCrash`,
        so chaos injection in any worker kills the whole operation
        exactly as it would the serial loop.
        """
        name = span_name or self.span_name
        parent = get_tracer().current()
        combined = RequestTrace()
        payloads: list[T] = []
        width = self.workers
        for start in range(0, len(tasks), width):
            wave = tasks[start : start + width]
            futures = [
                self._pool.submit(self._traced(fn, parent, name)) for fn in wave
            ]
            wave_trace = RequestTrace()
            errors: list[BaseException] = []
            for future in futures:
                try:
                    trace, payload = future.result()
                except BaseException as exc:  # collect, then re-raise first
                    errors.append(exc)
                    continue
                wave_trace = wave_trace.merge_parallel(trace)
                payloads.append(payload)
            if errors:
                raise errors[0]
            combined = combined.then(wave_trace)
        return combined, payloads

"""Cloud cost model (AWS-like public prices, us-east-1, mid-2024).

The TCO framework (Section VI of the paper) prices three approaches:

* copy-data: always-on dedicated cluster (instances + 3x EBS replicas),
* brute force: S3 storage of compressed Parquet + per-query scan compute,
* Rottnest: S3 storage of Parquet + index files, one-time indexing
  compute, and per-query single-instance compute.

Prices here are constants so experiments are reproducible; all are
overridable for sensitivity analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

GB = 1024**3

#: On-demand hourly prices for the instance types the paper uses.
DEFAULT_INSTANCE_PRICES: dict[str, float] = {
    "r6i.4xlarge": 1.008,  # brute-force Spark workers (16 vCPU)
    "r6i.xlarge": 0.252,
    "r6g.large": 0.1008,  # OpenSearch data nodes
    "r6g.xlarge": 0.2016,  # LanceDB nodes
    "c6i.2xlarge": 0.340,  # Rottnest indexer / searcher
}

HOURS_PER_MONTH = 730.0


@dataclass(frozen=True)
class CostModel:
    """Unit prices used to convert measured resources into dollars."""

    s3_storage_per_gb_month: float = 0.023
    s3_get_per_request: float = 0.0004 / 1000.0
    s3_put_per_request: float = 0.005 / 1000.0
    s3_list_per_request: float = 0.005 / 1000.0
    ebs_per_gb_month: float = 0.08
    opensearch_ebs_per_gb_month: float = 0.135  # managed-service premium
    instance_prices: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_INSTANCE_PRICES)
    )

    def instance_hourly(self, instance_type: str) -> float:
        """On-demand hourly price for ``instance_type`` (KeyError if unknown)."""
        try:
            return self.instance_prices[instance_type]
        except KeyError:
            raise KeyError(
                f"unknown instance type {instance_type!r}; known: "
                f"{sorted(self.instance_prices)}"
            ) from None

    def storage_monthly(self, nbytes: int) -> float:
        """S3 storage cost per month for ``nbytes``."""
        return (nbytes / GB) * self.s3_storage_per_gb_month

    def ebs_monthly(self, nbytes: int, replicas: int = 3) -> float:
        """EBS cost per month for ``replicas`` copies of ``nbytes``."""
        return (nbytes / GB) * self.ebs_per_gb_month * replicas

    def compute_cost(self, instance_type: str, seconds: float, count: int = 1) -> float:
        """Cost of running ``count`` instances for ``seconds``."""
        return self.instance_hourly(instance_type) * (seconds / 3600.0) * count

    def request_cost(self, gets: int = 0, puts: int = 0, lists: int = 0) -> float:
        """Dollar cost of a request mix — the term coalescing shrinks."""
        return (
            gets * self.s3_get_per_request
            + puts * self.s3_put_per_request
            + lists * self.s3_list_per_request
        )

"""Retrying object-store wrapper.

Real object stores throw transient 5xx/throttling errors; clients retry
with backoff. This wrapper retries idempotent operations (GET / HEAD /
LIST / DELETE and plain PUT — an overwrite with identical bytes is
idempotent) a bounded number of times. Conditional PUTs are **never**
retried blindly: after a network error the first attempt may have
landed, and retrying would misreport a success as
:class:`~repro.errors.PreconditionFailed`; the transaction layers
already handle that by re-reading.

Backoff delays use *decorrelated jitter* (the AWS architecture-blog
scheme): each wait is drawn uniformly from ``[base, 3 * previous]`` and
capped at ``max_backoff_s``. Without jitter, clients that fail together
retry together and re-overload the store in synchronized waves — the
serve executor runs many concurrent searchers, so this matters. The
jitter comes from a seeded RNG and the waits advance the store's clock,
so tests with a :class:`~repro.util.clock.SimClock` stay instant and
deterministic.
"""

from __future__ import annotations

import random

from repro.errors import (
    InvalidByteRange,
    ObjectNotFound,
    ObjectStoreError,
    PreconditionFailed,
    SimulatedCrash,
)
from repro.obs.metrics import get_registry
from repro.storage.object_store import ObjectInfo, ObjectStore
from repro.util.clock import SimClock

#: Errors that are permanent facts about the request, never transient.
_PERMANENT = (ObjectNotFound, PreconditionFailed, InvalidByteRange)

_RETRIES = get_registry().counter(
    "store_retries_total", "Transient store errors retried, by operation", ("op",)
)
_BACKOFF = get_registry().counter(
    "store_backoff_seconds_total", "Cumulative retry backoff wait time"
)


class RetryingObjectStore(ObjectStore):
    """Wraps a store with bounded exponential backoff on transient
    failures."""

    def __init__(
        self,
        inner: ObjectStore,
        *,
        max_attempts: int = 4,
        base_backoff_s: float = 0.1,
        max_backoff_s: float = 10.0,
        jitter_seed: int | None = 0,
    ) -> None:
        """Wrap ``inner``; IO accounting is shared with it."""
        super().__init__(inner.clock)
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if max_backoff_s < base_backoff_s:
            raise ValueError("max_backoff_s must be >= base_backoff_s")
        self.inner = inner
        self.max_attempts = max_attempts
        self.base_backoff_s = base_backoff_s
        self.max_backoff_s = max_backoff_s
        self._rng = random.Random(jitter_seed)
        self.stats = inner.stats
        self.retries = 0

    def _next_delay(self, previous: float) -> float:
        """Decorrelated jitter: uniform in ``[base, 3 * previous]``,
        capped at ``max_backoff_s``; always strictly positive."""
        high = max(self.base_backoff_s, 3.0 * previous)
        delay = self._rng.uniform(self.base_backoff_s, high)
        return min(self.max_backoff_s, delay)

    def _backoff(self, delay: float) -> None:
        if isinstance(self.clock, SimClock):
            self.clock.advance(delay)
        else:  # pragma: no cover - wall-clock path
            import time

            time.sleep(delay)

    def _retrying(self, operation, *args, **kwargs):
        last: Exception | None = None
        delay = self.base_backoff_s
        for attempt in range(self.max_attempts):
            try:
                return operation(*args, **kwargs)
            except _PERMANENT:
                raise
            except SimulatedCrash:
                # A simulated process death is not a transient store
                # error: the mutation beneath it is durable and the
                # "process" is gone. Retrying would both resurrect the
                # dead client and re-run the mutation, consuming chaos
                # crash countdowns twice per boundary. (SimulatedCrash
                # is not an ObjectStoreError, but pin it explicitly so
                # an exception-hierarchy change cannot silently break
                # one-crash-per-rule semantics.)
                raise
            except ObjectStoreError as exc:
                last = exc
                self.retries += 1
                _RETRIES.inc(op=operation.__name__.upper())
                if attempt + 1 < self.max_attempts:
                    delay = self._next_delay(delay)
                    _BACKOFF.inc(delay)
                    self._backoff(delay)
        raise last  # type: ignore[misc]

    # -- operations ---------------------------------------------------
    def put(self, key: str, data: bytes, *, if_none_match: bool = False) -> ObjectInfo:
        """PUT with retries; conditional PUTs pass through un-retried."""
        if if_none_match:
            # Not idempotent: a lost response may mean the put landed.
            return self.inner.put(key, data, if_none_match=True)
        return self._retrying(self.inner.put, key, data)

    def get(self, key: str, byte_range: tuple[int, int] | None = None) -> bytes:
        """GET with retries."""
        return self._retrying(self.inner.get, key, byte_range)

    def head(self, key: str) -> ObjectInfo:
        """HEAD with retries."""
        return self._retrying(self.inner.head, key)

    def list(self, prefix: str = "") -> list[ObjectInfo]:
        """LIST with retries."""
        return self._retrying(self.inner.list, prefix)

    def delete(self, key: str) -> None:
        """DELETE with retries (idempotent: missing keys are no-ops)."""
        return self._retrying(self.inner.delete, key)

    # -- tracing delegates to the inner store --------------------------
    def start_trace(self):
        """Delegate trace start to the inner store."""
        return self.inner.start_trace()

    def stop_trace(self):
        """Delegate trace stop to the inner store."""
        return self.inner.stop_trace()

    def barrier(self) -> None:
        """Delegate the trace barrier to the inner store."""
        self.inner.barrier()

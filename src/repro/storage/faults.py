"""Fault injection for crash-safety tests.

Wraps any :class:`~repro.storage.object_store.ObjectStore` and raises
:class:`~repro.errors.InjectedFault` when a programmable trigger fires.
The protocol test-suite uses this to kill indexers *before upload*,
*before commit*, and compactors/vacuums mid-delete, then checks the
Existence and Consistency invariants still hold (paper §IV-D).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import InjectedFault
from repro.storage.object_store import ObjectInfo, ObjectStore


@dataclass
class FaultRule:
    """Fires on the ``countdown``-th matching operation (0 = next one).

    Thread-safe: faulty stores sit under the serve executor's worker
    pool, where concurrent operations race on the countdown. The
    decrement and the fired flip happen under one lock, so exactly one
    operation observes the trigger.
    """

    op: str  # "PUT" | "GET" | "DELETE" | "LIST" | "HEAD" | "*"
    key_predicate: Callable[[str], bool] = lambda key: True
    countdown: int = 0
    fired: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def matches(self, op: str, key: str) -> bool:
        # Predicate checks are read-only and can stay outside the lock.
        if self.op != "*" and self.op != op:
            return False
        if not self.key_predicate(key):
            return False
        with self._lock:
            if self.fired:
                return False
            if self.countdown > 0:
                self.countdown -= 1
                return False
            self.fired = True
            return True


class FaultyObjectStore(ObjectStore):
    """Pass-through store that raises on matching operations.

    The fault fires *before* the operation reaches the inner store, so a
    failed PUT leaves no partial object — matching S3's atomic-PUT
    semantics. Crash-after-upload scenarios are expressed by triggering
    on the *next* operation instead.
    """

    def __init__(self, inner: ObjectStore) -> None:
        super().__init__(inner.clock)
        self.inner = inner
        self.rules: list[FaultRule] = []
        # Share accounting with the inner store so stats stay unified.
        self.stats = inner.stats

    def add_rule(self, rule: FaultRule) -> FaultRule:
        self.rules.append(rule)
        return rule

    def fail_next(
        self,
        op: str,
        key_substring: str = "",
        countdown: int = 0,
    ) -> FaultRule:
        """Convenience: fail the next (or countdown-th) op whose key
        contains ``key_substring``."""
        return self.add_rule(
            FaultRule(
                op=op,
                key_predicate=lambda key: key_substring in key,
                countdown=countdown,
            )
        )

    def _check(self, op: str, key: str) -> None:
        for rule in self.rules:
            if rule.matches(op, key):
                raise InjectedFault(f"injected fault on {op} {key!r}")

    # -- delegated operations ----------------------------------------
    def put(self, key: str, data: bytes, *, if_none_match: bool = False) -> ObjectInfo:
        self._check("PUT", key)
        return self.inner.put(key, data, if_none_match=if_none_match)

    def get(self, key: str, byte_range: tuple[int, int] | None = None) -> bytes:
        self._check("GET", key)
        return self.inner.get(key, byte_range)

    def head(self, key: str) -> ObjectInfo:
        self._check("HEAD", key)
        return self.inner.head(key)

    def list(self, prefix: str = "") -> list[ObjectInfo]:
        self._check("LIST", prefix)
        return self.inner.list(prefix)

    def delete(self, key: str) -> None:
        self._check("DELETE", key)
        self.inner.delete(key)

    # -- tracing is delegated so index code sees one trace ------------
    def start_trace(self):
        return self.inner.start_trace()

    def stop_trace(self):
        return self.inner.stop_trace()

    def barrier(self) -> None:
        self.inner.barrier()

"""Fault and crash injection for the protocol chaos suite.

Wraps any :class:`~repro.storage.object_store.ObjectStore` and fires a
programmable trigger on a matching operation. Two trigger modes model
the two failure families the Rottnest protocol (paper §IV-D) must
survive:

* ``"fault"`` — raise :class:`~repro.errors.InjectedFault` *before*
  the operation reaches the inner store. Models an infrastructure
  failure (request lost, 500, network partition): the operation has no
  effect, matching S3's atomic-PUT semantics.
* ``"crash_after"`` — let the operation complete against the inner
  store, then raise :class:`~repro.errors.SimulatedCrash`. Models the
  client process dying between protocol steps: the mutation is durable,
  everything the client would have done next never happens.

``crash_after`` on the Nth matching PUT/DELETE is the primitive the
:mod:`repro.chaos` harness uses to kill maintenance runs at every
mutation boundary and then audit the Existence/Consistency invariants.
Rules fire deterministically (an explicit countdown, one-shot), so a
crash schedule is fully reproducible from a fuzzer seed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import InjectedFault, SimulatedCrash
from repro.obs.trace import get_tracer
from repro.storage.object_store import ObjectInfo, ObjectStore

#: Pseudo-operation matching any store mutation (PUT or DELETE) — the
#: operations that move protocol state and therefore the only crash
#: boundaries worth enumerating.
MUTATION_OPS = ("PUT", "DELETE")


@dataclass
class FaultRule:
    """Fires on the ``countdown``-th matching operation (0 = next one).

    ``op`` names one operation (``"PUT"``, ``"GET"``, ``"DELETE"``,
    ``"LIST"``, ``"HEAD"``), ``"*"`` for any, or ``"MUTATE"`` for any
    mutation (PUT or DELETE). Matching is case-insensitive: callers
    historically passed mixed case (``"put"``, ``"Delete"``) and a rule
    that silently never fires is the worst kind of test bug.

    ``mode`` selects what firing does: ``"fault"`` raises before the
    inner operation runs, ``"crash_after"`` raises after it completed
    (see the module docstring for the semantics of each).

    Thread-safe: faulty stores sit under the serve executor's worker
    pool, where concurrent operations race on the countdown. The
    decrement and the fired flip happen under one lock, so exactly one
    operation observes the trigger.
    """

    op: str  # "PUT" | "GET" | "DELETE" | "LIST" | "HEAD" | "*" | "MUTATE"
    key_predicate: Callable[[str], bool] = lambda key: True
    countdown: int = 0
    mode: str = "fault"  # "fault" | "crash_after"
    fired: bool = field(default=False, init=False)
    #: Set when the rule fires: the (op, key) it triggered on.
    fired_on: tuple[str, str] | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        """Normalize the operation name and validate the mode."""
        self.op = self.op.upper()
        if self.mode not in ("fault", "crash_after"):
            raise ValueError(f"unknown fault mode {self.mode!r}")
        if self.mode == "crash_after" and self.op not in (*MUTATION_OPS, "MUTATE"):
            raise ValueError(
                f"crash_after only makes sense on mutations, got {self.op!r}"
            )
        self._lock = threading.Lock()

    def _op_matches(self, op: str) -> bool:
        """Whether ``op`` (canonical upper-case) is in this rule's scope."""
        if self.op == "*":
            return True
        if self.op == "MUTATE":
            return op in MUTATION_OPS
        return self.op == op

    def matches(self, op: str, key: str) -> bool:
        """Decide (and consume) whether this rule fires on ``op``/``key``."""
        # Predicate checks are read-only and can stay outside the lock.
        if not self.applies(op, key):
            return False
        with self._lock:
            if self.fired:
                return False
            if self.countdown > 0:
                self.countdown -= 1
                return False
            self.fired = True
            self.fired_on = (op.upper(), key)
            return True

    def applies(self, op: str, key: str) -> bool:
        """Whether ``op``/``key`` is in scope — read-only, consumes
        nothing. The store-side checks use this to separate *scope*
        from *countdown accounting*, so an attempt that never reaches
        the inner store (aborted by some other rule's injected fault)
        does not consume this rule's countdown."""
        return self._op_matches(op.upper()) and self.key_predicate(key)

    def try_fire(self, op: str, key: str) -> bool:
        """Fire now if in scope, armed (countdown exhausted), and not
        already fired. Never decrements: firing and counting are
        distinct steps, so probing for a ready rule cannot double-count
        an operation that another rule is about to abort."""
        if not self.applies(op, key):
            return False
        with self._lock:
            if self.fired or self.countdown > 0:
                return False
            self.fired = True
            self.fired_on = (op.upper(), key)
            return True

    def tick(self, op: str, key: str) -> None:
        """Consume one countdown step for an in-scope operation that
        actually reached the inner store."""
        if not self.applies(op, key):
            return
        with self._lock:
            if not self.fired and self.countdown > 0:
                self.countdown -= 1


class FaultyObjectStore(ObjectStore):
    """Pass-through store that raises on matching operations.

    ``"fault"`` rules fire *before* the operation reaches the inner
    store, so a failed PUT leaves no partial object — matching S3's
    atomic-PUT semantics. ``"crash_after"`` rules fire *after* the
    inner store applied the mutation, leaving it durable — the
    crash-between-protocol-steps scenario the §IV-D proofs are about.
    """

    def __init__(self, inner: ObjectStore) -> None:
        """Wrap ``inner``; IO accounting is shared so stats stay unified."""
        super().__init__(inner.clock)
        self.inner = inner
        self.rules: list[FaultRule] = []
        # Share accounting with the inner store so stats stay unified.
        self.stats = inner.stats

    def add_rule(self, rule: FaultRule) -> FaultRule:
        """Install ``rule``; returns it for later inspection."""
        self.rules.append(rule)
        return rule

    def clear_rules(self) -> None:
        """Drop every installed rule (fired or not)."""
        self.rules.clear()

    def fail_next(
        self,
        op: str,
        key_substring: str = "",
        countdown: int = 0,
    ) -> FaultRule:
        """Fail the next (or countdown-th) op whose key contains
        ``key_substring``, before it takes effect."""
        return self.add_rule(
            FaultRule(
                op=op,
                key_predicate=lambda key: key_substring in key,
                countdown=countdown,
            )
        )

    def crash_after(
        self,
        op: str = "MUTATE",
        key_substring: str = "",
        countdown: int = 0,
    ) -> FaultRule:
        """Simulate the client dying right after the ``countdown``-th
        matching mutation completes.

        The default ``op="MUTATE"`` crashes at the Nth PUT-or-DELETE
        boundary, which is how the chaos harness enumerates every crash
        point of a maintenance run.
        """
        return self.add_rule(
            FaultRule(
                op=op,
                key_predicate=lambda key: key_substring in key,
                countdown=countdown,
                mode="crash_after",
            )
        )

    def _check_before(self, op: str, key: str) -> None:
        """Raise :class:`InjectedFault` if a ``"fault"`` rule fires.

        Two passes, so countdowns stay attempt-exact under retries:
        first probe whether any armed rule aborts this attempt (firing
        consumes nothing from the others — the operation never reaches
        the inner store, so no sibling rule should count it); only when
        no rule fires does every in-scope rule consume one countdown
        step for the operation that is about to execute. A retried PUT
        therefore decrements each rule exactly once per *effective*
        operation, never once per attempt.
        """
        for rule in self.rules:
            if rule.mode == "fault" and rule.try_fire(op, key):
                raise InjectedFault(f"injected fault on {op} {key!r}")
        for rule in self.rules:
            if rule.mode == "fault":
                rule.tick(op, key)

    def _check_after(self, op: str, key: str) -> None:
        """Raise :class:`SimulatedCrash` if a ``"crash_after"`` rule fires.

        The mutation is already durable, so *every* in-scope crash rule
        counts this boundary — the raise must not short-circuit sibling
        rules' countdowns, or a multi-rule schedule would drift
        depending on registration order.
        """
        crashed = False
        for rule in self.rules:
            if rule.mode == "crash_after" and rule.matches(op, key):
                crashed = True
        if crashed:
            # Leave a mark on the active span so the chaos timeline
            # shows exactly where the client died.
            get_tracer().record_event("CRASH", f"{op} {key}", 0)
            raise SimulatedCrash(op, key)

    # -- delegated operations ----------------------------------------
    def put(self, key: str, data: bytes, *, if_none_match: bool = False) -> ObjectInfo:
        """PUT through the fault rules (crash-after fires post-write)."""
        self._check_before("PUT", key)
        info = self.inner.put(key, data, if_none_match=if_none_match)
        self._check_after("PUT", key)
        return info

    def get(self, key: str, byte_range: tuple[int, int] | None = None) -> bytes:
        """GET through the fault rules."""
        self._check_before("GET", key)
        return self.inner.get(key, byte_range)

    def head(self, key: str) -> ObjectInfo:
        """HEAD through the fault rules."""
        self._check_before("HEAD", key)
        return self.inner.head(key)

    def list(self, prefix: str = "") -> list[ObjectInfo]:
        """LIST through the fault rules."""
        self._check_before("LIST", prefix)
        return self.inner.list(prefix)

    def delete(self, key: str) -> None:
        """DELETE through the fault rules (crash-after fires post-delete)."""
        self._check_before("DELETE", key)
        self.inner.delete(key)
        self._check_after("DELETE", key)

    # -- tracing is delegated so index code sees one trace ------------
    def start_trace(self):
        """Delegate trace start to the inner store."""
        return self.inner.start_trace()

    def stop_trace(self):
        """Delegate trace stop to the inner store."""
        return self.inner.stop_trace()

    def barrier(self) -> None:
        """Delegate the trace barrier to the inner store."""
        self.inner.barrier()

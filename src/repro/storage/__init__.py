"""Object storage substrate: S3-like store, latency model, cost model."""

from repro.storage.costs import GB, HOURS_PER_MONTH, CostModel
from repro.storage.faults import FaultRule, FaultyObjectStore
from repro.storage.latency import LatencyModel
from repro.storage.localfs import LocalFSObjectStore
from repro.storage.object_store import InMemoryObjectStore, ObjectInfo, ObjectStore
from repro.storage.retry import RetryingObjectStore
from repro.storage.stats import IOStats, Request, RequestTrace

__all__ = [
    "CostModel",
    "GB",
    "HOURS_PER_MONTH",
    "FaultRule",
    "FaultyObjectStore",
    "LatencyModel",
    "InMemoryObjectStore",
    "LocalFSObjectStore",
    "ObjectInfo",
    "ObjectStore",
    "RetryingObjectStore",
    "IOStats",
    "Request",
    "RequestTrace",
]

"""IO accounting for object stores.

Every store operation is recorded twice:

* into cumulative :class:`IOStats` counters (cheap, always on), used by
  the cost model to price a workload run; and
* optionally into a :class:`RequestTrace`, which additionally preserves
  the *dependency structure* of requests (which requests were issued in
  parallel vs. sequentially). The latency model turns a trace into an
  estimated wall-clock latency, reproducing the paper's width-vs-depth
  analysis of object storage access (Section V-B).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class Request:
    """One object-store request, as seen by the latency/cost models."""

    op: str  # "GET" | "PUT" | "LIST" | "DELETE" | "HEAD"
    key: str
    nbytes: int  # payload bytes moved (0 for DELETE/HEAD, per-entry for LIST)


@dataclass
class IOStats:
    """Cumulative operation counters for one store instance.

    Counter updates are guarded by a lock so concurrent searchers (the
    ``repro.serve`` executor) do not lose increments.
    """

    gets: int = 0
    puts: int = 0
    lists: int = 0
    deletes: int = 0
    heads: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def __post_init__(self) -> None:
        """Attach the lock guarding concurrent counter updates."""
        self._lock = threading.Lock()

    def record(self, request: Request) -> None:
        """Bump the counters for one completed request."""
        with self._lock:
            if request.op == "GET":
                self.gets += 1
                self.bytes_read += request.nbytes
            elif request.op == "PUT":
                self.puts += 1
                self.bytes_written += request.nbytes
            elif request.op == "LIST":
                self.lists += 1
            elif request.op == "DELETE":
                self.deletes += 1
            elif request.op == "HEAD":
                self.heads += 1
            else:
                raise ValueError(f"unknown op {request.op!r}")

    def snapshot(self) -> "IOStats":
        """Copy of the current counters (for before/after deltas)."""
        with self._lock:
            return IOStats(
                gets=self.gets,
                puts=self.puts,
                lists=self.lists,
                deletes=self.deletes,
                heads=self.heads,
                bytes_read=self.bytes_read,
                bytes_written=self.bytes_written,
            )

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return IOStats(
            gets=self.gets - earlier.gets,
            puts=self.puts - earlier.puts,
            lists=self.lists - earlier.lists,
            deletes=self.deletes - earlier.deletes,
            heads=self.heads - earlier.heads,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
        )

    @property
    def total_requests(self) -> int:
        """All operations regardless of kind (reconciliation totals)."""
        return self.gets + self.puts + self.lists + self.deletes + self.heads

    def as_dict(self) -> dict:
        """JSON-safe counter dump (telemetry snapshots, dashboards)."""
        return {
            "gets": self.gets,
            "puts": self.puts,
            "lists": self.lists,
            "deletes": self.deletes,
            "heads": self.heads,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "total_requests": self.total_requests,
        }


class RequestTrace:
    """Requests grouped into sequential *rounds*.

    Requests inside one round are independent and issued in parallel;
    round ``i + 1`` depends on the results of round ``i``. Code under a
    trace calls :meth:`barrier` whenever its next request needs data from
    a previous one — e.g. descending one componentized trie level.

    :meth:`record` and :meth:`barrier` are thread-safe so a trace can be
    fed from the serve executor's worker pool; the usual pattern is
    still one trace per worker thread, merged with
    :meth:`merge_parallel` afterwards.
    """

    def __init__(self) -> None:
        """Start with one empty round."""
        self.rounds: list[list[Request]] = [[]]
        self._lock = threading.Lock()

    def record(self, request: Request) -> None:
        """Append one request to the current (open) round."""
        with self._lock:
            self.rounds[-1].append(request)

    def barrier(self) -> None:
        """Start a new dependent round (no-op if the round is empty)."""
        with self._lock:
            if self.rounds[-1]:
                self.rounds.append([])

    @property
    def depth(self) -> int:
        """Number of non-empty dependent rounds (the access *depth*)."""
        return sum(1 for r in self.rounds if r)

    @property
    def total_requests(self) -> int:
        """Requests across all rounds (the access *width* sum)."""
        return sum(len(r) for r in self.rounds)

    @property
    def total_bytes(self) -> int:
        """Payload bytes moved across all rounds."""
        return sum(req.nbytes for r in self.rounds for req in r)

    def then(self, other: "RequestTrace") -> "RequestTrace":
        """Sequential composition: ``other`` starts after this trace's
        last round completes (e.g. probing after index queries)."""
        combined = RequestTrace()
        combined.rounds = [list(r) for r in self.rounds if r]
        combined.rounds.extend(list(r) for r in other.rounds if r)
        if not combined.rounds:
            combined.rounds = [[]]
        return combined

    def merge_parallel(self, other: "RequestTrace") -> "RequestTrace":
        """Combine with a trace that executed concurrently.

        Round ``i`` of the result is the union of round ``i`` of both
        traces; used when several index files are queried in parallel.
        """
        merged = RequestTrace()
        n = max(len(self.rounds), len(other.rounds))
        merged.rounds = []
        for i in range(n):
            combined: list[Request] = []
            if i < len(self.rounds):
                combined.extend(self.rounds[i])
            if i < len(other.rounds):
                combined.extend(other.rounds[i])
            merged.rounds.append(combined)
        if not merged.rounds:
            merged.rounds = [[]]
        return merged

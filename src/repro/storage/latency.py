"""Object storage latency model.

Calibrated to the paper's Figure 10a measurement of S3 byte-range GETs:

* request latency is *flat* with respect to size until roughly 1 MB
  (dominated by time-to-first-byte), and
* grows *linearly* with size beyond that (per-request stream bandwidth),
* this shape holds from 1 to 512 concurrent requests, after which the
  instance NIC and the per-prefix request rate start to matter.

The model converts a :class:`~repro.storage.stats.RequestTrace` into an
estimated wall-clock latency: rounds execute sequentially, requests in a
round execute in parallel subject to a concurrency cap, the instance
bandwidth, and S3's ~5500 GET/s per-prefix throttle (paper §VII-D3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.stats import Request, RequestTrace


@dataclass(frozen=True)
class LatencyModel:
    """Parameters of the simulated object store's performance envelope."""

    first_byte_s: float = 0.030
    """Time to first byte for any request (GET/PUT/HEAD/DELETE)."""

    free_bytes: int = 1 << 20
    """Size below which request latency is flat (Fig. 10a knee, ~1 MB)."""

    stream_bandwidth_bps: float = 90e6
    """Per-request streaming bandwidth beyond ``free_bytes`` (~90 MB/s)."""

    instance_bandwidth_bps: float = 12.5e9
    """Aggregate NIC bandwidth of the querying instance (100 Gbps)."""

    max_concurrency: int = 512
    """Connections one instance keeps in flight at once."""

    prefix_get_rps: float = 5500.0
    """S3 GET requests/second per key prefix before throttling."""

    list_latency_s: float = 0.100
    """Latency of one LIST page (LISTs are slow and unparallelisable)."""

    def request_latency(self, nbytes: int) -> float:
        """Latency of a single isolated request of ``nbytes``."""
        extra = max(0, nbytes - self.free_bytes)
        return self.first_byte_s + extra / self.stream_bandwidth_bps

    def round_latency(self, sizes: list[int], concurrency: int | None = None) -> float:
        """Latency of one parallel round of requests.

        Requests are issued in waves of at most ``concurrency``; the round
        finishes when the slowest wave finishes. Aggregate-bandwidth and
        per-prefix-RPS floors are then applied, since neither can be
        beaten by adding connections.
        """
        if not sizes:
            return 0.0
        cap = self.max_concurrency if concurrency is None else max(1, concurrency)
        waves = -(-len(sizes) // cap)  # ceil division
        slowest = max(sizes)
        wave_latency = self.request_latency(slowest)
        latency = waves * wave_latency
        bandwidth_floor = sum(sizes) / self.instance_bandwidth_bps
        rps_floor = len(sizes) / self.prefix_get_rps
        return max(latency, bandwidth_floor, rps_floor)

    def trace_latency(
        self, trace: RequestTrace, concurrency: int | None = None
    ) -> float:
        """Estimated wall-clock latency of an entire dependency trace."""
        total = 0.0
        for round_ in trace.rounds:
            if not round_:
                continue
            lists = [r for r in round_ if r.op == "LIST"]
            others = [r for r in round_ if r.op != "LIST"]
            round_total = self.round_latency(
                [r.nbytes for r in others], concurrency=concurrency
            )
            # LIST pages are sequential per listing; approximate with one
            # page per recorded LIST request.
            round_total += len(lists) * self.list_latency_s
            total += round_total
        return total

    def scan_latency(self, nbytes: int, workers: int = 1) -> float:
        """Time for ``workers`` instances to cooperatively stream
        ``nbytes`` from object storage at full width (used by the
        brute-force engine's IO phase)."""
        if nbytes <= 0:
            return 0.0
        per_worker = nbytes / max(1, workers)
        return self.first_byte_s + per_worker / self.instance_bandwidth_bps


def single_request(op: str, key: str, nbytes: int) -> RequestTrace:
    """Convenience: a trace containing exactly one request."""
    trace = RequestTrace()
    trace.record(Request(op=op, key=key, nbytes=nbytes))
    return trace

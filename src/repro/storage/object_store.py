"""Object store substrate.

A minimal S3-like store offering exactly the primitives Rottnest's
protocol assumes (paper §III, §IV):

* strong read-after-write consistency (a PUT is immediately visible),
* byte-range GETs,
* LIST by prefix,
* object modification timestamps from a single global clock, and
* conditional PUT (``if-none-match``), used by the transaction logs of
  the data lake and the metadata table to get atomic commits. (S3
  supports this natively since late 2024; before that, DynamoDB played
  the same role for Delta Lake. Either way it is a commodity primitive.)

There is deliberately *no* atomic rename: the paper's protocol is
designed to work without one (unlike Hyperspace), and this store keeps
that constraint honest.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import InvalidByteRange, ObjectNotFound, PreconditionFailed
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.storage.stats import IOStats, Request, RequestTrace
from repro.util.clock import Clock, SimClock

_REQUESTS = get_registry().counter(
    "store_requests_total", "Object-store requests by operation", ("op",)
)
_BYTES = get_registry().counter(
    "store_bytes_total", "Object-store payload bytes by direction", ("direction",)
)


@dataclass(frozen=True)
class ObjectInfo:
    """Metadata for one stored object."""

    key: str
    size: int
    mtime: float  # seconds, per the store's global clock


class ObjectStore(ABC):
    """Interface all stores implement.

    Concrete stores call :meth:`_record` on every operation so IO stats
    and request traces are maintained uniformly.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        """Bind a clock (``SimClock`` default) and fresh IO accounting."""
        self.clock: Clock = clock if clock is not None else SimClock()
        self.stats = IOStats()
        self._trace_tls = threading.local()
        self._lock = threading.RLock()

    # -- tracing -----------------------------------------------------
    # Traces are *per thread*: each worker of the serve executor records
    # its own dependency structure, and the executor merges the worker
    # traces with ``merge_parallel`` — concurrent searches through one
    # store never interleave their rounds.
    @property
    def _trace(self) -> RequestTrace | None:
        return getattr(self._trace_tls, "trace", None)

    @_trace.setter
    def _trace(self, value: RequestTrace | None) -> None:
        self._trace_tls.trace = value

    def start_trace(self) -> RequestTrace:
        """Begin recording a dependency trace on the calling thread;
        returns the live trace."""
        self._trace = RequestTrace()
        return self._trace

    def stop_trace(self) -> RequestTrace:
        """Stop recording on the calling thread; returns the trace."""
        if self._trace is None:
            raise RuntimeError("no trace in progress")
        trace, self._trace = self._trace, None
        return trace

    def barrier(self) -> None:
        """Mark a dependency point in the current trace (no-op if none)."""
        trace = self._trace
        if trace is not None:
            trace.barrier()

    def _record(self, op: str, key: str, nbytes: int) -> None:
        request = Request(op=op, key=key, nbytes=nbytes)
        self.stats.record(request)
        trace = self._trace
        if trace is not None:
            trace.record(request)
        _REQUESTS.inc(op=op)
        if nbytes:
            if op == "GET":
                _BYTES.inc(nbytes, direction="read")
            elif op == "PUT":
                _BYTES.inc(nbytes, direction="write")
        get_tracer().record_event(op, key, nbytes)

    # -- operations ---------------------------------------------------
    @abstractmethod
    def put(self, key: str, data: bytes, *, if_none_match: bool = False) -> ObjectInfo:
        """Store ``data`` under ``key``.

        With ``if_none_match=True`` the put fails with
        :class:`PreconditionFailed` if the key already exists — the
        compare-and-swap both transaction logs are built on.
        """

    @abstractmethod
    def get(self, key: str, byte_range: tuple[int, int] | None = None) -> bytes:
        """Fetch an object, or ``byte_range=(offset, length)`` of it."""

    @abstractmethod
    def head(self, key: str) -> ObjectInfo:
        """Metadata for one object."""

    @abstractmethod
    def list(self, prefix: str = "") -> list[ObjectInfo]:
        """All objects whose key starts with ``prefix``, sorted by key."""

    @abstractmethod
    def delete(self, key: str) -> None:
        """Remove an object; deleting a missing key is a no-op (S3-like)."""

    def exists(self, key: str) -> bool:
        """Whether ``key`` exists, via a (billed) HEAD."""
        try:
            self.head(key)
            return True
        except ObjectNotFound:
            return False

    def get_many(
        self,
        requests,
        *,
        gap_threshold: int | None = None,
        budget=None,
        return_exceptions: bool = False,
    ) -> list[bytes]:
        """Batched ranged reads through the coalescing scheduler.

        ``requests`` is a sequence of :class:`repro.storage.sched.
        RangeRequest`; the scheduler sorts per-key ranges, merges those
        closer than ``gap_threshold`` bytes into one GET, and slices
        the merged payloads back out — byte-identical to issuing each
        range as its own :meth:`get`, but with fewer wire requests. The
        default implementation dispatches every merged request through
        ``self.get``, so subclasses and wrappers (faults, retries,
        caching) compose without overriding anything; stores that can
        serve parts of the plan themselves (the caching store) override
        this to coalesce only what they must fetch.

        See :mod:`repro.storage.sched` for the planning rules and the
        waste-byte accounting contract.
        """
        from repro.storage import sched

        return sched.get_many(
            self,
            requests,
            gap_threshold=(
                sched.DEFAULT_GAP_THRESHOLD
                if gap_threshold is None
                else gap_threshold
            ),
            budget=budget,
            return_exceptions=return_exceptions,
        )


class InMemoryObjectStore(ObjectStore):
    """Dict-backed store with S3 semantics; the default substrate.

    Thread-safe; timestamps come from the store's clock so the vacuum
    timeout logic is deterministic under :class:`SimClock`.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        """Start empty; all state lives in one dict under the store lock."""
        super().__init__(clock)
        self._objects: dict[str, tuple[bytes, float]] = {}

    def put(self, key: str, data: bytes, *, if_none_match: bool = False) -> ObjectInfo:
        """Store a copy of ``data``; conditional PUT fails if key exists."""
        if not key:
            raise ValueError("empty key")
        with self._lock:
            if if_none_match and key in self._objects:
                # A failed conditional PUT is still a billed request.
                self._record("PUT", key, 0)
                raise PreconditionFailed(key)
            mtime = self.clock.now()
            self._objects[key] = (bytes(data), mtime)
            self._record("PUT", key, len(data))
            return ObjectInfo(key=key, size=len(data), mtime=mtime)

    def get(self, key: str, byte_range: tuple[int, int] | None = None) -> bytes:
        """Return the object (or an in-bounds byte range of it)."""
        with self._lock:
            try:
                data, _ = self._objects[key]
            except KeyError:
                raise ObjectNotFound(key) from None
            if byte_range is None:
                self._record("GET", key, len(data))
                return data
            offset, length = byte_range
            if offset < 0 or length < 0 or offset + length > len(data):
                raise InvalidByteRange(
                    f"range ({offset}, {length}) outside object {key!r} "
                    f"of size {len(data)}"
                )
            self._record("GET", key, length)
            return data[offset : offset + length]

    def head(self, key: str) -> ObjectInfo:
        """Size/mtime metadata without reading payload bytes."""
        with self._lock:
            try:
                data, mtime = self._objects[key]
            except KeyError:
                raise ObjectNotFound(key) from None
            self._record("HEAD", key, 0)
            return ObjectInfo(key=key, size=len(data), mtime=mtime)

    def list(self, prefix: str = "") -> list[ObjectInfo]:
        """Key-sorted objects under ``prefix`` (one billed LIST)."""
        with self._lock:
            self._record("LIST", prefix, 0)
            return [
                ObjectInfo(key=k, size=len(d), mtime=m)
                for k, (d, m) in sorted(self._objects.items())
                if k.startswith(prefix)
            ]

    def delete(self, key: str) -> None:
        """Drop the object; missing keys are silently ignored (S3-like)."""
        with self._lock:
            self._record("DELETE", key, 0)
            self._objects.pop(key, None)

    # -- test/introspection helpers ----------------------------------
    def clone(self) -> "InMemoryObjectStore":
        """Independent copy of the current contents (not billed).

        The clone gets its own :class:`SimClock` frozen at this store's
        current time (a shared clock otherwise lets one timeline's
        advances leak into another), its own stats, and no traces. The
        chaos harness uses clones to replay one maintenance run many
        times, crashing it at a different mutation boundary each time.
        """
        with self._lock:
            other = InMemoryObjectStore(clock=SimClock(start=self.clock.now()))
            other._objects = dict(self._objects)
            return other

    def dump(self) -> dict[str, bytes]:
        """Full ``{key: bytes}`` image of the store (not billed).

        Timestamps are deliberately excluded: two protocol histories
        are considered equivalent when they leave the same objects with
        the same bytes, regardless of when each landed.
        """
        with self._lock:
            return {k: d for k, (d, _) in self._objects.items()}

    def keys(self) -> list[str]:
        """All keys currently stored (not a billed operation)."""
        with self._lock:
            return sorted(self._objects)

    def total_bytes(self, prefix: str = "") -> int:
        """Total stored bytes under ``prefix`` (not a billed operation)."""
        with self._lock:
            return sum(
                len(d) for k, (d, _) in self._objects.items() if k.startswith(prefix)
            )

"""Batched & coalescing I/O scheduler for the hot read path.

The paper's economics (§VI; Airphant makes the identical argument for
cloud-oriented indexing) are *request*-dominated, not bandwidth-
dominated: an object-store GET costs a fixed per-request fee plus
~30 ms of first-byte latency, while the marginal byte is nearly free.
A search touches many small byte ranges — page-table slices, index
components, data pages — and issuing each as its own blocking
``ObjectStore.get`` pays the per-request price every time.

This module is the single planning/dispatch point for batched reads:

* :func:`plan_reads` sorts per-key byte ranges and coalesces ranges
  whose gap is at most ``gap_threshold`` bytes into one
  :class:`MergedGet`, tracking exactly which original request maps to
  which slice of the merged payload.
* :func:`execute_plan` dispatches the merged GETs through a plain
  ``store.get``, so *every* store in the stack composes for free:
  fault injection fires per merged request, ``IOStats`` and request
  traces see the real (merged) requests, retries retry the merged
  request, and the caching store's override serves cache-hit
  sub-ranges and coalesces only the misses.

Accounting contract (keeps ``repro profile`` reconciliation honest):
the merged GET is recorded **once**, with its merged byte count, in
``IOStats`` and the per-thread trace — exactly what the wire would
carry. The gap ("waste") bytes a coalesced GET reads but no caller
asked for are billed explicitly to the process-wide
``io_coalesced_waste_bytes_total`` counter, never double-counted into
``IOStats``, so attribution still reconciles exactly against stats
deltas by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.obs.metrics import get_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.object_store import ObjectStore
    from repro.storage.pool import IOBudget

#: Ranges closer than this many bytes merge into one GET by default.
#: Small relative to a data page (~2-64 KiB here, row-group sized in
#: real lakes) but large enough to fuse the adjacent-page common case
#: (delta-encoded page tables make neighbours exactly contiguous).
DEFAULT_GAP_THRESHOLD = 4096

_MERGED_GETS = get_registry().counter(
    "io_merged_gets_total",
    "Coalesced GETs dispatched by the batch scheduler",
)
_COALESCED_SUBRANGES = get_registry().counter(
    "io_coalesced_subranges_total",
    "Caller byte-ranges served through a coalesced GET",
)
_WASTE_BYTES = get_registry().counter(
    "io_coalesced_waste_bytes_total",
    "Gap bytes fetched by coalesced GETs that no caller asked for",
)


@dataclass(frozen=True)
class RangeRequest:
    """One caller-visible byte range: ``length`` bytes at ``offset``."""

    key: str
    offset: int
    length: int

    def __post_init__(self) -> None:
        """Reject negative offsets/lengths at plan time, not GET time."""
        if self.offset < 0 or self.length < 0:
            raise ValueError(
                f"invalid range ({self.offset}, {self.length}) for {self.key!r}"
            )

    @property
    def end(self) -> int:
        """Exclusive end offset of the range."""
        return self.offset + self.length


@dataclass(frozen=True)
class MergedGet:
    """One wire request covering one or more :class:`RangeRequest`s.

    ``parts`` keeps ``(original_index, request)`` pairs so the merged
    payload can be sliced back out byte-identically and in the caller's
    order; ``waste`` is the number of gap bytes fetched that belong to
    no part (coalescing overhead, billed to
    ``io_coalesced_waste_bytes_total`` at dispatch).
    """

    key: str
    offset: int
    length: int
    parts: tuple[tuple[int, RangeRequest], ...]
    waste: int

    @property
    def end(self) -> int:
        """Exclusive end offset of the merged range."""
        return self.offset + self.length

    def slice(self, index: int, data: bytes) -> bytes:
        """Cut part ``index``'s bytes out of the merged payload."""
        _, request = self.parts[index]
        start = request.offset - self.offset
        return data[start : start + request.length]


def plan_reads(
    requests: Sequence[RangeRequest],
    gap_threshold: int = DEFAULT_GAP_THRESHOLD,
) -> list[MergedGet]:
    """Sort per-key ranges and coalesce near-adjacent ones.

    Pure planning — no I/O. Requests on the same key whose gap is at
    most ``gap_threshold`` bytes (overlapping and exactly-adjacent
    ranges always qualify) merge into one :class:`MergedGet`; requests
    on different keys never merge. The plan is deterministic: keys in
    first-appearance order, parts sorted by ``(offset, length,
    original index)``.
    """
    if gap_threshold < 0:
        raise ValueError(f"negative gap_threshold {gap_threshold}")
    by_key: dict[str, list[tuple[int, RangeRequest]]] = {}
    for index, request in enumerate(requests):
        by_key.setdefault(request.key, []).append((index, request))

    plan: list[MergedGet] = []
    for key, group in by_key.items():
        group.sort(key=lambda item: (item[1].offset, item[1].length, item[0]))
        run: list[tuple[int, RangeRequest]] = []
        start = end = covered = 0

        def flush() -> None:
            """Close the current run into a :class:`MergedGet`."""
            if run:
                plan.append(
                    MergedGet(
                        key=key,
                        offset=start,
                        length=end - start,
                        parts=tuple(run),
                        waste=(end - start) - covered,
                    )
                )

        for index, request in group:
            if run and request.offset <= end + gap_threshold:
                covered += max(0, request.end - max(end, request.offset))
                end = max(end, request.end)
                run.append((index, request))
            else:
                flush()
                run = [(index, request)]
                start, end = request.offset, request.end
                covered = request.length
        flush()
    return plan


def execute_plan(
    store: "ObjectStore",
    requests: Sequence[RangeRequest],
    plan: Iterable[MergedGet],
    *,
    budget: "IOBudget | None" = None,
    return_exceptions: bool = False,
) -> list[bytes]:
    """Dispatch a read plan; return payloads in original request order.

    Each :class:`MergedGet` becomes exactly one ``store.get`` (so
    stats, traces, caching, retries, and fault injection all see the
    real wire request); its payload is sliced back into per-request
    byte strings. All merged GETs live in the *same* trace round — no
    barrier is inserted — so the latency model prices them as one
    parallel wave, which is what a real batched dispatcher would do.

    ``budget`` (optional) wraps each merged GET in an
    ``IOBudget.slot()`` for cross-pool backpressure. Callers already
    *holding* a slot — executor searcher tasks — must pass ``None``:
    re-acquiring from inside the pool can deadlock when every worker
    holds a slot.

    With ``return_exceptions=True`` a failed merged GET does not raise;
    instead the exception object is returned for **all and only** its
    constituent sub-ranges (the fault really does fail the whole wire
    request), and unrelated merged GETs still complete.
    """
    results: list[object] = [None] * len(requests)
    first_error: BaseException | None = None
    for merged in plan:
        _MERGED_GETS.inc()
        _COALESCED_SUBRANGES.inc(len(merged.parts))
        if merged.waste:
            _WASTE_BYTES.inc(merged.waste)
        try:
            if budget is not None:
                with budget.slot():
                    data = store.get(merged.key, (merged.offset, merged.length))
            else:
                data = store.get(merged.key, (merged.offset, merged.length))
        except Exception as exc:
            if not return_exceptions:
                raise
            if first_error is None:
                first_error = exc
            for index, _ in merged.parts:
                results[index] = exc
            continue
        for position, (index, _) in enumerate(merged.parts):
            results[index] = merged.slice(position, data)
    return results  # type: ignore[return-value]


def get_many(
    store: "ObjectStore",
    requests: Sequence[RangeRequest],
    *,
    gap_threshold: int = DEFAULT_GAP_THRESHOLD,
    budget: "IOBudget | None" = None,
    return_exceptions: bool = False,
) -> list[bytes]:
    """Plan + dispatch in one call (the default ``ObjectStore.get_many``).

    Returns one ``bytes`` per request, in request order, byte-identical
    to issuing each range as its own ``store.get`` — coalescing only
    changes *how many wire requests* carry them.
    """
    plan = plan_reads(requests, gap_threshold)
    return execute_plan(
        store,
        requests,
        plan,
        budget=budget,
        return_exceptions=return_exceptions,
    )

"""Vector embedding workload.

Stands in for SIFT-1B: a Gaussian mixture in 128 dimensions (configurable)
whose clusterability drives IVF-PQ recall the same way real descriptor
datasets do. Ground-truth exact k-NN is provided for recall measurement.
"""

from __future__ import annotations

import numpy as np


class VectorWorkload:
    """Deterministic clustered vector generator."""

    def __init__(
        self,
        dim: int = 128,
        n_clusters: int = 64,
        cluster_scale: float = 5.0,
        noise_scale: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.dim = dim
        self.noise_scale = noise_scale
        self.rng = np.random.default_rng(seed)
        self.centers = self.rng.normal(
            scale=cluster_scale, size=(n_clusters, dim)
        ).astype(np.float32)

    def batch(self, count: int) -> np.ndarray:
        """``count`` vectors drawn around random cluster centers."""
        labels = self.rng.integers(len(self.centers), size=count)
        noise = self.rng.normal(scale=self.noise_scale, size=(count, self.dim))
        return (self.centers[labels] + noise).astype(np.float32)

    def queries(self, count: int) -> np.ndarray:
        """Query vectors from the same distribution."""
        return self.batch(count)


def exact_knn(vectors: np.ndarray, query: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` nearest rows of ``vectors`` to ``query``."""
    diffs = vectors - np.asarray(query, dtype=np.float32)
    distances = np.einsum("ij,ij->i", diffs, diffs)
    if k >= len(distances):
        return np.argsort(distances)
    part = np.argpartition(distances, k)[:k]
    return part[np.argsort(distances[part])]


def recall_at_k(found_rows, true_rows) -> float:
    """|found ∩ true| / |true|."""
    true_set = set(int(r) for r in true_rows)
    if not true_set:
        return 1.0
    found_set = set(int(r) for r in found_rows)
    return len(found_set & true_set) / len(true_set)

"""Synthetic workload generators standing in for the paper's datasets."""

from repro.workloads.text import TextWorkload
from repro.workloads.uuids import UuidWorkload, uuid_key
from repro.workloads.vectors import VectorWorkload, exact_knn, recall_at_k

__all__ = [
    "TextWorkload",
    "UuidWorkload",
    "uuid_key",
    "VectorWorkload",
    "exact_knn",
    "recall_at_k",
]

"""Synthetic web-crawl-like text corpus.

Stands in for the paper's C4/FineWeb slice (0.8 T characters is not
shippable offline). What matters for the substring-search experiments is
preserved: a Zipfian vocabulary (so compression ratios and FM-index
sizes behave like natural text), document lengths spread over an order
of magnitude, and queries drawn from the corpus itself (hits) or
perturbed (misses).
"""

from __future__ import annotations

import numpy as np

CONSONANTS = "bcdfghjklmnpqrstvwz"
VOWELS = "aeiou"


def _make_vocabulary(size: int, rng: np.random.Generator) -> list[str]:
    """Pronounceable pseudo-words, deterministic per seed."""
    words = set()
    while len(words) < size:
        syllables = int(rng.integers(1, 5))
        word = "".join(
            CONSONANTS[rng.integers(len(CONSONANTS))]
            + VOWELS[rng.integers(len(VOWELS))]
            for _ in range(syllables)
        )
        words.add(word)
    return sorted(words)


class TextWorkload:
    """Deterministic generator of documents and substring queries."""

    def __init__(
        self,
        seed: int = 0,
        vocabulary_size: int = 4000,
        zipf_exponent: float = 1.3,
    ) -> None:
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.vocabulary = _make_vocabulary(vocabulary_size, self.rng)
        ranks = np.arange(1, vocabulary_size + 1, dtype=np.float64)
        weights = ranks**-zipf_exponent
        self._probs = weights / weights.sum()

    def _words(self, count: int) -> list[str]:
        idx = self.rng.choice(len(self.vocabulary), size=count, p=self._probs)
        return [self.vocabulary[i] for i in idx]

    def document(self, target_chars: int) -> str:
        """One document of roughly ``target_chars`` characters."""
        words: list[str] = []
        length = 0
        while length < target_chars:
            sentence = self._words(int(self.rng.integers(5, 15)))
            sentence[0] = sentence[0].capitalize()
            text = " ".join(sentence) + "."
            words.append(text)
            length += len(text) + 1
        return " ".join(words)

    def documents(self, count: int, avg_chars: int = 400) -> list[str]:
        """``count`` documents, lengths lognormally spread around the
        average (web documents are heavy-tailed)."""
        sizes = self.rng.lognormal(mean=np.log(avg_chars), sigma=0.6, size=count)
        return [self.document(max(40, int(s))) for s in sizes]

    def present_queries(
        self, documents: list[str], count: int, length: int = 12
    ) -> list[str]:
        """Substrings sampled from real documents (guaranteed hits)."""
        queries = []
        for _ in range(count):
            doc = documents[int(self.rng.integers(len(documents)))]
            if len(doc) <= length:
                queries.append(doc)
                continue
            start = int(self.rng.integers(len(doc) - length))
            queries.append(doc[start : start + length])
        return queries

    def absent_queries(self, count: int, length: int = 12) -> list[str]:
        """Random strings that almost surely miss (uppercase + digits
        never appear mid-word in generated text)."""
        alphabet = "QXZ0123456789"
        return [
            "".join(
                alphabet[int(self.rng.integers(len(alphabet)))]
                for _ in range(length)
            )
            for _ in range(count)
        ]

"""High-cardinality identifier workload.

Stands in for the paper's 2 billion 128-byte hashes (observability /
blockchain style lookups). Deterministic SHA-256-derived keys; "present"
queries pick keys that exist, "absent" queries are fresh hashes from a
disjoint namespace.
"""

from __future__ import annotations

import hashlib

import numpy as np


def uuid_key(namespace: str, i: int, nbytes: int = 16) -> bytes:
    """Deterministic pseudo-UUID ``i`` of ``namespace``.

    Widths beyond one SHA-256 digest (32 bytes) are built by
    concatenating counter-salted digests, so the paper's 128-byte
    hashes are supported.
    """
    out = bytearray()
    counter = 0
    while len(out) < nbytes:
        out += hashlib.sha256(
            f"{namespace}:{i}:{counter}".encode("utf-8")
        ).digest()
        counter += 1
    return bytes(out[:nbytes])


class UuidWorkload:
    """Generator of identifier batches and lookup queries."""

    def __init__(self, seed: int = 0, nbytes: int = 16) -> None:
        self.seed = seed
        self.nbytes = nbytes
        self.rng = np.random.default_rng(seed)
        self._generated = 0

    def batch(self, count: int) -> list[bytes]:
        """Next ``count`` unique keys (across all batches)."""
        start = self._generated
        self._generated += count
        return [
            uuid_key(f"ns{self.seed}", i, self.nbytes)
            for i in range(start, start + count)
        ]

    @property
    def total_generated(self) -> int:
        return self._generated

    def present_queries(self, count: int) -> list[bytes]:
        """Keys guaranteed to have been generated already."""
        if self._generated == 0:
            raise ValueError("no keys generated yet")
        picks = self.rng.integers(self._generated, size=count)
        return [uuid_key(f"ns{self.seed}", int(i), self.nbytes) for i in picks]

    def absent_queries(self, count: int) -> list[bytes]:
        """Keys from a namespace that is never inserted."""
        picks = self.rng.integers(1 << 40, size=count)
        return [
            uuid_key(f"absent{self.seed}", int(i), self.nbytes) for i in picks
        ]

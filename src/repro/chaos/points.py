"""Canonical names for every crash point of the maintenance protocol.

A *crash point* is a mutation boundary: the client performed one PUT or
DELETE and died before doing anything else. The protocol's §IV-D
correctness argument is exactly a case analysis over these boundaries,
so they get stable, documented identifiers:

* the crash matrix in ``docs/protocol.md`` walks the same names
  (a unit test keeps the two sets equal, one-to-one);
* the fuzzer reports which points each run covered, so "every crash
  point exercised" is a checkable claim, not a vibe.

``search`` has no crash points — it never mutates — which is itself a
protocol property worth stating.
"""

from __future__ import annotations

from repro.core.client import INDEX_FILES_DIR
from repro.meta.metadata_table import CHECKPOINT_DIR, META_LOG_DIR

#: Every crash point the protocol can reach, with the §IV-D argument
#: for why the invariants survive it. Keys are ``verb:boundary``.
CRASH_POINTS: dict[str, str] = {
    "index:put-index-file": (
        "Index file uploaded, metadata commit never happened. The file "
        "is an invisible orphan (searches plan from metadata only); "
        "vacuum removes it once older than the index timeout."
    ),
    "index:put-meta-commit": (
        "Metadata commit landed; the index is fully live. The dead "
        "client's remaining work was only returning to its caller."
    ),
    "index:put-meta-checkpoint": (
        "Commit landed, checkpoint upload interrupted. Checkpoints are "
        "a pure read optimization: readers replay the log tail from an "
        "older checkpoint (or from scratch) and see identical state."
    ),
    "compact:put-merged-index": (
        "A merged index file uploaded, commit never happened. Same "
        "orphan story as index:put-index-file — and because merged "
        "keys are content-addressed, the re-run overwrites the same "
        "key with the same bytes instead of stacking orphans. The "
        "parallel compactor reaches this same boundary from worker "
        "threads: sibling uploads in flight at the crash land as "
        "orphans at the keys the recovery re-uploads anyway."
    ),
    "compact:put-meta-commit": (
        "Merged records committed; old records stay until vacuum, "
        "exactly as in an uninterrupted run. A re-run finds the small "
        "files subsumed by the newer merged index and no-ops."
    ),
    "compact:put-meta-checkpoint": (
        "Commit landed, checkpoint interrupted — harmless read "
        "optimization, as with index:put-meta-checkpoint."
    ),
    "vacuum:put-meta-commit": (
        "Record deletions committed, physical deletions never started. "
        "Metadata shrank first, so M ⊆ B still holds; the lingering "
        "files are unreferenced and a later vacuum removes them."
    ),
    "vacuum:put-meta-checkpoint": (
        "Deletion commit landed, checkpoint interrupted — harmless "
        "read optimization."
    ),
    "vacuum:delete-index-file": (
        "Crashed partway through physical deletions. Every deleted "
        "file was already unreferenced (the commit came first), so "
        "Existence never observes a dangling reference; a later "
        "vacuum finishes the remainder (deleting a missing key is an "
        "S3 no-op)."
    ),
}

#: Maintenance verbs that mutate the store (search never does).
MUTATING_VERBS = ("index", "compact", "vacuum")


def classify_crash_point(verb: str, op: str, key: str) -> str:
    """Map a crash observed during ``verb`` to its canonical name.

    ``op``/``key`` come straight off the
    :class:`~repro.errors.SimulatedCrash`. Unrecognized combinations
    return a ``verb:unclassified-…`` name that is deliberately *not*
    in :data:`CRASH_POINTS` — the fuzzer treats those as findings,
    because a mutation boundary nobody enumerated is exactly the kind
    of hole this harness exists to catch.
    """
    op = op.upper()
    if op == "DELETE" and f"/{INDEX_FILES_DIR}/" in key:
        name = f"{verb}:delete-index-file"
    elif op == "PUT" and f"/{CHECKPOINT_DIR}/" in key:
        name = f"{verb}:put-meta-checkpoint"
    elif op == "PUT" and f"/{META_LOG_DIR}/" in key:
        name = f"{verb}:put-meta-commit"
    elif op == "PUT" and f"/{INDEX_FILES_DIR}/" in key:
        name = (
            "compact:put-merged-index"
            if verb == "compact"
            else f"{verb}:put-index-file"
        )
    else:
        name = f"{verb}:unclassified-{op.lower()}"
    return name

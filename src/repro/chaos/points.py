"""Canonical names for every crash point of the maintenance protocol.

A *crash point* is a mutation boundary: the client performed one PUT or
DELETE and died before doing anything else. The protocol's §IV-D
correctness argument is exactly a case analysis over these boundaries,
so they get stable, documented identifiers:

* the crash matrix in ``docs/protocol.md`` walks the same names
  (a unit test keeps the two sets equal, one-to-one);
* the fuzzer reports which points each run covered, so "every crash
  point exercised" is a checkable claim, not a vibe.

``search`` has no crash points — it never mutates — which is itself a
protocol property worth stating.
"""

from __future__ import annotations

from repro.core.client import INDEX_FILES_DIR
from repro.ingest.wal import WAL_DIR
from repro.lake.log import CHECKPOINT_DIR as LAKE_CHECKPOINT_DIR
from repro.lake.log import LOG_DIR as LAKE_LOG_DIR
from repro.lake.table import DATA_DIR
from repro.meta.metadata_table import CHECKPOINT_DIR, META_LOG_DIR
from repro.obs.flight import FLIGHT_DIR
from repro.obs.store import SNAPSHOT_DIR

#: Every crash point the protocol can reach, with the §IV-D argument
#: for why the invariants survive it. Keys are ``verb:boundary``.
CRASH_POINTS: dict[str, str] = {
    "index:put-index-file": (
        "Index file uploaded, metadata commit never happened. The file "
        "is an invisible orphan (searches plan from metadata only); "
        "vacuum removes it once older than the index timeout."
    ),
    "index:put-meta-commit": (
        "Metadata commit landed; the index is fully live. The dead "
        "client's remaining work was only returning to its caller."
    ),
    "index:put-meta-checkpoint": (
        "Commit landed, checkpoint upload interrupted. Checkpoints are "
        "a pure read optimization: readers replay the log tail from an "
        "older checkpoint (or from scratch) and see identical state."
    ),
    "compact:put-merged-index": (
        "A merged index file uploaded, commit never happened. Same "
        "orphan story as index:put-index-file — and because merged "
        "keys are content-addressed, the re-run overwrites the same "
        "key with the same bytes instead of stacking orphans. The "
        "parallel compactor reaches this same boundary from worker "
        "threads: sibling uploads in flight at the crash land as "
        "orphans at the keys the recovery re-uploads anyway."
    ),
    "compact:put-meta-commit": (
        "Merged records committed; old records stay until vacuum, "
        "exactly as in an uninterrupted run. A re-run finds the small "
        "files subsumed by the newer merged index and no-ops."
    ),
    "compact:put-meta-checkpoint": (
        "Commit landed, checkpoint interrupted — harmless read "
        "optimization, as with index:put-meta-checkpoint."
    ),
    "vacuum:put-meta-commit": (
        "Record deletions committed, physical deletions never started. "
        "Metadata shrank first, so M ⊆ B still holds; the lingering "
        "files are unreferenced and a later vacuum removes them."
    ),
    "vacuum:put-meta-checkpoint": (
        "Deletion commit landed, checkpoint interrupted — harmless "
        "read optimization."
    ),
    "vacuum:delete-index-file": (
        "Crashed partway through physical deletions. Every deleted "
        "file was already unreferenced (the commit came first), so "
        "Existence never observes a dangling reference; a later "
        "vacuum finishes the remainder (deleting a missing key is an "
        "S3 no-op)."
    ),
    "ingest:put-wal-frame": (
        "The WAL segment PUT is the ingest durability point: if the "
        "frame landed, recovery replays it into a memtable and the "
        "rows are searchable; if it never landed, the writer never "
        "got an ack and the batch simply does not exist. Either way "
        "the fresh tier converges to exactly the durable segments."
    ),
    "drain:put-seal-marker": (
        "A seal marker landed but the flush never happened. Seals "
        "are advisory — drain recomputes the pending set from the "
        "lake's SetTransaction floor, not from seal markers — so a "
        "re-run re-seals idempotently and continues."
    ),
    "drain:put-data-file": (
        "The merged lake data file uploaded, commit never happened. "
        "The file is an invisible orphan (readers plan from the "
        "transaction log only); its key is content-addressed, so the "
        "re-run overwrites the same key with the same bytes."
    ),
    "drain:put-lake-commit": (
        "The lake commit carrying AddFile + SetTransaction landed "
        "atomically: the rows are in the lake and the ingest floor "
        "advanced in the same log entry, so the fresh tier stops "
        "reporting them the moment the lazy tier starts. The re-run "
        "sees app_version already recorded and skips the flush."
    ),
    "drain:put-lake-checkpoint": (
        "Commit landed, lake checkpoint upload interrupted. Pure "
        "read optimization: readers replay the log tail; the re-run "
        "re-attempts the same due checkpoint and converges."
    ),
    "drain:delete-wal-frame": (
        "Crashed partway through WAL truncation. Every segment being "
        "deleted is at-or-below the committed floor, so the fresh "
        "view (strictly above the floor) never included them; the "
        "re-run finishes the remaining deletes (missing-key DELETE "
        "is an S3 no-op)."
    ),
    "drain:put-index-file": (
        "Drain's optional index stage died after uploading an index "
        "file. Same orphan story as index:put-index-file — the drain "
        "re-run replays the index stage and vacuum collects strays."
    ),
    "drain:put-meta-commit": (
        "The index stage's metadata commit landed; the new index is "
        "live. A re-run finds the files already covered and no-ops."
    ),
    "drain:put-meta-checkpoint": (
        "Index-stage commit landed, metadata checkpoint interrupted "
        "— harmless read optimization, as everywhere else."
    ),
    "crack:put-index-file": (
        "The cracking controller died after uploading a targeted or "
        "refined index file, before the metadata commit. Same orphan "
        "story as index:put-index-file — and both uploads are "
        "content-addressed, so the recovery tick (planning from the "
        "same heat map over unchanged metadata) re-uploads the same "
        "bytes at the same key instead of stacking orphans."
    ),
    "crack:put-meta-commit": (
        "The targeted-index or refinement commit landed; the new "
        "record is live. A recovery tick re-plans and no-ops: the "
        "hot files are now covered, and a refined file supersedes "
        "its source in the newest-first cover, so neither verb is "
        "proposed again."
    ),
    "crack:put-meta-checkpoint": (
        "Commit landed, metadata checkpoint interrupted — harmless "
        "read optimization, as everywhere else."
    ),
    "obs:put-flight": (
        "The flight recorder died after uploading a retained trace, "
        "before persisting the rest. Flight traces are independent, "
        "content-addressed objects carrying no references — the lake "
        "invariants never mention them — so a partial persist leaves a "
        "valid (smaller) retained set. The recovery re-run skips keys "
        "that already exist and uploads the remainder: convergence is "
        "byte-identical and a clean re-run makes zero mutations."
    ),
    "obs:put-snapshot": (
        "A telemetry snapshot commit died mid-PUT (the object store "
        "makes the PUT itself atomic, so 'mid' means before the key "
        "became durable). Snapshots are self-contained immutable "
        "payloads keyed by their own content hash: a re-committed "
        "identical plane hits the same key with the same bytes and "
        "no-ops; readers folding the snapshot set never observe a "
        "torn or duplicated entry."
    ),
}

#: Verbs that mutate the store (search never does). ``index`` /
#: ``compact`` / ``vacuum`` are the maintenance protocol; ``ingest``
#: and ``drain`` are the real-time tier's write path; ``crack`` is the
#: query-adaptive controller's tick (targeted index + cell refinement);
#: ``obs`` is the telemetry plane's durability path (flight-trace
#: persistence + snapshot commits).
MUTATING_VERBS = ("index", "compact", "vacuum", "ingest", "drain", "crack", "obs")


def classify_crash_point(verb: str, op: str, key: str) -> str:
    """Map a crash observed during ``verb`` to its canonical name.

    ``op``/``key`` come straight off the
    :class:`~repro.errors.SimulatedCrash`. Unrecognized combinations
    return a ``verb:unclassified-…`` name that is deliberately *not*
    in :data:`CRASH_POINTS` — the fuzzer treats those as findings,
    because a mutation boundary nobody enumerated is exactly the kind
    of hole this harness exists to catch.
    """
    op = op.upper()
    if op == "DELETE" and f"/{INDEX_FILES_DIR}/" in key:
        name = f"{verb}:delete-index-file"
    elif op == "PUT" and f"/{CHECKPOINT_DIR}/" in key:
        name = f"{verb}:put-meta-checkpoint"
    elif op == "PUT" and f"/{META_LOG_DIR}/" in key:
        name = f"{verb}:put-meta-commit"
    elif op == "PUT" and f"/{INDEX_FILES_DIR}/" in key:
        name = (
            "compact:put-merged-index"
            if verb == "compact"
            else f"{verb}:put-index-file"
        )
    elif op == "PUT" and f"/{WAL_DIR}/" in key and key.endswith(".seal"):
        name = f"{verb}:put-seal-marker"
    elif op == "PUT" and f"/{WAL_DIR}/" in key:
        name = f"{verb}:put-wal-frame"
    elif op == "DELETE" and f"/{WAL_DIR}/" in key:
        name = f"{verb}:delete-wal-frame"
    elif op == "PUT" and f"/{LAKE_LOG_DIR}/" in key:
        name = f"{verb}:put-lake-commit"
    elif op == "PUT" and f"/{LAKE_CHECKPOINT_DIR}/" in key:
        name = f"{verb}:put-lake-checkpoint"
    elif op == "PUT" and f"/{DATA_DIR}/" in key:
        name = f"{verb}:put-data-file"
    elif op == "PUT" and f"/{FLIGHT_DIR}/" in key:
        name = f"{verb}:put-flight"
    elif op == "PUT" and f"/{SNAPSHOT_DIR}/" in key:
        name = f"{verb}:put-snapshot"
    else:
        name = f"{verb}:unclassified-{op.lower()}"
    return name

"""repro.chaos — crash-fault chaos harness for the maintenance protocol.

Three layers:

* :mod:`repro.chaos.points` — the canonical registry of crash points
  (mutation boundaries) with their §IV-D safety arguments; kept
  one-to-one with the crash matrix in ``docs/protocol.md``.
* :mod:`repro.chaos.harness` — the systematic instrument:
  :func:`~repro.chaos.harness.crash_matrix` crashes one operation after
  *every* mutation, audits invariants, and proves fresh-client recovery
  converges on the uninterrupted state.
* :mod:`repro.chaos.fuzzer` — the randomized instrument:
  :class:`~repro.chaos.fuzzer.ProtocolFuzzer` interleaves the whole
  protocol across simulated clients with seeded crash injection and an
  exact search oracle. Exposed as the ``repro chaos`` CLI subcommand.
"""

from repro.chaos.fuzzer import (
    ChaosConfig,
    ChaosReport,
    ChaosViolation,
    ProtocolFuzzer,
    run_chaos,
)
from repro.chaos.harness import CrashMatrix, CrashOutcome, crash_matrix
from repro.chaos.points import CRASH_POINTS, MUTATING_VERBS, classify_crash_point

__all__ = [
    "CRASH_POINTS",
    "MUTATING_VERBS",
    "ChaosConfig",
    "ChaosReport",
    "ChaosViolation",
    "CrashMatrix",
    "CrashOutcome",
    "ProtocolFuzzer",
    "classify_crash_point",
    "crash_matrix",
    "run_chaos",
]

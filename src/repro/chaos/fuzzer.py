"""Randomized crash-fault fuzzer for the whole maintenance protocol.

One :class:`ProtocolFuzzer` run is a seeded, fully deterministic
history: simulated clients interleave ``append`` / ``ingest`` /
``index`` / ``search`` / ``compact`` / ``vacuum`` / ``drain`` against
one in-memory lake (plus its real-time ingest tier), and
with configurable probability each mutating operation's client is
killed right after one of its object-store mutations
(:class:`~repro.errors.SimulatedCrash`). After every crash the
Existence/Consistency invariants are audited from a fresh client, the
crash point is classified against the documented registry
(:data:`~repro.chaos.points.CRASH_POINTS`), and — sometimes — a fresh
client re-runs the interrupted operation to prove recovery needs no
special tooling.

Searches are checked against an in-memory oracle of every row ever
appended, so index corruption shows up as a wrong answer, not just a
broken invariant. A :class:`~repro.serve.server.SearchServer` is also
exercised with injected index-read faults to cover the brute-force
degradation path.

Everything random flows from one ``random.Random(seed)`` (including
index-key salt, via the client's ``key_entropy`` hook) and time is a
:class:`~repro.util.clock.SimClock`, so a failing run is replayable
bit-for-bit from the seed the report prints.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.chaos.points import CRASH_POINTS, classify_crash_point
from repro.core.client import RottnestClient
from repro.core.fsck import InvariantChecker
from repro.core.maintenance import compact_indices, vacuum_indices
from repro.core.queries import SubstringQuery, UuidQuery
from repro.errors import IndexAborted, SimulatedCrash
from repro.formats.schema import ColumnType, Field, Schema
from repro.ingest import IngestDrainer, IngestTier
from repro.lake.table import LakeTable, TableConfig
from repro.maintain.pipeline import MaintenancePipeline
from repro.obs.export import render_timeline
from repro.obs.trace import Tracer, use_tracer
from repro.serve.server import SearchServer
from repro.storage.faults import FaultyObjectStore
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock

LAKE_ROOT = "lake/chaos"
INDEX_DIR = "idx/chaos"
INGEST_ROOT = "ingest/chaos"

#: Fixed word list for synthetic documents; small enough that substring
#: probes hit often, large enough that they do not hit everything.
VOCAB = tuple(f"w{i:03d}" for i in range(80))

#: (column, index type, build params) pairs the fuzzer builds/compacts.
INDEXABLE = (
    ("uuid", "uuid_trie", None),
    ("text", "fm", {"block_size": 2048, "sample_rate": 8}),
)


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs for one fuzzer run. Identical config + seed => identical run."""

    ops: int = 200
    seed: int = 0
    clients: int = 3
    crash_probability: float = 0.6  # P(arm a crash for a maintenance op)
    recover_probability: float = 0.7  # P(fresh client re-runs after crash)
    max_rows: int = 4000  # stop appending past this many oracle rows
    verify_consistency: bool = True  # full page-table audit each check


@dataclass
class ChaosViolation:
    """One observed protocol failure, with everything needed to debug it."""

    step: int
    action: str
    crash_point: str | None
    detail: str
    timeline: str  # repro.obs span timeline of the doomed operation

    def describe(self) -> str:
        """Human-readable block for the failure report."""
        head = f"step {self.step} [{self.action}]"
        if self.crash_point:
            head += f" crash point {self.crash_point}"
        return f"{head}\n{self.detail}\n-- span timeline --\n{self.timeline}"


@dataclass
class ChaosReport:
    """Outcome of one fuzzer run."""

    config: ChaosConfig
    steps: int = 0
    actions: dict = field(default_factory=dict)  # action -> count
    crashes: dict = field(default_factory=dict)  # crash point -> count
    recoveries: int = 0
    searches_checked: int = 0
    degraded_queries: int = 0
    final_invariants_ok: bool = True
    violations: list[ChaosViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Run survived: no violations and the final audit passed."""
        return not self.violations and self.final_invariants_ok

    def replay_command(self) -> str:
        """CLI line that reproduces this run bit-for-bit."""
        c = self.config
        return (
            f"repro chaos --ops {c.ops} --seed {c.seed} "
            f"--clients {c.clients} --crash-probability {c.crash_probability}"
        )

    def describe(self) -> str:
        """Full run report: coverage, crash mix, and any failures."""
        lines = [
            f"chaos run: {self.steps} step(s), seed {self.config.seed} -> "
            + ("OK" if self.ok else "FAILED"),
            "actions:   "
            + ", ".join(f"{a}={n}" for a, n in sorted(self.actions.items())),
            f"searches checked against oracle: {self.searches_checked} "
            f"({self.degraded_queries} served degraded)",
            f"crashes injected: {sum(self.crashes.values())} "
            f"({self.recoveries} recovered by a fresh client)",
        ]
        for point in sorted(self.crashes):
            marker = "" if point in CRASH_POINTS else "  <-- UNDOCUMENTED"
            lines.append(f"  {self.crashes[point]:4d} x {point}{marker}")
        unhit = sorted(set(CRASH_POINTS) - set(self.crashes))
        if unhit:
            lines.append(
                "crash points not reached this run: " + ", ".join(unhit)
            )
        if not self.final_invariants_ok:
            lines.append("FINAL INVARIANT AUDIT FAILED")
        for violation in self.violations:
            lines.append("")
            lines.append("VIOLATION: " + violation.describe())
        if not self.ok:
            lines.append("")
            lines.append(f"replay with: {self.replay_command()}")
        return "\n".join(lines)


class ProtocolFuzzer:
    """Drives one seeded chaos run; see the module docstring."""

    def __init__(self, config: ChaosConfig | None = None) -> None:
        self.config = config or ChaosConfig()
        self.rng = random.Random(self.config.seed)
        self.clock = SimClock(start=1_000_000.0)
        self.store = InMemoryObjectStore(clock=self.clock)
        self.tracer = Tracer(clock=self.clock)
        schema = Schema.of(
            Field("uuid", ColumnType.BINARY), Field("text", ColumnType.STRING)
        )
        self.lake = LakeTable.create(
            self.store,
            LAKE_ROOT,
            schema,
            TableConfig(row_group_rows=128, page_target_bytes=1024),
        )
        # Each simulated client gets its own fault-injection layer, so
        # killing one never perturbs another's view of the store.
        self.clients = [
            self._client(FaultyObjectStore(self.store))
            for _ in range(max(1, self.config.clients))
        ]
        self.server_store = FaultyObjectStore(self.store)
        self.server = SearchServer(
            self._client(self.server_store), max_searchers=2, max_inflight=2
        )
        # One canonical fresh tier over the plain store, shared by every
        # client and the server: rows acked by ``ingest`` are searchable
        # from any of them before a single index run. Crashing writers
        # get their own faulty-store *view* of the same WAL; afterwards
        # the canonical tier resyncs from durable state via recover().
        self.tier = IngestTier(self.store, INGEST_ROOT, self.lake)
        for client in self.clients:
            client.fresh_tier = self.tier
        self.server.client.fresh_tier = self.tier
        self.rows: list[tuple[bytes, str]] = []  # the search oracle
        self.report = ChaosReport(config=self.config)

    # -- construction helpers ------------------------------------------
    def _client(self, store) -> RottnestClient:
        """A protocol client whose key salt comes from the run's RNG."""
        return RottnestClient(
            store,
            INDEX_DIR,
            self.lake,
            key_entropy=lambda: self.rng.getrandbits(32).to_bytes(4, "big"),
        )

    def _fresh_client(self) -> RottnestClient:
        """A brand-new, fault-free client — the 'recovery process'."""
        return self._client(self.store)

    def _checker(self) -> InvariantChecker:
        return InvariantChecker(
            self._fresh_client(),
            verify_consistency=self.config.verify_consistency,
        )

    # -- run loop -------------------------------------------------------
    def run(self) -> ChaosReport:
        """Execute the configured number of steps and return the report.

        Stops at the first violation (the report then carries a replay
        command and the doomed operation's span timeline).
        """
        try:
            with use_tracer(self.tracer):
                for step in range(self.config.ops):
                    self.report.steps = step + 1
                    action = self._pick_action()
                    self.report.actions[action] = (
                        self.report.actions.get(action, 0) + 1
                    )
                    self._dispatch(action, step)
                    if self.report.violations:
                        break
                final = self._checker().check()
                self.report.final_invariants_ok = final.invariants_hold
                if not final.invariants_hold:
                    self._violate(
                        self.report.steps,
                        "final-audit",
                        None,
                        "invariants violated at end of run:\n"
                        + final.describe(),
                        timeline="(no single operation to blame)",
                    )
        finally:
            self.report.degraded_queries = self.server.stats.degraded
            self.server.close()
        return self.report

    def _pick_action(self) -> str:
        choices: list[str] = ["advance"]
        if len(self.rows) < self.config.max_rows:
            choices += ["append"] * 3 + ["ingest"] * 3
        if self.rows:
            choices += (
                ["index"] * 3 + ["compact"] * 2 + ["vacuum"] * 2
                + ["search"] * 4
            )
            if self._indexed():
                choices += ["degraded"]
        if self.tier.pending_seqs():
            choices += ["drain"] * 2
        return self.rng.choice(choices)

    def _indexed(self) -> bool:
        return bool(self._fresh_client().meta.records())

    def _dispatch(self, action: str, step: int) -> None:
        if action == "append":
            self._append()
        elif action == "advance":
            self.clock.advance(self.rng.choice([1.0, 30.0, 3600.0, 7200.0]))
        elif action == "index":
            column, index_type, params = self.rng.choice(INDEXABLE)
            self._maintenance(
                step,
                "index",
                lambda c: c.index(column, index_type, params=params),
            )
        elif action == "compact":
            column, index_type, _ = self.rng.choice(INDEXABLE)
            self._maintenance(
                step,
                "compact",
                lambda c: compact_indices(c, column, index_type),
            )
        elif action == "vacuum":
            snapshot_id = self.lake.latest_version()
            self._maintenance(
                step,
                "vacuum",
                lambda c: vacuum_indices(c, snapshot_id=snapshot_id),
            )
        elif action == "ingest":
            self._ingest(step)
        elif action == "drain":
            self._drain(step)
        elif action == "search":
            client = self.rng.choice(self.clients)
            self._check_search(
                step,
                "search",
                lambda col, q, k: client.search(col, q, k=k),
            )
        elif action == "degraded":
            self._degraded_search(step)

    # -- actions --------------------------------------------------------
    def _append(self) -> None:
        n = self.rng.randint(20, 60)
        uuids = [
            self.rng.getrandbits(128).to_bytes(16, "big") for _ in range(n)
        ]
        texts = [
            " ".join(
                self.rng.choice(VOCAB)
                for _ in range(self.rng.randint(4, 9))
            )
            for _ in range(n)
        ]
        self.lake.append({"uuid": uuids, "text": texts})
        self.rows.extend(zip(uuids, texts))

    def _ingest_view(self, store) -> IngestTier:
        """A tier over ``store`` sharing the canonical WAL and lake."""
        lake = LakeTable.open(store, LAKE_ROOT, self.lake.config)
        return IngestTier(store, INGEST_ROOT, lake)

    def _batch(self) -> tuple[list[bytes], list[str]]:
        n = self.rng.randint(5, 25)
        uuids = [
            self.rng.getrandbits(128).to_bytes(16, "big") for _ in range(n)
        ]
        texts = [
            " ".join(
                self.rng.choice(VOCAB)
                for _ in range(self.rng.randint(4, 9))
            )
            for _ in range(n)
        ]
        return uuids, texts

    def _ingest(self, step: int) -> None:
        """One real-time batch, possibly killing the writer at its PUT.

        The WAL frame PUT is the durability point *and* the only
        mutation ``ingest`` makes, so a crashed writer still leaves the
        rows durable — they go into the oracle either way, and the
        canonical tier resyncs from the WAL exactly as a restarted
        process would.
        """
        uuids, texts = self._batch()
        columns = {"uuid": uuids, "text": texts}
        if self.rng.random() < self.config.crash_probability:
            faulty = FaultyObjectStore(self.store)
            view = self._ingest_view(faulty)
            faulty.crash_after("MUTATE", countdown=0)
            try:
                view.ingest(columns)
            except SimulatedCrash as exc:
                self._after_crash(
                    step, "ingest", exc, lambda client: self.tier.recover()
                )
            finally:
                faulty.clear_rules()
                self.tier.recover()
        else:
            self.tier.ingest(columns)
        self.rows.extend(zip(uuids, texts))

    def _drain(self, step: int) -> None:
        """Drain the fresh tier to the lake, possibly crashing mid-way.

        Recovery is just a fresh fault-free drain — the handoff is
        idempotent at every boundary — and the canonical tier resyncs
        afterwards so reads reflect whatever the crash left durable.
        """
        specs = []
        if self.rng.random() < 0.5:
            specs = [self.rng.choice(INDEXABLE)]
        crash = self.rng.random() < self.config.crash_probability
        store = FaultyObjectStore(self.store) if crash else self.store
        tier = self._ingest_view(store)
        if crash:
            countdown = (
                self.rng.randint(0, 3)
                if self.rng.random() < 0.8
                else self.rng.randint(4, 12)
            )
            store.crash_after("MUTATE", countdown=countdown)
        try:
            self._drain_once(store, tier, specs)
        except IndexAborted:
            pass  # index stage had too little data; drain re-runs later
        except SimulatedCrash as exc:
            self._after_crash(
                step,
                "drain",
                exc,
                lambda client: self._recover_drain(specs),
            )
        finally:
            if crash:
                store.clear_rules()
            self.tier.recover()

    def _drain_once(self, store, tier: IngestTier, specs) -> None:
        with MaintenancePipeline(self._client(store), workers=1) as pipeline:
            IngestDrainer(tier, pipeline=pipeline, index_specs=specs).drain()

    def _recover_drain(self, specs) -> None:
        try:
            self._drain_once(self.store, self._ingest_view(self.store), specs)
        except IndexAborted:
            pass

    def _maintenance(self, step: int, verb: str, fn) -> None:
        """Run one maintenance op, possibly killing its client mid-way."""
        client = self.rng.choice(self.clients)
        if self.rng.random() < self.config.crash_probability:
            # Arm a crash after the Nth mutation; if the op makes fewer,
            # the rule is disarmed in the finally below. Most protocol
            # ops make only 2-4 mutations, so bias the countdown low
            # (but keep a tail that reaches deep into vacuum's
            # physical-deletion loop).
            countdown = (
                self.rng.randint(0, 3)
                if self.rng.random() < 0.8
                else self.rng.randint(4, 12)
            )
            client.store.crash_after("MUTATE", countdown=countdown)
        try:
            fn(client)
        except IndexAborted:
            pass  # legitimate protocol outcome (timeout / too little data)
        except SimulatedCrash as exc:
            self._after_crash(step, verb, exc, fn)
        finally:
            client.store.clear_rules()

    def _after_crash(self, step: int, verb: str, exc: SimulatedCrash, fn) -> None:
        point = classify_crash_point(verb, exc.op, exc.key)
        self.report.crashes[point] = self.report.crashes.get(point, 0) + 1
        root = self.tracer.last_root()
        timeline = render_timeline(root) if root else "(no span recorded)"
        if point not in CRASH_POINTS:
            self._violate(
                step,
                verb,
                point,
                f"crash at a mutation boundary missing from the documented "
                f"registry: {exc}",
                timeline,
            )
            return
        audit = self._checker().check()
        if not audit.invariants_hold:
            self._violate(
                step, verb, point,
                "invariants violated right after crash:\n" + audit.describe(),
                timeline,
            )
            return
        if self.rng.random() < self.config.recover_probability:
            try:
                fn(self._fresh_client())
            except IndexAborted:
                pass
            self.report.recoveries += 1
            audit = self._checker().check()
            if not audit.invariants_hold:
                self._violate(
                    step, verb, point,
                    "invariants violated after fresh-client recovery:\n"
                    + audit.describe(),
                    timeline,
                )

    # -- search oracle --------------------------------------------------
    def _check_search(self, step: int, action: str, run_query) -> None:
        """Pick a query with a known exact answer and verify it."""
        kind = self.rng.choice(["uuid-hit", "uuid-miss", "substring"])
        if kind == "uuid-hit":
            uuid, _ = self.rng.choice(self.rows)
            expected = sum(1 for u, _ in self.rows if u == uuid)
            result = run_query("uuid", UuidQuery(uuid), expected + 1)
            got = len(result.matches)
            bad_value = any(bytes(m.value) != uuid for m in result.matches)
        elif kind == "uuid-miss":
            uuid = self.rng.getrandbits(128).to_bytes(16, "big")
            expected = sum(1 for u, _ in self.rows if u == uuid)  # ~always 0
            result = run_query("uuid", UuidQuery(uuid), expected + 1)
            got = len(result.matches)
            bad_value = False
        else:
            _, text = self.rng.choice(self.rows)
            start = self.rng.randrange(max(1, len(text) - 6))
            needle = text[start : start + 6]
            expected = sum(1 for _, t in self.rows if needle in t)
            result = run_query("text", SubstringQuery(needle), expected + 1)
            got = len(result.matches)
            bad_value = any(needle not in m.value for m in result.matches)
        self.report.searches_checked += 1
        if got != expected or bad_value:
            root = self.tracer.last_root()
            self._violate(
                step,
                action,
                None,
                f"{kind} query returned {got} match(es), oracle expected "
                f"{expected}"
                + ("; a returned value failed the predicate" if bad_value else ""),
                render_timeline(root) if root else "(no span recorded)",
            )

    def _degraded_search(self, step: int) -> None:
        """Serve a checked query while an index read fails under it."""
        self.server_store.fail_next("GET", ".index")
        try:
            self._check_search(
                step,
                "degraded",
                lambda col, q, k: self.server.query(col, q, k=k),
            )
        finally:
            self.server_store.clear_rules()

    # -- reporting ------------------------------------------------------
    def _violate(
        self,
        step: int,
        action: str,
        crash_point: str | None,
        detail: str,
        timeline: str,
    ) -> None:
        self.report.violations.append(
            ChaosViolation(
                step=step,
                action=action,
                crash_point=crash_point,
                detail=detail,
                timeline=timeline,
            )
        )


def run_chaos(config: ChaosConfig | None = None) -> ChaosReport:
    """Build a :class:`ProtocolFuzzer` and run it once."""
    return ProtocolFuzzer(config).run()

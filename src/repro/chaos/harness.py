"""Exhaustive crash-point matrix for one maintenance operation.

Where the fuzzer (:mod:`repro.chaos.fuzzer`) samples crash points
randomly across a long interleaved history, the matrix is the
systematic instrument: given a starting lake state and one operation
(``index``, ``compact``, or ``vacuum``), it

1. runs the operation cleanly on a clone of the state and counts its
   mutations (PUTs + DELETEs) — that count *is* the crash surface;
2. replays the operation on a fresh clone once per mutation boundary,
   crashing the client right after the Nth mutation;
3. after each crash, audits the Existence/Consistency invariants from
   an un-faulted client;
4. re-runs the operation from a fresh client ("recovery") and audits
   again;
5. optionally compares the recovered state against the uninterrupted
   reference — byte-for-byte for deterministic operations (compact,
   vacuum), or by logical index coverage for salted ones (index).

The resumability acceptance criterion — *every injected crash point in
compact/vacuum is recoverable by a fresh client* — is literally
``crash_matrix(...).all_recoverable``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.chaos.points import classify_crash_point
from repro.core.client import RottnestClient
from repro.core.fsck import InvariantChecker
from repro.errors import ReproError, SimulatedCrash
from repro.meta.metadata_table import CHECKPOINT_DIR
from repro.storage.faults import FaultyObjectStore
from repro.storage.object_store import InMemoryObjectStore, ObjectStore

#: How recovered state is compared against the uninterrupted reference.
COMPARE_MODES = ("bytes", "coverage", "none")


@dataclass
class CrashOutcome:
    """What happened when the client died after one specific mutation."""

    mutation_index: int
    crash_point: str
    invariants_ok: bool  # audit right after the crash
    recovered: bool  # the fresh client's re-run completed
    recovery_invariants_ok: bool  # audit after recovery
    state_matches_reference: bool | None  # None when compare="none"
    detail: str = ""

    @property
    def ok(self) -> bool:
        """Fully survivable: invariants held throughout, recovery
        converged (and matched the reference when one was compared)."""
        return (
            self.invariants_ok
            and self.recovered
            and self.recovery_invariants_ok
            and self.state_matches_reference is not False
        )


@dataclass
class CrashMatrix:
    """All outcomes of crashing one operation at every boundary."""

    verb: str
    mutations: int
    outcomes: list[CrashOutcome]

    @property
    def all_recoverable(self) -> bool:
        """Whether every enumerated crash point was fully survivable."""
        return all(outcome.ok for outcome in self.outcomes)

    def crash_points(self) -> set[str]:
        """The distinct canonical crash points this matrix reached."""
        return {outcome.crash_point for outcome in self.outcomes}

    def describe(self) -> str:
        """One table row per crash boundary, worst news first."""
        lines = [
            f"crash matrix for {self.verb!r}: {self.mutations} mutation "
            f"boundary(ies), "
            + ("all recoverable" if self.all_recoverable else "FAILURES")
        ]
        for o in self.outcomes:
            status = "ok" if o.ok else "FAIL"
            match = (
                ""
                if o.state_matches_reference is None
                else (" state=ref" if o.state_matches_reference else " state!=ref")
            )
            lines.append(
                f"  [{status}] after mutation {o.mutation_index}: "
                f"{o.crash_point}  invariants={o.invariants_ok} "
                f"recovered={o.recovered}{match}"
                + (f"  ({o.detail})" if o.detail else "")
            )
        return "\n".join(lines)


def _logical_state(store: InMemoryObjectStore) -> dict[str, bytes]:
    """Bucket contents minus metadata checkpoints.

    Checkpoints are a pure read optimization (readers replay the log
    tail and see identical state), and a crashed-then-recovered history
    may legitimately skip one: if the crash lands between a commit and
    its checkpoint, the recovery re-run no-ops and never rewrites it.
    The "byte-identical convergence" contract is therefore over
    everything *except* ``{index_dir}/_meta_checkpoints/``.
    """
    return {
        key: data
        for key, data in store.dump().items()
        if f"/{CHECKPOINT_DIR}/" not in key
    }


def _coverage(client: RottnestClient) -> set[tuple[str, str, frozenset]]:
    """Logical index coverage: what is indexed, ignoring object keys."""
    return {
        (r.column, r.index_type, frozenset(r.covered_files))
        for r in client.meta.records()
    }


def crash_matrix(
    base: InMemoryObjectStore,
    make_client: Callable[[ObjectStore], RottnestClient],
    verb: str,
    operation: Callable[[RottnestClient], object],
    *,
    recover: Callable[[RottnestClient], object] | None = None,
    compare: str = "bytes",
    verify_consistency: bool = True,
) -> CrashMatrix:
    """Crash ``operation`` after every mutation and audit each wreck.

    ``base`` is the starting state; it is never modified (every run
    happens on a :meth:`~InMemoryObjectStore.clone`). ``make_client``
    builds the protocol client over whatever store the harness hands
    it — pass a factory that sets any non-default knobs (checkpoint
    interval, timeouts). ``recover`` defaults to re-running
    ``operation`` itself, which is the whole point: recovery must
    never need a special repair tool, just a fresh client doing the
    same job.
    """
    if compare not in COMPARE_MODES:
        raise ReproError(f"compare must be one of {COMPARE_MODES}, got {compare!r}")
    recover = recover or operation

    # Uninterrupted reference run: defines the crash surface and the
    # state every crashed-then-recovered history must converge to.
    ref_store = base.clone()
    before = ref_store.stats.snapshot()
    operation(make_client(ref_store))
    delta = ref_store.stats.snapshot().delta(before)
    mutations = delta.puts + delta.deletes
    ref_state = _logical_state(ref_store)
    ref_cover = _coverage(make_client(ref_store))

    outcomes: list[CrashOutcome] = []
    for n in range(mutations):
        store = base.clone()
        faulty = FaultyObjectStore(store)
        faulty.crash_after("MUTATE", countdown=n)
        crash: SimulatedCrash | None = None
        try:
            operation(make_client(faulty))
        except SimulatedCrash as exc:
            crash = exc
        if crash is None:
            # The clean run counted a mutation this replay never made:
            # the operation is nondeterministic in a way the harness
            # cannot enumerate. Surface it loudly.
            raise ReproError(
                f"{verb}: replay with crash countdown {n} completed "
                f"without crashing ({mutations} mutations expected)"
            )
        point = classify_crash_point(verb, crash.op, crash.key)

        checker = InvariantChecker(
            make_client(store), verify_consistency=verify_consistency
        )
        invariants_ok = checker.check().invariants_hold

        recovered = True
        detail = ""
        try:
            recover(make_client(store))
        except ReproError as exc:
            recovered = False
            detail = f"recovery failed: {exc}"
        recovery_ok = checker.check().invariants_hold

        if compare == "bytes":
            matches = _logical_state(store) == ref_state
        elif compare == "coverage":
            matches = _coverage(make_client(store)) == ref_cover
        else:
            matches = None
        outcomes.append(
            CrashOutcome(
                mutation_index=n,
                crash_point=point,
                invariants_ok=invariants_ok,
                recovered=recovered,
                recovery_invariants_ok=recovery_ok,
                state_matches_reference=matches,
                detail=detail,
            )
        )
    return CrashMatrix(verb=verb, mutations=mutations, outcomes=outcomes)

"""Cracked-vs-eager-vs-lazy benchmark on a Zipf-skewed workload.

One seeded run builds the same lake three times and plays the same
Zipf(:math:`s`) query trace against three deployments:

* **eager** — index every file up front (the paper's §IV default);
* **lazy** — never index, every query brute-forces;
* **cracked** — a :class:`~repro.crack.controller.CrackController`
  watches the span stream and indexes only what gets hot.

Measured: total index-build IO (bytes read + written by maintenance)
and the modeled p50 latency of *hot* queries after the controller has
converged. The acceptance shape is the cracking bet itself: cracked
must spend **no more build IO than eager** (it skips the cold tail)
while serving hot queries **within a small factor of fully-eager**
(and far ahead of lazy). Everything runs on a sim clock from one seed,
so the regression gate can pin the numbers.

Shared by ``benchmarks/bench_cracking.py`` (persists
``BENCH_cracking.json``) and the ``repro crack-bench`` CLI subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.client import RottnestClient
from repro.core.queries import UuidQuery
from repro.crack.controller import CrackController
from repro.crack.heat import HeatMap
from repro.crack.policy import CrackingPolicy
from repro.errors import CrackError
from repro.formats.schema import ColumnType, Field as SchemaField, Schema
from repro.lake.table import LakeTable, TableConfig
from repro.obs.trace import Tracer, use_tracer
from repro.shard.bench import percentile
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock
from repro.workloads.uuids import UuidWorkload

SCHEMA = Schema.of(SchemaField("uuid", ColumnType.BINARY))
LAKE_ROOT = "lake/crack-bench"
INDEX_DIR = "idx/crack-bench"
COLUMN = "uuid"
INDEX_TYPE = "uuid_trie"


@dataclass
class CrackBenchResult:
    """IO and latency numbers for one three-way deployment comparison."""

    files: int
    rows: int
    ticks: int
    queries_per_tick: int
    zipf_s: float
    seed: int
    p50_budget_ratio: float
    hot_k: int = 0
    eager_index_io: int = 0
    cracked_index_io: int = 0
    eager_hot_p50_ms: float = 0.0
    cracked_hot_p50_ms: float = 0.0
    lazy_hot_p50_ms: float = 0.0
    cracked_indexed_files: int = 0
    cold_files: int = 0
    hot_coverage: float = 0.0
    ticks_to_cover: int = -1

    # -- derived -------------------------------------------------------
    @property
    def io_ratio(self) -> float:
        """Cracked build IO as a fraction of eager's."""
        return (
            self.cracked_index_io / self.eager_index_io
            if self.eager_index_io
            else 0.0
        )

    @property
    def hot_p50_ratio(self) -> float:
        """Cracked hot-query p50 as a multiple of eager's."""
        return (
            self.cracked_hot_p50_ms / self.eager_hot_p50_ms
            if self.eager_hot_p50_ms
            else 0.0
        )

    @property
    def ok(self) -> bool:
        """The cracking bet, as a gate: less build IO than eager, hot
        queries nearly as fast as eager and faster than lazy, the hot
        set fully covered, and at least one cold file left alone."""
        return (
            self.cracked_index_io <= self.eager_index_io
            and self.cracked_hot_p50_ms
            <= self.p50_budget_ratio * self.eager_hot_p50_ms
            and self.cracked_hot_p50_ms < self.lazy_hot_p50_ms
            and self.hot_coverage == 1.0
            and self.cold_files >= 1
        )

    def describe(self) -> str:
        """Human-readable summary for the CLI."""
        lines = [
            f"crack-bench: {self.files} files x {self.rows} rows, "
            f"Zipf({self.zipf_s:g}) trace, {self.ticks} ticks x "
            f"{self.queries_per_tick} queries (seed {self.seed})",
            f"  index IO:  eager {self.eager_index_io} B  "
            f"cracked {self.cracked_index_io} B  "
            f"(ratio {self.io_ratio:.2f})",
            f"  hot p50:   eager {self.eager_hot_p50_ms:.1f} ms  "
            f"cracked {self.cracked_hot_p50_ms:.1f} ms  "
            f"lazy {self.lazy_hot_p50_ms:.1f} ms  "
            f"(cracked/eager {self.hot_p50_ratio:.2f}, "
            f"budget {self.p50_budget_ratio:g})",
            f"  coverage:  top-{self.hot_k} hot files "
            f"{self.hot_coverage:.0%} covered "
            f"(by tick {self.ticks_to_cover}); "
            f"{self.cracked_indexed_files}/{self.files} files indexed, "
            f"{self.cold_files} left brute-force",
            f"  gate: {'ok' if self.ok else 'MISSED'}",
        ]
        return "\n".join(lines)


def zipf_probabilities(n: int, s: float) -> np.ndarray:
    """Zipf(s) probabilities over ranks 0..n-1 (rank 0 hottest)."""
    weights = (np.arange(1, n + 1, dtype=np.float64)) ** (-s)
    return weights / weights.sum()


def _deployment(seed: int, files: int, rows: int):
    """One fresh simulated lake (identical for a given seed)."""
    clock = SimClock(start=1_000_000.0)
    store = InMemoryObjectStore(clock=clock)
    lake = LakeTable.create(
        store,
        LAKE_ROOT,
        SCHEMA,
        TableConfig(row_group_rows=16, page_target_bytes=2048),
    )
    gen = UuidWorkload(seed=seed)
    batches = [gen.batch(rows) for _ in range(files)]
    for batch in batches:
        lake.append({COLUMN: batch})
    client = RottnestClient(store, INDEX_DIR, lake)
    return clock, store, client, batches


def _hot_p50_ms(client, probes: list[bytes]) -> float:
    """Modeled p50 latency over a batch of hot-key probes."""
    ms = []
    for key in probes:
        res = client.search(COLUMN, UuidQuery(key), k=1)
        ms.append(res.stats.estimated_latency() * 1000)
    return percentile(ms, 0.5)


def run_crack_bench(
    *,
    files: int = 8,
    rows: int = 200,
    ticks: int = 8,
    queries_per_tick: int = 10,
    zipf_s: float = 1.1,
    tick_interval_s: float = 600.0,
    hotness_floor: float = 6.0,
    hot_probes: int = 20,
    p50_budget_ratio: float = 1.3,
    seed: int = 23,
) -> CrackBenchResult:
    """Play one Zipf trace against eager, lazy, and cracked deployments.

    The trace is ``ticks x queries_per_tick`` point lookups whose
    target file follows Zipf(``zipf_s``) over append order (file 0
    hottest). The cracked deployment searches under a sim-clock tracer,
    folds the finished spans into the controller's heat map, and ticks
    once per interval; eager pays its full build up front; lazy never
    builds. Afterwards every deployment serves the same ``hot_probes``
    keys drawn from the top-``files // 4`` hot files, which is where
    the p50s come from.
    """
    if min(files, rows, ticks, queries_per_tick) <= 0:
        raise CrackError("nothing to benchmark (empty input)")
    result = CrackBenchResult(
        files=files,
        rows=rows,
        ticks=ticks,
        queries_per_tick=queries_per_tick,
        zipf_s=zipf_s,
        seed=seed,
        p50_budget_ratio=p50_budget_ratio,
        hot_k=max(1, files // 4),
    )
    rng = np.random.default_rng(seed)
    probs = zipf_probabilities(files, zipf_s)
    trace = [
        [
            (int(rng.choice(files, p=probs)), int(rng.integers(rows)))
            for _ in range(queries_per_tick)
        ]
        for _ in range(ticks)
    ]
    hot_ranks = list(range(result.hot_k))
    hot_probs = probs[hot_ranks] / probs[hot_ranks].sum()
    probe_picks = [
        (int(rng.choice(result.hot_k, p=hot_probs)), int(rng.integers(rows)))
        for _ in range(max(1, hot_probes))
    ]

    # -- eager: one full build up front --------------------------------
    clock, store, client, batches = _deployment(seed, files, rows)
    before = store.stats.snapshot()
    client.index(COLUMN, INDEX_TYPE)
    result.eager_index_io = _io_bytes(store, before)
    for tick in trace:
        for fi, ri in tick:
            client.search(COLUMN, UuidQuery(batches[fi][ri]), k=1)
        clock.advance(tick_interval_s)
    probes = [batches[fi][ri] for fi, ri in probe_picks]
    result.eager_hot_p50_ms = _hot_p50_ms(client, probes)

    # -- lazy: never build ---------------------------------------------
    clock, store, client, batches = _deployment(seed, files, rows)
    for tick in trace:
        for fi, ri in tick:
            client.search(COLUMN, UuidQuery(batches[fi][ri]), k=1)
        clock.advance(tick_interval_s)
    result.lazy_hot_p50_ms = _hot_p50_ms(client, probes)

    # -- cracked: the controller closes the loop -----------------------
    clock, store, client, batches = _deployment(seed, files, rows)
    hot_paths = {
        client.lake.snapshot().files[rank].path for rank in hot_ranks
    }
    controller = CrackController(
        client,
        [(COLUMN, INDEX_TYPE)],
        cracking=CrackingPolicy(hotness_floor=hotness_floor),
        heat=HeatMap(half_life_s=tick_interval_s),
    )
    tracer = Tracer(clock=clock)
    with use_tracer(tracer):
        for tick_no, tick in enumerate(trace):
            for fi, ri in tick:
                client.search(COLUMN, UuidQuery(batches[fi][ri]), k=1)
            controller.observe_tracer(tracer)
            before = store.stats.snapshot()
            controller.tick()
            result.cracked_index_io += _io_bytes(store, before)
            if result.ticks_to_cover < 0:
                covered = client.meta.indexed_files(COLUMN, INDEX_TYPE)
                if hot_paths <= set(covered):
                    result.ticks_to_cover = tick_no + 1
            clock.advance(tick_interval_s)
    covered = set(client.meta.indexed_files(COLUMN, INDEX_TYPE))
    result.cracked_indexed_files = len(covered)
    result.cold_files = files - len(covered)
    result.hot_coverage = len(hot_paths & covered) / len(hot_paths)
    result.cracked_hot_p50_ms = _hot_p50_ms(client, probes)
    return result


def _io_bytes(store, before) -> int:
    """Bytes moved (read + written) since ``before`` was snapshotted."""
    delta = store.stats.delta(before)
    return delta.bytes_read + delta.bytes_written

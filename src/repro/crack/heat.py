"""Query heat map: decayed per-scope counters fed from search spans.

The cracking controller needs to know *where queries land*, not just
how many there are. This module keeps one exponentially-decayed counter
per :class:`HeatKey` — a (scope, column, query kind) triple where the
scope is either a lake file path or an IVF-PQ cell address
(``"{index_key}#cell={i}"``). The counters are fed from the span trees
the search client already emits (``repro.obs.trace``): the brute-force
span records which files it scanned, the page-probe span which files it
touched, and the vector index-probe span which inverted lists each
probe actually hit. No new instrumentation path exists just for
cracking — if tracing is on, the heat map can be fed.

Decay is exact, not tick-based: a cell stores ``(value, stamp)`` and
its heat at time ``t`` is ``value * 2**(-(t - stamp) / half_life_s)``.
Because every observation is one exponential term and exponentials are
linear under addition, two maps merge by plain addition after
re-stamping to a common time — which makes decay and merge *commute*
(the hypothesis property in ``tests/test_crack_heat.py``), the same
mergeability contract the quantile sketches in ``repro.obs.timeseries``
satisfy. Maps from many searchers can therefore be combined in any
order and the controller sees one consistent ranking.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CrackError
from repro.obs.trace import Span

#: Default decay half-life. One hour: a file that stops being queried
#: loses ~94% of its heat in four hours, which is the time scale at
#: which leaving it un-indexed becomes the right TCO call again.
DEFAULT_HALF_LIFE_S = 3600.0

#: Separator between an index key and a cell ordinal in a cell scope.
CELL_SEP = "#cell="


@dataclass(frozen=True, order=True)
class HeatKey:
    """One heat counter's identity.

    ``scope`` is a lake file path (file-granularity heat, feeds the
    index/don't-index decision) or ``"{index_key}#cell={i}"`` (IVF-PQ
    cell-granularity heat, feeds the split/refine decision). ``kind``
    is the query class name so the policy can weigh workloads
    differently (a brute-forced vector scan costs far more than a
    brute-forced UUID probe).
    """

    scope: str
    column: str
    kind: str

    @property
    def is_cell(self) -> bool:
        return CELL_SEP in self.scope

    @property
    def cell(self) -> tuple[str, int] | None:
        """(index_key, cell ordinal) for cell scopes, else ``None``."""
        if not self.is_cell:
            return None
        key, _, ordinal = self.scope.rpartition(CELL_SEP)
        return key, int(ordinal)


def cell_scope(index_key: str, cell: int) -> str:
    """The scope string addressing one inverted list of one index file."""
    return f"{index_key}{CELL_SEP}{int(cell)}"


class HeatMap:
    """Mergeable, exactly-decaying query-heat counters."""

    def __init__(self, *, half_life_s: float = DEFAULT_HALF_LIFE_S) -> None:
        if half_life_s <= 0:
            raise CrackError(f"half_life_s must be positive, got {half_life_s}")
        self.half_life_s = float(half_life_s)
        # key -> (value, stamp): heat at time `stamp` is `value`.
        self._cells: dict[HeatKey, tuple[float, float]] = {}

    # -- core ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, key: HeatKey) -> bool:
        return key in self._cells

    def keys(self) -> list[HeatKey]:
        return sorted(self._cells)

    def _factor(self, dt_s: float) -> float:
        # Signed exponent: asking about a time before the stamp scales
        # the value *up*, keeping heat(t) a single consistent
        # exponential through every re-stamp (what makes decay and
        # merge commute exactly, not just approximately).
        return 2.0 ** (-dt_s / self.half_life_s)

    def heat(self, key: HeatKey, *, at_s: float) -> float:
        """Current heat of ``key`` at time ``at_s`` (0 if absent)."""
        cell = self._cells.get(key)
        if cell is None:
            return 0.0
        value, stamp = cell
        return value * self._factor(at_s - stamp)

    def observe(self, key: HeatKey, weight: float = 1.0, *, at_s: float) -> None:
        """Add ``weight`` heat to ``key`` at time ``at_s``.

        Out-of-order observations are fine: both the stored value and
        the new weight are re-stamped to the later of the two times, so
        ingest order never changes the resulting function of time.
        """
        if weight < 0:
            raise CrackError(f"heat weight must be >= 0, got {weight}")
        cell = self._cells.get(key)
        if cell is None:
            self._cells[key] = (float(weight), float(at_s))
            return
        value, stamp = cell
        common = max(stamp, at_s)
        self._cells[key] = (
            value * self._factor(common - stamp)
            + weight * self._factor(common - at_s),
            common,
        )

    def decay_to(self, at_s: float) -> "HeatMap":
        """Re-stamp every counter at ``at_s`` (the heat function is
        unchanged; this is a normalization, not a mutation of meaning).
        Cells already stamped later than ``at_s`` keep their stamp —
        re-stamping backward would scale values *up*, which overflows
        after a few thousand half-lives without changing any heat the
        map would ever report. Returns ``self``."""
        for key, (value, stamp) in list(self._cells.items()):
            if at_s <= stamp:
                continue
            self._cells[key] = (value * self._factor(at_s - stamp), float(at_s))
        return self

    def merge(self, other: "HeatMap") -> "HeatMap":
        """Fold ``other`` into ``self`` (pointwise heat addition).

        Requires matching half-lives — adding exponentials with
        different rates is not a single exponential, so such maps have
        no exact merged form.
        """
        if other.half_life_s != self.half_life_s:
            raise CrackError(
                f"cannot merge heat maps with different half-lives "
                f"({self.half_life_s} vs {other.half_life_s})"
            )
        for key, (value, stamp) in other._cells.items():
            self.observe(key, value, at_s=stamp)
        return self

    def copy(self) -> "HeatMap":
        clone = HeatMap(half_life_s=self.half_life_s)
        clone._cells = dict(self._cells)
        return clone

    def evict_cold(self, floor: float, *, at_s: float) -> int:
        """Drop every key whose heat at ``at_s`` is below ``floor``.

        Never drops a key at or above the floor — the invariant the
        hypothesis suite pins — so eviction only forgets scopes the
        policy would not act on anyway. Returns how many were dropped.
        """
        if floor < 0:
            raise CrackError(f"hotness floor must be >= 0, got {floor}")
        cold = [k for k in self._cells if self.heat(k, at_s=at_s) < floor]
        for key in cold:
            del self._cells[key]
        return len(cold)

    # -- aggregated views ----------------------------------------------
    def hottest(
        self,
        *,
        at_s: float,
        column: str | None = None,
        cells: bool | None = None,
        limit: int | None = None,
    ) -> list[tuple[HeatKey, float]]:
        """Keys by descending heat (ties broken by key, so the ranking
        is deterministic), optionally filtered by column and by
        file/cell scope kind."""
        rows = [
            (key, self.heat(key, at_s=at_s))
            for key in self._cells
            if (column is None or key.column == column)
            and (cells is None or key.is_cell == cells)
        ]
        rows.sort(key=lambda r: (-r[1], r[0]))
        return rows if limit is None else rows[:limit]

    def file_heat(self, *, at_s: float, column: str | None = None) -> dict[str, float]:
        """Summed heat per file path (all query kinds folded)."""
        out: dict[str, float] = {}
        for key, value in self.hottest(at_s=at_s, column=column, cells=False):
            out[key.scope] = out.get(key.scope, 0.0) + value
        return out

    def cell_heat(self, *, at_s: float) -> dict[tuple[str, int], float]:
        """Summed heat per (index_key, cell ordinal)."""
        out: dict[tuple[str, int], float] = {}
        for key, value in self.hottest(at_s=at_s, cells=True):
            addr = key.cell
            assert addr is not None
            out[addr] = out.get(addr, 0.0) + value
        return out

    # -- span ingestion ------------------------------------------------
    def observe_spans(self, spans: list[Span], *, at_s: float | None = None) -> int:
        """Feed finished ``search`` span trees into the map.

        Reads the attributes the client already records: the query
        kind on the root, the files the brute-force phase scanned, the
        files whose pages were probed, and the IVF-PQ cells each
        vector probe landed in. Non-search roots (daemon ticks, index
        runs) are ignored. Returns the number of observations made.
        ``at_s`` defaults to each root span's end time — correct when
        the tracer runs on the store's sim clock.
        """
        observed = 0
        for root in spans:
            if root.name != "search":
                continue
            column = str(root.attributes.get("column", ""))
            kind = str(root.attributes.get("kind", "?"))
            when = at_s if at_s is not None else float(root.end_s or root.start_s)
            for span in root.walk():
                if span.name == "brute_force":
                    paths = span.attributes.get("scanned_files", ())
                    # Brute-scanned files are the expensive ones — they
                    # pay a full-file read per query until indexed.
                    weight = 1.0
                elif span.name == "probe:pages":
                    paths = span.attributes.get("probed_files", ())
                    weight = 1.0
                else:
                    paths = ()
                    weight = 0.0
                for path in paths:
                    self.observe(
                        HeatKey(scope=str(path), column=column, kind=kind),
                        weight,
                        at_s=when,
                    )
                    observed += 1
                if span.name == "probe:index":
                    for index_key, probed in span.attributes.get(
                        "cell_probes", ()
                    ):
                        for cell in probed:
                            self.observe(
                                HeatKey(
                                    scope=cell_scope(str(index_key), int(cell)),
                                    column=column,
                                    kind=kind,
                                ),
                                1.0,
                                at_s=when,
                            )
                            observed += 1
        return observed

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "half_life_s": self.half_life_s,
            "cells": [
                [k.scope, k.column, k.kind, value, stamp]
                for k, (value, stamp) in sorted(self._cells.items())
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HeatMap":
        try:
            hm = cls(half_life_s=float(payload["half_life_s"]))
            for scope, column, kind, value, stamp in payload["cells"]:
                hm._cells[HeatKey(str(scope), str(column), str(kind))] = (
                    float(value),
                    float(stamp),
                )
        except (KeyError, TypeError, ValueError) as exc:
            raise CrackError(f"malformed heat-map payload: {exc}") from exc
        return hm

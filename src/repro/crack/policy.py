"""Cracking policy: rank candidate index work by expected benefit per IO.

The controller should spend its IO budget where queries actually hurt.
For every (column, index type) target the policy proposes two kinds of
work, both priced in dollars-avoided-per-byte-of-build-IO:

* **Targeted indexing** of hot-but-uncovered files. The benefit of
  covering file *f* is ``heat(f) x brute_cost(f)`` — the per-query
  dollars a full scan of *f* burns today (priced with the calibrated
  :class:`~repro.engines.bruteforce.BruteForceModel`, the same model
  the TCO phase diagrams use) times how often queries touch it. The IO
  cost is reading the file once to build the index.

* **Cell refinement** of hot IVF-PQ inverted lists. Probes that keep
  landing in one oversized cell fetch (and PQ-scan) the whole list
  every time; splitting the cell roughly halves the bytes each future
  probe touches. The benefit is the compute-dollars of scanning those
  saved bytes times the cell's probe heat; the IO cost is rewriting the
  index file (read + write).

Cold scopes — heat below :attr:`CrackingPolicy.hotness_floor` — are
never proposed: leaving them on the brute-force path *is* the policy,
that is what makes cracked TCO beat eager indexing under skew.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.maintenance import covering_records
from repro.crack.heat import HeatMap
from repro.engines.bruteforce import BruteForceModel
from repro.storage.costs import CostModel

#: Index types with a cell-refinement entry point.
REFINABLE_TYPES = ("ivf_pq",)


@dataclass(frozen=True)
class CrackWork:
    """One ranked unit of controller work."""

    action: str  # "index" | "refine"
    column: str
    index_type: str
    heat: float
    benefit_per_io: float  # dollars avoided per byte of build IO
    files: tuple[str, ...] = ()  # index: hot uncovered file paths
    index_key: str = ""  # refine: the index file to rewrite
    cells: tuple[int, ...] = ()  # refine: hot cell ordinals

    def describe(self) -> str:
        target = (
            f"{len(self.files)} file(s)"
            if self.action == "index"
            else f"{self.index_key} cells {list(self.cells)}"
        )
        return (
            f"{self.action} {self.column}/{self.index_type} {target} "
            f"heat={self.heat:.2f} benefit/io={self.benefit_per_io:.3g}"
        )


@dataclass(frozen=True)
class CrackingPolicy:
    """Tunables for converting a heat map into ranked work."""

    hotness_floor: float = 0.5
    """File heat below this is cold: stays brute-force, never indexed."""

    refine_min_cell_heat: float = 4.0
    """Cell probe-heat below this never triggers a split."""

    refine_min_cell_rows: int = 32
    """Cells with fewer members than this are never split."""

    max_nlist: int = 64
    """Stop refining an index file once it reaches this many cells."""

    max_actions_per_tick: int = 2
    """Work items one controller tick may run (bounds tick IO)."""

    scan_workers: int = 1
    """Worker count the avoided-brute-force cost is priced at."""

    costs: CostModel = field(default_factory=CostModel)
    brute: BruteForceModel = field(default_factory=BruteForceModel)

    # -- pricing -------------------------------------------------------
    def _index_benefit_per_io(self, heat: float, nbytes: int) -> float:
        """Dollars avoided per byte of build IO for covering a file."""
        avoided = heat * self.brute.cost_per_query(
            nbytes, self.scan_workers, self.costs
        )
        return avoided / max(1, nbytes)

    def _refine_benefit_per_io(
        self, heat: float, index_bytes: int, distinct_cells: int
    ) -> float:
        """Dollars avoided per byte of rewrite IO for splitting cells.

        Lists are roughly equal-sized, so one list is ~``index_bytes /
        distinct_cells`` (the distinct probed-cell count is a lower
        bound on nlist); a split halves the bytes each future probe
        scans. Rewrite IO is read + write of the whole index file.
        """
        list_bytes = index_bytes / max(1, distinct_cells)
        saved_s = (list_bytes / 2.0) / self.brute.scan_rate_bytes_per_s
        avoided = heat * self.costs.compute_cost(
            self.brute.instance_type, saved_s
        )
        return avoided / max(1, 2 * index_bytes)

    # -- planning ------------------------------------------------------
    def plan(
        self,
        client,
        heat: HeatMap,
        targets: list[tuple[str, str]],
        *,
        at_s: float,
    ) -> list[CrackWork]:
        """Ranked work for one tick, hottest-benefit first.

        Deterministic: ties break on (column, action, identity) so two
        controllers planning over identical state propose identical
        work in identical order — the property the crash matrix leans
        on.
        """
        snap = client.lake.snapshot()
        sizes = {f.path: f.size for f in snap.files}
        works: list[CrackWork] = []
        for column, index_type in targets:
            file_heat = heat.file_heat(at_s=at_s, column=column)
            covered = client.meta.indexed_files(column, index_type)
            hot = sorted(
                path
                for path, h in file_heat.items()
                if h >= self.hotness_floor
                and path in sizes
                and path not in covered
            )
            if hot:
                # One bundled run per target per tick: a single commit
                # covering every currently-hot uncovered file keeps the
                # mutation count (the crash surface) bounded.
                total_heat = sum(file_heat[p] for p in hot)
                io = sum(sizes[p] for p in hot)
                benefit = sum(
                    self._index_benefit_per_io(file_heat[p], sizes[p])
                    * sizes[p]
                    for p in hot
                )
                works.append(
                    CrackWork(
                        action="index",
                        column=column,
                        index_type=index_type,
                        heat=total_heat,
                        benefit_per_io=benefit / max(1, io),
                        files=tuple(hot),
                    )
                )
            if index_type in REFINABLE_TYPES:
                works.extend(
                    self._plan_refines(client, heat, column, index_type, at_s)
                )
        works.sort(
            key=lambda w: (
                -w.benefit_per_io,
                w.column,
                w.action,
                w.files,
                w.index_key,
            )
        )
        return works

    def _plan_refines(
        self, client, heat: HeatMap, column: str, index_type: str, at_s: float
    ) -> list[CrackWork]:
        cell_heat = heat.cell_heat(at_s=at_s)
        if not cell_heat:
            return []
        live = {
            r.index_key: r
            for r in covering_records(client, column, index_type)
        }
        by_key: dict[str, dict[int, float]] = {}
        for (index_key, cell), h in cell_heat.items():
            if index_key in live:
                by_key.setdefault(index_key, {})[cell] = h
        works: list[CrackWork] = []
        for index_key in sorted(by_key):
            hot_cells = sorted(
                c
                for c, h in by_key[index_key].items()
                if h >= self.refine_min_cell_heat
            )
            if not hot_cells:
                continue
            record = live[index_key]
            total = sum(by_key[index_key][c] for c in hot_cells)
            works.append(
                CrackWork(
                    action="refine",
                    column=column,
                    index_type=index_type,
                    heat=total,
                    benefit_per_io=self._refine_benefit_per_io(
                        total, record.size, len(by_key[index_key])
                    ),
                    index_key=index_key,
                    cells=tuple(hot_cells),
                )
            )
        return works

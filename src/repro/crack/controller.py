"""The cracking controller: heat map -> ranked work -> targeted commits.

:class:`CrackController` is a :class:`~repro.core.daemon.MaintenanceDaemon`
whose tick is driven by *observed queries* instead of a schedule. Each
tick it asks the :class:`~repro.crack.policy.CrackingPolicy` to rank
work by expected benefit per IO, then runs the top few items:

* **targeted indexing** — the inherited
  :meth:`~repro.core.daemon.MaintenanceDaemon.run_index` with a
  snapshot restricted to the currently-hot uncovered files, so only
  they get indexed and cold files stay on the brute-force path;
* **cell refinement** — :func:`refine_index` rewrites one IVF-PQ file
  with its hottest inverted lists split in two, committing the result
  exactly like compaction does (content-addressed upload, idempotent
  metadata insert), so the old file becomes vacuum fodder.

The tick itself never vacuums and never compacts: both mutate state
from *wall-clock* inputs (``_last_vacuum`` lives on the daemon object,
not in the store), which would make a crash-recovered controller
diverge from an uninterrupted one. Cracking commits only through the
two idempotent verbs above, which is what lets the ``repro chaos``
matrix prove byte-identical convergence after a crash at every PUT
(see ``crack:*`` rows in ``docs/protocol.md``).
"""

from __future__ import annotations

import dataclasses

from repro.core.daemon import MaintenanceDaemon, TickReport
from repro.core.index_file import IndexFileReader, IndexFileWriter
from repro.core.maintenance import covering_records
from repro.crack.heat import HeatMap
from repro.crack.policy import CrackingPolicy
from repro.indices.vector.ivf_pq import IvfPqBuilder
from repro.meta.metadata_table import IndexRecord
from repro.obs.metrics import get_registry
from repro.obs.timeseries import get_hub
from repro.obs.trace import Span, get_tracer

_TICKS = get_registry().counter(
    "crack_ticks_total", "Cracking controller ticks by outcome", ("outcome",)
)
_ACTIONS = get_registry().counter(
    "crack_actions_total", "Cracking work items run by ticks", ("action",)
)


def refine_index(
    client,
    record: IndexRecord,
    cells,
    *,
    min_cell_rows: int = 32,
    max_nlist: int = 64,
    seed: int = 0,
) -> IndexRecord | None:
    """Split ``cells`` of one committed IVF-PQ file; commit the rewrite.

    Returns the new record, or ``None`` if nothing was worth splitting
    (cells too small, all members coincide, or the file already reached
    ``max_nlist``). Mirrors the compaction commit protocol exactly:

    * the rewritten file goes to a **content-addressed** key, so a
      re-run after a crash mid-upload overwrites the same bytes at the
      same key instead of accreting orphans;
    * the metadata insert **skips already-live keys**, so a re-run
      after a crash between commit and checkpoint is a no-op;
    * the old record is left for :func:`~repro.core.maintenance.vacuum_indices`
      — newest-first planning prefers the refined file immediately.

    Deterministic for a given (source bytes, cells, seed): the split is
    2-means over decoded vectors with a seed derived from the cell
    ordinal, and untouched lists keep their exact bytes.
    """
    reader = IndexFileReader.open(client.store, record.index_key)
    if reader.params.get("nlist", 0) >= max_nlist:
        return None
    builder = IvfPqBuilder.load(reader)
    room = max_nlist - builder.nlist
    wanted = sorted({int(c) for c in cells})[:room]
    if not wanted:
        return None
    splits = builder.refine_cells(
        wanted, min_cell_rows=min_cell_rows, seed=seed
    )
    if not splits:
        return None
    writer = IndexFileWriter(
        record.index_type,
        record.column,
        reader.directory,
        params=dict(reader.params),
        codec=client.codec,
    )
    builder.write(writer)
    blob = writer.finish()
    key = client.new_index_key(blob, deterministic=True)
    client.store.put(key, blob)
    new_record = IndexRecord(
        index_key=key,
        index_type=record.index_type,
        column=record.column,
        covered_files=tuple(record.covered_files),
        num_rows=record.num_rows,
        size=len(blob),
        created_at=client.store.clock.now(),
    )
    if key not in {r.index_key for r in client.meta.records()}:
        client.meta.insert([new_record])
    return new_record


class CrackController(MaintenanceDaemon):
    """Query-adaptive maintenance: index what is hot, leave the rest.

    Feed it span trees with :meth:`observe` (or let it drain the
    ambient tracer with :meth:`observe_tracer`), then :meth:`tick`. All
    durable inputs live in the store — the heat map is a *hint*, not
    state the protocol depends on: a controller restarted with an empty
    map simply re-learns the workload and converges to the same
    coverage, which is what the simulation harness's restart leg pins.
    """

    def __init__(
        self,
        client,
        targets,
        *,
        cracking: CrackingPolicy | None = None,
        heat: HeatMap | None = None,
        index_params=None,
        workers: int = 1,
        budget=None,
        refine_seed: int = 0,
        snapshots=None,
    ) -> None:
        super().__init__(
            client,
            targets,
            index_params=index_params,
            workers=workers,
            budget=budget,
        )
        self.cracking = cracking or CrackingPolicy()
        self.heat = heat if heat is not None else HeatMap()
        self.refine_seed = refine_seed
        #: Optional :class:`~repro.obs.store.SnapshotStore`. When set,
        #: every tick spills the heat map into a durable telemetry
        #: snapshot so dashboards (and later runs) can fold it. The
        #: chaos matrices pass ``None``: snapshot commits are ``obs``
        #: mutations, not part of the ``crack`` verb's boundary set.
        self.snapshots = snapshots

    # -- observe -------------------------------------------------------
    def observe(self, spans: list[Span]) -> int:
        """Fold finished search span trees into the heat map."""
        return self.heat.observe_spans(spans)

    def observe_tracer(self, tracer=None) -> int:
        """Drain the (given or ambient) tracer's finished roots."""
        tracer = tracer or get_tracer()
        return self.observe(tracer.pop_finished())

    # -- introspection -------------------------------------------------
    def hot_files(self, column: str, *, at_s: float | None = None) -> list[str]:
        """Live lake files currently at or above the hotness floor."""
        if at_s is None:
            at_s = self.client.store.clock.now()
        snap_paths = set(self.client.lake.snapshot().file_paths)
        return sorted(
            path
            for path, h in self.heat.file_heat(at_s=at_s, column=column).items()
            if h >= self.cracking.hotness_floor and path in snap_paths
        )

    def hot_coverage(
        self, column: str, index_type: str, *, at_s: float | None = None
    ) -> float:
        """Fraction of hot files covered by ``index_type`` (1.0 if none
        are hot — nothing to crack is full coverage, not zero)."""
        hot = self.hot_files(column, at_s=at_s)
        if not hot:
            return 1.0
        covered = self.client.meta.indexed_files(column, index_type)
        return sum(1 for path in hot if path in covered) / len(hot)

    # -- act -----------------------------------------------------------
    def tick(self) -> TickReport:
        """Plan against the heat map and run the top-ranked work."""
        report = TickReport()
        at_s = self.client.store.clock.now()
        # Bound heat-map memory. The eviction floor is far below the
        # action floor so forgetting a key can never change a decision
        # (the evict_cold invariant the hypothesis suite pins).
        self.heat.evict_cold(self.cracking.hotness_floor / 1e3, at_s=at_s)
        with get_tracer().span("crack.tick") as span:
            works = self.cracking.plan(
                self.client, self.heat, self.targets, at_s=at_s
            )
            acted = 0
            for work in works:
                if acted >= self.cracking.max_actions_per_tick:
                    break
                acted += 1  # attempts count: aborts still spent the slot
                if work.action == "index":
                    self._run_targeted_index(work, report)
                else:
                    self._run_refine(work, report)
            span.set("planned", len(works))
            span.set("acted", acted)
            span.set("indexed", len(report.indexed))
            span.set("refined", len(report.refined))
            span.set("idle", report.idle)
        _TICKS.inc(outcome="idle" if report.idle else "acted")
        get_hub().series("crack.heat_keys").observe(
            float(len(self.heat)), at_s=at_s
        )
        self._record_telemetry(span, report)
        if self.snapshots is not None:
            self.snapshots.commit(
                get_hub(), heat=self.heat, source="crack", at_s=at_s
            )
        return report

    def _run_targeted_index(self, work, report: TickReport) -> None:
        snap = self.client.lake.snapshot()
        keep = set(work.files)
        sub = dataclasses.replace(
            snap, files=tuple(f for f in snap.files if f.path in keep)
        )
        if not sub.files:
            return
        record = self.run_index(
            work.column, work.index_type, snapshot=sub, report=report
        )
        if record is not None:
            _ACTIONS.inc(action="index")

    def _run_refine(self, work, report: TickReport) -> None:
        # Re-resolve the record against live metadata: the planned key
        # may have been superseded (e.g. by a recovery re-run) since.
        live = {
            r.index_key: r
            for r in covering_records(
                self.client, work.column, work.index_type
            )
        }
        record = live.get(work.index_key)
        if record is None:
            return
        new_record = refine_index(
            self.client,
            record,
            work.cells,
            min_cell_rows=self.cracking.refine_min_cell_rows,
            max_nlist=self.cracking.max_nlist,
            seed=self.refine_seed,
        )
        if new_record is not None:
            report.refined.append(new_record)
            _ACTIONS.inc(action="refine")

"""Query-adaptive (cracking) indexing: index what queries actually touch.

Eager indexing pays the full build cost up front; pure lazy search
pays brute-force forever. Under a skewed workload neither is optimal:
most queries hit a small hot set. This package closes the loop —

* :mod:`repro.crack.heat` turns the search client's span stream into a
  decayed, mergeable heat map (per file and per IVF-PQ cell);
* :mod:`repro.crack.policy` ranks candidate work by expected
  dollars-avoided per byte of build IO;
* :mod:`repro.crack.controller` runs the top-ranked work each tick:
  targeted indexing of hot files, cell refinement of hot inverted
  lists, cold data left brute-force;
* :mod:`repro.crack.bench` measures the payoff on a Zipf workload
  against fully-eager and fully-lazy deployments.
"""

from repro.crack.bench import CrackBenchResult, run_crack_bench
from repro.crack.controller import CrackController, refine_index
from repro.crack.heat import (
    DEFAULT_HALF_LIFE_S,
    HeatKey,
    HeatMap,
    cell_scope,
)
from repro.crack.policy import CrackingPolicy, CrackWork

__all__ = [
    "CrackBenchResult",
    "CrackController",
    "CrackingPolicy",
    "CrackWork",
    "DEFAULT_HALF_LIFE_S",
    "HeatKey",
    "HeatMap",
    "cell_scope",
    "refine_index",
    "run_crack_bench",
]

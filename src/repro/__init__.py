"""repro: a full reproduction of *Rottnest: Indexing Data Lakes for
Search* (ICDE 2025).

Layer map (bottom up):

* :mod:`repro.storage` — S3-like object store with latency/cost models,
* :mod:`repro.formats` — Parquet-like columnar format + two readers,
* :mod:`repro.lake` — Delta-like transactional data lake,
* :mod:`repro.meta` — Rottnest's transactional metadata table,
* :mod:`repro.indices` — componentized trie / FM-index / IVF-PQ,
* :mod:`repro.core` — the Rottnest client protocol
  (``index`` / ``search`` / ``compact`` / ``vacuum``),
* :mod:`repro.serve` — concurrent query serving with caching,
  single-flight deduplication, and admission control,
* :mod:`repro.engines` — brute-force and copy-data baselines,
* :mod:`repro.tco` — the TCO phase-diagram evaluation framework,
* :mod:`repro.workloads` — synthetic workload generators.

Quickstart::

    from repro import quickstart  # see examples/quickstart.py
"""

from repro.core import (
    RangeQuery,
    RegexQuery,
    RottnestClient,
    SearchMatch,
    SearchResult,
    SubstringQuery,
    UuidQuery,
    VectorQuery,
    compact_indices,
    vacuum_indices,
)
from repro.lake import LakeTable, TableConfig
from repro.formats import ColumnType, Field, Schema
from repro.serve import CachingObjectStore, SearchExecutor, SearchServer
from repro.storage import InMemoryObjectStore, LocalFSObjectStore

__version__ = "1.0.0"

__all__ = [
    "RangeQuery",
    "RegexQuery",
    "RottnestClient",
    "SearchMatch",
    "SearchResult",
    "SubstringQuery",
    "UuidQuery",
    "VectorQuery",
    "compact_indices",
    "vacuum_indices",
    "LakeTable",
    "TableConfig",
    "ColumnType",
    "Field",
    "Schema",
    "CachingObjectStore",
    "SearchExecutor",
    "SearchServer",
    "InMemoryObjectStore",
    "LocalFSObjectStore",
    "__version__",
]

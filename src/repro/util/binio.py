"""Little binary writer/reader used by the file formats.

Every persistent structure in this repo (Parquet-like files, index
components, page tables) serializes through these helpers so framing
conventions stay uniform: little-endian fixed ints, uvarints, and
length-prefixed byte strings.
"""

from __future__ import annotations

import struct

from repro.errors import FormatError
from repro.util.varint import decode_uvarint, encode_uvarint


class BinaryWriter:
    """Append-only binary buffer with typed write helpers."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def __len__(self) -> int:
        return len(self._buf)

    def write_bytes(self, data: bytes) -> None:
        self._buf += data

    def write_u8(self, value: int) -> None:
        self._buf += struct.pack("<B", value)

    def write_u32(self, value: int) -> None:
        self._buf += struct.pack("<I", value)

    def write_u64(self, value: int) -> None:
        self._buf += struct.pack("<Q", value)

    def write_f64(self, value: float) -> None:
        self._buf += struct.pack("<d", value)

    def write_uvarint(self, value: int) -> None:
        self._buf += encode_uvarint(value)

    def write_len_bytes(self, data: bytes) -> None:
        """Length-prefixed (uvarint) byte string."""
        self.write_uvarint(len(data))
        self.write_bytes(data)

    def write_str(self, text: str) -> None:
        self.write_len_bytes(text.encode("utf-8"))

    def getvalue(self) -> bytes:
        return bytes(self._buf)


class BinaryReader:
    """Sequential reader over a bytes buffer with typed read helpers."""

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self._data = data
        self._pos = offset

    @property
    def pos(self) -> int:
        return self._pos

    def remaining(self) -> int:
        return len(self._data) - self._pos

    def _take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise FormatError(
                f"truncated read: wanted {n} bytes at {self._pos}, "
                f"only {len(self._data) - self._pos} remain"
            )
        chunk = self._data[self._pos : self._pos + n]
        self._pos += n
        return chunk

    def read_bytes(self, n: int) -> bytes:
        return self._take(n)

    def read_u8(self) -> int:
        return struct.unpack("<B", self._take(1))[0]

    def read_u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def read_u64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def read_f64(self) -> float:
        return struct.unpack("<d", self._take(8))[0]

    def read_uvarint(self) -> int:
        try:
            value, self._pos = decode_uvarint(self._data, self._pos)
        except ValueError as exc:
            raise FormatError(str(exc)) from exc
        return value

    def read_len_bytes(self) -> bytes:
        return self._take(self.read_uvarint())

    def read_str(self) -> str:
        return self.read_len_bytes().decode("utf-8")

"""Unsigned LEB128 varints, used throughout the on-"disk" formats.

Posting lists, page tables and component offset arrays store many small
integers; varints keep index files compact, which directly lowers the
``cpm_r`` storage term in the TCO model.
"""

from __future__ import annotations


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as LEB128."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a LEB128 integer from ``data`` starting at ``offset``.

    Returns ``(value, next_offset)``.
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated uvarint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise ValueError("uvarint too long (more than 64 bits)")

"""Clock abstraction.

The Rottnest ``vacuum`` protocol depends on object timestamps measured
against *the object store's* clock (the paper relies on modern object
stores having a single global clock). Using a simulated clock makes the
timeout logic deterministic and instantly testable: tests advance time
explicitly instead of sleeping.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Source of the current time in seconds (float, epoch-like)."""

    @abstractmethod
    def now(self) -> float:
        """Return the current time in seconds."""


class SystemClock(Clock):
    """Wall-clock time; used when running against real infrastructure."""

    def now(self) -> float:
        return time.time()


class SimClock(Clock):
    """Deterministic manually-advanced clock for tests and simulation."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward; negative advances are rejected."""
        if seconds < 0:
            raise ValueError(f"cannot move time backwards by {seconds}s")
        self._now += seconds

    def set(self, timestamp: float) -> None:
        """Jump to an absolute time, which must not be in the past."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot set clock to {timestamp} before current {self._now}"
            )
        self._now = timestamp

"""Small shared utilities: simulated clock, varints, binary IO helpers."""

from repro.util.binio import BinaryReader, BinaryWriter
from repro.util.clock import Clock, SimClock, SystemClock
from repro.util.varint import decode_uvarint, encode_uvarint

__all__ = [
    "Clock",
    "SimClock",
    "SystemClock",
    "encode_uvarint",
    "decode_uvarint",
    "BinaryReader",
    "BinaryWriter",
]

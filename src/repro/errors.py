"""Exception hierarchy for the Rottnest reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Subsystems raise the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ObjectStoreError(ReproError):
    """Base class for object-store failures."""


class ObjectNotFound(ObjectStoreError):
    """The requested key does not exist in the store."""

    def __init__(self, key: str) -> None:
        super().__init__(f"object not found: {key!r}")
        self.key = key


class PreconditionFailed(ObjectStoreError):
    """A conditional PUT (if-none-match) lost the race: the key exists."""

    def __init__(self, key: str) -> None:
        super().__init__(f"precondition failed, key exists: {key!r}")
        self.key = key


class InvalidByteRange(ObjectStoreError):
    """A byte-range GET asked for bytes outside the object."""


class InjectedFault(ObjectStoreError):
    """Raised by the fault-injection wrapper to simulate infrastructure
    failures (used by tests and the protocol crash-safety suite)."""


class SimulatedCrash(ReproError):
    """A chaos-injected client death: the process "dies" right *after*
    an object-store mutation durably completed.

    Deliberately **not** an :class:`ObjectStoreError`: retry wrappers
    and degradation paths must not absorb a simulated crash — the whole
    point is that nothing downstream of the dead client runs.
    """

    def __init__(self, op: str, key: str) -> None:
        super().__init__(f"simulated crash after {op} {key!r}")
        self.op = op
        self.key = key


class InvariantViolation(ReproError):
    """The Existence or Consistency invariant (paper §IV-D) failed an
    audit — raised by the chaos invariant checker, never in normal
    operation."""


class FormatError(ReproError):
    """Malformed file in the columnar format layer."""


class LakeError(ReproError):
    """Base class for data-lake failures."""


class CommitConflict(LakeError):
    """Optimistic commit lost: another writer committed the same version."""


class SnapshotNotFound(LakeError):
    """The requested snapshot version does not exist."""


class ColumnNotFound(LakeError):
    """The requested column is not part of the table schema."""


class IndexError_(ReproError):
    """Base class for index build/query failures.

    Named with a trailing underscore to avoid shadowing the builtin
    ``IndexError``; exported as ``RottnestIndexError`` from the package.
    """


class IndexAborted(IndexError_):
    """An ``index`` call aborted (timeout, vanished input file, or the
    new data fell below the index type's minimum size)."""


class UnknownIndexType(IndexError_):
    """The metadata table references an index type that is not registered."""


class TCOError(ReproError):
    """Invalid input to the TCO / phase-diagram framework."""


class ServeError(ReproError):
    """Base class for query-serving (``repro.serve``) failures."""


class ServerOverloaded(ServeError):
    """Admission control rejected a query: the server already has its
    maximum number of in-flight queries and shedding was requested."""


class ShardError(ReproError):
    """Base class for sharded-deployment (``repro.shard``) failures."""


class ShardUnavailable(ShardError):
    """One or more shards failed to answer and the router was
    configured to fail the whole query (``on_shard_failure="error"``)
    rather than return a partial result."""


class CrackError(ReproError):
    """Invalid input to the query-adaptive (cracking) index controller
    (``repro.crack``): negative heat weights, malformed heat-map
    serializations, or unusable policy parameters."""


class IngestError(ReproError):
    """Base class for real-time ingest tier (``repro.ingest``) failures."""


class WalCorruption(IngestError):
    """A WAL segment failed its checksum or framing check on replay."""


RottnestIndexError = IndexError_

"""Scatter-gather query router over a sharded deployment.

:class:`QueryRouter` is the stateless front door of a
:class:`~repro.shard.plan.ShardDeployment`: it prunes shards that
cannot hold matches (hash placement for exact-key queries, min-max
spans for range placement, partition sets always), fans the survivors
out over a :class:`~repro.storage.pool.TracedPool` so an N-shard
query's latency composes per wave (max within a wave, sum across
waves) exactly like the executor's modeled fan-out, load-balances each
shard across its replicas round-robin, hedges slow primaries to a
replica per :class:`~repro.shard.hedge.HedgePolicy`, and merges the
per-shard answers — a global top-k heap merge for scoring queries, a
deterministic union for exact ones.

Failure is per shard, never silent: a shard whose index reads fail
degrades to brute-force inside its own :class:`~repro.serve
.SearchServer` (exact answers, counted degraded); a shard whose *data*
reads fail is reported in :attr:`RoutedResult.failed_shards` (partial
mode) or raises :class:`~repro.errors.ShardUnavailable` (error mode).
Per-shard latency/traffic land in the telemetry hub under
``router.shard<N>.*`` — the same sketches the hedge policy and the
per-shard SLOs (:func:`repro.shard.slo.router_slo`) read.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.client import SearchMatch
from repro.core.queries import Query
from repro.errors import ShardError, ShardUnavailable
from repro.obs.metrics import get_registry
from repro.obs.timeseries import get_hub
from repro.obs.trace import get_tracer
from repro.shard.hedge import HedgePolicy
from repro.shard.plan import ShardDeployment, ShardGroup, ShardReplica
from repro.storage.costs import CostModel
from repro.storage.object_store import InMemoryObjectStore
from repro.storage.pool import IOBudget, TracedPool
from repro.storage.stats import RequestTrace

#: Instance type the per-shard searcher compute is priced on.
ROUTER_INSTANCE = "c6i.2xlarge"

_ROUTER_QUERIES = get_registry().counter(
    "router_queries_total", "Routed queries by outcome", ("status",)
)
_HEDGES = get_registry().counter(
    "router_hedges_total",
    "Hedged shard requests issued after the per-shard latency threshold",
)
_HEDGE_WINS = get_registry().counter(
    "router_hedge_wins_total",
    "Hedged shard requests that beat their primary",
)
_PRUNED = get_registry().counter(
    "router_shards_pruned_total",
    "Shards skipped by hash/min-max/partition pruning",
)
_SHARD_FAILURES = get_registry().counter(
    "router_shard_failures_total",
    "Shard queries that failed even after brute-force fallback",
    ("shard",),
)


def _rank_key(match: SearchMatch):
    return (match.score, match.file, match.row)


def _exact_key(match: SearchMatch):
    return (match.file, match.row)


def merge_topk(ranked: Sequence[Sequence[SearchMatch]], k: int) -> list[SearchMatch]:
    """Global top-k heap merge of per-shard scored result lists.

    Equivalent to sorting the union by ``(score, file, row)`` and
    taking the first ``k`` (the property test pins this), but does the
    k-way merge with a heap over per-shard sorted runs. Ties on score
    break deterministically on ``(file, row)``.
    """
    runs = [sorted(matches, key=_rank_key) for matches in ranked]
    merged = heapq.merge(*runs, key=_rank_key)
    return [match for _, match in zip(range(k), merged)]


def merge_exact(
    lists: Sequence[Sequence[SearchMatch]], k: int
) -> list[SearchMatch]:
    """Deterministic union of per-shard exact matches, truncated to k."""
    runs = [sorted(matches, key=_exact_key) for matches in lists]
    merged = heapq.merge(*runs, key=_exact_key)
    return [match for _, match in zip(range(k), merged)]


def _trace_request_usd(trace: RequestTrace, costs: CostModel) -> float:
    """Price a request trace's operations (HEAD billed as GET)."""
    gets = puts = lists = 0
    for round_ in trace.rounds:
        for request in round_:
            if request.op in ("GET", "HEAD"):
                gets += 1
            elif request.op == "PUT":
                puts += 1
            elif request.op == "LIST":
                lists += 1
    return costs.request_cost(gets=gets, puts=puts, lists=lists)


@dataclass
class ShardOutcome:
    """What one shard contributed to a routed query."""

    shard_id: int
    replica_id: int = 0
    matches: list[SearchMatch] = field(default_factory=list)
    latency_s: float = 0.0
    requests: int = 0
    request_usd: float = 0.0
    hedged: bool = False
    hedge_won: bool = False
    degraded: bool = False
    error: Exception | None = None

    @property
    def failed(self) -> bool:
        return self.error is not None


@dataclass
class RoutedResult:
    """Merged answer plus per-shard accounting for one routed query."""

    matches: list[SearchMatch]
    outcomes: list[ShardOutcome]
    shards_pruned: int
    modeled_latency_s: float
    request_usd: float
    compute_usd: float

    @property
    def shards_queried(self) -> int:
        return len(self.outcomes)

    @property
    def failed_shards(self) -> list[int]:
        return [o.shard_id for o in self.outcomes if o.failed]

    @property
    def degraded_shards(self) -> list[int]:
        return [o.shard_id for o in self.outcomes if o.degraded]

    @property
    def hedges(self) -> int:
        return sum(1 for o in self.outcomes if o.hedged)

    @property
    def hedge_wins(self) -> int:
        return sum(1 for o in self.outcomes if o.hedge_won)

    @property
    def total_requests(self) -> int:
        return sum(o.requests for o in self.outcomes)

    @property
    def cost_usd(self) -> float:
        return self.request_usd + self.compute_usd

    @property
    def complete(self) -> bool:
        """True when every queried shard answered."""
        return not any(o.failed for o in self.outcomes)


class QueryRouter:
    """Stateless scatter-gather router over a :class:`ShardDeployment`.

    ``fanout`` bounds how many shards are queried concurrently (one
    TracedPool wave); it defaults to the shard count, so a healthy
    deployment answers in a single wave whose modeled latency is the
    slowest shard, not the sum. ``on_shard_failure`` picks between
    raising :class:`ShardUnavailable` (``"error"``, default) and
    returning a partial result with :attr:`RoutedResult.failed_shards`
    populated (``"partial"``) — failures are reported either way,
    never silently dropped from the merge.
    """

    def __init__(
        self,
        deployment: ShardDeployment,
        *,
        fanout: int | None = None,
        hedge: HedgePolicy | None = HedgePolicy(),
        prune: bool = True,
        on_shard_failure: str = "error",
        cost_model: CostModel | None = None,
        budget: IOBudget | None = None,
        fresh_tier=None,
    ) -> None:
        if on_shard_failure not in ("error", "partial"):
            raise ShardError(
                "on_shard_failure must be 'error' or 'partial', "
                f"got {on_shard_failure!r}"
            )
        self.deployment = deployment
        self.hedge = hedge
        #: Optional :class:`repro.ingest.IngestTier` over the *source*
        #: lake. Shards are materialized from committed lake data, so
        #: acked-but-undrained rows exist on no shard; the router
        #: merges the tier's fresh view as one more sorted run so the
        #: sharded path honors the same freshness contract as a single
        #: server. The probe is pinned to the snapshot the shards were
        #: materialized from (and leased against eviction via
        #: ``tier.pin``): a drain committed after materialization
        #: advances the *current* floor, but its rows are on no shard —
        #: probing the current snapshot would silently drop them.
        self.fresh_tier = fresh_tier
        self._fresh_snapshot = None
        self._fresh_lease = None
        if fresh_tier is not None:
            self._fresh_snapshot = (
                deployment.source_snapshot or fresh_tier.lake.snapshot()
            )
            self._fresh_lease = fresh_tier.pin(self._fresh_snapshot)
        self.prune = prune
        self.on_shard_failure = on_shard_failure
        self.cost_model = cost_model or CostModel()
        self.fanout = fanout or max(1, deployment.n_shards)
        # The pool needs a store of its own for wave bookkeeping: shard
        # traces are recorded inside each replica's server (through its
        # caching store), so tracing the pool on a shard store would
        # collide with the server's own start/stop on the same thread.
        self._pool = TracedPool(
            InMemoryObjectStore(clock=deployment.clock),
            workers=self.fanout,
            thread_name_prefix="router",
            span_name="router:shard",
            budget=budget,
        )

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self.fresh_tier is not None and self._fresh_lease is not None:
            self.fresh_tier.unpin(self._fresh_lease)
            self._fresh_lease = None
        self._pool.close()

    def __enter__(self) -> "QueryRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- serving -------------------------------------------------------
    def query(
        self,
        column: str,
        query: Query,
        *,
        k: int = 10,
        partition: str | None = None,
    ) -> RoutedResult:
        """Scatter ``query`` to eligible shards, gather, merge top-k."""
        hub = get_hub()
        groups, pruned = self.deployment.route(
            column, query, partition=partition, prune=self.prune
        )
        if pruned:
            _PRUNED.inc(pruned)
        with get_tracer().span("router.query", column=column, k=k):
            tasks = [
                self._shard_task(group, column, query, k, partition, hub)
                for group in groups
            ]
            outcomes: list[ShardOutcome] = []
            if tasks:
                _, outcomes = self._pool.run(tasks)

        failed = [o for o in outcomes if o.failed]
        if failed and self.on_shard_failure == "error":
            _ROUTER_QUERIES.inc(status="failed")
            raise ShardUnavailable(
                f"{len(failed)} shard(s) failed: "
                + ", ".join(
                    f"shard{o.shard_id}: {o.error}" for o in failed
                )
            ) from failed[0].error

        answered = [o for o in outcomes if not o.failed]
        per_shard = [o.matches for o in answered]
        if self.fresh_tier is not None and partition is None:
            # The fresh tier is one more sorted run in the global
            # merge: an in-memory probe of the WAL segments beyond the
            # *materialization* snapshot's floor (not the lake's
            # current one — rows drained since then are on no shard),
            # identified by WAL-segment keys so it can never collide
            # with a shard's (file, row) identities.
            with get_tracer().span("router.fresh", column=column):
                per_shard.append(
                    self.fresh_tier.search_fresh(
                        column, query, k=k, snapshot=self._fresh_snapshot
                    )
                )
        if query.scoring:
            matches = merge_topk(per_shard, k)
        else:
            matches = merge_exact(per_shard, k)

        # Wave composition: within a wave shards run in parallel (max),
        # waves run sequentially (sum) — TracedPool's execution shape.
        modeled = 0.0
        for start in range(0, len(outcomes), self.fanout):
            wave = outcomes[start : start + self.fanout]
            modeled += max((o.latency_s for o in wave), default=0.0)
        request_usd = sum(o.request_usd for o in outcomes)
        compute_usd = sum(
            self.cost_model.compute_cost(ROUTER_INSTANCE, o.latency_s)
            for o in outcomes
        )

        at_s = self.deployment.clock.now() if self.deployment.clock else 0.0
        hub.quantiles("router.latency_s").observe(modeled, at_s=at_s)
        hub.series("router.queries").observe(1.0, at_s=at_s)
        hub.series("router.cost_usd").observe(
            request_usd + compute_usd, at_s=at_s
        )
        _ROUTER_QUERIES.inc(status="partial" if failed else "ok")
        return RoutedResult(
            matches=matches,
            outcomes=outcomes,
            shards_pruned=pruned,
            modeled_latency_s=modeled,
            request_usd=request_usd,
            compute_usd=compute_usd,
        )

    # -- per-shard execution -------------------------------------------
    def _shard_task(
        self,
        group: ShardGroup,
        column: str,
        query: Query,
        k: int,
        partition: str | None,
        hub,
    ):
        def run() -> ShardOutcome:
            return self._query_shard(group, column, query, k, partition, hub)

        return run

    def _query_shard(
        self,
        group: ShardGroup,
        column: str,
        query: Query,
        k: int,
        partition: str | None,
        hub,
    ) -> ShardOutcome:
        shard_id = group.shard_id
        at_s = self.deployment.clock.now() if self.deployment.clock else 0.0
        replica = group.pick()
        outcome = ShardOutcome(shard_id=shard_id, replica_id=replica.replica_id)
        try:
            result, latency, degraded = self._attempt(
                replica, column, query, k, partition
            )
        except Exception as exc:
            outcome.error = exc
            _SHARD_FAILURES.inc(shard=str(shard_id))
            hub.series(f"router.shard{shard_id}.queries").observe(1.0, at_s=at_s)
            hub.series(f"router.shard{shard_id}.failed").observe(1.0, at_s=at_s)
            return outcome
        outcome.degraded = degraded
        outcome.requests = result.stats.trace.total_requests
        outcome.request_usd = _trace_request_usd(
            result.stats.trace, self.cost_model
        )

        threshold = self._hedge_threshold(group, shard_id, hub)
        if threshold is not None and latency > threshold:
            outcome.hedged = True
            _HEDGES.inc()
            hub.series("router.hedges").observe(1.0, at_s=at_s)
            peer = group.peer_of(replica)
            try:
                # The hedge runs under a span tagged `hedge=True` plus
                # the originating trace id, so critical-path attribution
                # and the flight recorder can tell a hedged retry from
                # an independent query (and never double-count winner
                # and loser as two slow queries).
                with get_tracer().span(
                    "router.hedge",
                    hedge=True,
                    shard=shard_id,
                    origin_trace_id=self._origin_trace_id(),
                ):
                    hedge_result, hedge_latency, hedge_degraded = (
                        self._attempt(peer, column, query, k, partition)
                    )
                # The hedge launches when the primary crosses the
                # threshold; whichever answer lands first wins and the
                # loser is cancelled. Both sets of issued requests are
                # still paid for.
                effective = threshold + hedge_latency
                outcome.requests += hedge_result.stats.trace.total_requests
                outcome.request_usd += _trace_request_usd(
                    hedge_result.stats.trace, self.cost_model
                )
                if effective < latency:
                    outcome.hedge_won = True
                    _HEDGE_WINS.inc()
                    hub.series("router.hedge_wins").observe(1.0, at_s=at_s)
                    result, latency = hedge_result, effective
                    outcome.degraded = hedge_degraded
                    outcome.replica_id = peer.replica_id
            except Exception:
                pass  # hedge lost by dying; the primary answer stands

        outcome.matches = result.matches
        outcome.latency_s = latency
        hub.quantiles(f"router.shard{shard_id}.latency_s").observe(
            latency, at_s=at_s
        )
        hub.series(f"router.shard{shard_id}.queries").observe(1.0, at_s=at_s)
        return outcome

    @staticmethod
    def _origin_trace_id() -> str:
        """Identity of the query this hedge retries: the root span's
        retained trace id when the flight recorder assigned one, else
        the root span id (stable within the process)."""
        span = get_tracer().current()
        if span is None:
            return ""
        while span.parent is not None:
            span = span.parent
        return str(span.attributes.get("trace_id", span.span_id))

    def _attempt(
        self,
        replica: ShardReplica,
        column: str,
        query: Query,
        k: int,
        partition: str | None,
    ):
        """One replica query: (result, modeled latency, degraded?).

        Degradation (index-read failure -> brute-force retry) happens
        inside the replica's server; it is detected here by the
        server's degraded counter moving, which can over-attribute
        under concurrent routed queries to the same replica — an
        accounting blur, never a correctness one.
        """
        server = replica.server
        degraded_before = server.stats.degraded
        result = server.query(column, query, k=k, partition=partition)
        degraded = server.stats.degraded > degraded_before
        latency = result.stats.estimated_latency(replica.latency_model)
        return result, latency, degraded

    def _hedge_threshold(
        self, group: ShardGroup, shard_id: int, hub
    ) -> float | None:
        if self.hedge is None or len(group.replicas) < 2:
            return None
        sketch = hub.quantiles(f"router.shard{shard_id}.latency_s").merged()
        return self.hedge.threshold_s(sketch)

"""Tail-at-scale hedging policy: when to issue the backup request.

Dean & Barroso's hedged-request recipe, driven by the deployment's own
telemetry: each shard's modeled latencies stream into a per-shard
:class:`~repro.obs.timeseries.WindowedQuantiles` sketch under
``router.shard<N>.latency_s``; once a shard has enough history, the
policy's threshold is ``factor ×`` that shard's ``quantile``. A primary
whose modeled latency lands above the threshold gets a hedged request
to a replica, and the router keeps whichever answer *would have*
arrived first under simulated time — ``min(primary, threshold +
replica)`` — cancelling the loser.

Everything is modeled, so the hedge decision is deterministic: the
same query history produces the same thresholds and the same
hedge/win counts, which is what lets the benchmark regression gate pin
them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ShardError
from repro.obs.timeseries import QuantileSketch


@dataclass(frozen=True)
class HedgePolicy:
    """Hedge when modeled primary latency exceeds ``factor × qX``.

    ``min_observations`` keeps the policy quiet until the per-shard
    sketch has seen enough traffic to estimate the quantile — cold
    shards never hedge, so startup is not a hedge storm.
    """

    quantile: float = 0.5
    factor: float = 1.5
    min_observations: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.quantile <= 1.0:
            raise ShardError(
                f"hedge quantile must be in [0, 1], got {self.quantile}"
            )
        if self.factor <= 0:
            raise ShardError(f"hedge factor must be > 0, got {self.factor}")
        if self.min_observations < 1:
            raise ShardError(
                f"min_observations must be >= 1, got {self.min_observations}"
            )

    def threshold_s(self, sketch: QuantileSketch) -> float | None:
        """Latency above which to hedge, or None without enough data."""
        if sketch.count < self.min_observations:
            return None
        return sketch.quantile(self.quantile) * self.factor

"""Per-shard SLOs for a routed deployment, on the burn-rate machinery.

One sharded deployment gets ``1 + 2N`` objectives, all evaluated by
the existing :mod:`repro.obs.slo` two-horizon burn-rate logic against
the series the router already emits:

* a router-level latency objective over ``router.latency_s`` (what the
  caller experiences after scatter-gather + hedging);
* per shard, a latency objective over ``router.shard<N>.latency_s``
  (so one slow shard pages as *that shard*, not as a vague router
  regression) and an availability objective of
  ``router.shard<N>.failed`` over ``router.shard<N>.queries`` (a shard
  that stops answering burns its own error budget even while the
  router keeps serving partial results).

``repro shard-bench`` evaluates this SLO over its run and the
dashboard's router section sits next to the same numbers.
"""

from __future__ import annotations

from repro.obs.slo import (
    SLO,
    AvailabilityObjective,
    LatencyObjective,
)


def shard_latency_series(shard_id: int) -> str:
    """Hub series name for one shard's routed latency sketch."""
    return f"router.shard{shard_id}.latency_s"


def router_slo(
    n_shards: int,
    *,
    latency_p99_s: float = 1.0,
    shard_latency_p99_s: float | None = None,
    shard_availability: float = 0.999,
) -> SLO:
    """The routed-deployment SLO: router latency + per-shard objectives.

    ``shard_latency_p99_s`` defaults to the router budget — in a
    single-wave deployment the router is only as fast as its slowest
    shard, so the same ceiling applies per shard.
    """
    per_shard = (
        shard_latency_p99_s if shard_latency_p99_s is not None else latency_p99_s
    )
    objectives: list = [
        LatencyObjective(
            name=f"router_latency_p99_le_{latency_p99_s:g}s",
            quantile=0.99,
            threshold_s=latency_p99_s,
            series="router.latency_s",
        )
    ]
    for shard_id in range(n_shards):
        objectives.append(
            LatencyObjective(
                name=f"shard{shard_id}_latency_p99_le_{per_shard:g}s",
                quantile=0.99,
                threshold_s=per_shard,
                series=shard_latency_series(shard_id),
            )
        )
        objectives.append(
            AvailabilityObjective(
                name=f"shard{shard_id}_availability_ge_{shard_availability:g}",
                target=shard_availability,
                total_series=f"router.shard{shard_id}.queries",
                bad_series=f"router.shard{shard_id}.failed",
            )
        )
    return SLO(objectives=objectives)

"""Modeled scaling scenario for the sharded scatter-gather router.

Builds one uuid lake, materializes it at several shard counts on a
simulated clock, and routes the same query stream through each
deployment. Latencies and dollars are *modeled* from request traces
(:class:`~repro.storage.latency.LatencyModel` /
:class:`~repro.storage.costs.CostModel`), so the run is deterministic:
the same seed produces the same p50/p99, the same hedge count, and the
same costs — which is what lets the benchmark regression gate pin the
numbers.

Three phases:

* **scatter** — ``prune=False``, one replica: every query fans out to
  all N shards in one wave, so p50 tracks the *slowest shard* (Fig. 8c
  shape: ~flat latency) while request cost grows ~linearly with N.
* **routed** — ``prune=True``: hash placement routes each exact-key
  query to its single owning shard, so cost collapses back to ~one
  shard's worth while latency stays flat.
* **hedging** — two replicas with one slow node injected: with hedging
  off the slow replica owns the tail; with
  :class:`~repro.shard.hedge.HedgePolicy` on, primaries that cross the
  per-shard latency threshold are hedged to the fast peer and p99 drops
  measurably.

Shared by ``benchmarks/bench_sharding.py`` (which persists
``BENCH_sharding.json`` for the regression gate) and the
``repro shard-bench`` CLI subcommand (which prints the numbers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.queries import UuidQuery
from repro.formats.schema import ColumnType, Field as SchemaField, Schema
from repro.lake.table import LakeTable, TableConfig
from repro.obs.timeseries import TelemetryHub, use_hub
from repro.shard.hedge import HedgePolicy
from repro.shard.plan import ShardPlan
from repro.shard.router import QueryRouter
from repro.shard.slo import router_slo
from repro.storage.latency import LatencyModel
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock
from repro.workloads.uuids import UuidWorkload

SCHEMA = Schema.of(SchemaField("uuid", ColumnType.BINARY))
SOURCE_ROOT = "lake/source"


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


@dataclass
class ShardBenchResult:
    """Modeled routing numbers across shard counts plus the hedge A/B."""

    files: int
    rows: int
    replicas: int
    slow_factor: float
    scatter_p50_ms: dict[int, float] = field(default_factory=dict)
    scatter_p99_ms: dict[int, float] = field(default_factory=dict)
    scatter_cost_usd: dict[int, float] = field(default_factory=dict)
    scatter_requests: dict[int, float] = field(default_factory=dict)
    routed_p50_ms: dict[int, float] = field(default_factory=dict)
    routed_cost_usd: dict[int, float] = field(default_factory=dict)
    routed_pruned: dict[int, float] = field(default_factory=dict)
    hedge_shards: int = 0
    hedge_off_p99_ms: float = 0.0
    hedge_on_p99_ms: float = 0.0
    hedges: int = 0
    hedge_wins: int = 0
    slo_ok: bool = False

    # -- derived -------------------------------------------------------
    def p50_ratio(self, n_shards: int) -> float:
        """Scatter p50 at ``n_shards`` over the single-shard p50."""
        return self.scatter_p50_ms[n_shards] / self.scatter_p50_ms[1]

    def cost_ratio(self, n_shards: int) -> float:
        """Scatter cost/query at ``n_shards`` over single-shard cost."""
        return self.scatter_cost_usd[n_shards] / self.scatter_cost_usd[1]

    @property
    def hedge_p99_speedup(self) -> float:
        """Hedge-off p99 over hedge-on p99 (> 1 means hedging helps)."""
        if self.hedge_on_p99_ms == 0:
            return 0.0
        return self.hedge_off_p99_ms / self.hedge_on_p99_ms

    @property
    def ok(self) -> bool:
        """The acceptance shape: scatter stays ~flat at 4 shards and
        hedging measurably cuts the injected-slow-node p99."""
        return (
            4 in self.scatter_p50_ms
            and self.p50_ratio(4) <= 1.15
            and self.hedge_p99_speedup > 1.0
        )

    def describe(self) -> str:
        """Human-readable summary for the CLI."""
        lines = [
            f"shard-bench: {self.files} files x {self.rows} rows "
            "(modeled store latency)",
            "  scatter (prune off, every shard queried each time):",
        ]
        for n in sorted(self.scatter_p50_ms):
            ratio = f"  (p50 {self.p50_ratio(n):.2f}x, cost {self.cost_ratio(n):.2f}x)" if n != 1 else ""
            lines.append(
                f"    shards={n}: p50 {self.scatter_p50_ms[n]:7.1f} ms  "
                f"p99 {self.scatter_p99_ms[n]:7.1f} ms  "
                f"${self.scatter_cost_usd[n]:.2e}/query"
                f"  {self.scatter_requests[n]:5.1f} req/query{ratio}"
            )
        lines.append("  routed (hash pruning on):")
        for n in sorted(self.routed_p50_ms):
            lines.append(
                f"    shards={n}: p50 {self.routed_p50_ms[n]:7.1f} ms  "
                f"${self.routed_cost_usd[n]:.2e}/query"
                f"  pruned {self.routed_pruned[n]:.1f}/{n} shards"
            )
        lines.append(
            f"  hedging ({self.hedge_shards} shards x {self.replicas} "
            f"replicas, one node {self.slow_factor:g}x slow):"
        )
        lines.append(f"    hedge off: p99 {self.hedge_off_p99_ms:7.1f} ms")
        lines.append(
            f"    hedge on:  p99 {self.hedge_on_p99_ms:7.1f} ms  "
            f"({self.hedge_p99_speedup:.2f}x, {self.hedges} hedges, "
            f"{self.hedge_wins} wins)"
        )
        lines.append(f"  per-shard SLO over the routed run: "
                     f"{'ok' if self.slo_ok else 'BREACHED'}")
        return "\n".join(lines)


def _build_source(files: int, rows: int, seed: int):
    store = InMemoryObjectStore(clock=SimClock(start=1_000_000.0))
    lake = LakeTable.create(
        store,
        SOURCE_ROOT,
        SCHEMA,
        TableConfig(row_group_rows=64, page_target_bytes=4096),
    )
    gen = UuidWorkload(seed=seed)
    for _ in range(files):
        lake.append({"uuid": gen.batch(rows)})
    return lake, gen


def run_shard_bench(
    *,
    files: int = 8,
    rows: int = 64,
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    replicas: int = 2,
    queries: int = 24,
    warmup: int = 12,
    slow_factor: float = 8.0,
    seed: int = 7,
    hedge_policy: HedgePolicy | None = None,
) -> ShardBenchResult:
    """Route the same query stream at each shard count; A/B the hedger.

    Every phase materializes a fresh deployment from the same source
    lake and uses a fresh telemetry hub, so phases cannot leak warmth
    or hedge history into each other.
    """
    shard_counts = tuple(sorted(set(shard_counts) | {1}))
    result = ShardBenchResult(
        files=files, rows=rows, replicas=replicas, slow_factor=slow_factor
    )
    source, gen = _build_source(files, rows, seed)
    keys = gen.present_queries(queries)
    warm_keys = gen.present_queries(warmup)
    indexes = [("uuid", "uuid_trie", {})]
    # A 1-byte cache budget disables replica caching: every query pays
    # its full modeled round trips, which is what a routing benchmark
    # is measuring (cache behaviour is bench_serving's subject).
    no_cache = {"cache_budget_bytes": 1}

    # -- scatter + routed sweeps ---------------------------------------
    for n in shard_counts:
        for routed in (False, True):
            with use_hub(TelemetryHub()) as hub:
                deployment = ShardPlan(n_shards=n, replicas=1).materialize(
                    source, "uuid", indexes=indexes, **no_cache
                )
                router = QueryRouter(
                    deployment, prune=routed, hedge=None,
                    on_shard_failure="error",
                )
                with deployment, router:
                    latencies, costs, requests, pruned = [], [], [], []
                    for key in keys:
                        res = router.query("uuid", UuidQuery(key), k=4)
                        latencies.append(res.modeled_latency_s * 1000)
                        costs.append(res.cost_usd)
                        requests.append(res.total_requests)
                        pruned.append(res.shards_pruned)
                if routed:
                    result.routed_p50_ms[n] = percentile(latencies, 0.5)
                    result.routed_cost_usd[n] = sum(costs) / len(costs)
                    result.routed_pruned[n] = sum(pruned) / len(pruned)
                    if n == max(shard_counts):
                        result.slo_ok = router_slo(n).evaluate(hub).ok
                else:
                    result.scatter_p50_ms[n] = percentile(latencies, 0.5)
                    result.scatter_p99_ms[n] = percentile(latencies, 0.99)
                    result.scatter_cost_usd[n] = sum(costs) / len(costs)
                    result.scatter_requests[n] = sum(requests) / len(requests)

    # -- hedging A/B: one slow node behind two replicas ----------------
    # With one of two replicas slow, half of a shard's observed
    # latencies are slow — the median IS the slow mode, so a p50-based
    # threshold never fires. Hedge against the fast quartile instead:
    # anything 1.5x slower than the fast mode gets a backup request.
    hedge_policy = hedge_policy or HedgePolicy(quantile=0.25)
    hedge_shards = 4 if 4 in shard_counts else max(shard_counts)
    result.hedge_shards = hedge_shards
    slow = LatencyModel(first_byte_s=LatencyModel().first_byte_s * slow_factor)

    def models(shard_id: int, replica_id: int) -> LatencyModel:
        if shard_id == 0 and replica_id == 0:
            return slow
        return LatencyModel()

    for hedge in (None, hedge_policy):
        with use_hub(TelemetryHub()) as hub:
            deployment = ShardPlan(
                n_shards=hedge_shards, replicas=replicas
            ).materialize(
                source, "uuid", indexes=indexes, latency_model_for=models,
                **no_cache,
            )
            router = QueryRouter(
                deployment, prune=False, hedge=hedge,
                on_shard_failure="error",
            )
            with deployment, router:
                for key in warm_keys:
                    router.query("uuid", UuidQuery(key), k=4)
                latencies = []
                hedges = wins = 0
                for key in keys:
                    res = router.query("uuid", UuidQuery(key), k=4)
                    latencies.append(res.modeled_latency_s * 1000)
                    hedges += res.hedges
                    wins += res.hedge_wins
            if hedge is None:
                result.hedge_off_p99_ms = percentile(latencies, 0.99)
            else:
                result.hedge_on_p99_ms = percentile(latencies, 0.99)
                result.hedges = hedges
                result.hedge_wins = wins
    return result

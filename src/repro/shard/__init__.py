"""Sharded multi-node serving: shard planning + scatter-gather routing.

The production-scale layer over one-lake serving: a
:class:`~repro.shard.plan.ShardPlan` splits a lake into N shards (hash
or range on a key column) with R replica servers each, and a
:class:`~repro.shard.router.QueryRouter` scatter-gathers queries over
the deployment — pruning shards the predicate rules out, modeling
latency per fan-out wave, hedging slow primaries to replicas
(:class:`~repro.shard.hedge.HedgePolicy`), and merging per-shard
results with a global top-k heap merge. :func:`~repro.shard.slo
.router_slo` wires the per-shard series into the burn-rate SLO
machinery, and :mod:`repro.shard.bench` is the modeled scaling
scenario behind ``repro shard-bench`` and
``benchmarks/bench_sharding.py``.
"""

from repro.shard.hedge import HedgePolicy
from repro.shard.plan import (
    SHARD_INDEX_DIR,
    SHARD_LAKE_ROOT,
    ShardDeployment,
    ShardGroup,
    ShardPlan,
    ShardReplica,
    ShardSpec,
    hash_shard,
)
from repro.shard.router import (
    QueryRouter,
    RoutedResult,
    ShardOutcome,
    merge_exact,
    merge_topk,
)
from repro.shard.slo import router_slo, shard_latency_series

__all__ = [
    "SHARD_INDEX_DIR",
    "SHARD_LAKE_ROOT",
    "HedgePolicy",
    "QueryRouter",
    "RoutedResult",
    "ShardDeployment",
    "ShardGroup",
    "ShardOutcome",
    "ShardPlan",
    "ShardReplica",
    "ShardSpec",
    "hash_shard",
    "merge_exact",
    "merge_topk",
    "router_slo",
    "shard_latency_series",
]

"""Shard planning: partition one lake into N shards plus replicas.

A :class:`ShardPlan` says *how* a lake is split — ``hash`` (uniform,
routable for exact-key lookups) or ``range`` (contiguous key spans,
routable for range predicates) on one key column, with ``replicas``
serving copies per shard. :meth:`ShardPlan.materialize` executes the
plan: it reads the source lake's live rows once, buckets them by shard
(preserving Hive-style partitions, so partition pruning keeps working
inside every shard), writes one independent lake per shard, builds the
requested indexes per shard (tolerating :class:`~repro.errors
.IndexAborted` when a shard falls under an index's row floor — the
shard then serves brute-force, which is still exact), and stands up
``replicas`` :class:`~repro.serve.SearchServer` instances per shard,
each with its own cache and latency model.

The resulting :class:`ShardDeployment` is the routing table the
:class:`~repro.shard.router.QueryRouter` scatter-gathers over: per
shard it records the key min/max, the partition set, and the row
count, which is what pruning consults. Replicas of one shard share the
shard's object store (same bytes) but never a cache — they model
separate serving nodes.
"""

from __future__ import annotations

import hashlib
import threading
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.core.client import RottnestClient
from repro.core.queries import Query, RangeQuery, UuidQuery
from repro.errors import IndexAborted, ShardError
from repro.formats.reader import ParquetFile
from repro.lake.table import LakeTable, TableConfig
from repro.serve.server import SearchServer
from repro.storage.latency import LatencyModel
from repro.storage.object_store import InMemoryObjectStore, ObjectStore

#: Every shard lake lives at the same root inside its own store.
SHARD_LAKE_ROOT = "lake/shard"

#: Every shard's index metadata table lives here inside its own store.
SHARD_INDEX_DIR = "idx/shard"


def key_bytes(key: object) -> bytes:
    """Canonical bytes of a shard key for hashing."""
    if isinstance(key, (bytes, bytearray, memoryview)):
        return bytes(key)
    if isinstance(key, str):
        return key.encode("utf-8")
    return str(key).encode("utf-8")


def hash_shard(key: object, n_shards: int) -> int:
    """Stable hash placement of ``key`` into ``n_shards`` buckets."""
    digest = hashlib.sha1(key_bytes(key)).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


@dataclass(frozen=True)
class ShardSpec:
    """Routing metadata for one shard, recorded at materialize time."""

    shard_id: int
    num_rows: int
    data_files: int
    key_min: object = None
    key_max: object = None
    partitions: frozenset = frozenset()


@dataclass
class ShardReplica:
    """One serving node for a shard: a server plus its latency model.

    Replicas of a shard share the shard store (same bytes) but each
    wraps it in its own :class:`~repro.serve.cache.CachingObjectStore`
    — separate node, separate memory. The latency model is per replica
    so benchmarks and chaos tests can make one node slow.
    """

    shard_id: int
    replica_id: int
    server: SearchServer
    latency_model: LatencyModel


class ShardGroup:
    """One shard: its spec, store, and replica set with round-robin."""

    def __init__(
        self,
        spec: ShardSpec,
        store: ObjectStore,
        replicas: list[ShardReplica],
    ) -> None:
        self.spec = spec
        self.store = store
        self.replicas = replicas
        self._rr = 0
        self._lock = threading.Lock()

    @property
    def shard_id(self) -> int:
        return self.spec.shard_id

    def pick(self) -> ShardReplica:
        """Next replica, round-robin — the router's load balancing."""
        with self._lock:
            replica = self.replicas[self._rr % len(self.replicas)]
            self._rr += 1
        return replica

    def peer_of(self, replica: ShardReplica) -> ShardReplica | None:
        """A different replica to hedge to (None without replication)."""
        if len(self.replicas) < 2:
            return None
        index = self.replicas.index(replica)
        return self.replicas[(index + 1) % len(self.replicas)]

    def maintenance_client(self) -> RottnestClient:
        """An uncached client on the shard store, for index builds."""
        return RottnestClient(
            self.store, SHARD_INDEX_DIR, LakeTable.open(self.store, SHARD_LAKE_ROOT)
        )


@dataclass(frozen=True)
class ShardPlan:
    """How to split a lake: N shards by hash or range, R replicas."""

    n_shards: int
    shard_by: str = "hash"
    replicas: int = 1

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ShardError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.replicas < 1:
            raise ShardError(f"replicas must be >= 1, got {self.replicas}")
        if self.shard_by not in ("hash", "range"):
            raise ShardError(
                f"shard_by must be 'hash' or 'range', got {self.shard_by!r}"
            )

    # -- assignment ----------------------------------------------------
    def assign(self, key: object, boundaries: Sequence = ()) -> int:
        """Shard for ``key`` (range mode needs the fitted boundaries)."""
        if self.shard_by == "hash":
            return hash_shard(key, self.n_shards)
        return bisect_right(list(boundaries), key)

    def fit_boundaries(self, keys: Sequence) -> tuple:
        """Range-mode cut points: ``boundaries[i]`` is the smallest key
        of shard ``i + 1`` under an equi-depth split of ``keys``."""
        if self.shard_by != "range" or self.n_shards == 1 or not keys:
            return ()
        ordered = sorted(keys)
        cuts = []
        for i in range(1, self.n_shards):
            cuts.append(ordered[min(len(ordered) - 1, i * len(ordered) // self.n_shards)])
        return tuple(cuts)

    # -- materialization -----------------------------------------------
    def materialize(
        self,
        source: LakeTable,
        key_column: str,
        *,
        indexes: Sequence[tuple[str, str, dict]] = (),
        store_factory: Callable[[int], ObjectStore] | None = None,
        latency_model_for: Callable[[int, int], LatencyModel] | None = None,
        config: TableConfig | None = None,
        cache_budget_bytes: int | None = None,
        server_kwargs: dict | None = None,
    ) -> "ShardDeployment":
        """Split ``source``'s live rows into per-shard lakes + servers.

        ``indexes`` is ``(column, index_type, params)`` triples built on
        every shard (skipped per shard on :class:`IndexAborted`, e.g.
        the ivf_pq row floor — that shard serves brute-force).
        ``store_factory(shard_id)`` supplies each shard's object store
        (defaults to in-memory stores sharing the source clock, so the
        whole deployment runs on one simulated timeline);
        ``latency_model_for(shard_id, replica_id)`` supplies per-node
        latency models (defaults to the stock model everywhere).
        """
        snap = source.snapshot()
        schema = source.schema
        if key_column not in schema.names:
            raise ShardError(
                f"key column {key_column!r} not in schema {schema.names}"
            )
        config = config or source.config

        # One buffered pass over the source: (partition, columns) per file.
        buffered: list[tuple[str | None, dict[str, list]]] = []
        all_keys: list = []
        for entry in snap.files:
            columns = _live_columns(source, snap, entry, schema.names)
            buffered.append((LakeTable.partition_of(entry.path), columns))
            all_keys.extend(columns[key_column])
        boundaries = self.fit_boundaries(all_keys)

        clock = source.store.clock
        factory = store_factory or (
            lambda shard_id: InMemoryObjectStore(clock=clock)
        )
        stores = [factory(i) for i in range(self.n_shards)]
        lakes = [
            LakeTable.create(stores[i], SHARD_LAKE_ROOT, schema, config)
            for i in range(self.n_shards)
        ]

        rows: list[int] = [0] * self.n_shards
        files: list[int] = [0] * self.n_shards
        mins: list = [None] * self.n_shards
        maxs: list = [None] * self.n_shards
        partitions: list[set] = [set() for _ in range(self.n_shards)]
        for partition, columns in buffered:
            per_shard: dict[int, dict[str, list]] = {}
            for row, key in enumerate(columns[key_column]):
                shard = self.assign(key, boundaries)
                bucket = per_shard.setdefault(
                    shard, {name: [] for name in schema.names}
                )
                for name in schema.names:
                    bucket[name].append(columns[name][row])
                rows[shard] += 1
                if mins[shard] is None or key < mins[shard]:
                    mins[shard] = key
                if maxs[shard] is None or key > maxs[shard]:
                    maxs[shard] = key
            for shard in sorted(per_shard):
                lakes[shard].append(per_shard[shard], partition=partition)
                files[shard] += 1
                if partition is not None:
                    partitions[shard].add(partition)

        groups = []
        for shard_id in range(self.n_shards):
            spec = ShardSpec(
                shard_id=shard_id,
                num_rows=rows[shard_id],
                data_files=files[shard_id],
                key_min=mins[shard_id],
                key_max=maxs[shard_id],
                partitions=frozenset(partitions[shard_id]),
            )
            groups.append(ShardGroup(spec, stores[shard_id], replicas=[]))

        deployment = ShardDeployment(
            plan=self,
            key_column=key_column,
            boundaries=boundaries,
            groups=groups,
            clock=clock,
            source_snapshot=snap,
        )
        if indexes:
            deployment.build_indexes(indexes)

        for group in groups:
            for replica_id in range(self.replicas):
                model = (
                    latency_model_for(group.shard_id, replica_id)
                    if latency_model_for is not None
                    else LatencyModel()
                )
                kwargs = dict(server_kwargs or {})
                kwargs.setdefault("latency_model", model)
                server = SearchServer.for_lake(
                    group.store,
                    SHARD_INDEX_DIR,
                    SHARD_LAKE_ROOT,
                    cache_budget_bytes=cache_budget_bytes,
                    **kwargs,
                )
                group.replicas.append(
                    ShardReplica(
                        shard_id=group.shard_id,
                        replica_id=replica_id,
                        server=server,
                        latency_model=model,
                    )
                )
        return deployment


@dataclass
class ShardDeployment:
    """A materialized plan: shard groups plus the routing metadata."""

    plan: ShardPlan
    key_column: str
    boundaries: tuple
    groups: list[ShardGroup]
    clock: object = None
    #: The source-lake snapshot the shards were built from. Routers
    #: pin their fresh-tier probe to it: rows drained into the source
    #: lake *after* materialization exist on no shard, so they must
    #: keep being served fresh, not vanish below an advanced floor.
    source_snapshot: object = None
    _closed: bool = field(default=False, repr=False)

    @property
    def n_shards(self) -> int:
        return len(self.groups)

    @property
    def total_rows(self) -> int:
        return sum(g.spec.num_rows for g in self.groups)

    def assign(self, key: object) -> int:
        """Shard that owns ``key`` under this deployment's plan."""
        return self.plan.assign(key, self.boundaries)

    # -- pruning -------------------------------------------------------
    def route(
        self,
        column: str,
        query: Query,
        *,
        partition: str | None = None,
        prune: bool = True,
    ) -> tuple[list[ShardGroup], int]:
        """Shards that may hold matches, and how many were pruned.

        Pruning is sound by construction: hash placement means an
        exact-key query on the shard key can only match its assigned
        shard; range placement gives contiguous key spans checked
        against each shard's min/max; partitioned appends preserve the
        partition inside each shard, so a shard without the partition
        cannot contribute. Empty shards never contribute.
        """
        if not prune:
            return list(self.groups), 0
        eligible = []
        for group in self.groups:
            spec = group.spec
            if spec.num_rows == 0:
                continue
            if partition is not None and partition not in spec.partitions:
                continue
            if column == self.key_column and not self._may_contain(spec, query):
                continue
            eligible.append(group)
        return eligible, len(self.groups) - len(eligible)

    def _may_contain(self, spec: ShardSpec, query: Query) -> bool:
        try:
            if isinstance(query, UuidQuery):
                if self.plan.shard_by == "hash":
                    return spec.shard_id == self.assign(query.key)
                return spec.key_min <= query.key <= spec.key_max
            if isinstance(query, RangeQuery) and self.plan.shard_by == "range":
                return not (query.hi < spec.key_min or query.lo > spec.key_max)
        except TypeError:
            return True  # incomparable types: cannot prune soundly
        return True

    # -- maintenance ---------------------------------------------------
    def build_indexes(self, indexes: Sequence[tuple[str, str, dict]]) -> int:
        """Build ``(column, type, params)`` indexes on every shard.

        Returns the number of successful builds. A shard under an
        index's row floor aborts (:class:`IndexAborted`) and is left
        unindexed — its queries brute-force, which is still exact.
        """
        built = 0
        for group in self.groups:
            client = group.maintenance_client()
            for column, index_type, params in indexes:
                try:
                    client.index(column, index_type, params=dict(params))
                    built += 1
                except IndexAborted:
                    continue
        return built

    def warmup(self) -> int:
        """Warm every replica's cache; returns index files warmed."""
        return sum(
            replica.server.warmup()
            for group in self.groups
            for replica in group.replicas
        )

    # -- lifecycle -----------------------------------------------------
    def replicas(self) -> Iterator[ShardReplica]:
        """All replicas across all shards."""
        for group in self.groups:
            yield from group.replicas

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for replica in self.replicas():
            replica.server.close()

    def __enter__(self) -> "ShardDeployment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _live_columns(
    source: LakeTable, snap, entry, names: Sequence[str]
) -> dict[str, list]:
    """All live rows of one data file, column by column."""
    reader = ParquetFile(source.store, entry.path)
    dv = source.deletion_vector(snap, entry.path)
    out: dict[str, list] = {}
    for name in names:
        values: list = []
        for rg_index in range(len(reader.metadata.row_groups)):
            values.extend(reader.read_column_chunk(rg_index, name))
        out[name] = [v for row, v in enumerate(values) if row not in dv]
    return out

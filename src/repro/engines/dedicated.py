"""Copy-data baselines: always-on dedicated search systems.

The paper copies data into AWS OpenSearch (substring / UUID search; 3 x
r6g.large with 3x-replicated EBS) or LanceDB (vector search; 3 x
r6g.xlarge with the index cached in memory). For the TCO framework all
their per-query and indexing costs fold into a constant monthly cluster
cost (§VI); queries are served from RAM/SSD in tens of milliseconds.

The functional implementations here hold the copied data in memory so
results can be cross-checked against Rottnest, and
:func:`lance_cold_latency` models the §VII-C "LanceDB cold cache"
configuration — a custom format reading *exact* vector bytes from S3 —
which the paper uses to show that in-situ Parquet probing at ~300 KB
page granularity is just as fast (both sit in the latency-bound regime
of Fig. 10a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.client import SearchMatch
from repro.core.queries import Query
from repro.lake.table import LakeTable
from repro.storage.costs import GB, CostModel
from repro.storage.latency import LatencyModel


@dataclass(frozen=True)
class DedicatedModel:
    """Monthly cost model of an always-on cluster."""

    instance_type: str = "r6g.large"
    instance_count: int = 3
    replication: int = 3
    storage_expansion: float = 1.6
    """Stored bytes per raw byte: dedicated indices (inverted index,
    doc store) are typically larger than the compressed source."""

    query_latency_s: float = 0.030
    """Served from RAM/SSD; effectively constant for the TCO model."""

    def monthly_cost(self, raw_bytes: int, costs: CostModel | None = None) -> float:
        costs = costs or CostModel()
        compute = (
            costs.instance_hourly(self.instance_type) * 730.0 * self.instance_count
        )
        stored = raw_bytes * self.storage_expansion * self.replication
        storage = (stored / GB) * costs.opensearch_ebs_per_gb_month
        return compute + storage


#: The paper's configurations.
OPENSEARCH_MODEL = DedicatedModel(instance_type="r6g.large")
LANCEDB_MODEL = DedicatedModel(
    instance_type="r6g.xlarge",
    # LanceDB keeps data in S3; only the ANN index lives on the nodes.
    storage_expansion=0.3,
)


class DedicatedSearchSystem:
    """Functional copy-data system: ingest once, search from memory."""

    def __init__(self, model: DedicatedModel | None = None) -> None:
        self.model = model or OPENSEARCH_MODEL
        self._rows: list[tuple[str, int, object]] = []
        self._by_key: dict[bytes, list[int]] = {}
        self._vectors: np.ndarray | None = None
        self.ingested_bytes = 0

    def ingest(self, lake: LakeTable, column: str) -> int:
        """Copy a column out of the lake (the ETL step of Fig. 1).

        Returns the number of rows copied. Re-ingesting replaces the
        copy (the staleness problem the paper attributes to this
        architecture is real: queries see the copy, not the lake).
        """
        self._rows = []
        self._by_key = {}
        vectors = []
        snap = lake.snapshot()
        self.ingested_bytes = snap.total_bytes
        for path, row, value in lake.scan(column, snap):
            position = len(self._rows)
            self._rows.append((path, row, value))
            if isinstance(value, (bytes, bytearray)):
                self._by_key.setdefault(bytes(value), []).append(position)
            elif isinstance(value, np.ndarray):
                vectors.append(value)
        if vectors:
            self._vectors = np.vstack(vectors).astype(np.float32)
        return len(self._rows)

    def search(self, query: Query, k: int = 10) -> list[SearchMatch]:
        """In-memory search over the ingested copy."""
        if query.scoring:
            return self._search_vector(query, k)
        if hasattr(query, "key") and self._by_key:
            positions = self._by_key.get(bytes(query.key), [])[:k]
            return [
                SearchMatch(file=f, row=r, value=v)
                for f, r, v in (self._rows[p] for p in positions)
            ]
        matches = []
        for path, row, value in self._rows:
            if query.matches(value):
                matches.append(SearchMatch(file=path, row=row, value=value))
                if len(matches) >= k:
                    break
        return matches

    def _search_vector(self, query, k: int) -> list[SearchMatch]:
        if self._vectors is None:
            return []
        diffs = self._vectors - query.vector
        distances = np.einsum("ij,ij->i", diffs, diffs)
        order = np.argsort(distances)[:k]
        out = []
        for i in order:
            path, row, value = self._rows[int(i)]
            out.append(
                SearchMatch(
                    file=path, row=row, value=value, score=float(distances[i])
                )
            )
        return out

    def monthly_cost(self, costs: CostModel | None = None) -> float:
        return self.model.monthly_cost(self.ingested_bytes, costs)


def lance_cold_latency(
    *,
    nprobe: int,
    refine: int,
    list_bytes: int,
    vector_nbytes: int = 512,
    model: LatencyModel | None = None,
) -> float:
    """Modeled latency of LanceDB cold-cache mode (§VII-C).

    Same three dependent rounds as Rottnest's vector search — coarse
    centroids, probed lists, candidate fetch — but the final round reads
    *exact* full-precision vectors (0.1–4 KB) instead of ~300 KB Parquet
    pages. Figure 10a's flat-below-1MB latency curve is why this barely
    helps, which is the paper's §VII-C argument.
    """
    model = model or LatencyModel()
    rounds = [
        [64 * 1024],  # centroid / root component
        [list_bytes] * nprobe,  # probed inverted lists
        [vector_nbytes] * refine,  # exact candidate vectors
    ]
    return sum(model.round_latency(sizes) for sizes in rounds)

"""Brute-force scan baseline (the paper's PySpark-on-EMR setup).

Two halves:

* a **functional engine** that actually scans the simulated lake and
  returns verified matches (used to cross-check Rottnest's results and
  to measure bytes scanned per normalized query), and
* a **cluster scaling model** calibrated to Figure 8a/8b: near-linear
  speedup at small clusters, a knee around ~32 workers where fixed
  startup/coordination time stops shrinking, and therefore a cost per
  query that is flat early and grows once extra workers only burn money.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.client import SearchMatch
from repro.core.queries import Query
from repro.formats.reader import ParquetFile
from repro.lake.snapshot import Snapshot
from repro.lake.table import LakeTable
from repro.storage.costs import CostModel
from repro.storage.object_store import ObjectStore


@dataclass(frozen=True)
class BruteForceModel:
    """Latency/cost model of a scan cluster."""

    scan_rate_bytes_per_s: float = 2.0e9
    """Compressed bytes one worker decompresses + matches per second
    (16 vCPUs of an r6i.4xlarge)."""

    startup_s: float = 0.8
    """Fixed per-query overhead: task scheduling + S3 first bytes."""

    coordination_s_per_log2_workers: float = 0.15
    """Coordination/shuffle overhead growing with cluster size."""

    serial_fraction: float = 0.004
    """Fraction of the scan that does not parallelize (planning,
    result merge) — the Amdahl term that caps speedup."""

    instance_type: str = "r6i.4xlarge"

    def latency(self, scan_bytes: int, workers: int) -> float:
        """Seconds for a full scan of ``scan_bytes`` on ``workers``."""
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        work = scan_bytes / self.scan_rate_bytes_per_s
        return (
            self.startup_s
            + self.coordination_s_per_log2_workers * float(np.log2(workers + 1))
            + work * self.serial_fraction
            + work / workers
        )

    def cost_per_query(
        self, scan_bytes: int, workers: int, costs: CostModel | None = None
    ) -> float:
        """Dollars per normalized (full-scan) query."""
        costs = costs or CostModel()
        hourly = costs.instance_hourly(self.instance_type)
        return self.latency(scan_bytes, workers) * workers * hourly / 3600.0


def _query_bounds(query) -> tuple | None:
    """(lo, hi) bounds a chunk must intersect, or None (no pruning)."""
    if hasattr(query, "key"):
        key = bytes(query.key)
        return (key, key)
    if hasattr(query, "lo"):
        return (query.lo, query.hi)
    return None  # substring/regex: min-max says nothing


def _prunable(metadata, column: str, rg_index: int, bounds: tuple) -> bool:
    stats = metadata.chunk_stats(column)[rg_index]
    if stats is None:
        return False
    chunk_lo, chunk_hi = stats
    lo, hi = bounds
    try:
        return chunk_hi < lo or hi < chunk_lo
    except TypeError:
        return False  # incomparable types: never prune


class BruteForceEngine:
    """Functional full scan of a lake snapshot (no index)."""

    def __init__(
        self,
        store: ObjectStore,
        lake: LakeTable,
        *,
        model: BruteForceModel | None = None,
        workers: int = 8,
    ) -> None:
        self.store = store
        self.lake = lake
        self.model = model or BruteForceModel()
        self.workers = workers

    def search(
        self,
        column: str,
        query: Query,
        *,
        k: int = 10,
        snapshot: Snapshot | None = None,
        prune: bool = False,
    ) -> tuple[list[SearchMatch], int]:
        """Scan everything; returns ``(matches, bytes_scanned)``.

        Exact queries stop at ``k`` verified matches (a real engine
        would too, though it still bills most of the scan); scoring
        queries rank every live row.

        ``prune=True`` applies min-max chunk pruning from the file
        footers, as real query engines do. The §II-B point this repo
        measures: pruning is effective for clustered/sorted columns and
        worthless for the search workloads Rottnest targets.
        """
        snap = snapshot or self.lake.snapshot()
        scanned = 0
        if query.scoring:
            matches = self._scan_scoring(column, query, k, snap)
            scanned = snap.total_bytes
            return matches, scanned
        bounds = _query_bounds(query) if prune else None
        matches: list[SearchMatch] = []
        for entry in snap.files:
            dv = self.lake.deletion_vector(snap, entry.path)
            reader = ParquetFile(self.store, entry.path)
            for rg_index, rg in enumerate(reader.metadata.row_groups):
                if bounds is not None and _prunable(
                    reader.metadata, column, rg_index, bounds
                ):
                    continue
                chunk = rg.chunk(column)
                scanned += chunk.total_compressed_size
                values = reader.read_column_chunk(rg_index, column)
                for i, value in enumerate(values):
                    row = rg.first_row + i
                    if row in dv or not query.matches(value):
                        continue
                    matches.append(
                        SearchMatch(file=entry.path, row=row, value=value)
                    )
                    if len(matches) >= k:
                        return matches, scanned
        return matches, scanned

    def _scan_scoring(
        self, column: str, query, k: int, snap: Snapshot
    ) -> list[SearchMatch]:
        scored: list[SearchMatch] = []
        for entry in snap.files:
            dv = self.lake.deletion_vector(snap, entry.path)
            reader = ParquetFile(self.store, entry.path)
            for row, value in reader.scan_column(column):
                if row in dv:
                    continue
                scored.append(
                    SearchMatch(
                        file=entry.path,
                        row=row,
                        value=value,
                        score=query.distance(value),
                    )
                )
        scored.sort(key=lambda m: m.score)
        return scored[:k]

    def modeled_latency(
        self, snapshot: Snapshot | None = None, workers: int | None = None
    ) -> float:
        snap = snapshot or self.lake.snapshot()
        return self.model.latency(snap.total_bytes, workers or self.workers)

    def modeled_cost_per_query(
        self,
        snapshot: Snapshot | None = None,
        workers: int | None = None,
        costs: CostModel | None = None,
    ) -> float:
        snap = snapshot or self.lake.snapshot()
        return self.model.cost_per_query(
            snap.total_bytes, workers or self.workers, costs
        )

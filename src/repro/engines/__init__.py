"""Baseline engines: brute-force scanning and copy-data systems."""

from repro.engines.bruteforce import BruteForceEngine, BruteForceModel
from repro.engines.dedicated import (
    LANCEDB_MODEL,
    OPENSEARCH_MODEL,
    DedicatedModel,
    DedicatedSearchSystem,
    lance_cold_latency,
)

__all__ = [
    "BruteForceEngine",
    "BruteForceModel",
    "DedicatedModel",
    "DedicatedSearchSystem",
    "OPENSEARCH_MODEL",
    "LANCEDB_MODEL",
    "lance_cold_latency",
]

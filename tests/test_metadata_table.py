"""Rottnest metadata table: transactional index-record bookkeeping."""

import pytest

from repro.errors import LakeError
from repro.meta.metadata_table import IndexRecord, MetadataTable
from repro.storage.object_store import InMemoryObjectStore


def record(key, column="text", covered=("a",), created=1.0):
    return IndexRecord(
        index_key=key,
        index_type="fm",
        column=column,
        covered_files=tuple(covered),
        num_rows=10,
        size=100,
        created_at=created,
    )


@pytest.fixture
def meta():
    return MetadataTable(InMemoryObjectStore(), "idx/t")


class TestMetadataTable:
    def test_empty(self, meta):
        assert meta.records() == []
        assert meta.latest_version() == -1

    def test_insert_and_read(self, meta):
        meta.insert([record("i1"), record("i2")])
        keys = [r.index_key for r in meta.records()]
        assert keys == ["i1", "i2"]

    def test_record_roundtrip_fields(self, meta):
        original = record("i1", covered=("a", "b"), created=42.5)
        meta.insert([original])
        assert meta.records()[0] == original

    def test_delete(self, meta):
        meta.insert([record("i1"), record("i2")])
        meta.delete(["i1"])
        assert [r.index_key for r in meta.records()] == ["i2"]

    def test_delete_unknown_rejected(self, meta):
        meta.insert([record("i1")])
        with pytest.raises(LakeError):
            meta.delete(["nope"])

    def test_double_insert_rejected(self, meta):
        meta.insert([record("i1")])
        meta.insert([record("i2")])
        with pytest.raises(LakeError):
            meta.insert([record("i1")])
            meta.records()
        # records() raises because the log is inconsistent; in practice
        # inserts use fresh uuid-suffixed keys, making this unreachable.

    def test_empty_ops_rejected(self, meta):
        with pytest.raises(LakeError):
            meta.insert([])
        with pytest.raises(LakeError):
            meta.delete([])
        with pytest.raises(LakeError):
            meta.replace([], [])

    def test_replace_atomic(self, meta):
        meta.insert([record("old1"), record("old2")])
        meta.replace(insert=[record("merged")], delete=["old1", "old2"])
        assert [r.index_key for r in meta.records()] == ["merged"]

    def test_indexed_files_per_column(self, meta):
        meta.insert([record("i1", column="text", covered=("a", "b"))])
        meta.insert([record("i2", column="uuid", covered=("c",))])
        assert meta.indexed_files("text") == {"a", "b"}
        assert meta.indexed_files("uuid") == {"c"}
        assert meta.indexed_files("other") == set()

    def test_two_writers_interleave(self):
        store = InMemoryObjectStore()
        a = MetadataTable(store, "idx/t")
        b = MetadataTable(store, "idx/t")
        a.insert([record("from-a")])
        b.insert([record("from-b")])
        assert {r.index_key for r in a.records()} == {"from-a", "from-b"}

    def test_versions_monotone(self, meta):
        v0 = meta.insert([record("i1")])
        v1 = meta.insert([record("i2")])
        assert v1 == v0 + 1


class TestCheckpoints:
    @pytest.fixture
    def store(self):
        return InMemoryObjectStore()

    def test_checkpoint_written_at_interval(self, store):
        meta = MetadataTable(store, "idx/t", checkpoint_interval=5)
        for i in range(5):
            meta.insert([record(f"i{i}")])
        assert meta.latest_checkpoint_version() == 4
        assert len(meta.records()) == 5

    def test_no_checkpoint_before_interval(self, store):
        meta = MetadataTable(store, "idx/t", checkpoint_interval=5)
        for i in range(4):
            meta.insert([record(f"i{i}")])
        assert meta.latest_checkpoint_version() == -1

    def test_records_from_checkpoint_plus_tail(self, store):
        meta = MetadataTable(store, "idx/t", checkpoint_interval=3)
        for i in range(7):
            meta.insert([record(f"i{i}")])
        meta.delete(["i0"])
        keys = {r.index_key for r in meta.records()}
        assert keys == {f"i{i}" for i in range(1, 7)}

    def test_records_skips_pre_checkpoint_versions(self, store):
        meta = MetadataTable(store, "idx/t", checkpoint_interval=4)
        for i in range(8):
            meta.insert([record(f"i{i}")])
        # Replaying from the checkpoint must not re-read early versions.
        before = store.stats.snapshot()
        meta.records()
        delta = store.stats.delta(before)
        # 1 checkpoint + tail (versions 8.. none) + 2 LISTs.
        assert delta.gets <= 2

    def test_deletes_survive_checkpointing(self, store):
        meta = MetadataTable(store, "idx/t", checkpoint_interval=2)
        meta.insert([record("a")])
        meta.delete(["a"])  # triggers checkpoint at v1 with empty state
        meta.insert([record("b")])
        assert [r.index_key for r in meta.records()] == ["b"]

    def test_other_instance_sees_checkpointed_state(self, store):
        writer = MetadataTable(store, "idx/t", checkpoint_interval=3)
        for i in range(6):
            writer.insert([record(f"i{i}")])
        reader = MetadataTable(store, "idx/t", checkpoint_interval=3)
        assert len(reader.records()) == 6

"""TCO model, phase diagrams, sensitivity sweeps (§VI, Fig. 7/9/12)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TCOError
from repro.tco.model import (
    ApproachCost,
    brute_force_cost,
    copy_data_cost,
    cracked_cost,
    rottnest_cost,
)
from repro.tco.phase import compute_phase_diagram, cracked_phase_diagram
from repro.tco.render import describe_boundaries, render
from repro.tco.sensitivity import scaled_rottnest, sweep


@pytest.fixture
def approaches():
    copy = copy_data_cost("copy-data", monthly=400.0)
    brute = brute_force_cost(
        "brute-force", storage_monthly=7.0, per_query=0.07, latency_s=20.0
    )
    rott = rottnest_cost(
        "rottnest",
        index_cost=15.0,
        storage_monthly=12.0,
        per_query=0.0004,
        latency_s=4.6,
    )
    return copy, brute, rott


class TestApproachCost:
    def test_tco_formula(self):
        a = ApproachCost(
            name="x", cost_per_month=2.0, cost_per_query=0.5, index_cost=10.0
        )
        assert a.tco(3, 4) == pytest.approx(10 + 6 + 2)

    def test_negative_rejected(self):
        with pytest.raises(TCOError):
            ApproachCost(name="x", cost_per_month=-1)
        a = ApproachCost(name="x", cost_per_month=1)
        with pytest.raises(TCOError):
            a.tco(-1, 0)

    def test_scaled(self):
        a = ApproachCost(
            name="x", cost_per_month=2.0, cost_per_query=0.5, index_cost=10.0
        )
        s = a.scaled(cost_per_query=0.1, index_cost=2.0)
        assert s.cost_per_query == pytest.approx(0.05)
        assert s.index_cost == pytest.approx(20.0)
        assert s.cost_per_month == 2.0

    def test_copy_data_has_no_query_cost(self):
        c = copy_data_cost("c", monthly=100.0)
        assert c.tco(1, 0) == c.tco(1, 10**9)


class TestPhaseDiagram:
    def test_three_regions_exist(self, approaches):
        d = compute_phase_diagram(list(approaches))
        for name in ("copy-data", "brute-force", "rottnest"):
            assert d.share(name) > 0.0

    def test_regions_ordered_along_queries(self, approaches):
        """At a fixed duration: brute wins few queries, Rottnest the
        middle, copy-data the many (Fig. 2's intuition)."""
        d = compute_phase_diagram(list(approaches))
        assert d.winner_at(10, 10).name == "brute-force"
        assert d.winner_at(10, 1e4).name == "rottnest"
        assert d.winner_at(10, 1e8).name == "copy-data"

    def test_win_band_spans_orders_of_magnitude(self, approaches):
        d = compute_phase_diagram(list(approaches))
        oom = d.orders_of_magnitude_won("rottnest", 10.0)
        assert oom > 3.0  # paper: >= 4 OoM for its workloads

    def test_break_even_exists(self, approaches):
        d = compute_phase_diagram(list(approaches))
        onset = d.break_even_months("rottnest", 1e4)
        assert onset is not None and onset < 1.0

    def test_boundary_flips(self, approaches):
        d = compute_phase_diagram(list(approaches))
        flips = d.boundary(10.0)
        assert [w for _, _, w in flips] == ["rottnest", "copy-data"]

    def test_win_band_none_when_never_wins(self, approaches):
        copy, brute, rott = approaches
        costly = rott.scaled(cost_per_query=10_000, index_cost=10_000)
        d = compute_phase_diagram([copy, brute, costly])
        assert d.win_band("rottnest", 10.0) is None
        assert d.orders_of_magnitude_won("rottnest", 10.0) == 0.0

    def test_unknown_name_rejected(self, approaches):
        d = compute_phase_diagram(list(approaches))
        with pytest.raises(TCOError):
            d.share("nonexistent")

    def test_needs_two_approaches(self, approaches):
        with pytest.raises(TCOError):
            compute_phase_diagram([approaches[0]])

    def test_positive_axes_required(self, approaches):
        with pytest.raises(TCOError):
            compute_phase_diagram(list(approaches), months_range=(0, 10))

    def test_winner_at_matches_grid(self, approaches):
        d = compute_phase_diagram(list(approaches), resolution=64)
        for qi in (0, 20, 63):
            for mi in (0, 30, 63):
                grid_winner = d.approaches[d.winner[qi, mi]].name
                exact = d.winner_at(float(d.months[mi]), float(d.queries[qi])).name
                assert grid_winner == exact

    @given(
        months=st.floats(0.1, 100),
        queries=st.floats(1, 1e8),
    )
    @settings(max_examples=50, deadline=None)
    def test_winner_is_argmin_property(self, months, queries):
        copy = copy_data_cost("c", monthly=400.0)
        brute = brute_force_cost("b", storage_monthly=7.0, per_query=0.07,
                                 latency_s=20)
        rott = rottnest_cost("r", 15.0, 12.0, 0.0004, 4.6)
        d = compute_phase_diagram([copy, brute, rott])
        w = d.winner_at(months, queries)
        assert w.tco(months, queries) == min(
            a.tco(months, queries) for a in (copy, brute, rott)
        )


class TestCrackedCost:
    def test_endpoints_recover_parents(self, approaches):
        _, brute, rott = approaches
        as_eager = cracked_cost(
            "c", rott, brute, hot_coverage=1.0, hot_query_share=1.0
        )
        as_brute = cracked_cost(
            "c", rott, brute, hot_coverage=0.0, hot_query_share=0.0
        )
        for months, queries in ((1, 10), (10, 1e6)):
            assert as_eager.tco(months, queries) == pytest.approx(
                rott.tco(months, queries)
            )
            assert as_brute.tco(months, queries) == pytest.approx(
                brute.tco(months, queries)
            )

    def test_skewed_workload_beats_both_parents(self, approaches):
        """The cracking bet in TCO terms: pay a fraction of the build,
        serve most queries at indexed price."""
        _, brute, rott = approaches
        cracked = cracked_cost(
            "c", rott, brute, hot_coverage=0.25, hot_query_share=0.9
        )
        assert cracked.index_cost == pytest.approx(rott.index_cost * 0.25)
        months, queries = 2.0, 400.0
        assert cracked.tco(months, queries) < rott.tco(months, queries)
        assert cracked.tco(months, queries) < brute.tco(months, queries)

    def test_fraction_validation(self, approaches):
        _, brute, rott = approaches
        for kwargs in (
            {"hot_coverage": -0.1, "hot_query_share": 0.5},
            {"hot_coverage": 0.5, "hot_query_share": 1.5},
        ):
            with pytest.raises(TCOError):
                cracked_cost("c", rott, brute, **kwargs)

    def test_latency_defaults_to_workload_mix(self, approaches):
        _, brute, rott = approaches
        cracked = cracked_cost(
            "c", rott, brute, hot_coverage=0.5, hot_query_share=0.75
        )
        assert cracked.min_latency_s == pytest.approx(
            0.75 * rott.min_latency_s + 0.25 * brute.min_latency_s
        )

    def test_cracked_phase_diagram_owns_a_middle_band(self, approaches):
        """On a skewed workload the cracked curve wins a region between
        brute force (few queries) and eager (query-heavy forever)."""
        _, brute, rott = approaches
        d = cracked_phase_diagram(
            rott, brute, hot_coverage=0.25, hot_query_share=0.9
        )
        assert d.share("cracked") > 0.0
        flips = d.boundary(months=2.0)
        assert any(w == "cracked" for _, _, w in flips)
        # winner_at agrees with direct TCO comparison at a probed point
        w = d.winner_at(2.0, 400.0)
        assert w.name == "cracked"


class TestSensitivity:
    def test_cheaper_queries_push_copydata_boundary_up(self, approaches):
        """Fig. 12 observation 1, first half."""
        copy, brute, rott = approaches
        points = sweep(
            rott, brute, copy, parameter="cost_per_query", factors=[1.0, 0.1]
        )
        base = points[0].win_band_at_10_months
        cheap = points[1].win_band_at_10_months
        assert cheap[1] > base[1]  # upper boundary (vs copy-data) rises
        assert cheap[0] == pytest.approx(base[0], rel=0.3)  # lower ~fixed

    def test_smaller_index_pushes_bruteforce_boundary_down(self, approaches):
        """Fig. 12 observation 1, second half."""
        copy, brute, rott = approaches
        points = sweep(
            rott, brute, copy,
            parameter="index_storage_monthly", factors=[1.0, 0.1],
        )
        base = points[0].win_band_at_10_months
        small = points[1].win_band_at_10_months
        assert small[0] < base[0]  # lower boundary (vs brute) falls
        assert small[1] == pytest.approx(base[1], rel=0.3)

    def test_cheaper_indexing_moves_onset_only(self, approaches):
        """Fig. 12 observation 2."""
        copy, brute, rott = approaches
        d_base = compute_phase_diagram([copy, brute, rott])
        cheap = scaled_rottnest(rott, brute, "index_cost", 0.1)
        d_cheap = compute_phase_diagram([copy, brute, cheap])
        onset_base = d_base.break_even_months("rottnest", 300)
        onset_cheap = d_cheap.break_even_months("rottnest", 300)
        assert onset_cheap < onset_base
        # Long-horizon band barely moves.
        b1 = d_base.win_band("rottnest", 50.0)
        b2 = d_cheap.win_band("rottnest", 50.0)
        assert b2[1] == pytest.approx(b1[1], rel=0.1)

    def test_unknown_parameter_rejected(self, approaches):
        copy, brute, rott = approaches
        with pytest.raises(TCOError):
            scaled_rottnest(rott, brute, "nope", 2.0)
        with pytest.raises(TCOError):
            scaled_rottnest(rott, brute, "index_cost", 0.0)

    def test_storage_isolation_requires_rottnest_above_brute(self, approaches):
        copy, brute, rott = approaches
        tiny = ApproachCost(name="r", cost_per_month=1.0)
        with pytest.raises(TCOError):
            scaled_rottnest(tiny, brute, "index_storage_monthly", 2.0)


class TestLatencySla:
    """Figure 2: feasibility by latency SLA, then cheapest wins."""

    def test_feasible_filters_by_sla(self, approaches):
        from repro.tco.phase import feasible

        copy, brute, rott = approaches
        assert [a.name for a in feasible(list(approaches), 0.1)] == ["copy-data"]
        assert {a.name for a in feasible(list(approaches), 5.0)} == {
            "copy-data", "rottnest"
        }
        assert len(feasible(list(approaches), 60.0)) == 3

    def test_sla_must_be_positive(self, approaches):
        from repro.tco.phase import feasible

        with pytest.raises(TCOError):
            feasible(list(approaches), 0)

    def test_cheapest_feasible_overrides_cost(self, approaches):
        """At a point where Rottnest is cheapest, a strict SLA still
        forces copy-data (a search engine can't wait 4.6 s)."""
        from repro.tco.phase import cheapest_feasible

        unconstrained = cheapest_feasible(
            list(approaches), months=10, queries=1e4
        )
        assert unconstrained.name == "rottnest"
        strict = cheapest_feasible(
            list(approaches), months=10, queries=1e4, sla_s=0.1
        )
        assert strict.name == "copy-data"

    def test_nothing_feasible(self, approaches):
        from repro.tco.phase import cheapest_feasible

        assert (
            cheapest_feasible(list(approaches), months=1, queries=1,
                              sla_s=0.001)
            is None
        )


class TestThroughput:
    """§VII-D3: QPS ceilings vs the phase boundaries."""

    def test_max_qps_from_rps_budget(self):
        from repro.tco.throughput import ThroughputModel

        m = ThroughputModel(rottnest_requests_per_query=55)
        assert m.rottnest_max_qps == pytest.approx(100.0)

    def test_invalid_inputs(self):
        from repro.tco.throughput import ThroughputModel

        with pytest.raises(TCOError):
            ThroughputModel(rottnest_requests_per_query=0)
        m = ThroughputModel()
        with pytest.raises(TCOError):
            m.brute_force_max_qps(0)

    def test_brute_force_qps(self):
        from repro.tco.throughput import ThroughputModel

        m = ThroughputModel()
        assert m.brute_force_max_qps(20.0) == pytest.approx(0.05)

    def test_sustained_queries(self):
        from repro.tco.throughput import ThroughputModel

        m = ThroughputModel()
        # The paper's number: 10 QPS for 10 months ~ 2.5e7 queries.
        assert m.sustained_queries(10, 10) == pytest.approx(2.628e8, rel=0.01)

    def test_analysis_cap_beyond_boundary(self, approaches):
        from repro.tco.throughput import ThroughputModel, throughput_analysis

        d = compute_phase_diagram(list(approaches))
        analysis = throughput_analysis(
            d, months=10.0, model=ThroughputModel(rottnest_requests_per_query=50)
        )
        assert analysis.copy_data_boundary is not None
        assert analysis.queries_at_cap > analysis.copy_data_boundary
        assert analysis.conclusion_unchanged

    def test_analysis_detects_binding_cap(self, approaches):
        from repro.tco.throughput import ThroughputModel, throughput_analysis

        d = compute_phase_diagram(list(approaches))
        # An absurdly chatty query (1e9 requests) caps QPS below the
        # boundary: the analysis must flag it.
        analysis = throughput_analysis(
            d,
            months=10.0,
            model=ThroughputModel(rottnest_requests_per_query=1e9),
        )
        assert not analysis.conclusion_unchanged

    def test_analysis_handles_never_winning(self, approaches):
        from repro.tco.throughput import throughput_analysis

        copy, brute, rott = approaches
        costly = rott.scaled(cost_per_query=10_000, index_cost=10_000)
        d = compute_phase_diagram([copy, brute, costly])
        analysis = throughput_analysis(d, months=10.0)
        assert analysis.copy_data_boundary is None
        assert analysis.conclusion_unchanged


class TestRender:
    def test_render_contains_all_regions(self, approaches):
        d = compute_phase_diagram(list(approaches))
        art = render(d, width=40, height=16)
        assert "C" in art and "B" in art and "R" in art
        assert "legend" in art
        assert "(months)" in art

    def test_describe_boundaries(self, approaches):
        d = compute_phase_diagram(list(approaches))
        text = describe_boundaries(d, [1.0, 10.0])
        assert "rottnest" in text
        assert text.count("months:") == 2

    def test_describe_single_winner(self):
        a = copy_data_cost("a", monthly=1.0)
        b = copy_data_cost("b", monthly=2.0)
        d = compute_phase_diagram([a, b])
        text = describe_boundaries(d, [1.0])
        assert "a everywhere" in text

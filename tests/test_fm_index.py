"""FM-index: counting, page candidates, locate, merging (§V-C2)."""

import re

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RottnestIndexError
from repro.core.index_file import IndexFileReader, IndexFileWriter, PageDirectory
from repro.formats.page_reader import PageEntry, PageTable
from repro.indices.fm.fm_index import FmBuilder, FmQuerier, page_text
from repro.storage.object_store import InMemoryObjectStore
from repro.workloads.text import TextWorkload


def naive_count(text: bytes, needle: bytes) -> int:
    """Overlapping occurrence count."""
    count = start = 0
    while True:
        start = text.find(needle, start)
        if start < 0:
            return count
        count += 1
        start += 1


def store_fm(builder, n_pages, rows_per_page=10):
    table = PageTable(
        "f.parquet",
        "text",
        [
            PageEntry("f.parquet", i, 4 + i * 100, 100, rows_per_page,
                      i * rows_per_page, 1)
            for i in range(n_pages)
        ],
    )
    w = IndexFileWriter("fm", "text", PageDirectory([table]))
    builder.write(w)
    store = InMemoryObjectStore()
    store.put("i.index", w.finish())
    return store, FmQuerier(IndexFileReader.open(store, "i.index"))


@pytest.fixture
def corpus():
    gen = TextWorkload(seed=3, vocabulary_size=200)
    pages = [(gid, gen.documents(10, avg_chars=80)) for gid in range(5)]
    full = b"".join(page_text(values) for _, values in pages)
    return pages, full


@pytest.fixture
def querier(corpus):
    pages, _ = corpus
    builder = FmBuilder.build(pages, block_size=1024, sample_rate=8)
    _, q = store_fm(builder, len(pages))
    return q


class TestPageText:
    def test_separators(self):
        assert page_text(["ab", "c"]) == b"ab\x00c\x00"

    def test_nul_rejected(self):
        with pytest.raises(RottnestIndexError):
            page_text(["bad\x00row"])


class TestCounting:
    def test_counts_match_naive(self, corpus, querier):
        pages, full = corpus
        gen = TextWorkload(seed=99)
        docs = [v for _, values in pages for v in values]
        needles = ["a", "the", docs[0][:6], docs[3][2:10], "zzqx"]
        for needle in needles:
            assert querier.count(needle) == naive_count(full, needle.encode())

    def test_count_absent_zero(self, querier):
        assert querier.count("XYZQW123") == 0

    def test_empty_pattern_rejected(self, querier):
        with pytest.raises(RottnestIndexError):
            querier.count("")

    def test_nul_pattern_rejected(self, querier):
        with pytest.raises(RottnestIndexError):
            querier.count("a\x00b")

    def test_bytes_pattern_accepted(self, querier, corpus):
        _, full = corpus
        assert querier.count(b"a") == naive_count(full, b"a")


class TestCandidatePages:
    def test_no_false_negatives(self, corpus, querier):
        pages, _ = corpus
        for gid, values in pages:
            needle = values[0][:8]
            assert gid in querier.candidate_pages(needle)

    def test_absent_returns_empty(self, querier):
        assert querier.candidate_pages("XYZQW123") == []

    def test_limit_early_exit(self, corpus):
        pages, _ = corpus
        builder = FmBuilder.build(pages, block_size=512, sample_rate=8)
        _, q = store_fm(builder, len(pages))
        limited = q.candidate_pages("a", limit=1)
        assert len(limited) >= 1

    def test_cross_row_matches_are_absent(self):
        """The 0x00 row separator prevents matches spanning rows."""
        builder = FmBuilder.build([(0, ["abc", "def"])], block_size=256,
                                  sample_rate=4)
        _, q = store_fm(builder, 1)
        assert q.count("cd") == 0
        assert q.count("abc") == 1


class TestLocate:
    def test_positions_match_regex(self, corpus, querier):
        _, full = corpus
        needle = b"ba"
        expected = [m.start() for m in re.finditer(re.escape(needle), full)]
        got = querier.locate_positions(needle, limit=10_000)
        assert got == expected

    def test_limit_respected(self, querier):
        got = querier.locate_positions("a", limit=5)
        assert len(got) == 5


class TestSerialization:
    def test_load_roundtrip(self, corpus):
        pages, _ = corpus
        builder = FmBuilder.build(pages, block_size=1024, sample_rate=8)
        _, q = store_fm(builder, len(pages))
        loaded = FmBuilder.load(q.reader)
        assert loaded.bwt == builder.bwt
        assert loaded.sentinel_index == builder.sentinel_index
        assert np.array_equal(loaded.pagemap, builder.pagemap)
        assert loaded.samples == builder.samples
        assert loaded.page_lens == builder.page_lens
        assert loaded.page_gids == builder.page_gids

    def test_merge_rebuild_equals_joint_build(self, corpus):
        """The inversion+rebuild path is byte-identical to a fresh
        build over the concatenated pages."""
        pages, _ = corpus
        b1 = FmBuilder.build(pages[:2], block_size=1024, sample_rate=8)
        b2 = FmBuilder.build(
            [(g - 2, v) for g, v in pages[2:]], block_size=1024, sample_rate=8
        )
        merged = FmBuilder.merge_rebuild([b1, b2], [0, 2])
        joint = FmBuilder.build(pages, block_size=1024, sample_rate=8)
        assert merged.bwt == joint.bwt
        assert merged.page_gids == joint.page_gids
        assert np.array_equal(merged.pagemap, joint.pagemap)

    def test_interleave_merge_query_equivalent(self, corpus):
        """The Holt-McMillan interleave merge answers every query the
        same as the rebuilt single-string index."""
        pages, _ = corpus
        b1 = FmBuilder.build(pages[:2], block_size=1024, sample_rate=8)
        b2 = FmBuilder.build(
            [(g - 2, v) for g, v in pages[2:]], block_size=1024, sample_rate=8
        )
        merged = FmBuilder.merge([b1, b2], [0, 2])
        joint = FmBuilder.build(pages, block_size=1024, sample_rate=8)
        assert len(merged.sentinels) == 2  # multi-string collection
        assert merged.page_gids == joint.page_gids
        _, q_merged = store_fm(merged, len(pages))
        _, q_joint = store_fm(joint, len(pages))
        needles = ["a", "ba", pages[0][1][0][:7], pages[4][1][0][:9], "zq"]
        for needle in needles:
            assert q_merged.count(needle) == q_joint.count(needle), needle
            assert q_merged.candidate_pages(needle) == q_joint.candidate_pages(
                needle
            ), needle
            assert q_merged.locate_positions(needle, limit=500) == (
                q_joint.locate_positions(needle, limit=500)
            ), needle

    def test_interleave_merge_folds_three_parts(self, corpus):
        pages, _ = corpus
        parts = [
            FmBuilder.build([(0, values)], block_size=512, sample_rate=8)
            for _, values in pages[:3]
        ]
        merged = FmBuilder.merge(parts, [0, 1, 2])
        joint = FmBuilder.build(pages[:3], block_size=512, sample_rate=8)
        assert len(merged.sentinels) == 3
        _, q_merged = store_fm(merged, 3)
        _, q_joint = store_fm(joint, 3)
        needle = pages[1][1][0][:6]
        assert q_merged.count(needle) == q_joint.count(needle)
        assert q_merged.candidate_pages(needle) == q_joint.candidate_pages(needle)

    def test_merge_mismatch_rejected(self, corpus):
        pages, _ = corpus
        b = FmBuilder.build(pages[:1])
        with pytest.raises(RottnestIndexError):
            FmBuilder.merge([b], [0, 1])

    def test_empty_build_rejected(self):
        with pytest.raises(RottnestIndexError):
            FmBuilder.build([])


class TestAccessPattern:
    def test_backward_search_depth_is_pattern_length(self, corpus):
        """Depth grows with |pattern| — the paper's depth-bound claim."""
        pages, _ = corpus
        # Big corpus relative to block size so blocks miss the tail cache.
        big_pages = [
            (gid, TextWorkload(seed=gid, vocabulary_size=500).documents(600, 350))
            for gid in range(4)
        ]
        builder = FmBuilder.build(big_pages, block_size=4096, sample_rate=32)
        store, q = store_fm(builder, 4, rows_per_page=600)
        assert store.head("i.index").size > 400 * 1024  # misses the tail cache
        needle = big_pages[0][1][0][:8]  # present pattern, 8 chars
        store.start_trace()
        assert q.count(needle) > 0
        trace = store.stop_trace()
        # Dependent rounds bounded by pattern length (+1 for the page
        # map); cached blocks can collapse rounds below that.
        assert 1 <= trace.depth <= len(needle) + 1
        # Each round is at most 2 block reads wide.
        assert all(len(r) <= 2 for r in trace.rounds)


class TestPagemapLessMode:
    """The paper's storage profile: no page map, sampled-SA walks."""

    @pytest.fixture
    def nopg(self, corpus):
        pages, full = corpus
        builder = FmBuilder.build(
            pages, block_size=1024, sample_rate=8, store_pagemap=False
        )
        store, q = store_fm(builder, len(pages))
        return builder, store, q, pages, full

    def test_counts_unaffected(self, nopg):
        _, _, q, pages, full = nopg
        needle = pages[1][1][0][:7]
        assert q.count(needle) == naive_count(full, needle.encode())

    def test_no_false_negative_pages(self, nopg):
        _, _, q, pages, _ = nopg
        for gid, values in pages:
            needle = values[0][:8]
            assert gid in q.candidate_pages(needle)

    def test_smaller_than_pagemap_mode(self, corpus):
        pages, _ = corpus
        with_pg = FmBuilder.build(pages, block_size=1024, sample_rate=8)
        without = FmBuilder.build(
            pages, block_size=1024, sample_rate=8, store_pagemap=False
        )
        s1, _ = store_fm(with_pg, len(pages))
        s2, _ = store_fm(without, len(pages))
        assert s2.head("i.index").size < s1.head("i.index").size

    def test_load_and_merge_preserve_mode(self, nopg):
        builder, _, q, pages, _ = nopg
        loaded = FmBuilder.load(q.reader)
        assert loaded.store_pagemap is False
        assert loaded.bwt == builder.bwt
        merged = FmBuilder.merge([builder, loaded], [0, len(pages)])
        assert merged.store_pagemap is False

    def test_limit_early_exit(self, nopg):
        _, _, q, _, _ = nopg
        got = q.candidate_pages("a", limit=2)
        assert 1 <= len(got) <= 3


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(
        st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=122),
            min_size=0,
            max_size=30,
        ),
        min_size=1,
        max_size=12,
    ),
    needle=st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=122),
        min_size=1,
        max_size=6,
    ),
)
def test_fm_count_matches_naive_property(rows, needle):
    """Property: FM count equals naive overlapping count on arbitrary
    printable text."""
    pages = [(0, rows)]
    builder = FmBuilder.build(pages, block_size=256, sample_rate=4)
    _, q = store_fm(builder, 1, rows_per_page=len(rows))
    full = page_text(rows)
    assert q.count(needle) == naive_count(full, needle.encode("utf-8"))

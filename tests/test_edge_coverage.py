"""Edge-case and knob coverage across modules."""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.componentize import ComponentFileReader, ComponentFileWriter
from repro.core.index_file import IndexFileReader, IndexFileWriter, PageDirectory
from repro.formats.page_reader import PageEntry, PageTable
from repro.indices.uuid_trie import UuidTrieBuilder, UuidTrieQuerier
from repro.storage.object_store import InMemoryObjectStore


def trie_store(builder, n_pages=4):
    table = PageTable(
        "f", "uuid",
        [PageEntry("f", i, 4 + i * 10, 10, 10, i * 10, 1) for i in range(n_pages)],
    )
    w = IndexFileWriter("uuid_trie", "uuid", PageDirectory([table]))
    builder.write(w)
    store = InMemoryObjectStore()
    store.put("t.index", w.finish())
    return UuidTrieQuerier(IndexFileReader.open(store, "t.index"))


class TestTrieKnobs:
    def test_extra_bits_zero_still_correct(self):
        """No merge headroom: lookups stay correct, prefixes shorter."""
        keys = [hashlib.sha256(str(i).encode()).digest()[:16]
                for i in range(500)]
        pages = [(g, keys[g * 125 : (g + 1) * 125]) for g in range(4)]
        tight = UuidTrieBuilder.build(pages, extra_bits=0)
        loose = UuidTrieBuilder.build(pages, extra_bits=16)
        q_tight = trie_store(tight)
        q_loose = trie_store(loose)
        for i in (0, 250, 499):
            expected = i // 125
            assert expected in q_tight.candidate_pages(keys[i])
            assert expected in q_loose.candidate_pages(keys[i])
        tight_bytes = sum(len(e.prefix) for e in tight.entries)
        loose_bytes = sum(len(e.prefix) for e in loose.entries)
        assert tight_bytes < loose_bytes

    def test_extra_bits_reduce_merge_collisions(self):
        """More headroom -> fewer multi-page entries after merging."""
        def build_merged(extra):
            parts = []
            for p in range(4):
                keys = [hashlib.sha256(f"{p}:{i}".encode()).digest()[:16]
                        for i in range(250)]
                parts.append(UuidTrieBuilder.build([(0, keys)],
                                                   extra_bits=extra))
            return UuidTrieBuilder.merge(parts, [0, 1, 2, 3])

        collisions_tight = sum(
            len(e.gids) > 1 for e in build_merged(0).entries
        )
        collisions_loose = sum(
            len(e.gids) > 1 for e in build_merged(8).entries
        )
        assert collisions_loose <= collisions_tight

    def test_adversarial_shared_prefixes(self):
        """Keys sharing long prefixes force deep distinguishing bits."""
        base = b"\xab" * 15
        keys = [base + bytes([i]) for i in range(256)]
        builder = UuidTrieBuilder.build([(g, keys[g * 64 : (g + 1) * 64])
                                         for g in range(4)])
        q = trie_store(builder)
        for i in (0, 63, 64, 255):
            assert i // 64 in q.candidate_pages(keys[i])

    def test_all_identical_keys(self):
        key = b"\x42" * 16
        builder = UuidTrieBuilder.build([(0, [key] * 5), (3, [key] * 5)])
        q = trie_store(builder)
        assert q.candidate_pages(key) == [0, 3]


class TestComponentizeProperties:
    @given(
        chunks=st.lists(st.binary(min_size=0, max_size=2000), min_size=1,
                        max_size=20),
        header_value=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, chunks, header_value):
        w = ComponentFileWriter()
        ids = [w.add(c) for c in chunks]
        store = InMemoryObjectStore()
        store.put("c.index", w.finish({"v": header_value}))
        r = ComponentFileReader.open(store, "c.index")
        assert r.header == {"v": header_value}
        for cid, chunk in zip(ids, chunks):
            assert r.read(cid) == chunk

    def test_empty_component(self):
        w = ComponentFileWriter()
        w.add(b"")
        store = InMemoryObjectStore()
        store.put("c.index", w.finish({}))
        assert ComponentFileReader.open(store, "c.index").read(0) == b""


class TestQueriesEdgeCases:
    def test_vector_query_validates_params(self):
        from repro.errors import TCOError
        from repro.core.queries import VectorQuery

        with pytest.raises(TCOError):
            VectorQuery(np.zeros(4), nprobe=0)
        with pytest.raises(TCOError):
            VectorQuery(np.zeros(4), refine=0)

    def test_vector_query_flattens(self):
        from repro.core.queries import VectorQuery

        q = VectorQuery(np.zeros((1, 4)))
        assert q.vector.shape == (4,)

    def test_regex_query_matches(self):
        from repro.core.queries import RegexQuery

        q = RegexQuery(r"err(or)?s?\b")
        assert q.matches("5 errors seen")
        assert not q.matches("erratic")

    def test_uuid_matches_bytearray(self):
        from repro.core.queries import UuidQuery

        assert UuidQuery(b"\x01").matches(bytearray(b"\x01"))


class TestDaemonWithBloomAndMinmax:
    def test_daemon_maintains_alternative_index_types(
        self, store, event_lake, clock
    ):
        from repro.core.client import RottnestClient
        from repro.core.daemon import MaintenanceDaemon, MaintenancePolicy
        from repro.core.queries import UuidQuery
        from tests.conftest import event_batch, event_uuid

        client = RottnestClient(store, "idx/events", event_lake)
        daemon = MaintenanceDaemon(
            client,
            [("uuid", "bloom"), ("uuid", "minmax")],
            policy=MaintenancePolicy(vacuum_interval_s=1.0),
        )
        daemon.tick()
        event_lake.append(event_batch(60, seed=40))
        clock.advance(10)
        daemon.tick()
        key = event_uuid(40, 3)
        res = client.search("uuid", UuidQuery(key), k=5)
        assert len(res.matches) == 1
        assert res.stats.files_brute_forced == 0

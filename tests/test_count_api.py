"""client.count(): exact occurrence counting off the FM index."""

import pytest

from repro.core.client import RottnestClient, _count_overlapping
from repro.core.queries import SubstringQuery, UuidQuery
from repro.errors import RottnestIndexError
from repro.formats.schema import ColumnType, Field, Schema
from repro.lake.table import LakeTable, TableConfig
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock
from repro.workloads.text import TextWorkload


def naive_total(docs, needle):
    return sum(_count_overlapping(d, needle) for d in docs)


@pytest.fixture
def corpus_client():
    store = InMemoryObjectStore(clock=SimClock())
    schema = Schema.of(Field("text", ColumnType.STRING))
    lake = LakeTable.create(
        store, "lake/c", schema,
        TableConfig(row_group_rows=200, page_target_bytes=2048),
    )
    gen = TextWorkload(seed=1, vocabulary_size=400)
    docs = []
    for _ in range(2):
        batch = gen.documents(120, avg_chars=120)
        docs.extend(batch)
        lake.append({"text": batch})
    client = RottnestClient(store, "idx/c", lake)
    client.index("text", "fm", params={"block_size": 4096, "sample_rate": 16})
    return store, lake, client, docs, gen


class TestCountOverlapping:
    @pytest.mark.parametrize(
        "haystack,needle,expected",
        [("aaaa", "aa", 3), ("abcabc", "abc", 2), ("", "x", 0), ("xyz", "q", 0)],
    )
    def test_counts(self, haystack, needle, expected):
        assert _count_overlapping(haystack, needle) == expected


class TestCountApi:
    def test_matches_naive(self, corpus_client):
        _, _, client, docs, gen = corpus_client
        for needle in ["a", "ba", docs[0][:6], "zzqx"]:
            assert client.count("text", SubstringQuery(needle)) == naive_total(
                docs, needle
            ), needle

    def test_counts_without_probing_data(self, corpus_client):
        """Covered files contribute counts from the index alone."""
        store, lake, client, docs, _ = corpus_client
        data_paths = set(lake.snapshot().file_paths)
        trace = store.start_trace()
        client.count("text", SubstringQuery("a"))
        store.stop_trace()
        touched = {
            req.key for round_ in trace.rounds for req in round_
            if req.op == "GET"
        }
        assert not (touched & data_paths)  # data files never read

    def test_uncovered_files_brute_counted(self, corpus_client):
        _, lake, client, docs, gen = corpus_client
        extra = gen.documents(30, avg_chars=100)
        lake.append({"text": extra})
        needle = "a"
        assert client.count("text", SubstringQuery(needle)) == naive_total(
            docs + extra, needle
        )

    def test_partition_scoped_count(self):
        store = InMemoryObjectStore(clock=SimClock())
        schema = Schema.of(Field("text", ColumnType.STRING))
        lake = LakeTable.create(
            store, "lake/p", schema,
            TableConfig(row_group_rows=100, page_target_bytes=1024),
        )
        lake.append({"text": ["alpha alpha", "beta"]}, partition="a")
        lake.append({"text": ["alpha"]}, partition="b")
        client = RottnestClient(store, "idx/p", lake)
        client.index("text", "fm")
        assert client.count("text", SubstringQuery("alpha")) == 3
        # The single index covers both partitions; a scoped count must
        # not leak the other partition's occurrences.
        assert (
            client.count("text", SubstringQuery("alpha"), partition="a") == 2
        )
        assert (
            client.count("text", SubstringQuery("alpha"), partition="b") == 1
        )

    def test_rejects_non_substring(self, corpus_client):
        _, _, client, _, _ = corpus_client
        with pytest.raises(RottnestIndexError):
            client.count("text", UuidQuery(b"\x00"))

"""Exporters: JSONL dumps, timelines, and the BENCH_*.json schema."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    BENCH_SCHEMA,
    bench_payload,
    render_timeline,
    span_to_dict,
    spans_to_jsonl,
    update_bench_json,
    validate_bench,
    write_spans_jsonl,
)
from repro.obs.trace import Tracer
from repro.storage.stats import Request, RequestTrace
from repro.util.clock import SimClock


@pytest.fixture
def tree():
    clock = SimClock(start=10.0)
    tracer = Tracer(clock=clock)
    with tracer.span("search", column="text", blob=b"\x01\x02") as root:
        with tracer.span("plan", phase="plan") as plan:
            tracer.record_event("LIST", "lake/_log/", 0)
            trace = RequestTrace()
            trace.record(Request(op="LIST", key="lake/_log/", nbytes=0))
            plan.trace = trace
            clock.advance(0.1)
        with tracer.span("probe:index", phase="index_probe"):
            for i in range(6):
                tracer.record_event("GET", f"idx/file-{i}", 100 + i)
            clock.advance(0.4)
    return root


class TestSpanDump:
    def test_span_to_dict_flat(self, tree):
        d = span_to_dict(tree)
        assert d["name"] == "search"
        assert d["parent_id"] is None
        assert d["attributes"] == {"column": "text", "blob": "0102"}
        assert d["duration_s"] == pytest.approx(0.5)
        plan = span_to_dict(tree.children[0])
        assert plan["parent_id"] == tree.span_id
        assert plan["events"] == [
            {"op": "LIST", "key": "lake/_log/", "nbytes": 0, "at_s": 10.0}
        ]
        assert plan["trace"] == {"requests": 1, "bytes": 0, "depth": 1}

    def test_jsonl_round_trip(self, tree, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        write_spans_jsonl(path, [tree])
        rows = [json.loads(line) for line in open(path)]
        assert len(rows) == 3  # depth-first: search, plan, probe:index
        assert [r["name"] for r in rows] == ["search", "plan", "probe:index"]
        # The tree is reconstructible from span_id/parent_id.
        by_id = {r["span_id"]: r for r in rows}
        for row in rows[1:]:
            assert row["parent_id"] in by_id

    def test_jsonl_empty(self):
        assert spans_to_jsonl([]) == ""


class TestTimeline:
    def test_render(self, tree):
        text = render_timeline(tree, width=20, max_events=4)
        lines = text.splitlines()
        assert "search" in lines[0]
        assert "ms" in lines[0]
        assert any("plan" in line for line in lines)
        assert any("· LIST lake/_log/ [0 B]" in line for line in lines)
        # 6 events with max_events=4 -> truncation marker.
        assert any("… 2 more request(s)" in line for line in lines)
        # Request/byte rollups shown for spans that have them.
        assert any("1 req / 0 B" in line for line in lines)

    def test_zero_duration_root_safe(self):
        tracer = Tracer(clock=SimClock())
        with tracer.span("instant") as root:
            pass
        assert "instant" in render_timeline(root)


class TestBenchJson:
    def test_payload_validates(self):
        validate_bench(bench_payload("serving"))

    def test_validate_rejects(self):
        with pytest.raises(ValueError):
            validate_bench({"schema": "nope", "bench": "x", "measurements": {}})
        with pytest.raises(ValueError):
            validate_bench({"schema": BENCH_SCHEMA, "measurements": {}})
        with pytest.raises(ValueError):
            validate_bench(
                {
                    "schema": BENCH_SCHEMA,
                    "bench": "x",
                    "measurements": {"m": {"params": {}}},
                }
            )

    def test_update_creates_and_merges(self, tmp_path):
        path = str(tmp_path / "BENCH_serving.json")
        update_bench_json(
            path, "serving", "cold",
            metrics={"latency_ms": 12.5}, params={"searchers": 4},
        )
        payload = update_bench_json(
            path, "serving", "warm", metrics={"latency_ms": 3.25}
        )
        assert set(payload["measurements"]) == {"cold", "warm"}
        on_disk = json.load(open(path))
        assert on_disk == payload
        assert on_disk["schema"] == BENCH_SCHEMA
        assert on_disk["measurements"]["cold"]["params"] == {"searchers": 4}

    def test_update_overwrites_same_measurement(self, tmp_path):
        path = str(tmp_path / "BENCH_b.json")
        update_bench_json(path, "b", "m", metrics={"v": 1})
        payload = update_bench_json(path, "b", "m", metrics={"v": 2})
        assert payload["measurements"]["m"]["metrics"] == {"v": 2}

    def test_update_recovers_from_corrupt_file(self, tmp_path):
        path = str(tmp_path / "BENCH_c.json")
        with open(path, "w") as f:
            f.write("{not json")
        payload = update_bench_json(path, "c", "m", metrics={"v": 1})
        assert payload["measurements"]["m"]["metrics"] == {"v": 1}
        validate_bench(json.load(open(path)))

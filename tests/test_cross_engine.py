"""Cross-engine oracle: Rottnest, brute force, and the copy-data system
must agree on every query over the same lake state."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.client import RottnestClient
from repro.core.queries import RangeQuery, SubstringQuery, UuidQuery, VectorQuery
from repro.engines.bruteforce import BruteForceEngine
from repro.engines.dedicated import DedicatedSearchSystem
from repro.formats.schema import ColumnType, Field, Schema
from repro.lake.table import LakeTable, TableConfig
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock

from tests.conftest import event_uuid


def rowset(matches):
    return {(m.file, m.row) for m in matches}


class TestThreeWayAgreement:
    @pytest.fixture
    def engines(self, store, event_lake):
        client = RottnestClient(store, "idx/events", event_lake)
        client.index("uuid", "uuid_trie")
        client.index("text", "fm", params={"block_size": 4096})
        client.index("emb", "ivf_pq", params={"nlist": 8, "m": 8})
        brute = BruteForceEngine(store, event_lake)
        copycat = DedicatedSearchSystem()
        return client, brute, copycat

    def test_uuid_agreement(self, engines, event_lake):
        client, brute, copycat = engines
        copycat.ingest(event_lake, "uuid")
        for seed, i in [(1, 0), (1, 299), (2, 150)]:
            query = UuidQuery(event_uuid(seed, i))
            a = rowset(client.search("uuid", query, k=50).matches)
            b = rowset(brute.search("uuid", query, k=50)[0])
            c = rowset(copycat.search(query, k=50))
            assert a == b == c
            assert len(a) == 1

    def test_substring_agreement(self, engines, event_lake):
        client, brute, copycat = engines
        copycat.ingest(event_lake, "text")
        docs = event_lake.to_pylist("text")
        for needle in [docs[0][:10], docs[400][:10], "impossible-needle"]:
            query = SubstringQuery(needle)
            a = rowset(client.search("text", query, k=10_000).matches)
            b = rowset(brute.search("text", query, k=10_000)[0])
            c = rowset(copycat.search(query, k=10_000))
            assert a == b == c

    def test_vector_topk_agreement(self, engines, event_lake):
        client, brute, copycat = engines
        copycat.ingest(event_lake, "emb")
        rng = np.random.default_rng(3)
        for _ in range(3):
            vec = rng.normal(size=16).astype(np.float32)
            # Exhaustive settings so the ANN result is exact.
            query = VectorQuery(vec, nprobe=8, refine=600)
            a = client.search("emb", query, k=5).matches
            b = brute.search("emb", query, k=5)[0]
            c = copycat.search(query, k=5)
            assert rowset(a) == rowset(b) == rowset(c)
            for x, y in zip(a, b):
                assert x.score == pytest.approx(y.score)

    def test_agreement_survives_deletes(self, engines, event_lake):
        client, brute, _ = engines
        victim = event_uuid(1, 50)
        event_lake.delete_where("uuid", lambda v: bytes(v) == victim)
        query = UuidQuery(victim)
        assert client.search("uuid", query, k=5).matches == []
        assert brute.search("uuid", query, k=5)[0] == []


@settings(max_examples=10, deadline=None)
@given(
    n_batches=st.integers(1, 3),
    rows=st.integers(20, 80),
    probe_seed=st.integers(0, 10_000),
    delete_mod=st.integers(3, 9),
)
def test_rottnest_equals_bruteforce_property(
    n_batches, rows, probe_seed, delete_mod
):
    """Property: for arbitrary lake contents, deletions, and probes,
    Rottnest search == brute-force scan (the ground truth)."""
    store = InMemoryObjectStore(clock=SimClock())
    schema = Schema.of(
        Field("k", ColumnType.INT64), Field("t", ColumnType.STRING)
    )
    lake = LakeTable.create(
        store, "lake/x", schema,
        TableConfig(row_group_rows=32, page_target_bytes=512),
    )
    total = 0
    for b in range(n_batches):
        lake.append(
            {
                "k": list(range(total, total + rows)),
                "t": [f"row {total + i} tag{(total + i) % 7}"
                      for i in range(rows)],
            }
        )
        total += rows
    lake.delete_where("k", lambda v: v % delete_mod == 0)
    client = RottnestClient(store, "idx/x", lake)
    client.index("t", "fm", params={"block_size": 512, "sample_rate": 8})
    client.index("k", "minmax")
    brute = BruteForceEngine(store, lake)

    needle = f"tag{probe_seed % 7}"
    a = rowset(client.search("t", SubstringQuery(needle), k=10_000).matches)
    b = rowset(brute.search("t", SubstringQuery(needle), k=10_000)[0])
    assert a == b

    lo = probe_seed % max(total, 1)
    query = RangeQuery(lo, lo + 10)
    a = rowset(client.search("k", query, k=10_000).matches)
    b = rowset(brute.search("k", query, k=10_000)[0])
    assert a == b

"""Cost attribution: bills reconcile exactly with IOStats deltas."""

from __future__ import annotations

import pytest

from repro.core.queries import SubstringQuery, UuidQuery, VectorQuery
from repro.obs.attribution import (
    PHASE_ORDER,
    QueryBill,
    attribute,
    price_iostats,
)
from repro.obs.trace import Tracer, use_tracer
from repro.serve.executor import SearchExecutor
from repro.storage.costs import CostModel
from repro.storage.latency import LatencyModel
from repro.storage.stats import Request, RequestTrace
from tests.conftest import event_uuid

COSTS = CostModel()
LAT = LatencyModel()


def _profiled_search(client, column, query, *, k=5, max_searchers=0):
    """Run one search under a fresh tracer; return (bill, IOStats delta,
    result, root span)."""
    tracer = Tracer(clock=client.store.clock)
    before = client.store.stats.snapshot()
    with use_tracer(tracer):
        if max_searchers:
            with SearchExecutor(client, max_searchers=max_searchers) as ex:
                result = ex.search(column, query, k=k)
        else:
            result = client.search(column, query, k=k)
    delta = client.store.stats.snapshot().delta(before)
    root = tracer.last_root("search")
    assert root is not None
    bill = attribute(root, latency=LAT, costs=COSTS)
    return bill, delta, result, root


def _assert_exact(bill: QueryBill, delta) -> None:
    """The acceptance criterion: bill totals equal the IOStats delta
    priced by the cost model, bit for bit."""
    assert bill.gets == delta.gets
    assert bill.puts == delta.puts
    assert bill.lists == delta.lists
    assert bill.heads == delta.heads
    assert bill.deletes == delta.deletes
    assert bill.bytes_read == delta.bytes_read
    assert bill.total_request_cost_usd(COSTS) == price_iostats(delta, COSTS)


class TestClientPathReconciliation:
    def test_uuid_search(self, indexed_client):
        bill, delta, result, _ = _profiled_search(
            indexed_client, "uuid", UuidQuery(event_uuid(1, 3))
        )
        assert result.matches
        _assert_exact(bill, delta)
        phases = [p.phase for p in bill.phases]
        assert phases[0] == "plan"
        assert "index_probe" in phases
        assert phases == [p for p in PHASE_ORDER if p in phases]

    def test_substring_search(self, indexed_client):
        bill, delta, _, _ = _profiled_search(
            indexed_client, "text", SubstringQuery("the")
        )
        _assert_exact(bill, delta)

    def test_vector_search(self, indexed_client):
        query = VectorQuery(
            __import__("numpy").zeros(16, dtype="float32"), nprobe=4, refine=20
        )
        bill, delta, _, _ = _profiled_search(indexed_client, "emb", query)
        _assert_exact(bill, delta)

    def test_unindexed_brute_force(self, client):
        """No index: everything lands in plan + brute_force."""
        bill, delta, result, _ = _profiled_search(
            client, "uuid", UuidQuery(event_uuid(2, 5))
        )
        assert result.matches
        _assert_exact(bill, delta)
        # Probe phases exist (spans open either way) but issue nothing.
        for phase in bill.phases:
            if phase.phase in ("index_probe", "page_read"):
                assert phase.requests == 0
        brute = next(p for p in bill.phases if p.phase == "brute_force")
        assert brute.gets > 0


class TestExecutorPathReconciliation:
    @pytest.mark.parametrize("width", [1, 3])
    def test_uuid_search(self, indexed_client, width):
        bill, delta, result, root = _profiled_search(
            indexed_client, "uuid", UuidQuery(event_uuid(1, 3)),
            max_searchers=width,
        )
        assert result.matches
        _assert_exact(bill, delta)
        # Worker task spans carry traces but no phase attribute, so the
        # fan-out must not double-count: checked by _assert_exact above,
        # and directly here.
        assert all(
            "phase" not in t.attributes for t in root.find_all("searcher:task")
        )

    def test_vector_search(self, indexed_client):
        query = VectorQuery(
            __import__("numpy").zeros(16, dtype="float32"), nprobe=4, refine=20
        )
        bill, delta, _, _ = _profiled_search(
            indexed_client, "emb", query, max_searchers=4
        )
        _assert_exact(bill, delta)

    def test_parallelism_reduces_modeled_latency_not_cost(self, indexed_client):
        query = UuidQuery(event_uuid(1, 3))
        seq, seq_delta, _, _ = _profiled_search(
            indexed_client, "uuid", query, max_searchers=1
        )
        par, par_delta, _, _ = _profiled_search(
            indexed_client, "uuid", query, max_searchers=8
        )
        # Same requests either way -> same request dollars...
        assert par.total_request_cost_usd(COSTS) == pytest.approx(
            seq.total_request_cost_usd(COSTS)
        )
        # ...but fanning out cannot make the modeled wall-clock worse.
        assert par.est_latency_s <= seq.est_latency_s + 1e-9


class TestBillShape:
    def test_phase_latency_sums_to_bill_total(self, indexed_client):
        bill, _, _, root = _profiled_search(
            indexed_client, "uuid", UuidQuery(event_uuid(1, 3))
        )
        assert bill.est_latency_s == pytest.approx(
            sum(p.est_latency_s for p in bill.phases)
        )
        # Each phase's modeled latency is its trace's latency.
        for phase in bill.phases:
            spans = [
                s for s in root.walk()
                if s.attributes.get("phase") == phase.phase and s.trace
            ]
            assert phase.est_latency_s == pytest.approx(
                sum(LAT.trace_latency(s.trace) for s in spans)
            )

    def test_compute_cost_prices_instance_time(self):
        trace = RequestTrace()
        trace.record(Request(op="GET", key="k", nbytes=100))
        tracer = Tracer()
        with tracer.span("search") as root:
            with tracer.span("probe", phase="index_probe") as span:
                span.trace = trace
        bill = attribute(root, latency=LAT, costs=COSTS, instance_type="c6i.2xlarge")
        phase = bill.phases[0]
        expected_latency = LAT.trace_latency(trace)
        assert phase.est_latency_s == pytest.approx(expected_latency)
        assert phase.compute_cost_usd == pytest.approx(
            expected_latency * COSTS.instance_hourly("c6i.2xlarge") / 3600.0
        )
        assert bill.total_cost_usd(COSTS) == pytest.approx(
            bill.total_request_cost_usd(COSTS) + phase.compute_cost_usd
        )

    def test_unknown_phase_appended_after_canonical(self):
        tracer = Tracer()
        with tracer.span("search") as root:
            with tracer.span("x", phase="custom"):
                pass
            with tracer.span("p", phase="plan"):
                pass
        bill = attribute(root)
        assert [p.phase for p in bill.phases] == ["plan", "custom"]

    def test_describe_renders_table(self, indexed_client):
        bill, _, _, _ = _profiled_search(
            indexed_client, "uuid", UuidQuery(event_uuid(1, 3))
        )
        text = bill.describe(COSTS)
        assert "per-query bill" in text
        assert "plan" in text
        assert "total cost" in text

"""Unit tests for varints, binary IO, and the simulated clock."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.util.binio import BinaryReader, BinaryWriter
from repro.util.clock import SimClock, SystemClock
from repro.util.varint import decode_uvarint, encode_uvarint


class TestVarint:
    @pytest.mark.parametrize(
        "value,encoded",
        [
            (0, b"\x00"),
            (1, b"\x01"),
            (127, b"\x7f"),
            (128, b"\x80\x01"),
            (300, b"\xac\x02"),
            (2**32, b"\x80\x80\x80\x80\x10"),
        ],
    )
    def test_known_encodings(self, value, encoded):
        assert encode_uvarint(value) == encoded
        assert decode_uvarint(encoded) == (value, len(encoded))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_uvarint(-1)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            decode_uvarint(b"\x80")

    def test_overlong_rejected(self):
        with pytest.raises(ValueError):
            decode_uvarint(b"\xff" * 11)

    def test_decode_with_offset(self):
        data = b"junk" + encode_uvarint(12345)
        value, pos = decode_uvarint(data, offset=4)
        assert value == 12345
        assert pos == len(data)

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_roundtrip(self, value):
        encoded = encode_uvarint(value)
        decoded, pos = decode_uvarint(encoded)
        assert decoded == value
        assert pos == len(encoded)

    @given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=20))
    def test_stream_roundtrip(self, values):
        blob = b"".join(encode_uvarint(v) for v in values)
        pos = 0
        out = []
        for _ in values:
            v, pos = decode_uvarint(blob, pos)
            out.append(v)
        assert out == values


class TestBinaryIO:
    def test_fixed_width_roundtrip(self):
        w = BinaryWriter()
        w.write_u8(200)
        w.write_u32(2**31)
        w.write_u64(2**63)
        w.write_f64(3.25)
        r = BinaryReader(w.getvalue())
        assert r.read_u8() == 200
        assert r.read_u32() == 2**31
        assert r.read_u64() == 2**63
        assert r.read_f64() == 3.25
        assert r.remaining() == 0

    def test_len_bytes_roundtrip(self):
        w = BinaryWriter()
        w.write_len_bytes(b"hello")
        w.write_len_bytes(b"")
        w.write_str("snow☃man")
        r = BinaryReader(w.getvalue())
        assert r.read_len_bytes() == b"hello"
        assert r.read_len_bytes() == b""
        assert r.read_str() == "snow☃man"

    def test_truncated_read_raises(self):
        r = BinaryReader(b"\x01\x02")
        with pytest.raises(FormatError):
            r.read_u32()

    def test_truncated_varint_raises_format_error(self):
        r = BinaryReader(b"\x80")
        with pytest.raises(FormatError):
            r.read_uvarint()

    def test_reader_offset_start(self):
        w = BinaryWriter()
        w.write_u32(7)
        w.write_u32(9)
        r = BinaryReader(w.getvalue(), offset=4)
        assert r.read_u32() == 9

    def test_len_tracks_writes(self):
        w = BinaryWriter()
        assert len(w) == 0
        w.write_bytes(b"abc")
        assert len(w) == 3

    @given(st.lists(st.binary(max_size=50), max_size=15))
    def test_many_len_bytes(self, chunks):
        w = BinaryWriter()
        for c in chunks:
            w.write_len_bytes(c)
        r = BinaryReader(w.getvalue())
        assert [r.read_len_bytes() for _ in chunks] == chunks


class TestClock:
    def test_sim_clock_advances(self):
        c = SimClock(start=100.0)
        assert c.now() == 100.0
        c.advance(5.5)
        assert c.now() == 105.5

    def test_sim_clock_rejects_backwards(self):
        c = SimClock()
        with pytest.raises(ValueError):
            c.advance(-1)
        with pytest.raises(ValueError):
            c.set(-1)

    def test_sim_clock_set_forward(self):
        c = SimClock(start=10.0)
        c.set(20.0)
        assert c.now() == 20.0

    def test_system_clock_monotonic_enough(self):
        c = SystemClock()
        assert c.now() <= c.now()

"""Partitioned data (§VI structured filters) and the explain() planner."""

import hashlib

import pytest

from repro.core.client import RottnestClient
from repro.core.queries import SubstringQuery, UuidQuery
from repro.errors import LakeError
from repro.formats.schema import ColumnType, Field, Schema
from repro.lake.table import LakeTable, TableConfig
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock


def key_of(month: str, i: int) -> bytes:
    return hashlib.sha256(f"{month}:{i}".encode()).digest()[:16]


@pytest.fixture
def partitioned():
    store = InMemoryObjectStore(clock=SimClock())
    schema = Schema.of(
        Field("request_id", ColumnType.BINARY),
        Field("message", ColumnType.STRING),
    )
    lake = LakeTable.create(
        store, "lake/logs", schema,
        TableConfig(row_group_rows=100, page_target_bytes=1024),
    )
    months = ["2026-05", "2026-06", "2026-07"]
    for month in months:
        lake.append(
            {
                "request_id": [key_of(month, i) for i in range(200)],
                "message": [f"{month} event {i}" for i in range(200)],
            },
            partition=month,
        )
    client = RottnestClient(store, "idx/logs", lake)
    client.index("request_id", "uuid_trie")
    return store, lake, client, months


class TestPartitionedLake:
    def test_partition_encoded_in_path(self, partitioned):
        _, lake, _, months = partitioned
        partitions = {
            LakeTable.partition_of(p) for p in lake.snapshot().file_paths
        }
        assert partitions == set(months)

    def test_partition_of_unpartitioned(self):
        assert LakeTable.partition_of("lake/t/data/part-0.parquet") is None

    def test_invalid_partition_value(self, partitioned):
        _, lake, _, _ = partitioned
        with pytest.raises(LakeError):
            lake.append({"request_id": [b"x"], "message": ["y"]},
                        partition="a/b")

    def test_compaction_respects_partitions(self, partitioned):
        _, lake, _, months = partitioned
        # Add more small files per partition, then compact.
        for month in months:
            lake.append(
                {
                    "request_id": [key_of(month, 1000 + i) for i in range(50)],
                    "message": [f"{month} extra {i}" for i in range(50)],
                },
                partition=month,
            )
        lake.compact(min_file_rows=500, target_rows=2000)
        snap = lake.snapshot()
        partitions = {LakeTable.partition_of(p) for p in snap.file_paths}
        assert partitions == set(months)
        assert len(snap.files) == 3  # one merged file per partition
        assert snap.num_rows == 3 * 250

    def test_rewrite_sorted_respects_partitions(self, partitioned):
        _, lake, _, months = partitioned
        lake.rewrite_sorted("message")
        partitions = {
            LakeTable.partition_of(p) for p in lake.snapshot().file_paths
        }
        assert partitions == set(months)


class TestPartitionedSearch:
    def test_search_scoped_to_partition(self, partitioned):
        store, lake, client, _ = partitioned
        key = key_of("2026-06", 17)
        # Unscoped: found.
        assert len(client.search("request_id", UuidQuery(key), k=5).matches) == 1
        # Scoped to its own partition: found.
        res = client.search(
            "request_id", UuidQuery(key), k=5, partition="2026-06"
        )
        assert len(res.matches) == 1
        # Scoped to a different partition: excluded.
        res = client.search(
            "request_id", UuidQuery(key), k=5, partition="2026-05"
        )
        assert res.matches == []

    def test_partition_scope_shrinks_brute_force(self, partitioned):
        """Unindexed data costs only its partition's scan when scoped —
        the normalized-query cost reduction of §VI."""
        store, lake, client, _ = partitioned
        lake.append(
            {
                "request_id": [key_of("2026-08", i) for i in range(100)],
                "message": [f"2026-08 event {i}" for i in range(100)],
            },
            partition="2026-08",
        )
        needle = "2026-08 event 5"
        unscoped = client.search("message", SubstringQuery(needle), k=200)
        scoped = client.search(
            "message", SubstringQuery(needle), k=200, partition="2026-08"
        )
        matches = {(m.file, m.row) for m in scoped.matches}
        assert matches == {(m.file, m.row) for m in unscoped.matches}
        assert scoped.stats.files_brute_forced == 1

    def test_file_predicate(self, partitioned):
        _, lake, client, _ = partitioned
        key = key_of("2026-07", 3)
        res = client.search(
            "request_id",
            UuidQuery(key),
            k=5,
            file_predicate=lambda p: "p=2026-07" in p,
        )
        assert len(res.matches) == 1


class TestExplain:
    def test_fully_covered_plan(self, partitioned):
        _, _, client, _ = partitioned
        plan = client.explain("request_id", UuidQuery(b"\x00" * 16))
        assert plan.fully_covered
        assert len(plan.candidate_files) == 3
        assert len(plan.index_files) == 1
        assert plan.index_files[0][1] == "uuid_trie"
        assert plan.index_files[0][2] == 3
        assert "fully covered" in plan.describe()

    def test_uncovered_files_reported(self, partitioned):
        _, lake, client, _ = partitioned
        lake.append(
            {"request_id": [b"\x01" * 16], "message": ["fresh"]},
            partition="2026-08",
        )
        plan = client.explain("request_id", UuidQuery(b"\x01" * 16))
        assert not plan.fully_covered
        assert len(plan.uncovered_files) == 1
        assert "brute-force scan: 1" in plan.describe()

    def test_partition_scoped_plan(self, partitioned):
        _, _, client, _ = partitioned
        plan = client.explain(
            "request_id", UuidQuery(b"\x00" * 16), partition="2026-06"
        )
        assert len(plan.candidate_files) == 1
        assert plan.index_files[0][2] == 1  # index useful for 1 file

    def test_regex_plan_has_no_indices(self, partitioned):
        from repro.core.queries import RegexQuery

        _, _, client, _ = partitioned
        plan = client.explain("message", RegexQuery("ev.nt"))
        assert plan.index_files == ()
        assert len(plan.uncovered_files) == 3

    def test_explain_matches_search_stats(self, partitioned):
        _, _, client, _ = partitioned
        key = key_of("2026-05", 9)
        plan = client.explain("request_id", UuidQuery(key))
        result = client.search("request_id", UuidQuery(key), k=5)
        assert len(plan.index_files) == result.stats.index_files_queried
        assert len(plan.uncovered_files) == result.stats.files_brute_forced

"""Maintenance daemon: policy triggers and end-to-end upkeep."""

import pytest

from repro.core.client import RottnestClient
from repro.core.daemon import MaintenanceDaemon, MaintenancePolicy
from repro.core.queries import SubstringQuery, UuidQuery

from tests.conftest import event_batch, event_uuid


@pytest.fixture
def daemon(store, event_lake):
    client = RottnestClient(store, "idx/events", event_lake)
    policy = MaintenancePolicy(
        index_min_new_files=1,
        compact_min_small_files=3,
        vacuum_interval_s=3600.0,
    )
    return MaintenanceDaemon(
        client,
        [("uuid", "uuid_trie"), ("text", "fm")],
        policy=policy,
        index_params={("text", "fm"): {"block_size": 4096}},
    )


class TestTriggers:
    def test_first_tick_indexes_everything(self, daemon):
        report = daemon.tick()
        assert len(report.indexed) == 2  # one record per target
        assert {r.index_type for r in report.indexed} == {"uuid_trie", "fm"}
        assert report.vacuum is not None  # first tick always vacuums

    def test_idle_tick(self, daemon, clock):
        daemon.tick()
        report = daemon.tick()  # nothing new, vacuum not due yet
        assert report.idle

    def test_vacuum_due_after_interval(self, daemon, clock):
        daemon.tick()
        clock.advance(3601)
        report = daemon.tick()
        assert report.vacuum is not None

    def test_index_due_respects_min_files(self, daemon, event_lake):
        daemon.tick()
        daemon.policy = MaintenancePolicy(index_min_new_files=2)
        event_lake.append(event_batch(50, seed=9))
        assert not daemon.index_due("uuid", "uuid_trie")
        event_lake.append(event_batch(50, seed=10))
        assert daemon.index_due("uuid", "uuid_trie")

    def test_index_due_respects_min_bytes(self, daemon, event_lake):
        daemon.tick()
        daemon.policy = MaintenancePolicy(
            index_min_new_files=1, index_min_new_bytes=10**9
        )
        event_lake.append(event_batch(50, seed=9))
        assert not daemon.index_due("uuid", "uuid_trie")

    def test_compact_triggers_at_threshold(self, daemon, event_lake, clock):
        daemon.tick()
        event_lake.append(event_batch(60, seed=11))
        daemon.tick()
        # Two covering trie files: below the threshold of 3.
        assert not daemon.compact_due("uuid", "uuid_trie")
        event_lake.append(event_batch(60, seed=12))
        # The third index lands and compaction fires in the same tick.
        report = daemon.tick()
        assert len(report.compacted) >= 1
        # Post-compaction the covering set is a single merged file.
        assert not daemon.compact_due("uuid", "uuid_trie")

    def test_abort_is_recorded_not_raised(self, store, event_lake):
        client = RottnestClient(store, "idx/events", event_lake)
        daemon = MaintenanceDaemon(
            client,
            [("emb", "ivf_pq")],
            policy=MaintenancePolicy(),
        )
        # 600 rows > min_rows(256): indexes fine. Shrink to force abort:
        event_lake.delete_where("uuid", lambda v: True)
        event_lake.compact(min_file_rows=10_000, target_rows=100_000)
        # Table now empty except structure; append a tiny batch.
        event_lake.append(event_batch(20, seed=3))
        report = daemon.tick()
        assert len(report.index_aborts) == 1
        assert "minimum" in report.index_aborts[0]


class TestEndToEnd:
    def test_daemon_keeps_lake_fully_indexed(self, daemon, event_lake, clock):
        daemon.tick()
        for seed in range(20, 26):
            event_lake.append(event_batch(40, seed=seed))
            clock.advance(4000)
            daemon.tick()
        key = event_uuid(23, 7)
        res = daemon.client.search("uuid", UuidQuery(key), k=5)
        assert len(res.matches) == 1
        assert res.stats.files_brute_forced == 0
        docs = event_lake.to_pylist("text")
        res = daemon.client.search("text", SubstringQuery(docs[-1][:8]), k=5)
        assert res.stats.files_brute_forced == 0

    def test_daemon_garbage_collects_after_lake_compaction(
        self, daemon, event_lake, clock
    ):
        daemon.tick()
        event_lake.compact(min_file_rows=1000, target_rows=10_000)
        clock.advance(4000)
        daemon.tick()  # reindexes the compacted file, vacuums stale recs
        clock.advance(daemon.client.index_timeout_s + 4000)
        report = daemon.tick()
        # Stale physical index files eventually removed.
        live = {r.index_key for r in daemon.client.meta.records()}
        on_storage = {
            i.key for i in daemon.client.store.list("idx/events/files/")
        }
        assert on_storage == live

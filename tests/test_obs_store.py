"""Snapshot store: durable, mergeable telemetry across processes/runs.

The fold is the load-bearing claim: every component of a snapshot
(hub series, quantile sketches + exemplars, cost ledger, metrics
registry, crack heat map, flight/source sets) merges commutatively and
associatively, so folding snapshots from any number of processes,
shards, or runs gives one answer regardless of order — pinned here
with a hypothesis permutation property over randomized payloads.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crack.heat import HeatKey, HeatMap
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import default_slo
from repro.obs.store import (
    SnapshotStore,
    fold_snapshots,
    merge_metrics,
    snapshot_payload,
    validate_snapshot,
)
from repro.obs.timeseries import TelemetryHub
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock


def _store():
    return InMemoryObjectStore(clock=SimClock(start=1_000_000.0))


def _hub(seed: int, *, window_s: float = 60.0) -> TelemetryHub:
    """A deterministic hub with serve, router-shard and ingest series."""
    hub = TelemetryHub(window_s=window_s)
    base = 1_000_000.0 + seed * 7
    for i in range(5 + seed):
        at_s = base + i * 11.0
        value = 0.01 * (i + 1 + seed)
        hub.quantiles("serve.latency_s").observe(
            value, at_s=at_s, trace_id=f"t{seed}-{i}"
        )
        hub.series("serve.queries").observe(1.0, at_s=at_s)
        hub.series(f"router.shard{seed % 3}.queries").observe(1.0, at_s=at_s)
        hub.quantiles("ingest.freshness_lag_s").observe(
            value * 10, at_s=at_s
        )
        hub.ledger.record_query(1e-6, 2e-6, at_s=at_s)
    return hub


def _heat(seed: int) -> HeatMap:
    heat = HeatMap()
    for i in range(3):
        heat.observe(
            HeatKey(f"lake/f{(seed + i) % 4}.bin", "text", "SubstringQuery"),
            float(seed + i + 1),
            at_s=1_000_000.0 + i,
        )
    return heat


def _registry(seed: int) -> MetricsRegistry:
    reg = MetricsRegistry()
    counter = reg.counter("queries_total", "queries", ("status",))
    counter.inc(amount=seed + 1, status="ok")
    gauge = reg.gauge("inflight", "in flight")
    gauge.set(float(seed))
    hist = reg.histogram(
        "latency_s", "latency", buckets=(0.1, 1.0)
    )
    hist.observe(0.05 * (seed + 1), trace_id=f"h{seed}")
    return reg


def _round_floats(obj):
    if isinstance(obj, float):
        return float(f"{obj:.12g}")
    if isinstance(obj, dict):
        return {k: _round_floats(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_round_floats(v) for v in obj]
    return obj


def _canon(payload: dict) -> str:
    return json.dumps(_round_floats(payload), sort_keys=True)


def _payload(seed: int) -> dict:
    return snapshot_payload(
        _hub(seed),
        registry=_registry(seed),
        heat=_heat(seed),
        slo=default_slo(),
        source=f"proc-{seed}",
        at_s=1_000_000.0 + seed,
        flights=[f"flight-{seed}"],
    )


class TestCommit:
    def test_commit_load_round_trip(self):
        store = _store()
        snaps = SnapshotStore(store)
        key = snaps.commit(
            _hub(1), registry=_registry(1), heat=_heat(1), source="a"
        )
        payload = snaps.load(key)
        validate_snapshot(payload)
        assert payload["sources"] == ["a"]
        assert payload["at_s"] == 1_000_000.0  # SimClock, no advance
        hub = TelemetryHub.from_snapshot(payload["hub"])
        assert hub.series("serve.queries").count() == 6

    def test_commit_is_content_addressed_and_idempotent(self):
        store = _store()
        snaps = SnapshotStore(store)
        key1 = snaps.commit(_hub(1), source="a")
        before = store.stats.snapshot()
        key2 = snaps.commit(_hub(1), source="a")
        assert key1 == key2
        assert store.stats.snapshot().delta(before).puts == 0
        assert len(snaps.keys()) == 1

    def test_snapshots_sorted_by_time(self):
        store = _store()
        snaps = SnapshotStore(store)
        snaps.commit(_hub(1), source="b", at_s=2_000.0)
        snaps.commit(_hub(2), source="a", at_s=1_000.0)
        assert [p["at_s"] for p in snaps.snapshots()] == [1_000.0, 2_000.0]


class TestMergeMetrics:
    def test_counters_add_gauges_max_histograms_bucketwise(self):
        a = _registry(1).snapshot()
        b = _registry(4).snapshot()
        merged = merge_metrics(a, b)
        assert merged["queries_total"]["series"]['status="ok"'] == 2 + 5
        assert merged["inflight"]["series"][""] == 4.0
        hist = merged["latency_s"]["series"][""]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(0.05 * 2 + 0.05 * 5)
        # Exemplar: the larger observation's trace id wins the bucket.
        assert hist["exemplars"]["1"]["trace_id"] == "h4"

    def test_kind_mismatch_raises(self):
        reg_a = MetricsRegistry()
        reg_a.counter("x_total", "x").inc()
        reg_b = MetricsRegistry()
        reg_b.gauge("x_total", "x").set(1.0)
        with pytest.raises(ReproError):
            merge_metrics(reg_a.snapshot(), reg_b.snapshot())

    def test_merge_does_not_mutate_inputs(self):
        a = _registry(1).snapshot()
        b = _registry(2).snapshot()
        a_before = json.dumps(a, sort_keys=True)
        b_before = json.dumps(b, sort_keys=True)
        merge_metrics(a, b)
        assert json.dumps(a, sort_keys=True) == a_before
        assert json.dumps(b, sort_keys=True) == b_before


class TestFold:
    def test_fold_sums_hub_series_and_merges_heat(self):
        folded = fold_snapshots([_payload(0), _payload(1)])
        hub = TelemetryHub.from_snapshot(folded["hub"])
        assert hub.series("serve.queries").count() == 5 + 6
        assert folded["sources"] == ["proc-0", "proc-1"]
        assert folded["flights"] == ["flight-0", "flight-1"]
        heat = HeatMap.from_dict(folded["heat"])
        merged_ref = _heat(0).merge(_heat(1))
        assert heat.to_dict() == merged_ref.to_dict()
        # Point-in-time SLO verdicts are collected, not merged.
        assert len(folded["slo_reports"]) == 2

    def test_fold_empty_and_bad_schema(self):
        empty = fold_snapshots([])
        validate_snapshot(empty)
        assert empty["hub"] is None
        with pytest.raises(ReproError):
            fold_snapshots([{"schema": "nope"}])

    @settings(max_examples=25, deadline=None)
    @given(
        seeds=st.lists(
            st.integers(min_value=0, max_value=5),
            min_size=1,
            max_size=5,
        ),
        data=st.data(),
    )
    def test_fold_is_order_independent(self, seeds, data):
        """Merge-order irrelevance: folding any permutation of the same
        payloads — including duplicated sources — gives one answer.

        Floats are normalized to 12 significant digits before
        comparing: the fold's *structure* (which windows, counts,
        exemplars, sets) must match exactly; accumulated sums may
        differ in the last ulp because float addition itself is not
        bit-associative.
        """
        payloads = [_payload(s) for s in seeds]
        perm = data.draw(st.permutations(payloads))
        a = fold_snapshots(payloads)
        b = fold_snapshots(perm)
        assert _canon(a) == _canon(b)

    def test_fold_is_associative_via_refold(self):
        """fold(a, b, c) == fold(fold(a, b), c) — folding a fold."""
        a, b, c = _payload(0), _payload(1), _payload(2)
        direct = fold_snapshots([a, b, c])
        staged = fold_snapshots([fold_snapshots([a, b]), c])
        assert _canon(direct) == _canon(staged)


class TestCrossProcessStore:
    def test_two_processes_fold_through_the_store(self):
        store = _store()
        # Two independent "processes" commit their planes.
        SnapshotStore(store).commit_payload(_payload(0))
        SnapshotStore(store).commit_payload(_payload(1))
        snaps = SnapshotStore(store)
        assert len(snaps.keys()) == 2
        hub = snaps.folded_hub()
        assert hub is not None
        assert hub.series("serve.queries").count() == 11
        folded = snaps.fold()
        assert folded["sources"] == ["proc-0", "proc-1"]

    def test_folded_hub_none_without_snapshots(self):
        assert SnapshotStore(_store()).folded_hub() is None

    def test_crack_controller_spills_heat(self, indexed_client):
        from repro.crack import CrackController

        store = indexed_client.store
        snaps = SnapshotStore(store)
        controller = CrackController(
            indexed_client, [("uuid", "uuid_trie")], snapshots=snaps
        )
        controller.heat.observe(
            HeatKey("lake/f0.bin", "uuid", "UuidQuery"),
            5.0,
            at_s=store.clock.now(),
        )
        controller.tick()
        payloads = snaps.snapshots()
        assert len(payloads) == 1
        assert payloads[0]["sources"] == ["crack"]
        heat = HeatMap.from_dict(payloads[0]["heat"])
        assert len(heat) >= 1

"""Scatter-gather routing: merges, hedging, telemetry, SLOs, dashboard."""

from __future__ import annotations

import pytest

from repro.core.client import RottnestClient
from repro.core.queries import SubstringQuery, UuidQuery
from repro.errors import ShardError
from repro.lake.table import LakeTable, TableConfig
from repro.obs.dashboard import render_dashboard
from repro.obs.timeseries import TelemetryHub, use_hub
from repro.shard import (
    HedgePolicy,
    QueryRouter,
    ShardPlan,
    router_slo,
    shard_latency_series,
)
from repro.storage.latency import LatencyModel
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock

from tests.conftest import EVENT_SCHEMA, event_batch, event_uuid

CONFIG = TableConfig(row_group_rows=64, page_target_bytes=4096)


def _source(files: int = 4, rows: int = 40):
    store = InMemoryObjectStore(clock=SimClock(start=1_000_000.0))
    lake = LakeTable.create(store, "lake/events", EVENT_SCHEMA, CONFIG)
    for i in range(files):
        lake.append(event_batch(rows, seed=i + 1))
    client = RottnestClient(store, "idx/events", lake)
    return lake, client


@pytest.fixture
def hub():
    with use_hub(TelemetryHub()) as hub:
        yield hub


def test_router_validates_failure_mode():
    lake, _ = _source(files=1)
    with ShardPlan(n_shards=1).materialize(lake, "uuid") as deployment:
        with pytest.raises(ShardError):
            QueryRouter(deployment, on_shard_failure="retry")


def test_scatter_gather_equals_oracle(hub):
    lake, client = _source()
    with ShardPlan(n_shards=4).materialize(
        lake, "uuid", indexes=[("uuid", "uuid_trie", {})]
    ) as deployment:
        with QueryRouter(deployment, hedge=None) as router:
            # Present key: routed to the owning shard only, same answer.
            key = event_uuid(2, 10)
            routed = router.query("uuid", UuidQuery(key), k=100)
            oracle = client.search("uuid", UuidQuery(key), k=100, use_indices=False)
            assert sorted(m.value for m in routed.matches) == sorted(
                m.value for m in oracle.matches
            )
            assert routed.shards_pruned == 3
            assert routed.shards_queried == 1
            assert routed.complete
            # Absent key: still routed to one shard, empty either way.
            absent = router.query("uuid", UuidQuery(b"\x00" * 16), k=100)
            assert absent.matches == [] and absent.shards_pruned == 3
            # Non-key column scatters everywhere and unions exactly.
            needle = lake.to_pylist("text")[0][:8]
            scattered = router.query("text", SubstringQuery(needle), k=10_000)
            text_oracle = client.search(
                "text", SubstringQuery(needle), k=10_000, use_indices=False
            )
            assert sorted(m.value for m in scattered.matches) == sorted(
                m.value for m in text_oracle.matches
            )
            assert scattered.shards_queried == 4
            # Accounting: every queried shard was billed.
            assert scattered.total_requests > 0
            assert scattered.request_usd > 0
            assert scattered.compute_usd > 0
            assert scattered.cost_usd == pytest.approx(
                scattered.request_usd + scattered.compute_usd
            )


def test_fanout_waves_compose_latency(hub):
    lake, _ = _source()
    with ShardPlan(n_shards=4).materialize(
        lake,
        "uuid",
        indexes=[("uuid", "uuid_trie", {})],
        cache_budget_bytes=1,  # cold both times: compare real round trips
    ) as deployment:
        needle_query = SubstringQuery(lake.to_pylist("text")[0][:8])
        with QueryRouter(deployment, hedge=None, fanout=4) as wide:
            # Warm the replicas' in-memory lake metadata first, so the
            # two fanouts below see identical per-shard request plans.
            wide.query("text", needle_query, k=10_000)
            one_wave = wide.query("text", needle_query, k=10_000)
        with QueryRouter(deployment, hedge=None, fanout=1) as narrow:
            four_waves = narrow.query("text", needle_query, k=10_000)
        # One wave is the max over shards; four sequential waves sum.
        assert one_wave.modeled_latency_s == pytest.approx(
            max(o.latency_s for o in one_wave.outcomes)
        )
        assert four_waves.modeled_latency_s == pytest.approx(
            sum(o.latency_s for o in four_waves.outcomes)
        )
        assert four_waves.modeled_latency_s > one_wave.modeled_latency_s


def test_round_robin_load_balances_replicas(hub):
    lake, _ = _source(files=2)
    with ShardPlan(n_shards=1, replicas=2).materialize(
        lake, "uuid", indexes=[("uuid", "uuid_trie", {})]
    ) as deployment:
        with QueryRouter(deployment, hedge=None, prune=False) as router:
            replica_ids = [
                router.query("uuid", UuidQuery(event_uuid(1, i)), k=4)
                .outcomes[0]
                .replica_id
                for i in range(4)
            ]
            assert replica_ids == [0, 1, 0, 1]


def test_hedging_cuts_injected_slow_replica_tail(hub):
    lake, _ = _source()
    slow = LatencyModel(first_byte_s=LatencyModel().first_byte_s * 8)

    def models(shard_id: int, replica_id: int) -> LatencyModel:
        return slow if (shard_id == 0 and replica_id == 0) else LatencyModel()

    keys = [event_uuid(s, i) for s in (1, 2, 3, 4) for i in range(8)]
    latencies = {}
    for hedge in (None, HedgePolicy(quantile=0.25)):
        with use_hub(TelemetryHub()) as phase_hub:
            with ShardPlan(n_shards=2, replicas=2).materialize(
                lake,
                "uuid",
                indexes=[("uuid", "uuid_trie", {})],
                latency_model_for=models,
                cache_budget_bytes=1,  # cold every time: latency is real
            ) as deployment:
                with QueryRouter(
                    deployment, hedge=hedge, prune=False
                ) as router:
                    observed = [
                        router.query("uuid", UuidQuery(k), k=4)
                        for k in keys
                    ]
            # The policy stays quiet until the per-shard sketch has
            # min_observations; compare the post-warm-up tail only.
            latencies[hedge is not None] = max(
                r.modeled_latency_s for r in observed[8:]
            )
            if hedge is not None:
                assert sum(r.hedges for r in observed) > 0
                assert sum(r.hedge_wins for r in observed) > 0
                assert phase_hub.series("router.hedges").count() == sum(
                    r.hedges for r in observed
                )
                assert phase_hub.series("router.hedge_wins").count() == sum(
                    r.hedge_wins for r in observed
                )
    assert latencies[True] < latencies[False]


def test_router_telemetry_and_slo(hub):
    lake, _ = _source(files=2)
    with ShardPlan(n_shards=2).materialize(
        lake, "uuid", indexes=[("uuid", "uuid_trie", {})]
    ) as deployment:
        with QueryRouter(deployment, hedge=None, prune=False) as router:
            for i in range(6):
                router.query("uuid", UuidQuery(event_uuid(1, i)), k=4)
    assert hub.series("router.queries").count() == 6
    assert hub.quantiles("router.latency_s").merged().count == 6
    for shard_id in range(2):
        assert shard_latency_series(shard_id) in hub.quantile_names()
        assert hub.series(f"router.shard{shard_id}.queries").count() == 6
        assert hub.series(f"router.shard{shard_id}.failed").count() == 0
    # The per-shard SLO holds over a healthy run...
    report = router_slo(2).evaluate(hub)
    assert report.ok
    # 1 router latency + per shard (latency + availability).
    assert len(report.statuses) == 1 + 2 * 2
    # ...and a sub-millisecond latency budget breaches it.
    assert not router_slo(2, latency_p99_s=1e-6).evaluate(hub).ok


def test_dashboard_renders_router_section(hub):
    lake, _ = _source(files=2)
    with ShardPlan(n_shards=2).materialize(
        lake, "uuid", indexes=[("uuid", "uuid_trie", {})]
    ) as deployment:
        with QueryRouter(deployment, hedge=None, prune=False) as router:
            for i in range(4):
                router.query("uuid", UuidQuery(event_uuid(1, i)), k=4)
    html = render_dashboard(hub, slo=router_slo(2))
    assert "Scatter-gather router" in html
    assert "shard 0" in html and "shard 1" in html
    assert "routed queries" in html
    # A hub with no router traffic renders no router section.
    assert "Scatter-gather router" not in render_dashboard(TelemetryHub())


def test_shard_bench_cli_smoke(capsys):
    from repro.cli import main

    code = main(
        [
            "shard-bench",
            "--shards", "1", "4",
            "--queries", "8",
            "--files", "4",
            "--rows", "32",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "scatter" in out and "hedge on" in out

"""Crash matrices for the cracking controller's tick (verb ``crack``).

The controller mutates the store through exactly two idempotent verbs —
targeted indexing of hot files and IVF-PQ cell refinement — both
committing like compaction does (content-addressed upload, idempotent
metadata insert). The bar is the same as for every other mutating verb:
crash at ANY mutation boundary, re-run a fresh controller whose heat
map is rebuilt from the same observations, and the store must converge
byte-for-byte on the uninterrupted tick's state (modulo metadata
checkpoints; see the harness docstring).

The heat map itself is deliberately *not* durable state: each replay
reconstructs it inside the operation closure, which is also the
restart story — a controller that loses its memory re-learns the
workload and proposes the same work over unchanged metadata.
"""

from __future__ import annotations

import dataclasses

from repro.chaos import CRASH_POINTS, crash_matrix
from repro.core.client import RottnestClient
from repro.core.maintenance import covering_records
from repro.crack import (
    CrackController,
    CrackingPolicy,
    HeatKey,
    HeatMap,
    cell_scope,
)
from repro.lake.table import LakeTable, TableConfig
from repro.obs.timeseries import TelemetryHub, use_hub
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock

from tests.conftest import EVENT_SCHEMA, event_batch

LAKE_ROOT = "lake/events"
INDEX_DIR = "idx/events"
LAKE_CONFIG = TableConfig(
    row_group_rows=64, page_target_bytes=4096, checkpoint_interval=1
)

#: Tick tunables for the matrices: a low hotness floor (the synthetic
#: heat is weight 10 per scope), splits allowed on any 2-member cell so
#: refinement always commits, and room for both verbs in one tick.
POLICY = CrackingPolicy(
    hotness_floor=0.5, refine_min_cell_rows=2, max_actions_per_tick=4
)


def _make_client(store) -> RottnestClient:
    # Fixed key entropy: targeted/refined index keys must be
    # deterministic for a crashed-then-recovered tick to be compared
    # byte-for-byte against the uninterrupted reference.
    client = RottnestClient(
        store,
        INDEX_DIR,
        LakeTable.open(store, LAKE_ROOT, LAKE_CONFIG),
        key_entropy=lambda: b"\x00\x00\x00\x00",
    )
    client.meta.checkpoint_interval = 1
    return client


def _uuid_heat(client: RottnestClient, hot_files: int) -> HeatMap:
    """Synthetic heat: the first ``hot_files`` lake files are hot."""
    heat = HeatMap()
    now = client.store.clock.now()
    for entry in client.lake.snapshot().files[:hot_files]:
        heat.observe(
            HeatKey(entry.path, "uuid", "UuidQuery"), 10.0, at_s=now
        )
    return heat


def _cell_heat(client: RottnestClient, index_key: str) -> HeatMap:
    """Synthetic heat: every cell of ``index_key`` is probe-hot."""
    heat = HeatMap()
    now = client.store.clock.now()
    for cell in range(4):
        heat.observe(
            HeatKey(cell_scope(index_key, cell), "emb", "VectorQuery"),
            10.0,
            at_s=now,
        )
    return heat


def _tick(client: RottnestClient, targets, heat: HeatMap) -> None:
    with use_hub(TelemetryHub()):
        CrackController(
            client,
            targets,
            cracking=POLICY,
            heat=heat,
            index_params={("emb", "ivf_pq"): {"nlist": 4, "m": 8}},
        ).tick()


# ---------------------------------------------------------------------
# targeted indexing: hot files only, every boundary byte-identical
# ---------------------------------------------------------------------
class TestTargetedIndexCrashMatrix:
    def _base(self):
        clock = SimClock(start=1_000_000.0)
        store = InMemoryObjectStore(clock=clock)
        lake = LakeTable.create(store, LAKE_ROOT, EVENT_SCHEMA, LAKE_CONFIG)
        for i in range(4):
            lake.append(event_batch(30, seed=i + 1))
        return clock, store

    def test_every_crash_point_byte_identical(self):
        clock, store = self._base()
        matrix = crash_matrix(
            store,
            _make_client,
            "crack",
            lambda c: _tick(c, [("uuid", "uuid_trie")], _uuid_heat(c, 2)),
            compare="bytes",
        )
        # targeted index upload + meta commit + meta checkpoint
        assert matrix.mutations == 3
        assert matrix.all_recoverable, matrix.describe()
        assert matrix.crash_points() <= set(CRASH_POINTS)
        assert matrix.crash_points() == {
            "crack:put-index-file",
            "crack:put-meta-commit",
            "crack:put-meta-checkpoint",
        }

    def test_cold_files_stay_uncovered_and_rerun_is_idle(self):
        clock, store = self._base()
        client = _make_client(store)
        _tick(client, [("uuid", "uuid_trie")], _uuid_heat(client, 2))
        covered = _make_client(store).meta.indexed_files("uuid", "uuid_trie")
        snap = _make_client(store).lake.snapshot()
        assert set(covered) == {f.path for f in snap.files[:2]}
        # Idempotence: a second controller over the same heat finds the
        # hot set covered and mutates nothing.
        before = store.stats.snapshot()
        client = _make_client(store)
        _tick(client, [("uuid", "uuid_trie")], _uuid_heat(client, 2))
        delta = store.stats.snapshot().delta(before)
        assert delta.puts + delta.deletes == 0


# ---------------------------------------------------------------------
# cell refinement: rewrite-and-commit, every boundary byte-identical
# ---------------------------------------------------------------------
class TestRefineCrashMatrix:
    def _base(self):
        """A vector-indexed lake plus the committed index's key.

        The heat must address the *pre-refinement* key, captured from
        base state: a closure that re-resolved "the covering record"
        would heat the refined file after a post-commit crash and
        propose endless re-refinement instead of converging.
        """
        clock = SimClock(start=1_000_000.0)
        store = InMemoryObjectStore(clock=clock)
        lake = LakeTable.create(store, LAKE_ROOT, EVENT_SCHEMA, LAKE_CONFIG)
        lake.append(event_batch(260, seed=1))
        _make_client(store).index("emb", "ivf_pq", params={"nlist": 4, "m": 8})
        key = covering_records(_make_client(store), "emb", "ivf_pq")[
            0
        ].index_key
        return clock, store, key

    def test_every_crash_point_byte_identical(self):
        clock, store, key = self._base()
        matrix = crash_matrix(
            store,
            _make_client,
            "crack",
            lambda c: _tick(c, [("emb", "ivf_pq")], _cell_heat(c, key)),
            compare="bytes",
        )
        # refined index upload + meta commit + meta checkpoint
        assert matrix.mutations == 3
        assert matrix.all_recoverable, matrix.describe()
        assert matrix.crash_points() == {
            "crack:put-index-file",
            "crack:put-meta-commit",
            "crack:put-meta-checkpoint",
        }

    def test_refinement_supersedes_in_the_cover_and_rerun_is_idle(self):
        clock, store, key = self._base()
        client = _make_client(store)
        _tick(client, [("emb", "ivf_pq")], _cell_heat(client, key))
        cover = covering_records(_make_client(store), "emb", "ivf_pq")
        assert len(cover) == 1
        assert cover[0].index_key != key  # refined file took over
        # The old key no longer covers, so the same heat plans nothing.
        before = store.stats.snapshot()
        client = _make_client(store)
        _tick(client, [("emb", "ivf_pq")], _cell_heat(client, key))
        delta = store.stats.snapshot().delta(before)
        assert delta.puts + delta.deletes == 0


# ---------------------------------------------------------------------
# one tick doing both verbs: commits interleave, still converges
# ---------------------------------------------------------------------
class TestCombinedTickCrashMatrix:
    def test_both_verbs_in_one_tick_every_boundary(self):
        clock = SimClock(start=1_000_000.0)
        store = InMemoryObjectStore(clock=clock)
        lake = LakeTable.create(store, LAKE_ROOT, EVENT_SCHEMA, LAKE_CONFIG)
        lake.append(event_batch(260, seed=1))
        lake.append(event_batch(260, seed=2))
        seed_client = _make_client(store)
        snap = seed_client.lake.snapshot()
        seed_client.index(
            "emb",
            "ivf_pq",
            snapshot=dataclasses.replace(snap, files=(snap.files[0],)),
            params={"nlist": 4, "m": 8},
        )
        key = covering_records(_make_client(store), "emb", "ivf_pq")[
            0
        ].index_key

        def operation(c: RottnestClient) -> None:
            heat = _uuid_heat(c, 1).merge(_cell_heat(c, key))
            _tick(
                c, [("uuid", "uuid_trie"), ("emb", "ivf_pq")], heat
            )

        matrix = crash_matrix(
            store, _make_client, "crack", operation, compare="bytes"
        )
        # (upload + commit + checkpoint) for each of the two verbs.
        assert matrix.mutations == 6
        assert matrix.all_recoverable, matrix.describe()
        assert matrix.crash_points() == {
            "crack:put-index-file",
            "crack:put-meta-commit",
            "crack:put-meta-checkpoint",
        }

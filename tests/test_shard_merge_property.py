"""Property: the router's global-k heap merge equals sort-the-union.

:func:`repro.shard.merge_topk` merges per-shard sorted runs with a
heap; its contract is that the result is *exactly*
``sorted(union)[:k]`` under the deterministic rank key ``(score, file,
row)`` — for any shard count, any per-shard distribution (including
empty shards), duplicate ``(file, row)`` keys across shards, and score
ties. :func:`repro.shard.merge_exact` owes the same under ``(file,
row)``. Hypothesis drives all of it.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.client import SearchMatch
from repro.shard import merge_exact, merge_topk

# Tiny alphabets on purpose: collisions and ties should be the norm,
# not the exception, so the tie-breaking contract is actually exercised.
_files = st.sampled_from(["a.parquet", "b.parquet", "c.parquet"])
_rows = st.integers(min_value=0, max_value=5)
_scores = st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0])

_scored_match = st.builds(
    SearchMatch, file=_files, row=_rows, value=st.just("v"), score=_scores
)
_exact_match = st.builds(
    SearchMatch, file=_files, row=_rows, value=st.just("v"), score=st.none()
)


def _sharded(match_strategy):
    """1..6 shards, each holding 0..12 matches."""
    return st.lists(
        st.lists(match_strategy, max_size=12), min_size=1, max_size=6
    )


@settings(max_examples=200, deadline=None)
@given(ranked=_sharded(_scored_match), k=st.integers(min_value=0, max_value=30))
def test_merge_topk_equals_sorted_union(ranked, k):
    merged = merge_topk(ranked, k)
    union = [m for matches in ranked for m in matches]
    expected = sorted(union, key=lambda m: (m.score, m.file, m.row))[:k]
    assert merged == expected
    assert len(merged) == min(k, len(union))


@settings(max_examples=200, deadline=None)
@given(lists=_sharded(_exact_match), k=st.integers(min_value=0, max_value=30))
def test_merge_exact_equals_sorted_union(lists, k):
    merged = merge_exact(lists, k)
    union = [m for matches in lists for m in matches]
    expected = sorted(union, key=lambda m: (m.file, m.row))[:k]
    assert merged == expected


@settings(max_examples=100, deadline=None)
@given(ranked=_sharded(_scored_match), k=st.integers(min_value=0, max_value=30))
def test_merge_topk_is_shard_agnostic(ranked, k):
    """Re-partitioning the same union differently changes nothing."""
    union = [m for matches in ranked for m in matches]
    assert merge_topk(ranked, k) == merge_topk([union], k)

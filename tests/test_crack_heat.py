"""Property tests for the cracking heat map (hypothesis + unit).

The controller's correctness story leans on three algebraic facts:

* **decay/merge commutativity** — sharded searchers can each decay
  their local map and merge later, or merge first and decay once, and
  the controller sees the same ranking either way;
* **non-negativity** — heat is a sum of non-negative exponential
  terms, so no observation order or query time can produce negative
  heat (a negative counter would flip benefit-per-IO signs);
* **eviction safety** — ``evict_cold`` never forgets a key the policy
  could still act on (heat at or above the floor survives).

Plus the plumbing: span ingestion reads exactly the attributes the
search client records, and serialization round-trips.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CrackError
from repro.crack.heat import (
    DEFAULT_HALF_LIFE_S,
    HeatKey,
    HeatMap,
    cell_scope,
)
from repro.obs.trace import Tracer

KEYS = st.sampled_from(
    [
        HeatKey("lake/a.parquet", "uuid", "UuidQuery"),
        HeatKey("lake/b.parquet", "uuid", "UuidQuery"),
        HeatKey("lake/b.parquet", "text", "SubstringQuery"),
        HeatKey(cell_scope("idx/f-1.bin", 3), "emb", "VectorQuery"),
    ]
)
WEIGHTS = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
TIMES = st.floats(min_value=0.0, max_value=1e7, allow_nan=False)
OBSERVATIONS = st.lists(
    st.tuples(KEYS, WEIGHTS, TIMES), min_size=0, max_size=24
)


def _fill(observations, *, half_life_s=DEFAULT_HALF_LIFE_S) -> HeatMap:
    hm = HeatMap(half_life_s=half_life_s)
    for key, weight, at_s in observations:
        hm.observe(key, weight, at_s=at_s)
    return hm


def _heats(hm: HeatMap, at_s: float) -> dict[HeatKey, float]:
    return {key: hm.heat(key, at_s=at_s) for key in hm.keys()}


def _probe_time(*observation_lists, offset: float = 0.0) -> float:
    """A query time at/after every observation, as the controller's
    "now" always is (asking about heat *before* an observation would
    evaluate the exponential backward and overflow by design)."""
    stamps = [t for obs in observation_lists for (_, _, t) in obs]
    return max(stamps, default=0.0) + offset


class TestAlgebra:
    @settings(max_examples=200, deadline=None)
    @given(left=OBSERVATIONS, right=OBSERVATIONS, at_s=TIMES)
    def test_decay_then_merge_equals_merge_then_decay(
        self, left, right, at_s
    ):
        a = _fill(left).decay_to(at_s)
        b = _fill(right).decay_to(at_s)
        decayed_first = a.merge(b)

        merged_first = _fill(left).merge(_fill(right)).decay_to(at_s)

        probe = _probe_time(left, right, offset=at_s + 120.0)
        got = _heats(decayed_first, probe)
        want = _heats(merged_first, probe)
        assert set(got) == set(want)
        for key, value in want.items():
            assert got[key] == pytest.approx(value, rel=1e-9, abs=1e-9)

    @settings(max_examples=200, deadline=None)
    @given(observations=OBSERVATIONS, at_s=TIMES)
    def test_heat_is_never_negative(self, observations, at_s):
        hm = _fill(observations)
        probe = _probe_time(observations, offset=at_s)
        for key in hm.keys():
            assert hm.heat(key, at_s=probe) >= 0.0

    @settings(max_examples=200, deadline=None)
    @given(
        observations=OBSERVATIONS,
        floor=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
        at_s=TIMES,
    )
    def test_eviction_never_drops_a_key_at_or_above_the_floor(
        self, observations, floor, at_s
    ):
        hm = _fill(observations)
        probe = _probe_time(observations, offset=at_s)
        survivors_wanted = {
            key for key in hm.keys() if hm.heat(key, at_s=probe) >= floor
        }
        hm.evict_cold(floor, at_s=probe)
        assert survivors_wanted <= set(hm.keys())
        # And nothing cold survived either: eviction is exact.
        for key in hm.keys():
            assert hm.heat(key, at_s=probe) >= floor

    @settings(max_examples=100, deadline=None)
    @given(observations=OBSERVATIONS, at_s=TIMES)
    def test_ingest_order_is_irrelevant(self, observations, at_s):
        forward = _fill(observations)
        backward = _fill(list(reversed(observations)))
        probe = _probe_time(observations, offset=at_s)
        got = _heats(forward, probe)
        want = _heats(backward, probe)
        assert set(got) == set(want)
        for key, value in want.items():
            assert got[key] == pytest.approx(value, rel=1e-9, abs=1e-9)

    @settings(max_examples=100, deadline=None)
    @given(observations=OBSERVATIONS, at_s=TIMES)
    def test_serialization_round_trips(self, observations, at_s):
        hm = _fill(observations)
        clone = HeatMap.from_dict(hm.to_dict())
        probe = _probe_time(observations, offset=at_s)
        assert _heats(clone, probe) == _heats(hm, probe)
        assert clone.to_dict() == hm.to_dict()


class TestValidation:
    def test_rejects_nonpositive_half_life(self):
        with pytest.raises(CrackError):
            HeatMap(half_life_s=0.0)

    def test_rejects_negative_weight(self):
        hm = HeatMap()
        with pytest.raises(CrackError):
            hm.observe(HeatKey("f", "c", "k"), -1.0, at_s=0.0)

    def test_rejects_negative_floor(self):
        with pytest.raises(CrackError):
            HeatMap().evict_cold(-0.5, at_s=0.0)

    def test_rejects_mismatched_half_life_merge(self):
        with pytest.raises(CrackError):
            HeatMap(half_life_s=60.0).merge(HeatMap(half_life_s=30.0))

    def test_rejects_malformed_payload(self):
        with pytest.raises(CrackError):
            HeatMap.from_dict({"cells": []})
        with pytest.raises(CrackError):
            HeatMap.from_dict(
                {"half_life_s": 60.0, "cells": [["only", "three", "items"]]}
            )


class TestHalfLife:
    def test_heat_halves_every_half_life(self):
        hm = HeatMap(half_life_s=100.0)
        key = HeatKey("f", "c", "k")
        hm.observe(key, 8.0, at_s=0.0)
        assert hm.heat(key, at_s=0.0) == pytest.approx(8.0)
        assert hm.heat(key, at_s=100.0) == pytest.approx(4.0)
        assert hm.heat(key, at_s=300.0) == pytest.approx(1.0)

    def test_out_of_order_observation_matches_in_order(self):
        in_order = HeatMap(half_life_s=100.0)
        out_of_order = HeatMap(half_life_s=100.0)
        key = HeatKey("f", "c", "k")
        in_order.observe(key, 4.0, at_s=0.0)
        in_order.observe(key, 2.0, at_s=100.0)
        out_of_order.observe(key, 2.0, at_s=100.0)
        out_of_order.observe(key, 4.0, at_s=0.0)
        assert in_order.heat(key, at_s=200.0) == pytest.approx(
            out_of_order.heat(key, at_s=200.0)
        )


class TestSpanIngestion:
    def _search_root(self, tracer, *, column, kind):
        with tracer.span("search") as root:
            root.set("column", column)
            root.set("kind", kind)
            return root

    def test_reads_brute_probe_and_cell_attributes(self):
        tracer = Tracer()
        with tracer.span("search") as root:
            root.set("column", "uuid")
            root.set("kind", "UuidQuery")
            with tracer.span("brute_force") as brute:
                brute.set("scanned_files", ("lake/a", "lake/b"))
            with tracer.span("probe:pages") as probe:
                probe.set("probed_files", ("lake/c",))
            with tracer.span("probe:index") as idx:
                idx.set("cell_probes", (("idx/v-1.bin", (0, 2)),))
        hm = HeatMap()
        observed = hm.observe_spans(tracer.pop_finished())
        assert observed == 5
        at_s = 10.0
        files = hm.file_heat(at_s=at_s, column="uuid")
        assert set(files) == {"lake/a", "lake/b", "lake/c"}
        cells = hm.cell_heat(at_s=at_s)
        assert set(cells) == {("idx/v-1.bin", 0), ("idx/v-1.bin", 2)}

    def test_ignores_non_search_roots(self):
        tracer = Tracer()
        with tracer.span("daemon.tick"):
            with tracer.span("brute_force") as brute:
                brute.set("scanned_files", ("lake/a",))
        hm = HeatMap()
        assert hm.observe_spans(tracer.pop_finished()) == 0
        assert len(hm) == 0

    def test_hottest_ranking_is_deterministic_under_ties(self):
        hm = HeatMap()
        for scope in ("lake/b", "lake/a"):
            hm.observe(HeatKey(scope, "uuid", "q"), 1.0, at_s=0.0)
        ranked = [key.scope for key, _ in hm.hottest(at_s=0.0)]
        assert ranked == ["lake/a", "lake/b"]

"""Conformance matrix: workloads x maintenance states x parallelism.

Every cell runs the same contract: indexed search over the executor
equals the brute-force oracle (``use_indices=False`` over the same
executor) on the same lake state. The states walk the maintenance
lifecycle — unindexed, freshly indexed, half-compacted (a merged index
coexisting with newer per-file indices), and compacted-then-vacuumed —
and the whole matrix runs with both a serial and a parallel
:class:`~repro.maintain.MaintenancePipeline`, pinning that worker count
never changes *what* maintenance commits, only how fast.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np
import pytest

from repro.core.client import RottnestClient
from repro.core.queries import Query, SubstringQuery, UuidQuery, VectorQuery
from repro.lake.table import LakeTable, TableConfig
from repro.maintain import MaintenancePipeline
from repro.serve.executor import SearchExecutor
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock

from tests.conftest import EVENT_SCHEMA, event_batch, event_uuid


@dataclasses.dataclass(frozen=True)
class Workload:
    """One column's worth of the matrix: how to fill, index, and query."""

    name: str
    column: str
    index_type: str
    params: dict
    files: int
    rows: int
    queries: Callable[[LakeTable], list[tuple[Query, int]]]
    """Returns ``(query, k)`` pairs to run against every state."""


def _uuid_queries(lake: LakeTable) -> list[tuple[Query, int]]:
    present = [(1, 0), (2, 10), (4, 39)]
    queries = [(UuidQuery(event_uuid(s, i)), 100) for s, i in present]
    queries.append((UuidQuery(b"\x00" * 16), 100))  # absent
    return queries


def _text_queries(lake: LakeTable) -> list[tuple[Query, int]]:
    docs = lake.to_pylist("text")
    return [
        (SubstringQuery(docs[0][:8]), 10_000),
        (SubstringQuery(docs[-1][:8]), 10_000),
        (SubstringQuery("impossible-needle"), 10_000),
    ]


def _vector_queries(lake: LakeTable) -> list[tuple[Query, int]]:
    rng = np.random.default_rng(7)
    total = sum(f.num_rows for f in lake.snapshot().files)
    return [
        # Exhaustive settings (probe every list, refine everything) so
        # the ANN answer is exact and comparable to brute force.
        (VectorQuery(rng.normal(size=16).astype(np.float32), nprobe=4, refine=total), 5)
        for _ in range(2)
    ]


WORKLOADS = [
    Workload(
        name="uuids",
        column="uuid",
        index_type="uuid_trie",
        params={},
        files=4,
        rows=40,
        queries=_uuid_queries,
    ),
    Workload(
        name="text",
        column="text",
        index_type="fm",
        params={"block_size": 1024, "sample_rate": 8},
        files=4,
        rows=40,
        queries=_text_queries,
    ),
    Workload(
        name="vectors",
        column="emb",
        index_type="ivf_pq",
        params={"nlist": 4, "m": 8},
        files=3,
        rows=260,  # each per-file index call must clear ivf_pq's row floor
        queries=_vector_queries,
    ),
]


def _fresh(workload: Workload):
    store = InMemoryObjectStore(clock=SimClock(start=1_000_000.0))
    lake = LakeTable.create(
        store,
        "lake/events",
        EVENT_SCHEMA,
        TableConfig(row_group_rows=64, page_target_bytes=4096),
    )
    client = RottnestClient(store, "idx/events", lake)
    return store, lake, client


def _index(pipe: MaintenancePipeline, w: Workload) -> None:
    pipe.index(w.column, w.index_type, params=w.params)


# -- state recipes: how the lake reached its maintenance state ---------
def state_unindexed(w, store, lake, pipe):
    for i in range(w.files):
        lake.append(event_batch(w.rows, seed=i + 1))


def state_indexed(w, store, lake, pipe):
    for i in range(w.files):
        lake.append(event_batch(w.rows, seed=i + 1))
    _index(pipe, w)


def state_half_compacted(w, store, lake, pipe):
    """A merged index covering old files + a newer per-file index."""
    for i in range(w.files - 1):
        lake.append(event_batch(w.rows, seed=i + 1))
        _index(pipe, w)
    pipe.compact(w.column, w.index_type)
    lake.append(event_batch(w.rows, seed=w.files))
    _index(pipe, w)


def state_compacted_vacuumed(w, store, lake, pipe):
    for i in range(w.files):
        lake.append(event_batch(w.rows, seed=i + 1))
        _index(pipe, w)
    pipe.compact(w.column, w.index_type)
    store.clock.advance(7200.0)  # age superseded files past the timeout
    pipe.vacuum(snapshot_id=lake.latest_version())


def state_cracked(w, store, lake, pipe):
    """Half the lake indexed (the "hot" files), the rest brute-force.

    The mid-crack lake state the cracking controller leaves behind:
    indices cover only the files a skewed workload made hot, so every
    query plans a mixed indexed-plus-brute execution. No cell
    refinement here — the recipes must keep the vector workload's
    ``nprobe=4`` probes exhaustive for the oracle comparison.
    """
    for i in range(w.files):
        lake.append(event_batch(w.rows, seed=i + 1))
    snap = lake.snapshot()
    hot = snap.files[: max(1, len(snap.files) // 2)]
    pipe.index(
        w.column,
        w.index_type,
        snapshot=dataclasses.replace(snap, files=tuple(hot)),
        params=w.params,
    )


STATES = {
    "unindexed": state_unindexed,
    "indexed": state_indexed,
    "half_compacted": state_half_compacted,
    "compacted_vacuumed": state_compacted_vacuumed,
    "cracked": state_cracked,
}


def _rowset(matches):
    return {(m.file, m.row) for m in matches}


@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("state", sorted(STATES))
@pytest.mark.parametrize("workload", WORKLOADS, ids=[w.name for w in WORKLOADS])
def test_indexed_search_matches_bruteforce_oracle(workload, state, workers):
    store, lake, client = _fresh(workload)
    with MaintenancePipeline(client, workers=workers) as pipe:
        STATES[state](workload, store, lake, pipe)

    with SearchExecutor(client, max_searchers=workers) as ex:
        for query, k in workload.queries(lake):
            indexed = ex.search(workload.column, query, k=k)
            oracle = ex.search(workload.column, query, k=k, use_indices=False)
            assert _rowset(indexed.matches) == _rowset(oracle.matches), (
                f"{workload.name}/{state}/workers={workers}: "
                f"indexed != brute force for {query!r}"
            )
            if query.scoring:
                for a, b in zip(
                    sorted(indexed.matches, key=lambda m: m.score),
                    sorted(oracle.matches, key=lambda m: m.score),
                ):
                    assert a.score == pytest.approx(b.score)
            if state != "unindexed":
                assert indexed.stats.index_files_queried > 0


@pytest.mark.parametrize("n_shards", [1, 4])
@pytest.mark.parametrize("state", sorted(STATES))
@pytest.mark.parametrize("workload", WORKLOADS, ids=[w.name for w in WORKLOADS])
def test_sharded_router_matches_single_server_oracle(workload, state, n_shards):
    """The sharded deployment column: routing the lake through a
    scatter-gather router over {1, 4} shards returns exactly what one
    brute-force server returns, for every workload x lake state.

    Shard lakes salt their file names differently than the source, so
    the comparison canonicalizes on values (exact queries) and scores
    (top-k queries) rather than ``(file, row)`` identity.
    """
    from repro.obs.timeseries import TelemetryHub, use_hub
    from repro.shard import QueryRouter, ShardPlan

    store, lake, client = _fresh(workload)
    with MaintenancePipeline(client, workers=1) as pipe:
        STATES[state](workload, store, lake, pipe)

    # The deployment is always sharded by the uuid column (vectors are
    # not hashable keys); per-shard indexes mirror the lake state.
    indexes = (
        []
        if state == "unindexed"
        else [(workload.column, workload.index_type, workload.params)]
    )
    with use_hub(TelemetryHub()):
        deployment = ShardPlan(n_shards=n_shards).materialize(
            lake, "uuid", indexes=indexes
        )
        assert deployment.total_rows == lake.snapshot().num_rows
        with deployment, QueryRouter(deployment, hedge=None) as router:
            for query, k in workload.queries(lake):
                routed = router.query(workload.column, query, k=k)
                oracle = client.search(
                    workload.column, query, k=k, use_indices=False
                )
                assert routed.complete, (
                    f"{workload.name}/{state}/shards={n_shards}: "
                    f"shard failures for {query!r}"
                )
                if query.scoring:
                    assert sorted(m.score for m in routed.matches) == (
                        pytest.approx(sorted(m.score for m in oracle.matches))
                    )
                else:
                    assert sorted(m.value for m in routed.matches) == sorted(
                        m.value for m in oracle.matches
                    ), (
                        f"{workload.name}/{state}/shards={n_shards}: "
                        f"router != oracle for {query!r}"
                    )
                if workload.name == "uuids" and isinstance(query, UuidQuery):
                    # Hash placement prunes exact-key queries on the
                    # shard key down to the single owning shard.
                    assert routed.shards_pruned == n_shards - 1


# -- fresh-tier axis: ingest states x workloads ------------------------
#: Ingested batches use seeds far from the appended files' so the two
#: populations never collide on values.
FRESH_SEEDS = (101, 102, 103, 104)

#: State name -> (seeds ingested before a drain, seeds ingested after).
#: "half_drained" therefore serves rows from both tiers at once.
FRESH_STATES = {
    "fresh_empty": ((), ()),
    "fresh_wal_only": ((), FRESH_SEEDS[:2]),
    "fresh_half_drained": (FRESH_SEEDS[:2], FRESH_SEEDS[2:]),
    "fresh_fully_drained": (FRESH_SEEDS[:2], ()),
}


@pytest.mark.parametrize("fresh_state", sorted(FRESH_STATES))
@pytest.mark.parametrize("workload", WORKLOADS, ids=[w.name for w in WORKLOADS])
def test_fresh_tier_matches_union_oracle(workload, fresh_state):
    """The fresh-tier axis: for every workload and every ingest state
    (nothing ingested, WAL-only, half-drained, fully drained), a search
    through the fresh/lazy merge equals a brute-force oracle over the
    *union* of both tiers — materialized as a plain lake holding every
    appended and every ingested row. File identities differ between the
    deployments (the oracle knows nothing of WALs), so the comparison
    canonicalizes on values and scores, exactly like the sharded column.
    """
    from repro.ingest import IngestDrainer, IngestTier

    drained_seeds, wal_seeds = FRESH_STATES[fresh_state]
    store, lake, client = _fresh(workload)
    with MaintenancePipeline(client, workers=2) as pipe:
        for i in range(workload.files - 1):
            lake.append(event_batch(workload.rows, seed=i + 1))
        _index(pipe, workload)
        tier = IngestTier(store, "ingest/events", lake)
        client.fresh_tier = tier
        drainer = IngestDrainer(
            tier,
            pipeline=pipe,
            index_specs=[(workload.column, workload.index_type, workload.params)],
        )
        for seed in drained_seeds:
            tier.ingest(event_batch(workload.rows, seed=seed))
        if drained_seeds:
            drainer.drain()
        for seed in wal_seeds:
            tier.ingest(event_batch(workload.rows, seed=seed))

    # The union oracle: one flat lake holding every row of both tiers,
    # searched brute-force by a client with no fresh tier and no index.
    oracle_store = InMemoryObjectStore(clock=SimClock(start=1_000_000.0))
    oracle_lake = LakeTable.create(
        oracle_store,
        "lake/oracle",
        EVENT_SCHEMA,
        TableConfig(row_group_rows=64, page_target_bytes=4096),
    )
    for i in range(workload.files - 1):
        oracle_lake.append(event_batch(workload.rows, seed=i + 1))
    for seed in (*drained_seeds, *wal_seeds):
        oracle_lake.append(event_batch(workload.rows, seed=seed))
    oracle = RottnestClient(oracle_store, "idx/oracle", oracle_lake)

    queries = workload.queries(oracle_lake)  # sized to the union's rows
    fresh_probe = None
    if wal_seeds:
        # One probe whose answer lives only in undrained memtables.
        if workload.name == "uuids":
            fresh_probe = (UuidQuery(event_uuid(wal_seeds[0], 3)), 100)
        elif workload.name == "text":
            doc = event_batch(workload.rows, seed=wal_seeds[0])["text"][1]
            fresh_probe = (SubstringQuery(doc[:8]), 10_000)
        if fresh_probe is not None:
            queries = [*queries, fresh_probe]

    with SearchExecutor(client, max_searchers=2) as ex:
        for query, k in queries:
            merged = ex.search(workload.column, query, k=k)
            expected = oracle.search(
                workload.column, query, k=k, use_indices=False
            )
            label = f"{workload.name}/{fresh_state}"
            if query.scoring:
                assert sorted(m.score for m in merged.matches) == (
                    pytest.approx(sorted(m.score for m in expected.matches))
                ), f"{label}: merged scores != union oracle for {query!r}"
            else:
                assert sorted(m.value for m in merged.matches) == sorted(
                    m.value for m in expected.matches
                ), f"{label}: merged != union oracle for {query!r}"
        if fresh_probe is not None and not fresh_probe[0].scoring:
            probe_result = ex.search(
                workload.column, fresh_probe[0], k=fresh_probe[1]
            )
            assert any(
                m.file.startswith(tier.wal.prefix)
                for m in probe_result.matches
            ), f"{workload.name}/{fresh_state}: probe never hit the fresh tier"


@pytest.mark.parametrize("workload", WORKLOADS, ids=[w.name for w in WORKLOADS])
def test_maintenance_states_commit_identically_at_any_width(workload):
    """Worker count is invisible in committed metadata: the covered
    files and index count after each state recipe are the same at
    parallelism 1 and 4. (Byte-level identity is pinned by the
    hypothesis property in test_chaos_resume.py.)"""
    by_width = {}
    for workers in (1, 4):
        store, lake, client = _fresh(workload)
        with MaintenancePipeline(client, workers=workers) as pipe:
            state_half_compacted(workload, store, lake, pipe)
        # Lake data-file names are salted per run (and leak into
        # compressed directory bytes), so compare shape only: index
        # count, per-index coverage width, and rows. Byte identity on
        # one store is pinned by the hypothesis property test.
        records = client.meta.records()
        by_width[workers] = sorted(
            (r.index_type, len(r.covered_files), r.num_rows)
            for r in records
        )
    assert by_width[1] == by_width[4]

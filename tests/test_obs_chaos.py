"""Crash matrices for the telemetry plane's durability verbs (``obs``).

Flight-trace persistence and snapshot commits are the observability
plane's only store mutations. Both are content-addressed leaf objects
the lake invariants never reference, so the §IV-D argument is the
simplest in the protocol: a crash at any PUT leaves either nothing or
a valid (smaller) retained set, the re-run skips keys that already
exist and uploads the remainder, and convergence is byte-identical.
This file holds the ``obs`` verb to the same bar as ``index`` /
``compact`` / ``crack``: crash after EVERY mutation, recover by
re-running the same operation, compare bytes.

Determinism note: span ids come from a process-global counter, so the
operation closures rebuild their span trees from FIXED rows via
:func:`span_tree_from_dicts` — a live tracer would hash differently on
every replay and the matrix could never converge.
"""

from __future__ import annotations

from repro.chaos import CRASH_POINTS, crash_matrix
from repro.core.client import RottnestClient
from repro.lake.table import LakeTable, TableConfig
from repro.obs.export import span_tree_from_dicts
from repro.obs.flight import FlightRecorder, list_flights, load_flight
from repro.obs.store import SnapshotStore
from repro.obs.timeseries import TelemetryHub
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock

from tests.conftest import EVENT_SCHEMA, event_batch

LAKE_ROOT = "lake/events"
INDEX_DIR = "idx/events"
LAKE_CONFIG = TableConfig(
    row_group_rows=64, page_target_bytes=4096, checkpoint_interval=1
)

#: Fixed wall-clock for every telemetry stamp: SimClock never advances
#: on its own, so the same state hashes to the same keys on every run.
AT_S = 1_000_000.0


def _make_client(store) -> RottnestClient:
    client = RottnestClient(
        store,
        INDEX_DIR,
        LakeTable.open(store, LAKE_ROOT, LAKE_CONFIG),
        key_entropy=lambda: b"\x00\x00\x00\x00",
    )
    client.meta.checkpoint_interval = 1
    return client


def _base() -> InMemoryObjectStore:
    clock = SimClock(start=AT_S)
    store = InMemoryObjectStore(clock=clock)
    lake = LakeTable.create(store, LAKE_ROOT, EVENT_SCHEMA, LAKE_CONFIG)
    lake.append(event_batch(30, seed=1))
    return store


def _fixed_root(seed: int):
    """A finished two-span query tree with deterministic span ids."""
    base = seed * 10
    return span_tree_from_dicts(
        [
            {
                "span_id": base + 1, "parent_id": None,
                "name": "serve.query", "start_s": 0.0,
                "end_s": 0.25 * (seed + 1), "thread": "main",
                "attributes": {"query": f"q{seed}"}, "events": [],
            },
            {
                "span_id": base + 2, "parent_id": base + 1,
                "name": "data.fetch", "start_s": 0.0,
                "end_s": 0.25 * (seed + 1), "thread": "main",
                "attributes": {"phase": "data"}, "events": [],
            },
        ]
    )


def _recorder_with_flights(client) -> FlightRecorder:
    recorder = FlightRecorder(client.store)
    for seed in range(2):
        recorder.record(
            _fixed_root(seed),
            latency_s=0.25 * (seed + 1),
            at_s=AT_S,
            error=True,
        )
    return recorder


def _persist_flights(client) -> None:
    _recorder_with_flights(client).persist()


def _deterministic_hub() -> TelemetryHub:
    hub = TelemetryHub()
    for i in range(5):
        at_s = AT_S + i * 7.0
        hub.quantiles("serve.latency_s").observe(0.01 * (i + 1), at_s=at_s)
        hub.series("serve.queries").observe(1.0, at_s=at_s)
    return hub


def _commit_snapshot(client) -> None:
    SnapshotStore(client.store).commit(
        _deterministic_hub(), source="proc", at_s=AT_S
    )


def _persist_plane(client) -> None:
    """The full durability path one process runs at shutdown: flights
    first, then the snapshot referencing their ids."""
    recorder = _recorder_with_flights(client)
    recorder.persist()
    SnapshotStore(client.store).commit(
        _deterministic_hub(),
        source="proc",
        flights=[t.trace_id for t in recorder.traces()],
        at_s=AT_S,
    )


class TestFlightCrashMatrix:
    def test_every_crash_point_byte_identical(self):
        matrix = crash_matrix(
            _base(), _make_client, "obs", _persist_flights, compare="bytes"
        )
        assert matrix.mutations == 2  # one PUT per retained trace
        assert matrix.all_recoverable, matrix.describe()
        assert matrix.crash_points() == {"obs:put-flight"}
        assert matrix.crash_points() <= set(CRASH_POINTS)

    def test_partial_persist_leaves_valid_traces_and_rerun_idles(self):
        store = _base()
        client = _make_client(store)
        _persist_flights(client)
        ids = list_flights(store)
        assert len(ids) == 2
        for trace_id in ids:
            flight = load_flight(store, trace_id)
            assert flight.root().name == "serve.query"
        # Idempotence: the whole persist path re-run mutates nothing.
        before = store.stats.snapshot()
        _persist_flights(_make_client(store))
        delta = store.stats.snapshot().delta(before)
        assert delta.puts + delta.deletes == 0


class TestSnapshotCrashMatrix:
    def test_every_crash_point_byte_identical(self):
        matrix = crash_matrix(
            _base(), _make_client, "obs", _commit_snapshot, compare="bytes"
        )
        assert matrix.mutations == 1  # the single snapshot PUT
        assert matrix.all_recoverable, matrix.describe()
        assert matrix.crash_points() == {"obs:put-snapshot"}

    def test_commit_rerun_idles(self):
        store = _base()
        _commit_snapshot(_make_client(store))
        assert len(SnapshotStore(store).keys()) == 1
        before = store.stats.snapshot()
        _commit_snapshot(_make_client(store))
        delta = store.stats.snapshot().delta(before)
        assert delta.puts + delta.deletes == 0


class TestFullPlaneCrashMatrix:
    def test_flights_then_snapshot_every_boundary(self):
        matrix = crash_matrix(
            _base(), _make_client, "obs", _persist_plane, compare="bytes"
        )
        assert matrix.mutations == 3  # 2 flights + 1 snapshot
        assert matrix.all_recoverable, matrix.describe()
        assert matrix.crash_points() == {
            "obs:put-flight",
            "obs:put-snapshot",
        }

    def test_snapshot_flight_ids_survive_recovery(self):
        store = _base()
        _persist_plane(_make_client(store))
        payload = SnapshotStore(store).snapshots()[0]
        assert payload["flights"] == list_flights(store)
